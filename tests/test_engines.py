"""The unified engine API: registry, EngineResult, repro.run()."""

from __future__ import annotations

import pytest

import repro
from repro.dbsp.machine import DBSP_PHASES
from repro.dbsp.program import Program
from repro.engines import (
    ENGINES,
    Engine,
    EngineResult,
    build_program,
    resolve_access_function,
    run,
)
from repro.functions import (
    ConstantAccess,
    LinearAccess,
    LogarithmicAccess,
    PolynomialAccess,
)
from repro.sim.brent import BRENT_PHASES
from repro.sim.bt_sim import BT_PHASES
from repro.sim.hmm_sim import HMM_PHASES

ALL_ENGINES = ("direct", "hmm", "vec", "bt", "brent")

PHASES_OF = {
    "direct": DBSP_PHASES,
    "hmm": HMM_PHASES,
    "vec": HMM_PHASES,
    "bt": BT_PHASES,
    "brent": BRENT_PHASES,
}


class TestRegistry:
    def test_all_engines_registered(self):
        assert set(ENGINES) == set(ALL_ENGINES)

    def test_entries_satisfy_protocol(self):
        for name, engine in ENGINES.items():
            assert isinstance(engine, Engine)
            assert engine.name == name
            assert engine.description

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            run("broadcast", engine="gpu", v=8)

    def test_unknown_program_rejected(self):
        with pytest.raises(ValueError, match="unknown program"):
            build_program("nope", 8)


class TestResolveAccessFunction:
    def test_specs(self):
        assert isinstance(resolve_access_function("x^0.5"), PolynomialAccess)
        assert isinstance(resolve_access_function("log"), LogarithmicAccess)
        assert isinstance(resolve_access_function("const"), ConstantAccess)
        assert isinstance(resolve_access_function("linear"), LinearAccess)

    def test_x0_names_the_flat_ram(self):
        with pytest.raises(ValueError, match="flat RAM.*'const'"):
            resolve_access_function("x^0")

    def test_x1_names_the_linear_hierarchy(self):
        with pytest.raises(ValueError, match="'linear'"):
            resolve_access_function("x^1")

    def test_non_numeric_exponent(self):
        with pytest.raises(ValueError, match="numeric"):
            resolve_access_function("x^")

    def test_unknown_spec(self):
        with pytest.raises(ValueError, match="unknown access function"):
            resolve_access_function("bogus")


class TestRun:
    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_result_shape(self, engine):
        res = run("broadcast", engine=engine, f="x^0.5", v=8)
        assert isinstance(res, EngineResult)
        assert res.engine == engine
        assert res.time > 0
        assert len(res.contexts) == 8
        assert res.meta["program"] == "broadcast(v=8)"
        assert res.meta["f"] == "x^0.5"
        assert res.native is not None

    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_breakdown_partitions_time(self, engine):
        res = run("reduce", engine=engine, f="x^0.5", v=8)
        assert set(res.breakdown) == set(PHASES_OF[engine])
        assert sum(res.breakdown.values()) == pytest.approx(
            res.time, rel=1e-12
        )

    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_contexts_match_direct_run(self, engine):
        program = build_program("prefix", 8)
        direct = run(program, engine="direct")
        res = run(program, engine=engine, baseline=False)
        assert res.contexts == direct.contexts

    def test_slowdown_against_direct(self):
        res = run("broadcast", engine="hmm", f="x^0.5", v=8)
        assert res.baseline_time is not None and res.baseline_time > 0
        assert res.slowdown == pytest.approx(res.time / res.baseline_time)
        direct = run("broadcast", engine="direct", f="x^0.5", v=8)
        assert direct.slowdown == 1.0

    def test_baseline_false_skips_direct_run(self):
        res = run("broadcast", engine="hmm", v=8, baseline=False)
        assert res.slowdown is None and res.baseline_time is None

    def test_zero_baseline_yields_none_not_zero(self, monkeypatch):
        # a zero-time guest must not fabricate a 0.0 slowdown (the old
        # CLI printed "slowdown = 0.0"); no real program reaches this --
        # even an empty one is padded to a costed global sync -- so fake
        # the baseline machine
        import repro.engines as engines_module

        class ZeroGuest:
            total_time = 0.0

        class ZeroMachine:
            def __init__(self, f, **kwargs):
                pass

            def run(self, program):
                return ZeroGuest()

        monkeypatch.setattr(engines_module, "DBSPMachine", ZeroMachine)
        res = run("broadcast", engine="hmm", v=8)
        assert res.baseline_time == 0.0
        assert res.slowdown is None

    def test_empty_program_is_padded_to_a_costed_sync(self):
        empty = Program(4, 4, [], name="empty")
        res = ENGINES["direct"].run(empty, PolynomialAccess(0.5))
        assert res.time > 0  # with_global_sync appends a dummy 0-superstep

    def test_program_instance_and_name_agree(self):
        by_name = run("reduce", engine="bt", f="log", v=8)
        by_prog = run(build_program("reduce", 8), engine="bt", f="log")
        assert by_prog.time == by_name.time

    def test_access_function_instance_accepted(self):
        res = run("broadcast", engine="direct", f=PolynomialAccess(0.3), v=8)
        assert res.meta["f"] == "x^0.3"

    def test_engine_opts_pass_through(self):
        res = run("reduce", engine="brent", v=8, v_host=4)
        assert res.meta["v_host"] == 4
        ams = run("reduce", engine="bt", v=8, sort="mergesort")
        assert ams.meta["sort"] == "mergesort"


class TestTraceLevels:
    def test_off_disables_observability(self):
        res = run("reduce", engine="bt", v=8, trace="off", baseline=False)
        assert res.breakdown == {} and res.counters == {} and res.trace == []
        assert res.time > 0

    def test_off_does_not_change_charged_time(self):
        on = run("reduce", engine="bt", v=8, baseline=False)
        off = run("reduce", engine="bt", v=8, trace="off", baseline=False)
        assert off.time == on.time

    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_full_trace_self_costs_sum_to_time(self, engine):
        res = run("reduce", engine=engine, v=8, trace="full", baseline=False)
        assert res.trace, f"{engine} recorded no spans"
        assert sum(s.self_cost for s in res.trace) == pytest.approx(
            res.time, rel=1e-12
        )

    def test_full_trace_round_trips_through_jsonl(self):
        res = run("broadcast", engine="hmm", v=8, trace="full", baseline=False)
        text = repro.spans_to_jsonl(res.trace)
        assert repro.spans_from_jsonl(text) == res.trace

    def test_direct_trace_mirrors_superstep_records(self):
        res = run("broadcast", engine="direct", v=8, trace="full")
        roots = [s for s in res.trace if s.parent == -1]
        assert len(roots) == res.counters["supersteps"]
        assert sum(s.cost for s in roots) == pytest.approx(res.time)


class TestCounterCorrectness:
    """Exact counters on the v=8 broadcast (deterministic workload).

    The broadcast routes v-1 = 7 messages down a binary tree in four
    supersteps (labels 0,1,2,0); every engine must agree on the message
    count, and the machine-level word counters are integer-exact.
    """

    def test_message_count_agrees_across_engines(self):
        for engine in ALL_ENGINES:
            res = run("broadcast", engine=engine, v=8, baseline=False)
            assert res.counters["messages"] == 7, engine

    def test_direct_counters(self):
        res = run("broadcast", engine="direct", v=8)
        assert res.counters == {
            "supersteps": 4,
            "dummy_supersteps": 0,
            "messages": 7,
            "max_h": 1,
        }

    def test_hmm_counters(self):
        res = run("broadcast", engine="hmm", v=8, baseline=False)
        # one round per superstep (the label sequence is already smooth),
        # and the word traffic of the Fig. 1 schedule is deterministic
        assert res.counters["rounds"] == 4
        assert res.counters["words_touched"] == 910
        # labels never force a cluster reshuffle here: no swap traffic
        assert "context_swaps" not in res.counters

    def test_bt_counters(self):
        res = run("broadcast", engine="bt", v=8, baseline=False)
        c = res.counters
        assert c["rounds"] == 7  # smoothing pads the label sequence
        assert c["block_transfers"] == 244
        assert c["words_moved"] == 2288
        assert c["words_touched"] == 512
        assert c["context_swaps"] == 24
        # words_moved is what block transfers carried: mu words per block
        assert c["words_moved"] % 8 == 0


class TestEngineResult:
    def test_to_json_is_serializable(self):
        import json

        res = run("reduce", engine="bt", v=8, trace="full")
        doc = res.to_json()
        parsed = json.loads(json.dumps(doc))
        assert parsed["engine"] == "bt"
        assert parsed["time"] == res.time
        assert len(parsed["trace"]) == len(res.trace)
        slim = res.to_json(include_trace=False)
        assert "trace" not in slim

    @pytest.mark.parametrize("engine", sorted(ENGINES))
    def test_from_json_round_trips_with_trace(self, engine):
        res = run("reduce", engine=engine, v=8, trace="full")
        doc = res.to_json()
        rebuilt = EngineResult.from_json(doc)
        assert rebuilt.to_json() == doc
        assert rebuilt.engine == res.engine
        assert rebuilt.time == res.time
        assert rebuilt.counters == res.counters
        assert len(rebuilt.trace) == len(res.trace)

    @pytest.mark.parametrize("engine", sorted(ENGINES))
    def test_from_json_round_trips_trace_free(self, engine):
        res = run("reduce", engine=engine, v=8)
        slim = res.to_json(include_trace=False)
        rebuilt = EngineResult.from_json(slim)
        assert rebuilt.trace == []
        assert rebuilt.to_json(include_trace=False) == slim
        # a wire round-trip (floats included) survives exactly
        import json

        assert EngineResult.from_json(
            json.loads(json.dumps(slim))
        ).to_json(include_trace=False) == slim

    @pytest.mark.parametrize(
        "alias", ["total_time", "block_transfers", "rounds"]
    )
    def test_pre_unification_aliases_removed(self, alias):
        """The deprecated v0 aliases are gone as of the /v1 redesign."""
        res = run("reduce", engine="bt", v=8, baseline=False)
        with pytest.raises(AttributeError):
            getattr(res, alias)

    def test_native_result_keeps_its_own_fields(self):
        # the removal is about EngineResult only; engine-native results
        # keep their own attributes
        res = run("reduce", engine="bt", v=8, baseline=False)
        assert res.native.block_transfers == res.counters["block_transfers"]
