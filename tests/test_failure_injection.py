"""Failure injection: do the runtime invariant checks catch real bugs?

Each test plants a specific scheduling defect into an engine — a skipped
cluster swap, out-of-order delivery, corrupted slot bookkeeping — and
asserts that the corresponding guard (Theorem 4's Invariants 1/2, the BT
layout assertions, or the end-to-end equivalence check) trips.  This is
what makes the invariant machinery trustworthy rather than decorative.
"""

from __future__ import annotations

import pytest

import repro.sim.bt_sim as bt_sim_module
import repro.sim.hmm_sim as hmm_sim_module
from repro.dbsp.machine import DBSPMachine
from repro.functions import PolynomialAccess
from repro.sim.bt_sim import BTSimulator, _BTSimRun
from repro.sim.hmm_sim import HMMSimulator, _HMMSimRun
from repro.testing import random_program

F = PolynomialAccess(0.5)


class TestHMMSimInjection:
    def test_skipped_cycle_swap_trips_invariant(self, monkeypatch):
        class Buggy(_HMMSimRun):
            def _cycle_swaps(self, label, next_label, first_pid, csize):
                b = 1 << (label - next_label)
                j = (first_pid - (first_pid // (csize * b)) * csize * b) // csize
                if j > 0:
                    self._swap_slot_ranges(0, j * csize, csize)
                # BUG: the second swap (bring C_{j+1} up) is dropped

        monkeypatch.setattr(hmm_sim_module, "_HMMSimRun", Buggy)
        prog = random_program(16, labels=[2, 0], seed=1)
        with pytest.raises(AssertionError, match="Invariant"):
            HMMSimulator(F, check_invariants="top", kernel="scalar").simulate(
                prog, label_set=[0, 1, 2, 3, 4]
            )

    def test_skipped_first_swap_trips_invariant(self, monkeypatch):
        class Buggy(_HMMSimRun):
            def _cycle_swaps(self, label, next_label, first_pid, csize):
                # BUG: always swap with the adjacent home, never restore C0
                # (indistinguishable from correct behaviour in b=2 cycles,
                # so the label set below forces a b=4 cycle)
                self._swap_slot_ranges(0, csize, csize)

        monkeypatch.setattr(hmm_sim_module, "_HMMSimRun", Buggy)
        prog = random_program(16, labels=[2, 2, 0], seed=2)
        with pytest.raises(AssertionError, match="Invariant"):
            HMMSimulator(F, check_invariants="top", kernel="scalar").simulate(
                prog, label_set=[0, 2, 4]
            )

    def test_early_delivery_breaks_equivalence(self, monkeypatch):
        """Messages delivered within the same superstep (a classic BSP
        bug) silently change results — the equivalence check catches it."""

        class Buggy(_HMMSimRun):
            def _simulate_superstep(self, s, first_pid, csize):
                step = self.steps[s]
                if step.is_dummy:
                    return super()._simulate_superstep(s, first_pid, csize)
                from repro.dbsp.program import ProcView

                for k in range(csize):
                    pid = self.slot_to_pid[k]
                    inbox = sorted(self.pending[pid])
                    self.pending[pid] = []
                    view = ProcView(pid, self.v, self.mu, step.label,
                                    self.contexts[pid], inbox)
                    step.body(view)
                    self.machine.charge(view.local_time)
                    for dest, msg in view.outbox:
                        # BUG: visible to later processors of the same round
                        self.pending[dest].append(msg)
                    self.next_step[pid] += 1

        monkeypatch.setattr(hmm_sim_module, "_HMMSimRun", Buggy)
        prog = random_program(8, labels=[1, 1, 0], seed=3)
        want = [c["w"] for c in DBSPMachine(F).run(prog.with_global_sync()).contexts]
        got = [c["w"] for c in
               HMMSimulator(F, check_invariants="off",
                            kernel="scalar").simulate(prog).contexts]
        assert got != want

    def test_stale_cluster_trips_readiness_invariant(self, monkeypatch):
        class Buggy(_HMMSimRun):
            def _simulate_superstep(self, s, first_pid, csize):
                super()._simulate_superstep(s, first_pid, csize)
                # BUG: half the cluster forgets it ran the superstep
                for k in range(csize // 2):
                    if csize > 1:
                        self.next_step[self.slot_to_pid[k]] = s

        monkeypatch.setattr(hmm_sim_module, "_HMMSimRun", Buggy)
        prog = random_program(8, labels=[1, 0], seed=4)
        with pytest.raises(AssertionError, match="Invariant 1"):
            HMMSimulator(F, check_invariants="top", kernel="scalar").simulate(prog)


class TestBTSimInjection:
    def test_skipped_pack_trips_layout_check(self, monkeypatch):
        class Buggy(_BTSimRun):
            def pack(self, i):
                pass  # BUG: simulate straight on the interspersed layout

        monkeypatch.setattr(bt_sim_module, "_BTSimRun", Buggy)
        prog = random_program(8, n_steps=3, seed=5)
        with pytest.raises(AssertionError):
            BTSimulator(F, check_invariants=True).simulate(prog)

    def test_corrupted_slot_bookkeeping_is_detected(self, monkeypatch):
        class Buggy(_BTSimRun):
            def unpack(self, i):
                super().unpack(i)
                # BUG: clobber a parked context's slot record
                for k, pid in enumerate(self.slots):
                    if pid is not None and k > 0:
                        self.slots[k] = None
                        break

        monkeypatch.setattr(bt_sim_module, "_BTSimRun", Buggy)
        prog = random_program(8, n_steps=3, seed=6)
        with pytest.raises(AssertionError):
            BTSimulator(F, check_invariants=True).simulate(prog)

    def test_swap_to_occupied_destination_is_detected(self, monkeypatch):
        class Buggy(_BTSimRun):
            def _find_empty_run(self, near, n_blocks, forbid):
                return 0  # BUG: "scratch" that overlaps live contexts

        monkeypatch.setattr(bt_sim_module, "_BTSimRun", Buggy)
        prog = random_program(16, labels=[2, 0], seed=7)
        with pytest.raises(AssertionError):
            BTSimulator(F).simulate(prog)


class TestGuardsStayQuietOnCorrectEngine:
    """Control: with no injected bug, the same programs pass all guards."""

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5, 6, 7])
    def test_clean_runs(self, seed):
        prog = random_program(16, n_steps=4, seed=seed)
        want = [c["w"] for c in DBSPMachine(F).run(prog.with_global_sync()).contexts]
        hmm = HMMSimulator(F, check_invariants="full").simulate(prog)
        bt = BTSimulator(F, check_invariants=True).simulate(prog)
        assert [c["w"] for c in hmm.contexts] == want
        assert [c["w"] for c in bt.contexts] == want
