"""The DAG front end: spec validation, scheduling, compilation, bench.

Three contracts pinned here:

* **Refusal with direction** — malformed DAG documents (cycles, dangling
  edges, schema drift, unknown fields) are rejected with messages that
  name the offending task/edge and say what to do, mirroring the
  calibration-profile loader's discipline.
* **Determinism** — identical specs produce byte-identical schedules
  (``canonical_json``), regardless of task/edge declaration order; this
  is what makes DAG results content-addressable in the service cache.
* **Compiled equivalence** — a scheduled DAG lowered to a superstep
  program is an *ordinary* program: all five engines agree on the final
  contexts (and vec == hmm bit-identically on charged time), and the
  computed task values match the sequential reference fold.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.streaming import (
    STREAMING_WORKLOADS,
    streaming_spec,
)
from repro.dag.compile import compile_schedule, dag_program, reference_values
from repro.dag.scheduler import HEURISTICS, schedule
from repro.dag.spec import DagSpec, EdgeSpec, TaskSpec
from repro.dbsp.machine import DBSPMachine
from repro.engines import ENGINES, resolve_access_function

F = resolve_access_function("x^0.5")


def tiny_spec() -> DagSpec:
    return DagSpec(
        "tiny",
        tasks=(
            TaskSpec("a", payload=3),
            TaskSpec("b", payload=5),
            TaskSpec("c", work=2),
        ),
        edges=(EdgeSpec("a", "c"), EdgeSpec("b", "c", volume=2)),
    )


# --------------------------------------------------------------- the spec
class TestSpecValidation:
    def test_round_trip(self):
        spec = tiny_spec()
        doc = spec.to_json()
        again = DagSpec.from_json(doc)
        assert again == spec
        assert again.canonical_json() == spec.canonical_json()

    def test_canonical_json_ignores_declaration_order(self):
        spec = tiny_spec()
        shuffled = DagSpec(
            "tiny",
            tasks=(
                TaskSpec("c", work=2),
                TaskSpec("b", payload=5),
                TaskSpec("a", payload=3),
            ),
            edges=(EdgeSpec("b", "c", volume=2), EdgeSpec("a", "c")),
        )
        assert shuffled.canonical_json() == spec.canonical_json()

    def test_cycle_refused_naming_the_stuck_tasks(self):
        with pytest.raises(ValueError, match="cycle") as err:
            DagSpec(
                "loop",
                tasks=(TaskSpec("a"), TaskSpec("b")),
                edges=(EdgeSpec("a", "b"), EdgeSpec("b", "a")),
            )
        assert "'a'" in str(err.value) and "'b'" in str(err.value)

    def test_dangling_edge_refused_with_role_and_id(self):
        with pytest.raises(ValueError, match="dangling dst 'ghost'"):
            DagSpec("d", tasks=(TaskSpec("a"),),
                    edges=(EdgeSpec("a", "ghost"),))
        with pytest.raises(ValueError, match="dangling src"):
            DagSpec("d", tasks=(TaskSpec("a"),),
                    edges=(EdgeSpec("ghost", "a"),))

    def test_duplicate_edge_and_self_edge_refused(self):
        with pytest.raises(ValueError, match="merge the volumes"):
            DagSpec("d", tasks=(TaskSpec("a"), TaskSpec("b")),
                    edges=(EdgeSpec("a", "b"), EdgeSpec("a", "b")))
        with pytest.raises(ValueError, match="self-edge"):
            DagSpec("d", tasks=(TaskSpec("a"),), edges=(EdgeSpec("a", "a"),))

    def test_schema_refusal_says_what_to_do(self):
        doc = tiny_spec().to_json()
        doc["schema"] = 99
        with pytest.raises(ValueError, match="schema 99"):
            DagSpec.from_json(doc)

    def test_unknown_fields_refused(self):
        doc = tiny_spec().to_json()
        doc["extra"] = 1
        with pytest.raises(ValueError, match="'extra'"):
            DagSpec.from_json(doc)
        doc = tiny_spec().to_json()
        doc["tasks"][0]["colour"] = "red"
        with pytest.raises(ValueError, match="'colour'"):
            DagSpec.from_json(doc)

    def test_field_validation_names_the_task(self):
        with pytest.raises(ValueError, match="task 'a'"):
            TaskSpec("a", work=0)
        with pytest.raises(ValueError, match="volume"):
            EdgeSpec("a", "b", volume=0)
        with pytest.raises(ValueError, match="no tasks"):
            DagSpec("empty", tasks=(), edges=())

    def test_topological_order_respects_edges(self):
        spec = streaming_spec("stream-scan", epochs=2, partitions=4, chunk=2)
        position = {t: i for i, t in enumerate(spec.topological_order())}
        for edge in spec.edges:
            assert position[edge.src] < position[edge.dst]


# ---------------------------------------------------------- the scheduler
def small_specs() -> list[DagSpec]:
    return [
        tiny_spec(),
        streaming_spec("stream-scan", epochs=2, partitions=4, chunk=2),
        streaming_spec("stream-stencil", epochs=2, partitions=4, chunk=2),
        streaming_spec("stream-reduce", epochs=2, partitions=4, chunk=2),
    ]


class TestScheduler:
    @pytest.mark.parametrize("heuristic", sorted(HEURISTICS))
    def test_schedule_is_a_valid_placement(self, heuristic):
        for spec in small_specs():
            sched = schedule(spec, 4, heuristic=heuristic)
            assigned = [task for task, _, _ in sched.assignment]
            assert sorted(assigned) == sorted(t.id for t in spec.tasks)
            proc_of = sched.proc_of()
            step_of = sched.step_of()
            assert all(0 <= p < 4 for p in proc_of.values())
            for edge in spec.edges:
                if proc_of[edge.src] == proc_of[edge.dst]:
                    assert step_of[edge.src] <= step_of[edge.dst]
                else:
                    # a cross-processor value needs a superstep boundary
                    assert step_of[edge.src] < step_of[edge.dst]

    def test_unknown_heuristic_refused(self):
        with pytest.raises(ValueError, match="greedy"):
            schedule(tiny_spec(), 4, heuristic="magic")
        with pytest.raises(ValueError, match="power of two"):
            schedule(tiny_spec(), 3)

    def test_locality_beats_greedy_on_streaming_cross_volume(self):
        # the bench guardrail's property, at test sizes: when partitions
        # outnumber processors, clustering wins on cross-processor words
        wins = 0
        for name in sorted(STREAMING_WORKLOADS):
            spec = streaming_spec(name, epochs=3, partitions=8, chunk=4)
            greedy = schedule(spec, 4, heuristic="greedy")
            local = schedule(spec, 4, heuristic="locality")
            if local.cross_volume(spec) < greedy.cross_volume(spec):
                wins += 1
        assert wins >= 2

    def test_schedule_round_trips_through_json(self):
        sched = schedule(tiny_spec(), 4)
        doc = json.loads(sched.canonical_json())
        assert doc["spec"] == "tiny"
        assert doc["heuristic"] == "locality"
        assert len(doc["assignment"]) == 3


class TestSchedulerDeterminism:
    """Identical specs must yield byte-identical schedules."""

    @staticmethod
    @st.composite
    def random_dags(draw):
        n = draw(st.integers(min_value=1, max_value=12))
        ids = [f"t{i:02d}" for i in range(n)]
        tasks = tuple(
            TaskSpec(
                tid,
                work=draw(st.integers(min_value=1, max_value=5)),
                payload=draw(st.integers(min_value=-9, max_value=9)),
            )
            for tid in ids
        )
        edges = []
        for j in range(1, n):
            for i in range(j):
                if draw(st.booleans()):
                    edges.append(EdgeSpec(
                        ids[i], ids[j],
                        volume=draw(st.integers(min_value=1, max_value=4)),
                    ))
        return DagSpec("rand", tasks=tasks, edges=tuple(edges))

    @given(spec=random_dags(), v=st.sampled_from([2, 4, 8]),
           heuristic=st.sampled_from(sorted(HEURISTICS)))
    @settings(max_examples=40, deadline=None)
    def test_byte_identical_schedules(self, spec, v, heuristic):
        first = schedule(spec, v, heuristic=heuristic)
        # a fresh spec parsed from the JSON round trip must schedule
        # byte-identically — content addressing depends on it
        again = schedule(
            DagSpec.from_json(json.loads(spec.canonical_json())),
            v, heuristic=heuristic,
        )
        assert first.canonical_json() == again.canonical_json()

    @given(spec=random_dags(), v=st.sampled_from([2, 4]))
    @settings(max_examples=25, deadline=None)
    def test_compiled_program_matches_reference(self, spec, v):
        program = dag_program(spec, v=v, mu=8)
        res = DBSPMachine(F).run(program.with_global_sync())
        computed: dict[str, int] = {}
        for ctx in res.contexts:
            computed.update(ctx["values"])
            assert not ctx["acc"], "undelivered cross-processor words"
        assert computed == dict(reference_values(spec))


# ----------------------------------------------------------- the compiler
def run_all_engines(program):
    direct = ENGINES["direct"].run(program, F)
    others = {
        name: ENGINES[name].run(program, F)
        for name in ("hmm", "vec", "bt", "brent")
    }
    return direct, others


class TestCompiledEquivalence:
    @pytest.mark.parametrize("workload", sorted(STREAMING_WORKLOADS))
    @pytest.mark.parametrize("heuristic", sorted(HEURISTICS))
    def test_all_five_engines_agree(self, workload, heuristic):
        spec = streaming_spec(workload, epochs=2, partitions=4, chunk=2)
        program = dag_program(spec, v=4, mu=8, heuristic=heuristic)
        direct, others = run_all_engines(program)
        for name, res in others.items():
            assert res.contexts == direct.contexts, name
        # vec is the hmm charge tape, vectorized: bit-identical clock
        assert others["vec"].time == others["hmm"].time
        assert others["vec"].counters == others["hmm"].counters
        computed: dict[str, int] = {}
        for ctx in direct.contexts:
            computed.update(ctx["values"])
        assert computed == dict(reference_values(spec))

    def test_small_mu_still_compiles_and_agrees(self):
        # mu=2 forces multi-round communication chunking; the degree
        # checker in the direct machine would refuse any violation
        spec = streaming_spec("stream-scan", epochs=2, partitions=4,
                              chunk=3)
        for heuristic in sorted(HEURISTICS):
            sched = schedule(spec, 4, heuristic=heuristic)
            program = compile_schedule(spec, sched, mu=2)
            direct = ENGINES["direct"].run(program, F)
            computed: dict[str, int] = {}
            for ctx in direct.contexts:
                computed.update(ctx["values"])
            assert computed == dict(reference_values(spec))

    def test_streaming_workload_refusals(self):
        with pytest.raises(ValueError, match="stream-scan"):
            streaming_spec("nope")
        with pytest.raises(ValueError, match="epochs"):
            streaming_spec("stream-scan", epochs=0)


# --------------------------------------------------------------- the bench
class TestDagBench:
    def test_smoke_bench_upholds_the_guardrail(self):
        from repro.dag.bench import check_dag_against, run_dag_bench

        doc = run_dag_bench(smoke=True)
        assert check_dag_against(doc, doc) == []
        wins = [w["locality_wins"] for w in doc["workloads"].values()]
        assert sum(wins) >= 2

    def test_check_refuses_cross_schema(self):
        from repro.dag.bench import check_dag_against, run_dag_bench

        doc = run_dag_bench(smoke=True)
        with pytest.raises(ValueError, match="schema"):
            check_dag_against(doc, {"schema": 99})

    def test_check_reports_charged_drift(self):
        from repro.dag.bench import check_dag_against, run_dag_bench

        doc = run_dag_bench(smoke=True)
        drifted = json.loads(json.dumps(doc))
        name = next(iter(drifted["workloads"]))
        drifted["workloads"][name]["heuristics"]["greedy"]["messages"] += 1
        problems = check_dag_against(drifted, doc)
        assert problems and "drifted" in problems[0]

    def test_checked_in_baseline_matches_the_code(self):
        import pathlib

        from repro.dag.bench import check_dag_against, run_dag_bench

        baseline_path = pathlib.Path(__file__).parent.parent / (
            "BENCH_sim_dag.json"
        )
        baseline = json.loads(baseline_path.read_text())
        fresh = run_dag_bench(smoke=True)
        assert check_dag_against(fresh, baseline) == []
