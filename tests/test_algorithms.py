"""Case-study D-BSP algorithms (Propositions 7-9): correctness and cost."""

from __future__ import annotations

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.fft import (
    bit_reverse,
    dbsp_fft_dag_time_bound,
    dbsp_fft_recursive_time_bound,
    fft_dag_program,
    fft_recursive_program,
)
from repro.algorithms.matmul import (
    dbsp_mm_time_bound,
    matmul_program,
    mm_assignment_rounds,
    morton_decode,
    morton_encode,
)
from repro.algorithms.sorting import bitonic_sort_program, dbsp_sort_time_bound
from repro.dbsp.machine import DBSPMachine
from repro.functions import ConstantAccess, LogarithmicAccess, PolynomialAccess

RAM = ConstantAccess()


class TestMorton:
    @given(st.integers(min_value=0, max_value=255))
    def test_roundtrip(self, pid):
        r, c = morton_decode(pid, 4)
        assert morton_encode(r, c, 4) == pid

    def test_quadrants_match_2clusters(self):
        # top two bits of the pid select the quadrant
        for pid in range(16):
            r, c = morton_decode(pid, 2)
            assert pid // 4 == 2 * (r // 2) + (c // 2)


class TestMatmul:
    @pytest.mark.parametrize("n", [4, 16, 64, 256])
    def test_matches_numpy(self, n):
        prog = matmul_program(n)
        res = DBSPMachine(RAM).run(prog)
        half = prog.log_v // 2
        side = 1 << half
        A = np.zeros((side, side))
        B = np.zeros((side, side))
        C = np.zeros((side, side))
        for p in range(n):
            r, c = morton_decode(p, half)
            ctx0 = prog.make_context(p)
            A[r, c], B[r, c] = ctx0["a"], ctx0["b"]
            C[r, c] = res.contexts[p]["c"]
        assert np.allclose(C, A @ B)

    def test_operands_restored(self):
        prog = matmul_program(64)
        res = DBSPMachine(RAM).run(prog)
        for p in range(64):
            ctx0 = prog.make_context(p)
            assert res.contexts[p]["a"] == ctx0["a"]
            assert res.contexts[p]["b"] == ctx0["b"]

    def test_custom_values(self):
        rng = random.Random(0)
        vals = {}

        def va(r, c):
            return vals.setdefault(("a", r, c), rng.uniform(-1, 1))

        def vb(r, c):
            return vals.setdefault(("b", r, c), rng.uniform(-1, 1))

        prog = matmul_program(16, value_a=va, value_b=vb)
        res = DBSPMachine(RAM).run(prog)
        A = np.array([[va(r, c) for c in range(4)] for r in range(4)])
        B = np.array([[vb(r, c) for c in range(4)] for r in range(4)])
        C = np.zeros((4, 4))
        for p in range(16):
            r, c = morton_decode(p, 2)
            C[r, c] = res.contexts[p]["c"]
        assert np.allclose(C, A @ B)

    def test_rejects_non_power_of_four(self):
        with pytest.raises(ValueError):
            matmul_program(8)

    def test_superstep_profile(self):
        """Theta(2^d) supersteps of label 2d (Prop 7 / §5.3)."""
        prog = matmul_program(64)  # log v = 6, depths 0..2
        counts = prog.label_counts()
        # 3 shuffles per depth-d recursion instance (2^d instances), plus
        # the closing global sync at label 0
        assert counts[0] == 3 + 1 and counts[2] == 6 and counts[4] == 12
        assert counts[6] == 8  # sqrt(n) leaf-multiply supersteps

    def test_figure3_assignment(self):
        rounds = mm_assignment_rounds()
        assert rounds[0] == {
            0: ("A11", "B11"), 1: ("A12", "B22"),
            2: ("A22", "B21"), 3: ("A21", "B12"),
        }
        assert rounds[1] == {
            0: ("A12", "B21"), 1: ("A11", "B12"),
            2: ("A21", "B11"), 3: ("A22", "B22"),
        }

    @pytest.mark.slow
    def test_proposition7_dbsp_time_shape(self):
        """Measured D-BSP time tracks the claimed bound across n."""
        for g in (PolynomialAccess(0.7), PolynomialAccess(0.5),
                  PolynomialAccess(0.3), LogarithmicAccess()):
            ratios = []
            for n in (16, 64, 256):
                t = DBSPMachine(g).run(matmul_program(n, mu=2)).total_time
                ratios.append(t / dbsp_mm_time_bound(g, n, mu=2))
            assert max(ratios) / min(ratios) < 4.0, g.name


class TestFFT:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 32, 64])
    def test_dag_matches_numpy_bit_reversed(self, n):
        prog = fft_dag_program(n)
        res = DBSPMachine(RAM).run(prog)
        x = np.array([prog.make_context(p)["x"] for p in range(n)])
        want = np.fft.fft(x)
        got = np.array(
            [res.contexts[bit_reverse(k, prog.log_v)]["x"] for k in range(n)]
        )
        assert np.allclose(got, want)

    @pytest.mark.parametrize("n", [2, 4, 8, 16, 32, 64, 128])
    def test_recursive_matches_numpy_in_order(self, n):
        prog = fft_recursive_program(n)
        res = DBSPMachine(RAM).run(prog)
        x = np.array([prog.make_context(p)["x"] for p in range(n)])
        want = np.fft.fft(x)
        got = np.array([res.contexts[k]["x"] for k in range(n)])
        assert np.allclose(got, want)

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_recursive_on_random_inputs(self, seed):
        rng = random.Random(seed)
        vals = [complex(rng.uniform(-1, 1), rng.uniform(-1, 1)) for _ in range(32)]
        prog = fft_recursive_program(32, make_value=lambda p: vals[p])
        res = DBSPMachine(RAM).run(prog)
        got = np.array([res.contexts[k]["x"] for k in range(32)])
        assert np.allclose(got, np.fft.fft(np.array(vals)))

    def test_dag_label_profile(self):
        prog = fft_dag_program(64)
        counts = prog.label_counts()
        for i in range(6):
            assert counts[i] == 1

    def test_recursive_uses_coarse_labels_rarely(self):
        prog = fft_recursive_program(256)
        counts = prog.label_counts()
        assert counts[0] == 3 + 1  # three top-level transposes + flush

    def test_bit_reverse(self):
        assert bit_reverse(0b0011, 4) == 0b1100
        assert bit_reverse(1, 3) == 4

    def test_proposition8_dbsp_time_shapes(self):
        for g, builder, bound in [
            (PolynomialAccess(0.5), fft_dag_program, dbsp_fft_dag_time_bound),
            (PolynomialAccess(0.5), fft_recursive_program,
             dbsp_fft_recursive_time_bound),
            (LogarithmicAccess(), fft_recursive_program,
             dbsp_fft_recursive_time_bound),
            (LogarithmicAccess(), fft_dag_program, dbsp_fft_dag_time_bound),
        ]:
            ratios = []
            for n in (16, 64, 256, 1024):
                t = DBSPMachine(g).run(builder(n, mu=2)).total_time
                ratios.append(t / bound(g, n, mu=2))
            assert max(ratios) / min(ratios) < 4.0, (g.name, builder.__name__)

    @pytest.mark.slow
    def test_log_x_separates_the_two_algorithms(self):
        """§5.3: on g = log x the algorithms separate asymptotically —
        Theta(log^2 n) vs Theta(log n log log n) — while on x^alpha both
        are Theta(n^alpha).

        Our recursive schedule spends three transpose supersteps per
        recursion level where the paper's counts one, so the *constant*
        keeps t_rec above t_dag at bench sizes; the Theta separation shows
        as a strictly improving ratio as n grows, and as a slope gap of
        the bound-normalized costs.
        """
        g = LogarithmicAccess()
        ratios = []
        for n in (64, 256, 1024, 4096):
            t_dag = DBSPMachine(g).run(fft_dag_program(n, mu=2)).total_time
            t_rec = DBSPMachine(g).run(fft_recursive_program(n, mu=2)).total_time
            ratios.append(t_rec / t_dag)
        assert all(b < a for a, b in zip(ratios, ratios[1:])), ratios
        # on x^alpha the two stay within a constant of each other
        a = PolynomialAccess(0.5)
        for n in (256, 4096):
            t_dag_a = DBSPMachine(a).run(fft_dag_program(n, mu=2)).total_time
            t_rec_a = DBSPMachine(a).run(fft_recursive_program(n, mu=2)).total_time
            assert 0.2 < t_dag_a / t_rec_a < 5.0


class TestBitonicSort:
    @pytest.mark.parametrize("n", [2, 4, 16, 64, 256])
    def test_sorts_default_keys(self, n):
        prog = bitonic_sort_program(n)
        res = DBSPMachine(RAM).run(prog)
        keys = [c["key"] for c in res.contexts]
        assert keys == sorted(keys)

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_sorts_random_keys(self, seed):
        rng = random.Random(seed)
        vals = [rng.randrange(100) for _ in range(32)]  # duplicates likely
        prog = bitonic_sort_program(32, make_key=lambda p: vals[p])
        res = DBSPMachine(RAM).run(prog)
        assert [c["key"] for c in res.contexts] == sorted(vals)

    def test_sorts_already_sorted_and_reversed(self):
        for vals in (list(range(16)), list(range(16, 0, -1))):
            prog = bitonic_sort_program(16, make_key=lambda p: vals[p])
            res = DBSPMachine(RAM).run(prog)
            assert [c["key"] for c in res.contexts] == sorted(vals)

    def test_label_profile(self):
        """lambda_{log n - j - 1} = log n - j compare-exchange supersteps."""
        prog = bitonic_sort_program(16)
        counts = prog.label_counts()
        assert counts[3] == 4  # j = 0 appears in all 4 stages
        assert counts[2] == 3
        assert counts[1] == 2
        # label 0: one compare-exchange (j = 3) plus the final superstep
        assert counts[0] == 2

    def test_proposition9_dbsp_time_shape(self):
        g = PolynomialAccess(0.5)
        ratios = []
        for n in (16, 64, 256, 1024):
            t = DBSPMachine(g).run(bitonic_sort_program(n, mu=2)).total_time
            ratios.append(t / dbsp_sort_time_bound(g, n, mu=2))
        assert max(ratios) / min(ratios) < 4.0

    def test_log_x_cost_is_polylog(self):
        g = LogarithmicAccess()
        n = 256
        t = DBSPMachine(g).run(bitonic_sort_program(n, mu=2)).total_time
        assert t < 40 * math.log2(n) ** 3
