"""The D-BSP -> BT simulation (Section 5, Theorem 12)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.bounds import program_stats, theorem12_bound
from repro.dbsp.machine import DBSPMachine
from repro.functions import LogarithmicAccess, PolynomialAccess
from repro.sim.bt_sim import BTSimulator
from repro.testing import random_program

from tests.conftest import program_zoo


class TestCorrectness:
    def test_zoo_matches_direct_execution(self, case_function):
        sim = BTSimulator(case_function, check_invariants=True)
        direct = DBSPMachine(case_function)
        for prog, extract in program_zoo(16):
            want = extract(direct.run(prog).contexts)
            got = extract(sim.simulate(prog).contexts)
            assert got == want, prog.name

    @given(seed=st.integers(min_value=0, max_value=300))
    @settings(max_examples=15, deadline=None)
    def test_random_programs_match(self, seed):
        f = PolynomialAccess(0.5)
        prog = random_program(16, n_steps=7, seed=seed)
        want = [c["w"] for c in DBSPMachine(f).run(prog.with_global_sync()).contexts]
        got = [c["w"] for c in BTSimulator(f).simulate(prog).contexts]
        assert got == want

    def test_mergesort_delivery_mode(self):
        f = PolynomialAccess(0.5)
        prog = random_program(16, n_steps=6, seed=5)
        want = [c["w"] for c in DBSPMachine(f).run(prog.with_global_sync()).contexts]
        got = BTSimulator(f, sort="mergesort").simulate(prog)
        assert [c["w"] for c in got.contexts] == want

    def test_unchunked_compute_ablation_mode(self):
        f = PolynomialAccess(0.5)
        prog = random_program(16, n_steps=6, seed=6)
        want = [c["w"] for c in DBSPMachine(f).run(prog.with_global_sync()).contexts]
        got = BTSimulator(f, chunked_compute=False).simulate(prog)
        assert [c["w"] for c in got.contexts] == want

    @given(
        log_v=st.integers(min_value=0, max_value=5),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=12, deadline=None)
    def test_various_machine_widths(self, log_v, seed):
        f = LogarithmicAccess()
        v = 1 << log_v
        prog = random_program(v, n_steps=5, seed=seed)
        want = [c["w"] for c in DBSPMachine(f).run(prog.with_global_sync()).contexts]
        got = [c["w"] for c in BTSimulator(f).simulate(prog).contexts]
        assert got == want


class TestLayout:
    def test_unpack0_produces_figure4_layout(self):
        """The v=8 layout of Figure 4: P0 _ P1 _ P2 P3 _ _ P4 P5 P6 P7."""
        f = PolynomialAccess(0.5)
        prog = random_program(8, n_steps=2, seed=0)
        res = BTSimulator(f, record_layout=True).simulate(prog)
        after_unpack = next(s for s in res.layout_trace if s.stage == "unpack(0)")
        assert after_unpack.slots[:16] == (
            0, None, 1, None, 2, 3, None, None, 4, 5, 6, 7,
            None, None, None, None,
        )

    def test_layout_snapshots_preserve_processors(self):
        f = PolynomialAccess(0.5)
        prog = random_program(8, n_steps=4, seed=1)
        res = BTSimulator(f, record_layout=True).simulate(prog)
        for snap in res.layout_trace:
            pids = [p for p in snap.slots if p is not None]
            assert sorted(pids) == list(range(8)), snap.stage

    def test_block_transfers_counted(self):
        f = PolynomialAccess(0.5)
        prog = random_program(8, n_steps=4, seed=2)
        res = BTSimulator(f).simulate(prog)
        assert res.block_transfers > 0


class TestCost:
    def test_theorem12_bound_holds(self):
        for f in (PolynomialAccess(0.5), LogarithmicAccess()):
            ratios = []
            for log_v in (3, 4, 5):
                v = 1 << log_v
                prog = random_program(v, n_steps=6, seed=9)
                stats = DBSPMachine(f).run(prog.with_global_sync())
                tau, lambdas = program_stats(stats)
                bound = theorem12_bound(v, prog.mu, tau, lambdas)
                res = BTSimulator(f).simulate(prog)
                ratios.append(res.time / bound)
            assert max(ratios) < 60.0, f.name
            assert max(ratios) / min(ratios) < 4.0, f.name

    def test_cost_nearly_independent_of_f(self):
        """Theorem 12's hallmark: the bound does not mention f."""
        prog = random_program(32, n_steps=6, seed=10)
        times = []
        for f in (PolynomialAccess(0.3), PolynomialAccess(0.5),
                  LogarithmicAccess()):
            times.append(BTSimulator(f).simulate(prog).time)
        assert max(times) / min(times) < 2.5

    def test_chunked_compute_beats_direct_on_deep_clusters(self):
        """The Fig. 6 ablation: COMPUTE's chunking pays off."""
        f = PolynomialAccess(0.5)
        prog = random_program(64, labels=[0] * 4, seed=3)
        chunked = BTSimulator(f).simulate(prog).time
        direct = BTSimulator(f, chunked_compute=False).simulate(prog).time
        assert chunked < direct

    def test_single_processor_machine(self):
        f = PolynomialAccess(0.5)
        prog = random_program(1, n_steps=3, seed=0)
        res = BTSimulator(f).simulate(prog)
        want = [c["w"] for c in DBSPMachine(f).run(prog.with_global_sync()).contexts]
        assert [c["w"] for c in res.contexts] == want
