"""L-smoothness (Definition 3), label sets, and the smoothing transformation."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dbsp.machine import DBSPMachine
from repro.dbsp.program import Program, Superstep
from repro.functions import ConstantAccess, LogarithmicAccess, PolynomialAccess
from repro.sim.smoothing import (
    build_label_set_bt,
    build_label_set_hmm,
    is_l_smooth,
    smooth_program,
)
from repro.testing import random_program


class TestLabelSetHMM:
    def test_spans_zero_to_log_v(self):
        for f in (PolynomialAccess(0.5), LogarithmicAccess()):
            L = build_label_set_hmm(f, 256, 8)
            assert L[0] == 0 and L[-1] == 8
            assert L == sorted(set(L))

    def test_costs_drop_geometrically(self):
        f = PolynomialAccess(0.5)
        mu, v, c2 = 4, 1 << 10, 0.5
        L = build_label_set_hmm(f, v, mu, c2)
        for a, b in zip(L, L[1:-1]):
            # interior steps satisfy the c2 drop by construction
            assert f(mu * (v >> b)) <= c2 * f(mu * (v >> a)) + 1e-9

    def test_polynomial_halving_step(self):
        # f = x^0.5 halves when the argument drops 4x: steps of 2 levels
        L = build_label_set_hmm(PolynomialAccess(0.5), 1 << 8, 1)
        assert all(b - a >= 2 for a, b in zip(L, L[1:-1]))

    def test_constant_function_degenerates(self):
        # f never drops: L = {0, log v}
        assert build_label_set_hmm(ConstantAccess(), 64, 8) == [0, 6]

    def test_bad_c2_rejected(self):
        with pytest.raises(ValueError):
            build_label_set_hmm(PolynomialAccess(0.5), 16, 1, c2=1.0)

    def test_v_one(self):
        assert build_label_set_hmm(PolynomialAccess(0.5), 1, 4) == [0]


class TestLabelSetBT:
    def test_spans_and_monotone(self):
        for f in (PolynomialAccess(0.5), LogarithmicAccess()):
            L = build_label_set_bt(f, 1 << 10, 8)
            assert L[0] == 0 and L[-1] == 10
            assert L == sorted(set(L))

    def test_log_drop_property(self):
        mu, v, c2, d1 = 8, 1 << 12, 0.75, 2.0
        L = build_label_set_bt(PolynomialAccess(0.5), v, mu, c2, d1)
        for a, b in zip(L, L[1:-1]):
            assert math.log2(d1 * mu * (v >> b)) <= c2 * math.log2(
                d1 * mu * (v >> a)
            ) + 1e-9

    def test_property_c_for_case_functions(self):
        """f(mu v / 2^{l_i}) <= d2 * mu v / 2^{l_{i+1}} (needed by Fig. 7)."""
        mu, v = 8, 1 << 12
        for f in (PolynomialAccess(0.5), LogarithmicAccess()):
            L = build_label_set_bt(f, v, mu)
            for a, b in zip(L, L[1:]):
                assert f(mu * (v >> a)) <= 16 * mu * (v >> b)

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            build_label_set_bt(PolynomialAccess(0.5), 16, 1, c2=0.0)
        with pytest.raises(ValueError):
            build_label_set_bt(PolynomialAccess(0.5), 16, 1, d1=1.0)


class TestIsLSmooth:
    def test_accepts_valid(self):
        assert is_l_smooth([0, 2, 4, 2, 0], [0, 2, 4])

    def test_rejects_label_outside_set(self):
        assert not is_l_smooth([0, 3], [0, 2, 4])

    def test_rejects_steep_descent(self):
        assert not is_l_smooth([4, 0], [0, 2, 4])

    def test_ascents_unconstrained(self):
        assert is_l_smooth([0, 4], [0, 2, 4])


class TestSmoothProgram:
    def noop_program(self, labels, v=16):
        steps = [Superstep(lab, lambda view: None) for lab in labels]
        return Program(v, 4, steps)

    def test_upgrades_to_largest_not_greater(self):
        prog = self.noop_program([3, 2, 1])
        sm = smooth_program(prog, [0, 2, 4])
        # 3 -> 2, 2 -> 2, 1 -> 0, then the appended global sync (0)
        real = [s.label for s, o in zip(sm.program.supersteps, sm.origin)
                if o is not None]
        assert real == [2, 2, 0, 0]

    def test_inserts_dummies_on_steep_descents(self):
        prog = self.noop_program([4, 0])
        sm = smooth_program(prog, [0, 2, 4])
        assert sm.program.labels() == [4, 2, 0]
        assert sm.origin == [0, None, 1]
        assert sm.n_dummies == 1
        assert sm.program.supersteps[1].is_dummy

    def test_result_is_l_smooth(self):
        prog = self.noop_program([4, 3, 4, 1, 2, 4, 0])
        sm = smooth_program(prog, [0, 2, 4])
        assert is_l_smooth(sm.program.labels(), sm.label_set)

    def test_appends_global_sync(self):
        prog = self.noop_program([4])
        sm = smooth_program(prog, [0, 2, 4])
        assert sm.program.ends_with_global_sync()

    def test_bad_label_set_rejected(self):
        prog = self.noop_program([0])
        with pytest.raises(ValueError):
            smooth_program(prog, [0, 2])  # does not span to log v
        with pytest.raises(ValueError):
            smooth_program(prog, [1, 4])
        with pytest.raises(ValueError):
            smooth_program(prog, [0, 3, 3, 4])

    @given(seed=st.integers(min_value=0, max_value=400))
    @settings(max_examples=30, deadline=None)
    def test_semantics_preserved(self, seed):
        """Running the smoothed program directly gives identical contexts."""
        prog = random_program(16, n_steps=8, seed=seed)
        machine = DBSPMachine(ConstantAccess())
        base = machine.run(prog.with_global_sync())
        for L in ([0, 2, 4], [0, 1, 2, 3, 4], [0, 4]):
            sm = smooth_program(prog, L)
            got = machine.run(sm.program)
            assert [c["w"] for c in got.contexts] == [
                c["w"] for c in base.contexts
            ]

    @given(seed=st.integers(min_value=0, max_value=400))
    @settings(max_examples=20, deadline=None)
    def test_smooth_output_is_l_smooth(self, seed):
        prog = random_program(32, n_steps=12, seed=seed)
        L = build_label_set_hmm(PolynomialAccess(0.5), 32, prog.mu)
        sm = smooth_program(prog, L)
        assert is_l_smooth(sm.program.labels(), L)
