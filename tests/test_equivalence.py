"""The central correctness property of the reproduction.

One D-BSP program, four engines — the direct executor (ground truth), the
HMM simulation (§3), the BT simulation (§5) and the Brent self-simulation
(§4) — must produce *identical* final contexts.  Any scheduling error in a
simulator (wrong cluster order, lost or early message, bad swap
bookkeeping) shows up here.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dbsp.machine import DBSPMachine
from repro.functions import (
    ConstantAccess,
    LinearAccess,
    LogarithmicAccess,
    PolynomialAccess,
)
from repro.sim.brent import BrentSimulator
from repro.sim.bt_sim import BTSimulator
from repro.sim.hmm_sim import HMMSimulator
from repro.testing import random_program

from tests.conftest import program_zoo


def run_all_engines(prog, f, v_host=4):
    direct = DBSPMachine(f).run(prog.with_global_sync())
    hmm = HMMSimulator(f, check_invariants="full").simulate(prog)
    bt = BTSimulator(f, check_invariants=True).simulate(prog)
    brent = BrentSimulator(f, v_host=min(v_host, prog.v)).simulate(prog)
    return direct.contexts, hmm.contexts, bt.contexts, brent.contexts


class TestAllEnginesAgree:
    def test_program_zoo(self, case_function):
        for prog, extract in program_zoo(16):
            d, h, b, br = run_all_engines(prog, case_function)
            assert extract(h) == extract(d), f"HMM vs direct: {prog.name}"
            assert extract(b) == extract(d), f"BT vs direct: {prog.name}"
            assert extract(br) == extract(d), f"Brent vs direct: {prog.name}"

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        log_v=st.integers(min_value=1, max_value=5),
        n_steps=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_programs(self, seed, log_v, n_steps):
        f = PolynomialAccess(0.5)
        prog = random_program(1 << log_v, n_steps=n_steps, seed=seed)
        d, h, b, br = run_all_engines(prog, f, v_host=1 << (log_v // 2))
        key = lambda cs: [c["w"] for c in cs]
        assert key(h) == key(d)
        assert key(b) == key(d)
        assert key(br) == key(d)

    @pytest.mark.parametrize(
        "f",
        [ConstantAccess(), LinearAccess(), PolynomialAccess(0.2),
         PolynomialAccess(0.45), LogarithmicAccess()],
        ids=lambda f: f.name,
    )
    def test_extreme_access_functions(self, f):
        prog = random_program(16, n_steps=8, seed=42)
        d, h, b, br = run_all_engines(prog, f)
        key = lambda cs: [c["w"] for c in cs]
        assert key(h) == key(d) and key(b) == key(d) and key(br) == key(d)

    @given(bias=st.sampled_from(["uniform", "fine", "coarse"]),
           seed=st.integers(min_value=0, max_value=100))
    @settings(max_examples=15, deadline=None)
    def test_label_profiles(self, bias, seed):
        from repro.testing import random_label_sequence

        f = LogarithmicAccess()
        labels = random_label_sequence(16, 8, seed=seed, bias=bias)
        prog = random_program(16, labels=labels, seed=seed)
        d, h, b, br = run_all_engines(prog, f)
        key = lambda cs: [c["w"] for c in cs]
        assert key(h) == key(d) and key(b) == key(d) and key(br) == key(d)

    def test_heavier_local_work(self):
        f = PolynomialAccess(0.5)
        prog = random_program(16, n_steps=6, seed=77, local_work=20)
        d, h, b, br = run_all_engines(prog, f)
        key = lambda cs: [c["w"] for c in cs]
        assert key(h) == key(d) and key(b) == key(d) and key(br) == key(d)
