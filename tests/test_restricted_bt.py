"""The restricted BT machine (§2's feasibility remark)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bt.machine import BTMachine
from repro.bt.restricted import RestrictedBTMachine
from repro.functions import LogarithmicAccess, PolynomialAccess


class TestRestrictedTransfers:
    def test_legal_transfer_costs_one_latency(self):
        f = PolynomialAccess(0.5)
        m = RestrictedBTMachine(f, 1 << 12)
        # at address ~4000, f ~ 63: a 32-cell transfer is legal
        cost = m.block_copy_cost(4000, 100, 32)
        assert cost == pytest.approx(f(4031))

    def test_overlong_transfer_rejected(self):
        m = RestrictedBTMachine(PolynomialAccess(0.5), 1 << 12)
        with pytest.raises(ValueError, match="exceeds the f-cap"):
            m.block_copy_cost(100, 2000, 512)

    def test_long_move_moves_the_data(self):
        m = RestrictedBTMachine(LogarithmicAccess(), 1 << 12)
        m.mem[1000:1200] = list(range(200))
        m.long_move(1000, 3000, 200)
        assert m.mem[3000:3200] == list(range(200))

    @given(
        length=st.integers(min_value=1, max_value=2000),
        alpha=st.sampled_from([0.3, 0.5, 0.7]),
    )
    @settings(max_examples=40, deadline=None)
    def test_constant_slowdown_vs_unrestricted(self, length, alpha):
        """The §2 claim: emulating an arbitrary transfer with capped
        pieces costs only a constant factor more."""
        f = PolynomialAccess(alpha)
        size = 1 << 14
        src, dst = 4096, 9000
        restricted = RestrictedBTMachine(f, size)
        cost_r = restricted.long_move(src, dst, length)
        full = BTMachine(f, size)
        cost_u = full.block_copy_cost(src, dst, length)
        assert cost_r >= cost_u * 0.49  # can't beat the real machine
        assert cost_r <= 8.0 * cost_u  # constant slowdown

    def test_slowdown_flat_across_scales(self):
        f = LogarithmicAccess()
        ratios = []
        for k in (10, 14, 18):
            size = 1 << (k + 1)
            restricted = RestrictedBTMachine(f, size)
            length = 1 << (k - 1)
            cost_r = restricted.long_move(0, 1 << k, length)
            cost_u = BTMachine(f, size).block_copy_cost(0, 1 << k, length)
            ratios.append(cost_r / cost_u)
        assert max(ratios) / min(ratios) < 3.0
        assert max(ratios) < 10.0

    def test_piece_count_is_about_length_over_f(self):
        f = PolynomialAccess(0.5)
        m = RestrictedBTMachine(f, 1 << 14)
        length = 1 << 10
        m.long_move(8192, 4096, length)
        expected = length / f(8192)
        assert m.block_transfers <= 3 * expected + 10
