"""The EM machine and the flat BSP-on-EM baseline."""

from __future__ import annotations

import pytest

from repro.dbsp.machine import DBSPMachine
from repro.em.machine import EMMachine
from repro.em.simulation import FlatBSPOnEMSimulator
from repro.functions import ConstantAccess
from repro.testing import random_label_sequence, random_program

from tests.conftest import program_zoo


class TestEMMachine:
    def test_load_counts_one_io(self):
        m = EMMachine(M=64, B=16, disk_blocks=8)
        m.load(3)
        assert m.io_count == 1

    def test_resident_blocks_are_free(self):
        m = EMMachine(M=64, B=16, disk_blocks=8)
        m.load(3)
        m.load(3)
        assert m.io_count == 1

    def test_capacity_eviction_lru(self):
        m = EMMachine(M=32, B=16, disk_blocks=8)  # 2 frames
        m.load(0)
        m.load(1)
        m.load(2)  # evicts 0
        assert m.io_count == 3
        m.load(1)  # still resident
        assert m.io_count == 3
        m.load(0)  # was evicted: new I/O
        assert m.io_count == 4

    def test_store_roundtrip(self):
        m = EMMachine(M=64, B=4, disk_blocks=4)
        frame = m.load(2)
        frame[0] = "x"
        m.store(2)
        m.evict_all()
        assert m.load(2)[0] == "x"
        assert m.io_count == 3

    def test_store_requires_resident_or_data(self):
        m = EMMachine(M=64, B=4, disk_blocks=4)
        with pytest.raises(KeyError):
            m.store(1)
        m.store(1, ["a", "b", "c", "d"])
        with pytest.raises(ValueError):
            m.store(1, ["too-short"])

    def test_bounds(self):
        m = EMMachine(M=64, B=16, disk_blocks=2)
        with pytest.raises(IndexError):
            m.load(2)
        with pytest.raises(ValueError):
            EMMachine(M=8, B=16, disk_blocks=1)


class TestFlatSimulation:
    def test_zoo_matches_direct_execution(self):
        sim = FlatBSPOnEMSimulator(M=128, B=8)
        direct = DBSPMachine(ConstantAccess())
        for prog, extract in program_zoo(16):
            want = extract(direct.run(prog.with_global_sync()).contexts)
            got = extract(sim.simulate(prog).contexts)
            assert got == want, prog.name

    def test_io_scales_with_contexts(self):
        ios = []
        for v in (16, 64, 256):
            prog = random_program(v, n_steps=6, seed=1)
            ios.append(FlatBSPOnEMSimulator(M=128, B=8)
                       .simulate(prog).io_count)
        assert ios[1] > 2 * ios[0]
        assert ios[2] > 2 * ios[1]

    def test_label_oblivious(self):
        """The flat baseline's defining limitation: identical I/O cost for
        submachine-local and global programs of the same size."""
        v = 64
        fine = random_label_sequence(v, 8, seed=2, bias="fine")
        coarse = [0] * 8
        sim = FlatBSPOnEMSimulator(M=128, B=8)
        io_fine = sim.simulate(random_program(v, labels=fine, seed=2)).io_count
        io_coarse = sim.simulate(
            random_program(v, labels=coarse, seed=2)).io_count
        assert io_fine == io_coarse

    def test_dummy_supersteps_cost_nothing(self):
        from repro.dbsp.program import DUMMY, Program, Superstep

        prog = Program(8, 4, [Superstep(0, DUMMY)])
        res = FlatBSPOnEMSimulator(M=64, B=8).simulate(prog)
        assert res.io_count == 0

    def test_superstep_ios_recorded(self):
        prog = random_program(16, n_steps=4, seed=3)
        res = FlatBSPOnEMSimulator(M=128, B=8).simulate(prog)
        assert len(res.superstep_ios) == len(prog.with_global_sync().supersteps)
        assert sum(res.superstep_ios) == res.io_count
