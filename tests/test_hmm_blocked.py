"""The hierarchy-aware blocked matmul (native [1]-style upper bound)."""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro.functions import LogarithmicAccess, PolynomialAccess
from repro.hmm.blocked import hmm_blocked_matmul
from repro.hmm.flat import hmm_flat_matmul
from repro.hmm.machine import HMMMachine


def run_blocked(side, f=PolynomialAccess(0.5), seed=0):
    s = side * side
    rng = random.Random(seed)
    machine = HMMMachine(f, 6 * s)
    machine.mem[3 * s : 4 * s] = [rng.uniform(-1, 1) for _ in range(s)]
    machine.mem[4 * s : 5 * s] = [rng.uniform(-1, 1) for _ in range(s)]
    cost = hmm_blocked_matmul(machine, side)
    A = np.array(machine.mem[3 * s : 4 * s]).reshape(side, side)
    B = np.array(machine.mem[4 * s : 5 * s]).reshape(side, side)
    C = np.array(machine.mem[5 * s : 6 * s]).reshape(side, side)
    return A, B, C, cost


class TestBlockedMatmul:
    @pytest.mark.parametrize("side", [1, 2, 4, 8, 16, 32])
    def test_matches_numpy(self, side):
        A, B, C, _ = run_blocked(side, seed=side)
        assert np.allclose(C, A @ B)

    def test_memory_requirement(self):
        with pytest.raises(ValueError):
            hmm_blocked_matmul(HMMMachine(PolynomialAccess(0.5), 100), 8)

    @pytest.mark.parametrize(
        "alpha,bound",
        [
            (0.7, lambda s: s**1.7),
            (0.5, lambda s: s**1.5 * math.log2(s)),
            (0.3, lambda s: s**1.5),
        ],
    )
    def test_cost_matches_prop7_reference_shape(self, alpha, bound):
        """The recursion hits [1]'s Theta for each alpha regime (slowly
        converging geometric sums leave a <2x residual drift)."""
        f = PolynomialAccess(alpha)
        ratios = []
        for side in (8, 16, 32, 64):
            _, _, _, cost = run_blocked(side, f)
            ratios.append(cost / bound(side * side))
        assert max(ratios) / min(ratios) < 2.0

    def test_beats_flat_loop_asymptotically(self):
        """flat/blocked = Theta(sqrt(s)/log s): the ratio must grow."""
        f = PolynomialAccess(0.5)
        gaps = []
        for side in (8, 16, 32, 64):
            _, _, _, blocked = run_blocked(side, f)
            s = side * side
            machine = HMMMachine(f, 3 * s)
            machine.mem[: 2 * s] = [1.0] * (2 * s)
            flat = hmm_flat_matmul(machine, side)
            gaps.append(flat / blocked)
        assert all(b > a for a, b in zip(gaps, gaps[1:])), gaps

    def test_works_on_log_access(self):
        A, B, C, cost = run_blocked(16, LogarithmicAccess())
        assert np.allclose(C, A @ B)
        assert cost > 0
