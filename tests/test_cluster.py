"""The D-BSP decomposition tree."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dbsp.cluster import (
    ClusterTree,
    cluster_of,
    cluster_range,
    cluster_size,
    is_power_of_two,
    log2_exact,
    same_cluster,
)

log_vs = st.integers(min_value=0, max_value=8)


class TestHelpers:
    def test_power_of_two(self):
        assert is_power_of_two(1) and is_power_of_two(64)
        assert not is_power_of_two(0)
        assert not is_power_of_two(12)
        assert not is_power_of_two(-4)

    def test_log2_exact(self):
        assert log2_exact(1) == 0
        assert log2_exact(256) == 8
        with pytest.raises(ValueError):
            log2_exact(6)

    def test_cluster_size_and_range(self):
        assert cluster_size(16, 0) == 16
        assert cluster_size(16, 4) == 1
        assert cluster_range(16, 2, 3) == (12, 16)

    def test_cluster_of(self):
        assert cluster_of(5, 16, 2) == 1
        assert cluster_of(5, 16, 4) == 5
        assert cluster_of(5, 16, 0) == 0

    def test_same_cluster(self):
        assert same_cluster(0, 15, 16, 0)
        assert not same_cluster(0, 15, 16, 1)
        assert same_cluster(4, 7, 16, 2)


class TestClusterTree:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            ClusterTree(12)

    def test_levels_and_counts(self):
        tree = ClusterTree(8)
        assert list(tree.levels()) == [0, 1, 2, 3]
        assert tree.n_clusters(0) == 1
        assert tree.n_clusters(3) == 8
        assert tree.size(1) == 4

    def test_members(self):
        tree = ClusterTree(8)
        assert list(tree.members(1, 1)) == [4, 5, 6, 7]
        assert list(tree.members(3, 5)) == [5]

    def test_children_partition_parent(self):
        tree = ClusterTree(16)
        for i in range(4):
            for j in range(1 << i):
                (ia, ja), (ib, jb) = tree.children(i, j)
                merged = list(tree.members(ia, ja)) + list(tree.members(ib, jb))
                assert merged == list(tree.members(i, j))

    def test_parent_inverts_children(self):
        tree = ClusterTree(16)
        for i in range(1, 5):
            for j in range(1 << i):
                pi, pj = tree.parent(i, j)
                assert (i, j) in tree.children(pi, pj)

    def test_leaves_have_no_children(self):
        tree = ClusterTree(4)
        with pytest.raises(ValueError):
            tree.children(2, 0)

    def test_root_has_no_parent(self):
        with pytest.raises(ValueError):
            ClusterTree(4).parent(0, 0)

    def test_bad_level_and_pid(self):
        tree = ClusterTree(4)
        with pytest.raises(ValueError):
            tree.size(3)
        with pytest.raises(ValueError):
            tree.cluster_of(4, 0)
        with pytest.raises(ValueError):
            tree.members(1, 2)

    @given(log_v=log_vs, data=st.data())
    @settings(max_examples=60)
    def test_cluster_of_consistent_with_members(self, log_v, data):
        v = 1 << log_v
        tree = ClusterTree(v)
        i = data.draw(st.integers(min_value=0, max_value=log_v))
        pid = data.draw(st.integers(min_value=0, max_value=v - 1))
        j = tree.cluster_of(pid, i)
        assert pid in tree.members(i, j)

    @given(log_v=log_vs, data=st.data())
    @settings(max_examples=60)
    def test_same_cluster_is_equivalence_at_each_level(self, log_v, data):
        v = 1 << log_v
        i = data.draw(st.integers(min_value=0, max_value=log_v))
        p = data.draw(st.integers(min_value=0, max_value=v - 1))
        q = data.draw(st.integers(min_value=0, max_value=v - 1))
        assert same_cluster(p, p, v, i)
        assert same_cluster(p, q, v, i) == same_cluster(q, p, v, i)
        # refinement: same at level i+1 implies same at level i
        if i < log_v and same_cluster(p, q, v, i + 1):
            assert same_cluster(p, q, v, i)
