"""DAG requests through the service tier.

A ``{"kind": "dag", ...}`` body is a first-class citizen of ``/v1/run``:
content-addressed by the same ``cell_key`` machinery (the canonical spec
string is part of the key, so byte-identical DAGs hit the cache across
submitters), computed by the ``run-dag`` worker task, and planned with
honest *untrusted* error bars — DAG program names never appear in a
calibration profile, so the planner must fall back to the structural
bound instead of pretending to a calibrated prediction.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.predict import (
    UNTRUSTED_BAND,
    CalibrationProfile,
    CostModel,
    calibrate_profile,
)
from repro.dag.service import DagRunRequest
from repro.service.planner import Planner
from repro.service.scheduler import parse_run_request
from repro.service.server import SimService

BODY = {
    "kind": "dag",
    "workload": "stream-scan",
    "params": {"epochs": 2, "partitions": 8, "chunk": 4},
    "engine": "vec",
    "heuristic": "locality",
    "v": 8,
}


@pytest.fixture(scope="module")
def planner_model():
    profile = calibrate_profile(
        engines=("vec", "direct"), programs=("sort",), v_grid=(8, 16),
        repeats=1,
    )
    return CostModel(CalibrationProfile(profile))


class TestParsing:
    def test_kind_dispatch(self):
        req = parse_run_request(BODY)
        assert isinstance(req, DagRunRequest)
        assert req.program == "dag:stream-scan[e2,p8,c4]/locality"
        assert req.task_kind == "run-dag"

    def test_sim_requests_still_parse_with_and_without_kind(self):
        plain = parse_run_request({"engine": "vec", "program": "sort",
                                   "v": 8})
        tagged = parse_run_request({"kind": "sim", "engine": "vec",
                                    "program": "sort", "v": 8})
        assert plain.key() == tagged.key()

    def test_unknown_kind_refused(self):
        with pytest.raises(ValueError, match="expected 'sim' or 'dag'"):
            parse_run_request({"kind": "weird"})

    def test_exactly_one_of_spec_or_workload(self):
        with pytest.raises(ValueError, match="exactly one"):
            parse_run_request({"kind": "dag", "v": 8})
        inline = {"schema": 1, "name": "t",
                  "tasks": [{"id": "a"}], "edges": []}
        with pytest.raises(ValueError, match="exactly one"):
            parse_run_request({"kind": "dag", "workload": "stream-scan",
                               "spec": inline})
        with pytest.raises(ValueError, match="params"):
            parse_run_request({"kind": "dag", "spec": inline,
                               "params": {"epochs": 2}})

    def test_unknown_fields_and_workloads_refused(self):
        with pytest.raises(ValueError, match="unknown"):
            parse_run_request(dict(BODY, bogus=1))
        with pytest.raises(ValueError, match="stream-"):
            parse_run_request(dict(BODY, workload="nope"))

    def test_key_is_content_addressed(self):
        base = parse_run_request(BODY).key()
        assert parse_run_request(dict(BODY)).key() == base
        assert parse_run_request(
            dict(BODY, heuristic="greedy")
        ).key() != base
        assert parse_run_request(dict(BODY, engine="direct")).key() != base
        # an inline spec identical to the expanded workload shares the key
        spec_doc = json.loads(parse_run_request(BODY).spec_json)
        inline = parse_run_request({
            "kind": "dag", "spec": spec_doc, "engine": "vec",
            "heuristic": "locality", "v": 8,
        })
        assert inline.key() == base

    def test_round_trip(self):
        req = parse_run_request(BODY)
        again = DagRunRequest.from_json(req.to_json())
        assert again.key() == req.key()


class TestService:
    def test_run_then_cache_hit(self):
        svc = SimService()
        first = svc.handle_run(BODY)
        second = svc.handle_run(BODY)
        assert first["served"] == "computed"
        assert second["served"] == "cached"
        assert second["result"] == first["result"]
        assert second["key"] == first["key"]

    def test_vec_hmm_charged_identity_through_the_service(self):
        svc = SimService()
        vec = svc.handle_run(BODY)
        hmm = svc.handle_run(dict(BODY, engine="hmm"))
        assert vec["result"]["time"] == hmm["result"]["time"]
        assert vec["result"]["counters"] == hmm["result"]["counters"]

    def test_mixed_kind_batch(self):
        svc = SimService()
        doc = svc.handle_batch({"requests": [
            BODY,
            {"engine": "direct", "program": "reduce", "v": 8},
        ]})
        assert [r["served"] for r in doc["results"]] == [
            "computed", "computed",
        ]

    def test_worker_pool_path_matches_inline(self):
        inline = SimService().handle_run(BODY)
        pooled = SimService(jobs=2).handle_run(BODY)
        assert pooled["result"] == inline["result"]

    def test_metrics_carry_the_plan_cache(self):
        svc = SimService()
        svc.handle_run(BODY)
        kernel = svc.metrics()["kernel"]["plan_cache"]
        assert set(kernel) == {"size", "max", "hits", "misses",
                               "evictions"}
        assert kernel["misses"] >= 1

    def test_plan_cache_hits_accumulate(self):
        # drive the kernel directly, serially (parallel=1), so the plan
        # cache under observation is this process's own — under
        # REPRO_JOBS>1 the service computes in workers, whose caches
        # are invisible here
        from repro.dag.compile import dag_program
        from repro.dag.spec import DagSpec
        from repro.engines import ENGINES, resolve_access_function
        from repro.sim.hmm_vec import plan_cache_info

        req = parse_run_request(BODY)
        program = dag_program(
            DagSpec.from_json(json.loads(req.spec_json)), v=8, mu=8,
            heuristic="locality",
        )
        f = resolve_access_function("x^0.5")
        ENGINES["vec"].run(program, f, parallel=1)
        before = plan_cache_info()["hits"]
        ENGINES["vec"].run(program, f, parallel=1)
        assert plan_cache_info()["hits"] > before


class TestPlanner:
    def test_dag_predictions_are_honest_bounds(self, planner_model):
        svc = SimService(planner=Planner(planner_model))
        doc = svc.handle_plan(BODY)
        prediction = doc["prediction"]
        assert prediction["source"] == "bounds_only"
        assert prediction["trusted"] is False
        point = prediction["charged_words"]
        assert prediction["charged_words_lo"] == pytest.approx(
            point / UNTRUSTED_BAND
        )
        assert prediction["charged_words_hi"] == pytest.approx(
            point * UNTRUSTED_BAND
        )

    def test_auto_engine_resolves_for_dag_requests(self, planner_model):
        svc = SimService(planner=Planner(planner_model))
        doc = svc.handle_plan(dict(BODY, engine="auto"))
        assert doc["plan"]["engine"] in ("vec", "direct")
        assert doc["plan"]["engine_chosen"] is True

    def test_admitted_dag_runs_compute(self, planner_model):
        svc = SimService(planner=Planner(planner_model))
        doc = svc.handle_run(BODY)
        assert doc["served"] == "computed"
