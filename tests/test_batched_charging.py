"""Batched charging must be bit-identical to scalar charging.

The vectorized cost kernels (``CostTable.access_many`` / ``fold_access``,
``HMMMachine.touch_addresses``) exist purely as wall-clock optimizations:
every charged total they produce must equal — to the last ulp — the value
the scalar ``read``/``access`` loop would have produced, and every
counter must advance by the same amount.  These tests pin that down
across the access-function zoo with randomized address batches, plus the
large-table numpy path and the vectorization-fallback warning.
"""

from __future__ import annotations

import random
import warnings

import numpy as np
import pytest

from repro.functions import (
    AccessFunction,
    ConstantAccess,
    CostTable,
    LinearAccess,
    LogarithmicAccess,
    PolynomialAccess,
    StaircaseAccess,
    VectorizationWarning,
)
from repro.functions import _SCALAR_LIST_MAX
from repro.hmm.machine import HMMMachine

FUNCTIONS = [
    PolynomialAccess(0.5),
    PolynomialAccess(0.25),
    LogarithmicAccess(),
    StaircaseAccess(),
    LinearAccess(),
    ConstantAccess(),
]

IDS = [f.name for f in FUNCTIONS]


def _random_batches(size: int, seed: int) -> list[list[int]]:
    rng = random.Random(seed)
    batches = [
        [],  # empty batch: charging must be a no-op on time
        [0],
        [size - 1],
        [rng.randrange(size) for _ in range(37)],  # repeats allowed
        sorted(rng.randrange(size) for _ in range(64)),
        [size - 1 - rng.randrange(size // 2) for _ in range(51)],
    ]
    return batches


class TestFoldAccessEqualsScalarLoop:
    @pytest.mark.parametrize("f", FUNCTIONS, ids=IDS)
    def test_fold_matches_scalar_fold(self, f: AccessFunction):
        size = 1 << 10
        table = CostTable.shared(f, size)
        t = 7.25  # arbitrary non-trivial starting clock
        for xs in _random_batches(size, seed=hash(f.name) & 0xFFFF):
            expected = t
            for x in xs:
                expected += table.access(x)
            got = table.fold_access(t, xs)
            assert got == expected  # bitwise, not approx
            t = got  # chain: later batches start from earlier sums

    @pytest.mark.parametrize("f", FUNCTIONS, ids=IDS)
    def test_access_many_matches_access(self, f: AccessFunction):
        size = 1 << 10
        table = CostTable.shared(f, size)
        xs = _random_batches(size, seed=1234)[3]
        many = table.access_many(xs)
        assert many.dtype == np.float64
        for x, cost in zip(xs, many):
            assert cost == table.access(x)

    def test_ndarray_input_takes_numpy_path_identically(self):
        table = CostTable.shared(PolynomialAccess(0.5), 1 << 10)
        xs = [3, 9, 511, 511, 17, 0]
        assert table.fold_access(1.5, np.asarray(xs)) == table.fold_access(
            1.5, xs
        )

    def test_large_table_numpy_path_matches_scalar(self):
        # tables beyond _SCALAR_LIST_MAX drop the Python mirrors and all
        # folds run through the cumsum path — still bit-identical
        size = _SCALAR_LIST_MAX + 2
        table = CostTable(PolynomialAccess(0.5), size)
        assert table._cost_list is None
        rng = random.Random(99)
        xs = [rng.randrange(size) for _ in range(41)]
        expected = 2.0
        for x in xs:
            expected += table.access(x)
        assert table.fold_access(2.0, xs) == expected

    def test_bounds_are_validated_batchwise(self):
        table = CostTable.shared(PolynomialAccess(0.5), 64)
        with pytest.raises(IndexError):
            table.fold_access(0.0, [1, 2, 64])
        with pytest.raises(IndexError):
            table.fold_access(0.0, [-1])
        with pytest.raises(IndexError):
            table.access_many([0, 70])


class TestTouchAddressesEqualsScalarReads:
    @pytest.mark.parametrize("f", FUNCTIONS, ids=IDS)
    def test_machine_time_and_counters_match(self, f: AccessFunction):
        size = 512
        rng = random.Random(7)
        xs = [rng.randrange(size) for _ in range(100)]

        scalar = HMMMachine(f, size)
        for x in xs:
            scalar.read(x)

        batched = HMMMachine(f, size)
        batched.touch_addresses(xs)

        assert batched.time == scalar.time  # bitwise
        assert batched.counters.snapshot() == scalar.counters.snapshot()

    def test_empty_batch_is_a_noop_on_time(self):
        machine = HMMMachine(PolynomialAccess(0.5), 64)
        before = machine.time
        machine.touch_addresses([])
        assert machine.time == before


class TestVectorizationFallback:
    def test_unvectorized_function_warns_but_is_correct(self):
        class Sqrtish(AccessFunction):
            name = "sqrtish"

            def __call__(self, x: float) -> float:
                return (x + 1.0) ** 0.5

        with pytest.warns(VectorizationWarning, match="evaluate"):
            table = CostTable(Sqrtish(), 256)
        vectorized = CostTable(PolynomialAccess(0.5), 256)
        # frompyfunc fallback evaluates the same scalar expression:
        # identical table contents, just slower to build
        for x in (0, 1, 17, 255):
            assert table.access(x) == vectorized.access(x)

    def test_builtin_functions_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", VectorizationWarning)
            for f in FUNCTIONS:
                CostTable(f, 128)
