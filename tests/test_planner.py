"""Planner subsystem tests: calibration profile, cost model, admission.

The load-bearing contract is the documented prediction contract
(``docs/planner.md``): every prediction carries ``lo <= point <= hi``
error bars that actually contain the measured charged cost — on the
calibrated grid *and* extrapolated beyond it — and cost-aware admission
charges predicted cost against per-tenant budgets and the global
in-flight ceiling *before* a request occupies a scheduler slot, with
the extended 429 envelope and an honest ``Retry-After``.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.analysis.predict import (
    PROFILE_SCHEMA,
    UNTRUSTED_BAND,
    CalibrationProfile,
    CostModel,
    calibrate_profile,
    load_profile,
    write_profile,
)
from repro.engines import ENGINES, build_program, resolve_access_function
from repro.parallel.config import (
    DEFAULT_MIN_WORK_PER_TASK,
    reset_fallback_warnings,
)
from repro.parallel.pool import shared_pool
from repro.resilience import recovery
from repro.service.planner import (
    DEFAULT_TENANT,
    MAX_RETRY_AFTER_S,
    BudgetExceeded,
    CostBudget,
    Planner,
)
from repro.service.router import Router, ShardClient, make_router_server
from repro.service.scheduler import SimRequest
from repro.service.server import ServiceServer, SimService


@pytest.fixture(autouse=True)
def _clean_slate(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    recovery.reset()
    reset_fallback_warnings()
    yield
    shared_pool(2).shutdown()
    recovery.reset()
    reset_fallback_warnings()


#: the test calibration matrix: three simulating engines plus the
#: zero-words direct reference, both bench programs, a small grid —
#: wide enough to exercise auto-choice, narrow enough to stay fast
_ENGINES = ("vec", "bt", "brent", "direct")
_PROGRAMS = ("sort", "fft-rec")
_V_GRID = (8, 16, 32)


@pytest.fixture(scope="module")
def profile_doc():
    return calibrate_profile(
        engines=_ENGINES, programs=_PROGRAMS, v_grid=_V_GRID, repeats=1
    )


@pytest.fixture(scope="module")
def model(profile_doc):
    return CostModel(CalibrationProfile(profile_doc))


def _measured_words(engine: str, program: str, v: int) -> float:
    result = ENGINES[engine].run(
        build_program(program, v, 8),
        resolve_access_function("x^0.5"),
        trace="counters",
    )
    return float(
        result.counters.get("words_touched", 0)
        + result.counters.get("words_moved", 0)
    )


def _request(i: int = 0, **kw) -> dict:
    kw.setdefault("engine", "vec")
    kw.setdefault("program", "sort")
    kw.setdefault("v", 32)
    kw.setdefault("f", f"x^0.{51 + i}")
    return kw


def _post(url, path, doc, headers=None):
    data = json.dumps(doc).encode()
    send = {"Content-Type": "application/json"}
    send.update(headers or {})
    req = urllib.request.Request(
        url + path, data=data, headers=send, method="POST"
    )
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


def _get(url, path):
    with urllib.request.urlopen(url + path, timeout=60) as resp:
        return resp.status, json.loads(resp.read())


class TestCalibrationProfile:
    def test_json_round_trip(self, tmp_path, profile_doc, model):
        path = tmp_path / "cal.json"
        write_profile(str(path), profile_doc)
        loaded = CostModel(load_profile(str(path)))
        for engine in ("vec", "bt"):
            fresh = loaded.predict(engine, "sort", 32)
            assert fresh == model.predict(engine, "sort", 32)
        assert json.loads(path.read_text())["schema"] == PROFILE_SCHEMA

    def test_schema_drift_refused(self, profile_doc):
        stale = dict(profile_doc, schema=PROFILE_SCHEMA + 1)
        with pytest.raises(ValueError, match="calibrate"):
            CalibrationProfile(stale)

    def test_malformed_refused(self, profile_doc):
        with pytest.raises(ValueError):
            CalibrationProfile([])
        broken = dict(profile_doc)
        broken.pop("models")
        with pytest.raises(ValueError, match="malformed"):
            CalibrationProfile(broken)

    def test_load_missing_file_is_value_error(self, tmp_path):
        with pytest.raises(ValueError):
            load_profile(str(tmp_path / "nope.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValueError):
            load_profile(str(bad))


class TestPredictionBands:
    """The acceptance criterion: measured charged cost lands inside the
    documented error band, interior and extrapolated."""

    @pytest.mark.parametrize("engine", ["vec", "bt", "brent"])
    @pytest.mark.parametrize("program", ["sort", "fft-rec"])
    def test_interior_band_holds(self, model, engine, program):
        p = model.predict(engine, program, 32)
        assert p.trusted and not p.extrapolated
        measured = _measured_words(engine, program, 32)
        assert p.charged_words_lo <= measured <= p.charged_words_hi
        assert p.wall_s_lo <= p.wall_s <= p.wall_s_hi

    @pytest.mark.parametrize("engine", ["vec", "bt", "brent"])
    def test_extrapolated_band_widens_and_holds(self, model, engine):
        interior = model.predict(engine, "sort", 32)
        beyond = model.predict(engine, "sort", 128)
        assert beyond.extrapolated and beyond.trusted
        # wider relative bars than the interior prediction
        assert (beyond.charged_words_hi / beyond.charged_words) > (
            interior.charged_words_hi / interior.charged_words
        )
        measured = _measured_words(engine, "sort", 128)
        assert beyond.charged_words_lo <= measured <= beyond.charged_words_hi

    def test_direct_predicts_zero_charged_words(self, model):
        p = model.predict("direct", "sort", 32)
        assert p.charged_words == p.charged_words_lo == 0.0
        assert p.charged_words_hi == 0.0
        assert p.wall_s > 0

    def test_uncalibrated_pair_falls_back_untrusted(self, model):
        p = model.predict("hmm", "sort", 32)  # hmm not in _ENGINES
        assert not p.trusted and p.source == "bounds_only"
        assert p.charged_words > 0
        assert p.charged_words_hi / p.charged_words == pytest.approx(
            UNTRUSTED_BAND
        )
        measured = _measured_words("hmm", "sort", 32)
        assert p.charged_words_lo <= measured <= p.charged_words_hi

    def test_unknown_engine_rejected(self, model):
        with pytest.raises(ValueError, match="unknown engine"):
            model.predict("warp", "sort", 32)

    def test_prediction_json_has_band_fields(self, model):
        doc = model.predict("vec", "sort", 32).to_json()
        for field in (
            "charged_words", "charged_words_lo", "charged_words_hi",
            "wall_s", "wall_s_lo", "wall_s_hi", "queue_slot_s",
            "trusted", "extrapolated", "source",
        ):
            assert field in doc


class TestCostBudget:
    def test_spend_refill_cycle(self):
        now = [0.0]
        bucket = CostBudget(100.0, 10.0, clock=lambda: now[0])
        ok, _, remaining = bucket.try_spend(80.0)
        assert ok and remaining == pytest.approx(20.0)
        ok, retry_after, _ = bucket.try_spend(30.0)
        assert not ok
        assert retry_after == pytest.approx(1.0)  # 10-word deficit at 10/s
        now[0] += 1.0
        ok, _, _ = bucket.try_spend(30.0)
        assert ok
        assert bucket.spent_total == pytest.approx(110.0)
        assert bucket.rejections == 1

    def test_refill_caps_at_capacity(self):
        now = [0.0]
        bucket = CostBudget(100.0, 10.0, clock=lambda: now[0])
        now[0] += 1000.0
        assert bucket.remaining() == pytest.approx(100.0)

    def test_unaffordable_request_gets_the_full_clamp(self):
        # a request larger than the bucket can never be admitted;
        # Retry-After must say "much later", not invite hammering
        bucket = CostBudget(100.0, 10.0, clock=lambda: 0.0)
        ok, retry_after, _ = bucket.try_spend(1e9)
        assert not ok and retry_after == MAX_RETRY_AFTER_S

    def test_validation(self):
        with pytest.raises(ValueError):
            CostBudget(0.0, 10.0)
        with pytest.raises(ValueError):
            CostBudget(10.0, -1.0)


class TestPlannerDecisions:
    def test_auto_engine_is_a_calibrated_simulator(self, model):
        planner = Planner(model)
        decision = planner.plan(
            SimRequest(**_request()), engine_unset=True
        )
        assert decision.engine_chosen
        assert decision.engine in ("vec", "bt", "brent")  # never direct
        assert decision.prediction.trusted

    def test_explicit_engine_is_respected(self, model):
        planner = Planner(model)
        decision = planner.plan(SimRequest(**_request(engine="bt")))
        assert decision.engine == "bt" and not decision.engine_chosen

    def test_cache_bypass_for_enormous_full_traces(self, model):
        planner = Planner(model)
        small = planner.plan(SimRequest(**_request(trace="full")))
        assert small.cache == "store"
        huge = planner.plan(
            SimRequest(**_request(v=2048, engine="bt", trace="full"))
        )
        assert huge.prediction.charged_words > 5e6
        assert huge.cache == "bypass"

    def test_parallel_plan_scales_with_service_jobs(self, model):
        serial = Planner(model).plan(SimRequest(**_request()))
        assert serial.jobs == 1
        planner = Planner(model, service_jobs=4)
        cheap = planner.plan(SimRequest(**_request(v=8)))
        assert cheap.jobs == 1  # predicted wall too short to fan out
        big = planner.plan(SimRequest(**_request(engine="bt", v=2048)))
        assert big.jobs == 4
        assert big.min_work_per_task >= DEFAULT_MIN_WORK_PER_TASK


class TestPlannerAdmission:
    def _planner(self, model, **kw):
        now = [0.0]
        kw.setdefault("clock", lambda: now[0])
        return Planner(model, **kw), now

    def test_global_ceiling_sheds_then_releases(self, model):
        planner, _ = self._planner(model, cost_ceiling=30_000.0)
        decision = planner.plan(SimRequest(**_request()))
        cost = decision.prediction.cost
        assert 0 < cost < 30_000.0
        planner.admit("default", decision)
        with pytest.raises(BudgetExceeded) as exc:
            planner.admit("default", decision)
        assert exc.value.scope == "global"
        assert exc.value.predicted_cost == pytest.approx(cost)
        assert exc.value.retry_after_s > 0
        planner.complete(decision, wall_s=0.01)
        planner.admit("default", decision)  # slot freed: admitted again

    def test_tenant_budgets_are_isolated(self, model):
        planner, _ = self._planner(model, tenant_capacity=30_000.0)
        decision = planner.plan(SimRequest(**_request()))
        planner.admit("alice", decision)
        with pytest.raises(BudgetExceeded) as exc:
            planner.admit("alice", decision)
        assert exc.value.scope == "tenant"
        planner.admit("bob", decision)  # bob's bucket is untouched

    def test_tenant_budget_refills_over_time(self, model):
        planner, now = self._planner(
            model, tenant_capacity=30_000.0,
            tenant_refill_per_s=30_000.0,
        )
        decision = planner.plan(SimRequest(**_request()))
        planner.admit("alice", decision)
        with pytest.raises(BudgetExceeded):
            planner.admit("alice", decision)
        now[0] += 1.0  # a full capacity of refill
        planner.admit("alice", decision)

    def test_probe_is_non_mutating(self, model):
        planner, _ = self._planner(model)
        decision = planner.plan(SimRequest(**_request()))
        first = planner.probe("carol", decision)
        second = planner.probe("carol", decision)
        assert first == second
        assert first["would_admit"] is True
        assert first["predicted_cost"] == decision.prediction.cost

    def test_gauges_report_budgets_and_sheds(self, model):
        planner, _ = self._planner(model, cost_ceiling=30_000.0)
        decision = planner.plan(SimRequest(**_request()))
        planner.admit("alice", decision)
        with pytest.raises(BudgetExceeded):
            planner.admit("alice", decision)
        gauges = planner.gauges()
        assert gauges["shed_global"] == 1
        assert gauges["inflight"] == 1
        assert "alice" in gauges["tenants"]
        assert gauges["tenants"]["alice"]["spent_total"] > 0


class TestServerPlanner:
    def test_plan_endpoint_computes_nothing(self, model):
        service = SimService(planner=Planner(model))
        with ServiceServer(service) as server:
            status, doc, _ = _post(server.url, "/v1/plan", _request())
            assert status == 200
            assert doc["plan"]["engine"] == "vec"
            pred = doc["prediction"]
            assert (
                pred["charged_words_lo"]
                <= pred["charged_words"]
                <= pred["charged_words_hi"]
            )
            assert doc["admission"]["would_admit"] is True
            assert "key" in doc
            counters = service.scheduler.counters.snapshot()
            assert counters.get("admitted", 0) == 0

    def test_plan_endpoint_auto_selects_engine(self, model):
        with ServiceServer(SimService(planner=Planner(model))) as server:
            body = _request()
            del body["engine"]
            status, doc, _ = _post(server.url, "/v1/plan", body)
            assert status == 200
            assert doc["plan"]["engine_chosen"] is True
            assert doc["plan"]["engine"] != "direct"
            assert doc["request"]["engine"] == doc["plan"]["engine"]

    def test_plan_without_planner_is_enveloped_400(self):
        with ServiceServer(SimService()) as server:
            status, doc, _ = _post(server.url, "/v1/plan", _request())
            assert status == 400
            assert doc["error"]["code"] == "planner_disabled"
            assert "calibrate" in doc["error"]["message"]

    def test_run_auto_engine_end_to_end(self, model):
        service = SimService(planner=Planner(model))
        with ServiceServer(service) as server:
            body = _request()
            del body["engine"]
            status, doc, _ = _post(server.url, "/v1/run", body)
            assert status == 200 and doc["served"] == "computed"
            planner_gauges = service.planner.gauges()
            assert planner_gauges["auto_engine"] >= 1

    def test_budget_429_extends_the_envelope(self, model):
        service = SimService(planner=Planner(model, cost_ceiling=1_000.0))
        with ServiceServer(service) as server:
            status, doc, headers = _post(server.url, "/v1/run", _request())
            assert status == 429
            envelope = doc["error"]
            assert envelope["code"] == "budget_exceeded"
            assert envelope["scope"] == "global"
            assert envelope["predicted_cost"] > 1_000.0
            assert envelope["budget_remaining"] >= 0
            assert envelope["retry_after_s"] > 0
            assert "Retry-After" in headers

    def test_tenant_header_scopes_the_budget(self, model):
        service = SimService(
            planner=Planner(
                model, tenant_capacity=30_000.0, tenant_refill_per_s=1.0
            )
        )
        with ServiceServer(service) as server:
            status, _, _ = _post(
                server.url, "/v1/run", _request(0),
                headers={"X-Tenant": "alice"},
            )
            assert status == 200
            status, doc, _ = _post(
                server.url, "/v1/run", _request(1),
                headers={"X-Tenant": "alice"},
            )
            assert status == 429
            assert doc["error"]["scope"] == "tenant"
            status, _, _ = _post(
                server.url, "/v1/run", _request(1),
                headers={"X-Tenant": "bob"},
            )
            assert status == 200

    def test_cache_hit_skips_admission_charges(self, model):
        service = SimService(
            planner=Planner(
                model, tenant_capacity=30_000.0, tenant_refill_per_s=1.0
            )
        )
        with ServiceServer(service) as server:
            status, doc, _ = _post(server.url, "/v1/run", _request(0))
            assert status == 200 and doc["served"] == "computed"
            # identical request: served from cache, no budget spend —
            # even though the bucket cannot afford another computation
            status, doc, _ = _post(server.url, "/v1/run", _request(0))
            assert status == 200 and doc["served"] == "cached"
            status, doc, _ = _post(server.url, "/v1/run", _request(1))
            assert status == 429

    def test_metrics_carry_the_planner_section(self, model):
        service = SimService(planner=Planner(model))
        with ServiceServer(service) as server:
            _post(server.url, "/v1/run", _request())
            status, doc = _get(server.url, "/v1/metrics")
            assert status == 200
            planner_doc = doc["planner"]
            assert planner_doc["enabled"] is True
            assert DEFAULT_TENANT in planner_doc["tenants"]
            assert planner_doc["cost_ceiling"] > 0

    def test_metrics_without_planner_say_disabled(self):
        with ServiceServer(SimService()) as server:
            status, doc = _get(server.url, "/v1/metrics")
            assert status == 200
            assert doc["planner"] == {"enabled": False}


class _PlannedTier:
    """Two in-process planner-enabled shards behind a planner router."""

    def __init__(self, model, **planner_kw):
        self.servers = [
            ServiceServer(SimService(
                identity={"index": i},
                planner=Planner(model, **planner_kw),
            ))
            for i in range(2)
        ]
        self.clients = [
            ShardClient(i, "127.0.0.1", s.httpd.server_address[1])
            for i, s in enumerate(self.servers)
        ]
        self.router = Router(self.clients, planner=Planner(model))
        self.httpd = make_router_server("127.0.0.1", 0, self.router)
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            kwargs={"poll_interval": 0.05}, daemon=True,
        )
        self._thread.start()

    @property
    def url(self):
        host, port = self.httpd.server_address[:2]
        return f"http://{host}:{port}"

    def close(self):
        self.router.close()
        self.httpd.shutdown()
        self.httpd.server_close()
        self._thread.join(timeout=5)
        for server in self.servers:
            try:
                server.close()
            except Exception:
                pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


class TestRouterPlanner:
    def test_plan_forwards_to_the_owner_shard(self, model):
        with _PlannedTier(model) as tier:
            status, doc, _ = _post(tier.url, "/v1/plan", _request())
            assert status == 200
            assert doc["plan"]["engine"] == "vec"
            assert doc["admission"]["would_admit"] is True

    def test_auto_engine_resolved_before_routing(self, model):
        # the router must rewrite the body so the ring key matches the
        # shard's cache key: the identical auto request must hit cache
        with _PlannedTier(model) as tier:
            body = _request()
            del body["engine"]
            status, doc, _ = _post(tier.url, "/v1/run", body)
            assert status == 200 and doc["served"] == "computed"
            status, doc, _ = _post(tier.url, "/v1/run", body)
            assert status == 200 and doc["served"] == "cached"

    def test_tenant_header_and_metrics_roll_up(self, model):
        with _PlannedTier(
            model, tenant_capacity=30_000.0, tenant_refill_per_s=1.0
        ) as tier:
            saw_429 = False
            for i in range(6):
                status, doc, _ = _post(
                    tier.url, "/v1/run", _request(i),
                    headers={"X-Tenant": "alice"},
                )
                if status == 429:
                    assert doc["error"]["code"] == "budget_exceeded"
                    saw_429 = True
            assert saw_429
            status, metrics = _get(tier.url, "/v1/metrics")
            assert status == 200
            rollup = metrics["planner"]
            assert rollup["enabled"] is True
            assert rollup["tenants"]["alice"]["rejections"] >= 1
            assert rollup["tenants"]["alice"]["spent_total"] > 0
