"""Program / Superstep / ProcView semantics."""

from __future__ import annotations

import pytest

from repro.dbsp.program import DUMMY, Message, ProcView, Program, Superstep


def noop(view):
    view.charge(1)


class TestProgram:
    def test_label_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Program(8, 4, [Superstep(4, noop)])

    def test_non_power_of_two_v_rejected(self):
        with pytest.raises(ValueError):
            Program(6, 4, [])

    def test_nonpositive_mu_rejected(self):
        with pytest.raises(ValueError):
            Program(8, 0, [])

    def test_label_counts(self):
        prog = Program(8, 4, [Superstep(0, noop), Superstep(2, noop),
                              Superstep(2, noop)])
        assert prog.label_counts() == {0: 1, 2: 2}

    def test_with_global_sync_appends_once(self):
        prog = Program(8, 4, [Superstep(2, noop)])
        assert not prog.ends_with_global_sync()
        synced = prog.with_global_sync()
        assert synced.ends_with_global_sync()
        assert len(synced) == 2
        assert synced.supersteps[-1].is_dummy
        # idempotent
        assert len(synced.with_global_sync()) == 2

    def test_initial_contexts_use_factory(self):
        prog = Program(4, 4, [], make_context=lambda pid: {"p": pid * pid})
        assert [c["p"] for c in prog.initial_contexts()] == [0, 1, 4, 9]

    def test_replace_supersteps_preserves_shape(self):
        prog = Program(4, 4, [Superstep(1, noop)], name="x")
        other = prog.replace_supersteps([Superstep(0, noop), Superstep(2, noop)])
        assert other.v == 4 and other.mu == 4 and other.name == "x"
        assert other.labels() == [0, 2]

    def test_dummy_detection(self):
        assert Superstep(0, DUMMY).is_dummy
        assert not Superstep(0, noop).is_dummy


class TestProcView:
    def make_view(self, pid=3, v=8, mu=4, label=1, inbox=()):
        return ProcView(pid, v, mu, label, {}, list(inbox))

    def test_send_within_cluster_ok(self):
        view = self.make_view(pid=5, label=1)  # 1-cluster {4..7}
        view.send(7, "hi")
        assert view.outbox == [(7, Message(5, "hi"))]

    def test_send_outside_cluster_rejected(self):
        view = self.make_view(pid=5, label=1)
        with pytest.raises(ValueError, match="different 1-clusters"):
            view.send(2)

    def test_send_label0_reaches_anywhere(self):
        view = self.make_view(pid=0, label=0)
        view.send(7)

    def test_send_bad_destination(self):
        view = self.make_view()
        with pytest.raises(ValueError):
            view.send(8)
        with pytest.raises(ValueError):
            view.send(-1)

    def test_outbox_capacity_is_mu(self):
        view = self.make_view(pid=0, label=0, mu=2)
        view.send(1)
        view.send(2)
        with pytest.raises(ValueError, match="mu=2"):
            view.send(3)

    def test_charge_accumulates_on_base_one(self):
        view = self.make_view()
        assert view.local_time == 1.0
        view.charge(2.5)
        assert view.local_time == 3.5

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            self.make_view().charge(-1)

    def test_received_yields_payloads_in_order(self):
        inbox = [Message(0, "a"), Message(2, "b")]
        view = self.make_view(inbox=inbox)
        assert list(view.received()) == ["a", "b"]


class TestMessage:
    def test_ordering_by_sender(self):
        msgs = [Message(3, "x"), Message(1, "y"), Message(2, "z")]
        assert [m.src for m in sorted(msgs)] == [1, 2, 3]

    def test_payload_not_compared(self):
        assert Message(1, "a") == Message(1, "b")
