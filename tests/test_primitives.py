"""Broadcast / reduce / prefix / permutation primitives."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.primitives import (
    broadcast_program,
    permutation_program,
    prefix_sums_program,
    reduce_program,
)
from repro.dbsp.machine import DBSPMachine
from repro.functions import ConstantAccess, PolynomialAccess

RAM = ConstantAccess()


class TestBroadcast:
    @pytest.mark.parametrize("v", [1, 2, 8, 64])
    def test_everyone_receives_root_value(self, v):
        prog = broadcast_program(v, make_value=lambda pid: f"val{pid}")
        res = DBSPMachine(RAM).run(prog)
        assert all(c["bcast"] == "val0" for c in res.contexts)

    def test_labels_ascend(self):
        prog = broadcast_program(16)
        labels = [s.label for s in prog.supersteps[:-1]]
        assert labels == sorted(labels)
        assert labels == [0, 1, 2, 3]


class TestReduce:
    @pytest.mark.parametrize("v", [1, 2, 8, 64])
    def test_sum_lands_at_p0(self, v):
        prog = reduce_program(v, make_value=lambda pid: pid + 1)
        res = DBSPMachine(RAM).run(prog)
        assert res.contexts[0]["sum"] == v * (v + 1) // 2

    def test_custom_op(self):
        prog = reduce_program(8, op=max, make_value=lambda pid: (pid * 5) % 7)
        res = DBSPMachine(RAM).run(prog)
        assert res.contexts[0]["sum"] == max((p * 5) % 7 for p in range(8))

    def test_labels_descend(self):
        prog = reduce_program(16)
        labels = [s.label for s in prog.supersteps[:-1]]
        assert labels == [3, 2, 1, 0]


class TestPrefixSums:
    @pytest.mark.parametrize("v", [1, 2, 4, 32])
    def test_inclusive_prefix(self, v):
        prog = prefix_sums_program(v, make_value=lambda pid: pid + 1)
        res = DBSPMachine(RAM).run(prog)
        want = 0
        for pid in range(v):
            want += pid + 1
            assert res.contexts[pid]["prefix"] == want

    def test_non_commutative_safe(self):
        # string concatenation: order sensitivity catches scheduling bugs
        prog = prefix_sums_program(8, make_value=lambda pid: chr(97 + pid))
        res = DBSPMachine(RAM).run(prog)
        assert res.contexts[7]["prefix"] == "abcdefgh"


class TestPermutation:
    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=25, deadline=None)
    def test_routes_random_permutation(self, seed):
        import random

        rng = random.Random(seed)
        v = 16
        perm = list(range(v))
        rng.shuffle(perm)
        prog = permutation_program(v, perm, make_value=lambda pid: pid * 10)
        res = DBSPMachine(RAM).run(prog)
        for src in range(v):
            assert res.contexts[perm[src]]["x"] == src * 10

    def test_identity_gets_finest_label(self):
        prog = permutation_program(8, list(range(8)))
        assert prog.supersteps[0].label == 3

    def test_local_swap_label(self):
        # swapping within pairs only needs 2-clusters: label log v - 1
        perm = [1, 0, 3, 2, 5, 4, 7, 6]
        prog = permutation_program(8, perm)
        assert prog.supersteps[0].label == 2

    def test_global_reversal_needs_label0(self):
        perm = list(range(7, -1, -1))
        prog = permutation_program(8, perm)
        assert prog.supersteps[0].label == 0

    def test_invalid_permutation_rejected(self):
        with pytest.raises(ValueError):
            permutation_program(4, [0, 0, 1, 2])

    def test_cost_reflects_locality(self):
        g = PolynomialAccess(0.5)
        local = permutation_program(16, [p ^ 1 for p in range(16)])
        global_ = permutation_program(16, list(range(15, -1, -1)))
        t_local = DBSPMachine(g).run(local).total_time
        t_global = DBSPMachine(g).run(global_).total_time
        assert t_local < t_global
