"""The process-parallel scheduler's contract: bit-identical charged costs.

The tier-1 claim (ISSUE 3): for any job count, the HMM and Brent engines
charge **exactly** the same model time, counters and per-phase breakdown
as the serial path — the worker pool changes wall clock only.  These
tests pin that bit-for-bit (``==`` on floats, no tolerances), plus the
degradation contract: infrastructure failures fall back to serial with a
one-shot warning, genuine program errors propagate unchanged, and the
``min_work_per_task`` gate keeps small runs off the pool entirely.
"""

from __future__ import annotations

import warnings

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    Workload,
    _run_engine_workload,
    bench_header,
    check_against,
)
from repro.dbsp.program import Program, Superstep
from repro.engines import build_program, resolve_access_function
from repro.obs.trace import SpanRecord, merge_span_lists, tag_spans
from repro.parallel import (
    ParallelConfig,
    ParallelFallbackWarning,
    PoolUnavailable,
    WorkerPool,
    parallel_map,
    reset_fallback_warnings,
    touch_sweep,
)
from repro.parallel.config import SERIAL, resolve_parallel
from repro.sim.brent import BrentSimulator
from repro.sim.hmm_sim import HMMSimulator

#: fan out even the tiny test programs (the default gate would keep them
#: inline and the determinism claim would be vacuously true)
EAGER = ParallelConfig(jobs=4, min_work_per_task=1)

FUNCTIONS = ["x^0.5", "log", "staircase"]
PROGRAMS = ["sort", "fft-rec"]


def _no_fallback():
    """Context: any silent degradation to serial fails the test."""
    ctx = warnings.catch_warnings()
    ctx.__enter__()
    warnings.simplefilter("error", ParallelFallbackWarning)
    return ctx


# --------------------------------------------------------- determinism
@pytest.mark.parametrize("fspec", FUNCTIONS)
@pytest.mark.parametrize("pname", PROGRAMS)
def test_hmm_parallel_bit_identical(pname, fspec):
    f = resolve_access_function(fspec)
    program = build_program(pname, 16, 4)
    serial = HMMSimulator(f, trace="phases").simulate(program)
    ctx = _no_fallback()
    try:
        par = HMMSimulator(f, trace="phases", parallel=EAGER).simulate(
            program
        )
    finally:
        ctx.__exit__(None, None, None)
    assert par.time == serial.time
    assert par.rounds == serial.rounds
    assert par.counters == serial.counters
    assert par.breakdown == serial.breakdown
    assert par.contexts == serial.contexts
    assert par.pending == serial.pending


@pytest.mark.parametrize("fspec", FUNCTIONS)
@pytest.mark.parametrize("pname", PROGRAMS)
def test_brent_parallel_bit_identical(pname, fspec):
    g = resolve_access_function(fspec)
    program = build_program(pname, 16, 4)
    serial = BrentSimulator(g, v_host=4, trace="phases").simulate(program)
    ctx = _no_fallback()
    try:
        par = BrentSimulator(
            g, v_host=4, trace="phases", parallel=EAGER
        ).simulate(program)
    finally:
        ctx.__exit__(None, None, None)
    assert par.time == serial.time
    assert par.counters == serial.counters
    assert par.breakdown == serial.breakdown
    assert par.contexts == serial.contexts


@pytest.mark.parametrize("trace", ["off", "counters"])
def test_hmm_parallel_identical_at_reduced_trace_levels(trace):
    f = resolve_access_function("x^0.5")
    program = build_program("sort", 16, 4)
    serial = HMMSimulator(f, trace=trace).simulate(program)
    par = HMMSimulator(f, trace=trace, parallel=EAGER).simulate(program)
    assert par.time == serial.time
    assert par.counters == serial.counters
    assert par.contexts == serial.contexts


def test_jobs_one_is_plain_serial():
    # jobs=1 must never touch pool machinery: identical object-level path
    f = resolve_access_function("x^0.5")
    program = build_program("sort", 16, 4)
    cfg = ParallelConfig(jobs=1, min_work_per_task=1)
    assert not cfg.enabled
    serial = HMMSimulator(f).simulate(program)
    via_cfg = HMMSimulator(f, parallel=cfg).simulate(program)
    assert via_cfg.time == serial.time


# ------------------------------------------------------ degraded paths
class _FailingPool:
    """A pool whose dispatch always fails as infrastructure."""

    def __init__(self):
        self.tasks_submitted = 0

    def submit_many(self, kind, payloads):
        raise PoolUnavailable("injected failure")

    def run_ordered(self, kind, args_list, **kwargs):
        raise PoolUnavailable("injected failure")


def test_hmm_failing_pool_falls_back_serial_with_one_warning(monkeypatch):
    monkeypatch.setattr(
        "repro.parallel.pool.shared_pool", lambda jobs: _FailingPool()
    )
    reset_fallback_warnings()
    f = resolve_access_function("x^0.5")
    program = build_program("sort", 16, 4)
    serial = HMMSimulator(f).simulate(program)
    with pytest.warns(ParallelFallbackWarning):
        par = HMMSimulator(f, parallel=EAGER).simulate(program)
    assert par.time == serial.time
    assert par.counters == serial.counters
    assert par.contexts == serial.contexts
    # the warning is one-shot per reason: a second run stays quiet
    with warnings.catch_warnings():
        warnings.simplefilter("error", ParallelFallbackWarning)
        again = HMMSimulator(f, parallel=EAGER).simulate(program)
    assert again.time == serial.time


def test_brent_failing_pool_falls_back_serial(monkeypatch):
    monkeypatch.setattr(
        "repro.parallel.pool.shared_pool", lambda jobs: _FailingPool()
    )
    reset_fallback_warnings()
    g = resolve_access_function("x^0.5")
    program = build_program("sort", 16, 4)
    serial = BrentSimulator(g, v_host=4).simulate(program)
    with pytest.warns(ParallelFallbackWarning):
        par = BrentSimulator(g, v_host=4, parallel=EAGER).simulate(program)
    assert par.time == serial.time
    assert par.counters == serial.counters


def test_fallback_false_raises(monkeypatch):
    monkeypatch.setattr(
        "repro.parallel.pool.shared_pool", lambda jobs: _FailingPool()
    )
    cfg = ParallelConfig(jobs=4, min_work_per_task=1, fallback=False)
    f = resolve_access_function("x^0.5")
    program = build_program("sort", 16, 4)
    with pytest.raises(PoolUnavailable):
        HMMSimulator(f, parallel=cfg).simulate(program)


def test_unpicklable_body_falls_back_serial():
    # lambda bodies cannot cross the process boundary: dumps_payload
    # raises PoolUnavailable before dispatch and the run stays serial
    reset_fallback_warnings()
    f = resolve_access_function("x^0.5")
    steps = [
        Superstep(4, lambda view: None, name="noop"),
        Superstep(0, None, name="sync"),
    ]
    program = Program(16, 4, steps, name="lambda-prog")
    serial = HMMSimulator(f).simulate(program)
    with pytest.warns(ParallelFallbackWarning):
        par = HMMSimulator(f, parallel=EAGER).simulate(program)
    assert par.time == serial.time


def test_min_work_gate_keeps_small_runs_inline(monkeypatch):
    sentinel = WorkerPool(2)
    monkeypatch.setattr(
        "repro.parallel.pool.shared_pool", lambda jobs: sentinel
    )
    f = resolve_access_function("x^0.5")
    program = build_program("sort", 16, 4)
    # default min_work_per_task (4096) dwarfs this program's segments
    cfg = ParallelConfig(jobs=4)
    with warnings.catch_warnings():
        warnings.simplefilter("error", ParallelFallbackWarning)
        par = HMMSimulator(f, parallel=cfg).simulate(program)
    assert sentinel.tasks_submitted == 0
    serial = HMMSimulator(f).simulate(program)
    assert par.time == serial.time


class _BoomBody:
    """Picklable body that blows up on processor 0."""

    def __call__(self, view):
        if view.pid == 0:
            raise ValueError("boom from the program body")


def test_genuine_task_error_propagates_unchanged():
    # a ValueError raised by the simulated program must cross the pool
    # boundary as-is — never be eaten as an infrastructure failure
    f = resolve_access_function("x^0.5")
    steps = [
        Superstep(4, _BoomBody(), name="boom"),
        Superstep(0, None, name="sync"),
    ]
    program = Program(16, 4, steps, name="boom-prog")
    with pytest.raises(ValueError, match="boom from the program body"):
        HMMSimulator(f, parallel=EAGER).simulate(program)


# ------------------------------------------------------- config layer
def test_resolve_parallel_forms():
    assert resolve_parallel(None) is not None
    assert resolve_parallel(3).jobs == 3
    cfg = ParallelConfig(jobs=2, min_work_per_task=7)
    assert resolve_parallel(cfg) is cfg
    assert not resolve_parallel(1).enabled
    with pytest.raises(TypeError):
        resolve_parallel("four")


def test_repro_jobs_env(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert ParallelConfig.from_env().jobs == 3
    monkeypatch.setenv("REPRO_JOBS", "not-a-number")
    with pytest.warns(ParallelFallbackWarning):
        assert ParallelConfig.from_env() is SERIAL


def test_serial_outcomes_return_the_singleton(monkeypatch):
    # both documented serial paths yield the SERIAL object itself, not a
    # fresh equal instance — consumers may use `is SERIAL` as the check
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert ParallelConfig.from_env() is SERIAL
    monkeypatch.setenv("REPRO_JOBS", "1")
    assert ParallelConfig.from_env() is SERIAL
    monkeypatch.setenv("REPRO_JOBS", "0")
    assert ParallelConfig.from_env() is SERIAL
    monkeypatch.setenv("REPRO_JOBS", "-2")
    assert ParallelConfig.from_env() is SERIAL
    assert resolve_parallel(1) is SERIAL
    assert resolve_parallel(0) is SERIAL


# -------------------------------------------------------- sweep runner
def test_touch_sweep_parallel_matches_serial():
    sizes = [256, 1024]
    serial = touch_sweep(sizes, f="x^0.5", parallel=1)
    par = touch_sweep(sizes, f="x^0.5", parallel=2)
    assert par == serial
    assert [c["n"] for c in par["cells"]] == sizes
    assert par["cells"][0]["hmm_cost"] > 0
    assert par["counters"] == serial["counters"]


def test_parallel_map_preserves_order():
    args = [(n, "x^0.5") for n in (256, 512, 1024)]
    docs = parallel_map("touch-cost", args, parallel=2)
    assert [d["n"] for d in docs] == [256, 512, 1024]


# ------------------------------------------------------ span machinery
def _span(index, parent, name, depth=0):
    return SpanRecord(
        index=index,
        parent=parent,
        depth=depth,
        name=name,
        category=None,
        start=0.0,
    )


def test_tag_spans_sets_worker_attr():
    spans = [_span(0, -1, "a"), _span(1, 0, "b", depth=1)]
    tagged = tag_spans(spans, worker=7)
    assert tagged is spans
    assert all(s.attrs["worker"] == 7 for s in tagged)


def test_merge_span_lists_shifts_indices():
    first = [_span(0, -1, "a"), _span(1, 0, "b", depth=1)]
    second = [_span(0, -1, "c")]
    merged = merge_span_lists([first, second])
    assert [s.name for s in merged] == ["a", "b", "c"]
    assert [s.index for s in merged] == [0, 1, 2]
    # roots stay roots; children keep pointing at their shifted parent
    assert [s.parent for s in merged] == [-1, 0, -1]


# ----------------------------------------------------- bench satellites
def test_bench_header_schema_three():
    doc = bench_header(1.0, smoke=True, jobs=4)
    assert doc["schema"] == BENCH_SCHEMA == 3
    assert doc["cpu_count"] >= 1
    assert doc["jobs"] == 4
    assert "revision" in doc
    assert "--jobs 4" in doc["produced_by"]


def test_check_against_refuses_cross_schema():
    fresh = bench_header(1.0, smoke=True)
    baseline = {"schema": 1, "workloads": {}}
    with pytest.raises(ValueError, match="schema"):
        check_against(fresh, baseline)


def test_engine_workload_propagates_genuine_value_error():
    # v_host wider than the guest raises inside the engine; the trace
    # probe must not swallow it (the old bare `except ValueError` did)
    w = Workload(
        "bad", "brent", "sort", delivery_heavy=True, opts={"v_host": 64}
    )
    with pytest.raises(ValueError, match="host width"):
        _run_engine_workload(w, v=16, repeats=1)


def test_engine_workload_parallel_cell_matches_serial_counters():
    w = Workload("sort/hmm", "hmm", "sort", delivery_heavy=True)
    cell_serial = _run_engine_workload(w, v=16, repeats=1)
    cell_par = _run_engine_workload(
        w, v=16, repeats=1, parallel=ParallelConfig(jobs=2, min_work_per_task=1)
    )
    assert cell_par["model_time"] == cell_serial["model_time"]
    assert cell_par["charged_words"] == cell_serial["charged_words"]
    assert cell_par["rounds"] == cell_serial["rounds"]
