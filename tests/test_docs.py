"""Documentation health: every local markdown link must resolve.

Wires ``tools/check_links.py`` (also run standalone by the CI docs job)
into the tier-1 suite so a renamed file or heading breaks the build,
not the reader.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
CHECKER = ROOT / "tools" / "check_links.py"

DOC_FILES = sorted(
    str(p.relative_to(ROOT))
    for p in [ROOT / "README.md", ROOT / "DESIGN.md", *ROOT.glob("docs/*.md")]
)


def test_doc_inventory_present():
    """The pages the README/ISSUE contract promises all exist."""
    for name in ("README.md", "DESIGN.md", "docs/architecture.md",
                 "docs/glossary.md", "docs/MODELS.md", "docs/TUTORIAL.md"):
        assert (ROOT / name).is_file(), f"missing documentation page {name}"


def test_markdown_links_resolve():
    proc = subprocess.run(
        [sys.executable, str(CHECKER), *DOC_FILES],
        cwd=ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, (
        f"broken documentation links:\n{proc.stderr}"
    )


def test_checker_detects_breakage(tmp_path):
    """Guard against the checker silently matching nothing."""
    page = tmp_path / "page.md"
    page.write_text("# Page\n\n[gone](missing.md) [bad](#no-such)\n")
    proc = subprocess.run(
        [sys.executable, str(CHECKER), str(page)],
        cwd=tmp_path,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 1
    assert "missing.md" in proc.stderr
    assert "no-such" in proc.stderr


@pytest.mark.parametrize("page", ["docs/architecture.md", "docs/glossary.md"])
def test_paper_map_names_real_modules(page):
    """Module paths cited in the paper-to-code docs must exist."""
    import re

    text = (ROOT / page).read_text(encoding="utf-8")
    cited = set(re.findall(r"(src/repro/[\w/]+\.py)", text))
    assert cited, f"{page} cites no modules — regex or docs drifted"
    for path in sorted(cited):
        mod = ROOT / path
        pkg = mod.with_suffix("")
        assert mod.is_file() or (pkg / "__init__.py").is_file(), (
            f"{page} cites {path}, which does not exist"
        )
