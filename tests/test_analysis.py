"""Analysis toolkit: bounds, fitting, figure renderings."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.bounds import (
    brent_bound,
    program_stats,
    theorem5_bound,
    theorem12_bound,
)
from repro.analysis.figures import (
    render_cluster_movements,
    render_mm_assignment,
    render_unpack_layout,
)
from repro.analysis.fitting import (
    EXTRAPOLATION_WIDENING,
    SINGLE_POINT_BAND,
    PowerLawFit,
    bounded_ratio,
    fit_loglog_slope,
    fit_power_law,
)
from repro.algorithms.matmul import mm_assignment_rounds
from repro.dbsp.machine import DBSPMachine
from repro.functions import ConstantAccess, LogarithmicAccess, PolynomialAccess
from repro.hmm.algorithms import (
    hmm_fft_lower_bound,
    hmm_matmul_lower_bound,
    hmm_sorting_lower_bound,
    hmm_touching_bound,
)
from repro.sim.bt_sim import BTSimulator
from repro.sim.hmm_sim import HMMSimulator
from repro.testing import random_program


class TestFitting:
    def test_slope_recovers_exponent(self):
        xs = [2**k for k in range(4, 14)]
        ys = [7.3 * x**1.5 for x in xs]
        assert fit_loglog_slope(xs, ys) == pytest.approx(1.5, abs=1e-9)

    def test_slope_with_noise(self):
        rng = np.random.default_rng(0)
        xs = [2**k for k in range(4, 16)]
        ys = [x**2 * rng.uniform(0.9, 1.1) for x in xs]
        assert fit_loglog_slope(xs, ys) == pytest.approx(2.0, abs=0.05)

    def test_slope_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_loglog_slope([1], [1])

    def test_bounded_ratio(self):
        check = bounded_ratio([10, 20, 40], [5, 10, 20])
        assert check.min_ratio == check.max_ratio == 2.0
        assert check.spread == 1.0
        assert check.is_bounded(1.5)

    def test_bounded_ratio_detects_drift(self):
        check = bounded_ratio([1, 10, 100], [1, 1, 1])
        assert not check.is_bounded(10.0)

    def test_bounded_ratio_validation(self):
        with pytest.raises(ValueError):
            bounded_ratio([], [])
        with pytest.raises(ValueError):
            bounded_ratio([1, 2], [1])
        with pytest.raises(ValueError):
            bounded_ratio([0.0], [1.0])


class TestPowerLawFit:
    def test_recovers_exponent_and_covers_points(self):
        xs = [8, 16, 32, 64]
        ys = [3.0 * x**1.5 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(1.5, abs=1e-9)
        assert fit.coeff == pytest.approx(3.0, rel=1e-9)
        for x, y in zip(xs, ys):
            lo, hi, extrapolated = fit.band(x)
            assert lo <= y <= hi and not extrapolated

    def test_noisy_points_stay_inside_their_own_band(self):
        rng = np.random.default_rng(3)
        xs = [2**k for k in range(3, 10)]
        ys = [x**2 * rng.uniform(0.8, 1.2) for x in xs]
        fit = fit_power_law(xs, ys)
        for x, y in zip(xs, ys):
            lo, hi, _ = fit.band(x)
            assert lo <= y <= hi

    def test_single_point_degenerates_to_wide_prior(self):
        fit = fit_power_law([16], [160.0])
        assert fit.points == 1
        assert fit.exponent == 1.0  # default prior slope
        assert fit.predict(16) == pytest.approx(160.0)
        lo, hi, extrapolated = fit.band(16)
        assert not extrapolated
        assert lo == pytest.approx(160.0 / SINGLE_POINT_BAND)
        assert hi == pytest.approx(160.0 * SINGLE_POINT_BAND)

    def test_single_point_honours_prior_exponent(self):
        fit = fit_power_law([16], [160.0], prior_exponent=0.0)
        assert fit.exponent == 0.0
        assert fit.predict(1024) == pytest.approx(160.0)

    def test_extrapolation_widens_per_doubling(self):
        fit = fit_power_law([8, 16, 32], [8.0, 16.0, 32.0])
        assert fit.widening(32) == 1.0
        assert fit.widening(64) == pytest.approx(EXTRAPOLATION_WIDENING)
        assert fit.widening(128) == pytest.approx(
            EXTRAPOLATION_WIDENING**2
        )
        # widening applies below the calibrated range too
        assert fit.widening(4) == pytest.approx(EXTRAPOLATION_WIDENING)
        lo_in, hi_in, _ = fit.band(32)
        lo_out, hi_out, extrapolated = fit.band(128)
        assert extrapolated
        assert hi_out / fit.predict(128) > hi_in / fit.predict(32)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([], [])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [1.0])
        with pytest.raises(ValueError):
            fit_power_law([1, -2], [1.0, 2.0])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [1.0, 0.0])
        fit = fit_power_law([8, 16], [8.0, 16.0])
        with pytest.raises(ValueError):
            fit.predict(0)
        with pytest.raises(ValueError):
            fit.widening(-4)

    def test_json_round_trip(self):
        fit = fit_power_law([8, 16, 32], [5.0, 11.0, 19.0])
        clone = PowerLawFit.from_json(fit.to_json())
        assert clone == fit
        with pytest.raises(ValueError):
            PowerLawFit.from_json({"coeff": 1.0})


class TestBounds:
    def test_theorem5_formula(self):
        f = PolynomialAccess(0.5)
        got = theorem5_bound(f, v=16, mu=2, tau=3.0, lambdas={0: 1, 2: 2})
        want = 16 * (3.0 + 2 * (1 * f(32) + 2 * f(8)))
        assert got == pytest.approx(want)

    def test_theorem12_formula_ignores_f(self):
        got = theorem12_bound(v=16, mu=2, tau=3.0, lambdas={0: 1})
        assert got == pytest.approx(16 * (3.0 + 2 * math.log2(32)))

    def test_brent_formula(self):
        g = LogarithmicAccess()
        got = brent_bound(g, v=16, v_host=4, mu=2, tau=1.0, lambdas={1: 1})
        assert got == pytest.approx(4 * (1.0 + 2 * g(16)))

    def test_program_stats(self):
        prog = random_program(8, n_steps=4, seed=0)
        res = DBSPMachine(ConstantAccess()).run(prog.with_global_sync())
        tau, lambdas = program_stats(res)
        assert tau >= len(prog.with_global_sync().supersteps)
        assert sum(lambdas.values()) == len(prog.with_global_sync().supersteps)

    def test_hmm_reference_bounds(self):
        f5 = PolynomialAccess(0.5)
        f7 = PolynomialAccess(0.7)
        lg = LogarithmicAccess()
        n = 1 << 10
        assert hmm_touching_bound(f5, n) == n * f5(n)
        assert hmm_matmul_lower_bound(f7, n) == pytest.approx(n**1.7)
        assert hmm_matmul_lower_bound(f5, n) == pytest.approx(n**1.5 * 10)
        assert hmm_matmul_lower_bound(lg, n) == pytest.approx(n**1.5)
        assert hmm_fft_lower_bound(f5, n) == pytest.approx(n**1.5)
        assert hmm_fft_lower_bound(lg, n) == pytest.approx(
            n * 10 * math.log2(10)
        )
        assert hmm_sorting_lower_bound(f5, n) == pytest.approx(n**1.5)
        assert hmm_sorting_lower_bound(lg, n) == pytest.approx(n * 10)

    def test_unknown_function_rejected(self):
        with pytest.raises(ValueError):
            hmm_matmul_lower_bound(ConstantAccess(), 16)


class TestFigures:
    def test_figure2_rendering(self):
        f = PolynomialAccess(0.5)
        prog = random_program(16, labels=[2, 0], seed=0)
        res = HMMSimulator(f, record_trace=True).simulate(prog)
        text = render_cluster_movements(res.trace, cluster_level=2, v=16)
        assert "mem[0]" in text and "t ->" in text
        assert len(text.splitlines()) >= 5

    def test_figure2_empty_trace(self):
        assert "no snapshots" in render_cluster_movements([], 1, 4)

    def test_figure3_rendering(self):
        text = render_mm_assignment(mm_assignment_rounds())
        assert "Round 1" in text and "Round 2" in text
        assert "C0: A11,B11" in text
        assert "C0: A12,B21" in text

    def test_figure4_rendering(self):
        f = PolynomialAccess(0.5)
        prog = random_program(8, n_steps=2, seed=0)
        res = BTSimulator(f, record_layout=True).simulate(prog)
        text = render_unpack_layout(res.layout_trace[:2])
        lines = text.splitlines()
        assert "initial" in lines[0]
        assert "unpack(0)" in lines[1]
        assert "P0 __ P1 __ P2 P3 __ __ P4 P5 P6 P7" in lines[1]
