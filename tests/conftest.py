"""Shared fixtures: the access-function zoo and small program zoo."""

from __future__ import annotations

import pytest

from repro import (
    LogarithmicAccess,
    PolynomialAccess,
    bitonic_sort_program,
    broadcast_program,
    convolution_program,
    fft_dag_program,
    fft_recursive_program,
    list_ranking_program,
    matmul_program,
    prefix_sums_program,
    reduce_program,
)
from repro.testing import random_program

ACCESS_FUNCTIONS = [
    PolynomialAccess(0.3),
    PolynomialAccess(0.5),
    PolynomialAccess(0.7),
    LogarithmicAccess(),
]

CASE_STUDY_FUNCTIONS = [PolynomialAccess(0.5), LogarithmicAccess()]


@pytest.fixture(params=ACCESS_FUNCTIONS, ids=lambda f: f.name)
def access_function(request):
    return request.param


@pytest.fixture(params=CASE_STUDY_FUNCTIONS, ids=lambda f: f.name)
def case_function(request):
    return request.param


def program_zoo(v: int = 16):
    """Small representative programs plus their result extractors."""
    return [
        (bitonic_sort_program(v), lambda cs: [c["key"] for c in cs]),
        (fft_dag_program(v), lambda cs: [c["x"] for c in cs]),
        (fft_recursive_program(v), lambda cs: [c["x"] for c in cs]),
        (matmul_program(v), lambda cs: [c["c"] for c in cs]),
        (broadcast_program(v), lambda cs: [c.get("bcast") for c in cs]),
        (reduce_program(v), lambda cs: [c.get("sum") for c in cs]),
        (prefix_sums_program(v), lambda cs: [c.get("prefix") for c in cs]),
        (list_ranking_program(v), lambda cs: [c["rank"] for c in cs]),
        (convolution_program(v), lambda cs: [round(c["coeff"], 9) for c in cs]),
        (random_program(v, n_steps=10, seed=3), lambda cs: [c["w"] for c in cs]),
    ]
