"""Edge cases of the simulation engines that the main suites don't pin down."""

from __future__ import annotations

import pytest

from repro.dbsp.machine import DBSPMachine
from repro.dbsp.program import Message, Program, Superstep
from repro.functions import LogarithmicAccess, PolynomialAccess
from repro.sim.brent import BrentSimulator
from repro.sim.bt_sim import BTSimulator
from repro.sim.hmm_sim import HMMSimulator

F = PolynomialAccess(0.5)


def make(v, mu, steps, ctx=None):
    return Program(v, mu, steps, make_context=ctx or (lambda pid: {"x": pid}))


class TestBrentRunBoundaries:
    """Messages crossing coarse/fine run boundaries must survive the
    handoff between the host superstep loop and the embedded Section 3
    simulations."""

    def coarse_to_fine_program(self, v=16, v_host=4):
        log_vh = 2  # log v_host

        def send_coarse(view):
            # a 0-superstep (coarse for any v_host > 1)
            view.send((view.pid + v // 2) % v, ("c", view.pid))

        def consume_fine(view):
            # a (log v)-superstep: strictly local, runs inside a fine run
            view.ctx["got"] = sorted(m.payload for m in view.inbox)

        def send_fine(view):
            # fine superstep: message within the finest 2-cluster
            view.send(view.pid ^ 1, ("f", view.pid))

        def consume_coarse(view):
            view.ctx["got2"] = sorted(m.payload for m in view.inbox)

        log_v = 4
        return make(v, 8, [
            Superstep(0, send_coarse, name="send@coarse"),
            Superstep(log_v, consume_fine, name="consume@fine"),
            Superstep(log_v - 1, send_fine, name="send@fine"),
            Superstep(0, consume_coarse, name="consume@coarse"),
        ])

    @pytest.mark.parametrize("v_host", [1, 2, 4, 8, 16])
    def test_messages_cross_run_boundaries(self, v_host):
        prog = self.coarse_to_fine_program()
        want = DBSPMachine(F).run(prog.with_global_sync()).contexts
        got = BrentSimulator(F, v_host=v_host).simulate(prog).contexts
        assert [c.get("got") for c in got] == [c.get("got") for c in want]
        assert [c.get("got2") for c in got] == [c.get("got2") for c in want]

    def test_fine_run_label_shift_respects_clusters(self):
        """A label exactly log v_host is a fine run of local 0-supersteps."""
        v, v_host = 16, 4

        def exchange(view):
            # within my (log v_host)-cluster = my host processor's guests
            base = view.pid - view.pid % (v // v_host)
            view.send(base + (view.pid + 1 - base) % (v // v_host), view.pid)

        def collect(view):
            view.ctx["got"] = list(view.received())

        prog = make(v, 8, [Superstep(2, exchange), Superstep(2, collect)])
        want = DBSPMachine(F).run(prog.with_global_sync()).contexts
        got = BrentSimulator(F, v_host=v_host).simulate(prog).contexts
        assert [c.get("got") for c in got] == [c.get("got") for c in want]


class TestSimulatorOverrides:
    def test_hmm_initial_contexts_and_pending(self):
        def collect(view):
            view.ctx["got"] = list(view.received())

        prog = make(4, 4, [Superstep(0, collect)])
        contexts = [{"x": 10 * p} for p in range(4)]
        pending = [[Message(3, "hello")] if p == 0 else [] for p in range(4)]
        res = HMMSimulator(F).simulate(
            prog, initial_contexts=contexts, initial_pending=pending
        )
        assert res.contexts[0]["got"] == ["hello"]
        assert res.contexts[0]["x"] == 0  # the provided context object
        assert res.contexts is not None

    def test_hmm_invalid_label_set_rejected(self):
        prog = make(8, 4, [Superstep(0, lambda v: None)])
        with pytest.raises(ValueError):
            HMMSimulator(F).simulate(prog, label_set=[0, 5])
        with pytest.raises(ValueError):
            BTSimulator(F).simulate(prog, label_set=[1, 3])

    def test_trace_cap_respected(self):
        from repro.testing import random_program

        prog = random_program(16, labels=[4] * 4, seed=0)
        sim = HMMSimulator(F, record_trace=True, max_trace_rounds=5)
        res = sim.simulate(prog)
        assert len(res.trace) == 5
        assert res.rounds > 5

    def test_bt_layout_cap_respected(self):
        from repro.testing import random_program

        prog = random_program(16, labels=[4] * 4, seed=0)
        sim = BTSimulator(F, record_layout=True, max_layout_snapshots=3)
        res = sim.simulate(prog)
        assert len(res.layout_trace) == 3


class TestDegeneratePrograms:
    def test_empty_program(self):
        prog = make(4, 4, [])
        res = DBSPMachine(F).run(prog)
        assert res.total_time == 0.0
        # the engines normalize with a global sync and still terminate
        assert HMMSimulator(F).simulate(prog).contexts is not None
        assert BTSimulator(F).simulate(prog).contexts is not None
        assert BrentSimulator(F, v_host=2).simulate(prog).contexts is not None

    def test_single_superstep_single_processor(self):
        prog = make(1, 4, [Superstep(0, lambda v: v.charge(5))])
        res = HMMSimulator(F).simulate(prog)
        assert res.time > 0

    def test_message_to_self(self):
        def selfsend(view):
            view.send(view.pid, "me")

        def collect(view):
            view.ctx["got"] = list(view.received())

        prog = make(4, 4, [Superstep(2, selfsend), Superstep(0, collect)])
        for engine in (
            lambda: DBSPMachine(F).run(prog.with_global_sync()).contexts,
            lambda: HMMSimulator(F).simulate(prog).contexts,
            lambda: BTSimulator(F).simulate(prog).contexts,
            lambda: BrentSimulator(F, v_host=2).simulate(prog).contexts,
        ):
            assert [c["got"] for c in engine()] == [["me"]] * 4

    def test_all_engines_on_linear_access(self):
        from repro.testing import random_program

        from repro.functions import LinearAccess

        f = LinearAccess()
        prog = random_program(8, n_steps=4, seed=9)
        want = [c["w"] for c in DBSPMachine(f).run(prog.with_global_sync()).contexts]
        assert [c["w"] for c in HMMSimulator(f).simulate(prog).contexts] == want
        assert [c["w"] for c in
                BrentSimulator(f, v_host=2).simulate(prog).contexts] == want


class TestCostMonotonicity:
    def test_hmm_sim_time_monotone_in_access_function(self):
        """A pointwise-larger f can only make the simulation dearer."""
        from repro.testing import random_program

        prog = random_program(32, n_steps=6, seed=10)
        t3 = HMMSimulator(PolynomialAccess(0.3)).simulate(prog).time
        t5 = HMMSimulator(PolynomialAccess(0.5)).simulate(prog).time
        t7 = HMMSimulator(PolynomialAccess(0.7)).simulate(prog).time
        assert t3 < t5 < t7

    def test_guest_time_monotone_in_bandwidth_function(self):
        from repro.testing import random_program

        prog = random_program(32, n_steps=6, seed=11)
        t_log = DBSPMachine(LogarithmicAccess()).run(prog.with_global_sync())
        t_pol = DBSPMachine(PolynomialAccess(0.5)).run(prog.with_global_sync())
        assert t_log.total_time < t_pol.total_time  # log(x) < sqrt(x) here

    def test_more_local_work_costs_more_everywhere(self):
        from repro.testing import random_program

        light = random_program(16, n_steps=4, seed=12, local_work=1)
        heavy = random_program(16, n_steps=4, seed=12, local_work=40)
        for engine in (
            lambda p: DBSPMachine(F).run(p.with_global_sync()).total_time,
            lambda p: HMMSimulator(F).simulate(p).time,
            lambda p: BTSimulator(F).simulate(p).time,
            lambda p: BrentSimulator(F, v_host=4).simulate(p).time,
        ):
            assert engine(heavy) > engine(light)
