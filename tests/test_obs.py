"""The observability layer: tracer, counters, exporters (repro.obs)."""

from __future__ import annotations

import pytest

from repro.obs.counters import NULL_COUNTERS, Counters, NullCounters
from repro.obs.export import (
    render_breakdown,
    render_profile,
    spans_from_jsonl,
    spans_to_jsonl,
)
from repro.obs.trace import NULL_TRACER, OTHER, NullTracer, SpanRecord, Tracer


class ManualClock:
    """A hand-cranked charged-cost clock for deterministic span tests."""

    def __init__(self) -> None:
        self.time = 0.0

    def __call__(self) -> float:
        return self.time

    def advance(self, amount: float) -> None:
        self.time += amount


class TestTracer:
    def test_flat_span_costs(self):
        clock = ManualClock()
        tracer = Tracer(clock)
        tracer.open("a", "compute")
        clock.advance(5.0)
        tracer.close()
        tracer.open("b", "delivery")
        clock.advance(3.0)
        tracer.close()
        assert tracer.phase_totals() == {"compute": 5.0, "delivery": 3.0}
        assert tracer.counts == {"compute": 1, "delivery": 1}

    def test_nested_self_cost_attribution(self):
        clock = ManualClock()
        tracer = Tracer(clock)
        tracer.open("round", "outer")  # 2 before, 4 inside child, 1 after
        clock.advance(2.0)
        tracer.open("inner", "inner")
        clock.advance(4.0)
        tracer.close()
        clock.advance(1.0)
        tracer.close()
        # parent self cost excludes the child's 4.0
        assert tracer.phase_totals() == {"outer": 3.0, "inner": 4.0}
        assert sum(tracer.phase_totals().values()) == 7.0

    def test_category_inheritance(self):
        clock = ManualClock()
        tracer = Tracer(clock)
        tracer.open("DELIVER", "delivery")
        tracer.open("sort")  # no category: inherits "delivery"
        clock.advance(7.0)
        tracer.close()
        tracer.close()
        assert tracer.phase_totals() == {"delivery": 7.0}

    def test_uncategorized_root_goes_to_other(self):
        clock = ManualClock()
        tracer = Tracer(clock)
        tracer.open("mystery")
        clock.advance(2.0)
        tracer.close()
        assert tracer.phase_totals() == {OTHER: 2.0}

    def test_zero_other_is_dropped(self):
        clock = ManualClock()
        tracer = Tracer(clock)
        tracer.open("wrapper")  # zero self cost, no category
        tracer.open("work", "compute")
        clock.advance(1.0)
        tracer.close()
        tracer.close()
        assert tracer.phase_totals() == {"compute": 1.0}
        assert tracer.phase_totals(drop_empty_other=False) == {
            "compute": 1.0,
            OTHER: 0.0,
        }

    def test_record_mode_builds_tree(self):
        clock = ManualClock()
        tracer = Tracer(clock, record=True)
        with tracer.span("round", "outer", attrs={"k": 1}):
            clock.advance(2.0)
            with tracer.span("inner", "inner"):
                clock.advance(4.0)
        spans = tracer.spans
        assert [s.name for s in spans] == ["round", "inner"]
        root, child = spans
        assert (root.parent, root.depth) == (-1, 0)
        assert (child.parent, child.depth) == (root.index, 1)
        assert root.cost == 6.0 and root.self_cost == 2.0
        assert child.cost == 4.0 and child.self_cost == 4.0
        assert root.attrs == {"k": 1}
        assert (root.start, root.end) == (0.0, 6.0)

    def test_max_spans_truncates_recording_not_totals(self):
        clock = ManualClock()
        tracer = Tracer(clock, record=True, max_spans=2)
        for _ in range(5):
            tracer.open("step", "compute")
            clock.advance(1.0)
            tracer.close()
        assert len(tracer.spans) == 2
        assert tracer.truncated_spans == 3
        assert tracer.phase_totals() == {"compute": 5.0}

    def test_assert_closed(self):
        tracer = Tracer(ManualClock())
        tracer.open("a", "x")
        tracer.open("b", "y")
        with pytest.raises(AssertionError, match="a > b"):
            tracer.assert_closed()
        tracer.close()
        tracer.close()
        tracer.assert_closed()

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.open("x", "y")
        NULL_TRACER.close()
        with NULL_TRACER.span("z", "w"):
            pass
        assert NULL_TRACER.phase_totals() == {}
        assert NULL_TRACER.spans == []
        NULL_TRACER.assert_closed()
        assert isinstance(NULL_TRACER, NullTracer)


class TestCounters:
    def test_add_and_get(self):
        c = Counters()
        c.add("ops")
        c.add("ops", 4)
        c.add("words_moved", 128)
        assert c.get("ops") == 5
        assert c.get("words_moved") == 128
        assert c.get("missing") == 0 and c.get("missing", -1) == -1

    def test_merge_and_snapshot_sorted(self):
        a, b = Counters(), Counters()
        a.add("zeta", 1)
        a.add("alpha", 2)
        b.add("zeta", 10)
        b.add("mid", 5)
        a.merge(b)
        a.merge({"alpha": 1})  # plain dicts fold in too
        assert a.snapshot() == {"alpha": 3, "mid": 5, "zeta": 11}
        assert list(a.snapshot()) == ["alpha", "mid", "zeta"]

    def test_null_counters_are_inert(self):
        NULL_COUNTERS.add("ops", 100)
        assert NULL_COUNTERS.get("ops") == 0
        assert NULL_COUNTERS.snapshot() == {}
        assert NULL_COUNTERS.enabled is False
        assert isinstance(NULL_COUNTERS, NullCounters)


def _sample_spans() -> list[SpanRecord]:
    clock = ManualClock()
    tracer = Tracer(clock, record=True)
    for _ in range(2):
        tracer.open("round", None, {"h": 3})
        clock.advance(1.0)
        tracer.open("COMPUTE", "compute")
        clock.advance(2.0)
        tracer.close()
        tracer.open("DELIVER", "delivery")
        tracer.open("sort")
        clock.advance(5.0)
        tracer.close()
        tracer.close()
        tracer.close()
    return tracer.spans


class TestExport:
    def test_jsonl_round_trip(self):
        spans = _sample_spans()
        text = spans_to_jsonl(spans)
        assert len(text.splitlines()) == len(spans)
        assert spans_from_jsonl(text) == spans

    def test_jsonl_skips_blank_lines(self):
        spans = _sample_spans()
        text = "\n\n" + spans_to_jsonl(spans) + "\n\n"
        assert spans_from_jsonl(text) == spans

    def test_span_json_omits_empty_attrs(self):
        spans = _sample_spans()
        assert "attrs" in spans[0].to_json()  # round carries {"h": 3}
        assert "attrs" not in spans[1].to_json()

    def test_render_profile_aggregates_by_name_path(self):
        spans = _sample_spans()
        text = render_profile(spans, total=16.0, title="sample")
        assert "sample" in text
        # the two rounds fold into one x2 line; nesting is indented
        assert "round" in text and "x2" in text
        assert "  COMPUTE" in text and "    sort" in text
        assert "total charged time" in text
        assert "16.0" in text

    def test_render_profile_infers_total_from_roots(self):
        spans = _sample_spans()
        text = render_profile(spans)
        assert "100.0%" in text  # the root line covers the whole run

    def test_render_breakdown(self):
        text = render_breakdown({"compute": 4.0, "delivery": 12.0}, 16.0)
        lines = text.splitlines()
        assert lines[1].startswith("delivery")  # sorted by cost, descending
        assert "75.0%" in lines[1]
        assert lines[-1].startswith("total")


class TestCountersTraceLevel:
    """``trace="counters"``: event counters on, span layer off."""

    @pytest.mark.parametrize("engine,opts", [
        ("hmm", {}), ("bt", {}), ("brent", {"v_host": 4}),
    ])
    def test_counters_match_phases_without_breakdown(self, engine, opts):
        import repro

        kw = dict(engine=engine, f="x^0.5", v=8, baseline=False, **opts)
        at_counters = repro.run("sort", trace="counters", **kw)
        at_phases = repro.run("sort", trace="phases", **kw)
        assert at_counters.time == at_phases.time
        assert at_counters.counters == at_phases.counters
        assert at_counters.counters  # non-empty, unlike trace="off"
        assert at_counters.breakdown == {}
        assert at_counters.trace == []

    def test_unknown_level_still_rejected(self):
        from repro.sim.hmm_sim import HMMSimulator
        from repro.functions import PolynomialAccess

        with pytest.raises(ValueError, match="trace level"):
            HMMSimulator(PolynomialAccess(0.5), trace="count")
