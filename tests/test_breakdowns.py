"""Phase-attributed cost breakdowns of the simulation engines."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.functions import PolynomialAccess
from repro.sim.bt_sim import BTSimulator
from repro.sim.hmm_sim import HMMSimulator
from repro.testing import random_program

F = PolynomialAccess(0.5)


class TestHMMBreakdown:
    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=15, deadline=None)
    def test_phases_partition_total_time(self, seed):
        prog = random_program(32, n_steps=6, seed=seed)
        res = HMMSimulator(F).simulate(prog)
        assert sum(res.breakdown.values()) == pytest.approx(res.time)
        assert all(v >= 0 for v in res.breakdown.values())

    def test_expected_phase_keys(self):
        res = HMMSimulator(F).simulate(random_program(8, n_steps=3, seed=0))
        assert set(res.breakdown) == {
            "local", "cycling", "delivery", "swaps", "dummies"
        }

    def test_steady_profile_has_no_swap_cost(self):
        """Consecutive equal labels never trigger step 4."""
        prog = random_program(16, labels=[0, 0, 0, 0], seed=1)
        res = HMMSimulator(F).simulate(prog)
        assert res.breakdown["swaps"] == 0.0
        assert res.breakdown["dummies"] == 0.0

    def test_oscillating_profile_pays_swaps(self):
        prog = random_program(16, labels=[4, 0, 4, 0], seed=1)
        res = HMMSimulator(F).simulate(prog, label_set=[0, 2, 4])
        assert res.breakdown["swaps"] > 0.0
        assert res.breakdown["dummies"] > 0.0

    def test_local_phase_tracks_charged_work(self):
        light = HMMSimulator(F).simulate(
            random_program(16, n_steps=4, seed=2, local_work=1))
        heavy = HMMSimulator(F).simulate(
            random_program(16, n_steps=4, seed=2, local_work=50))
        assert heavy.breakdown["local"] > 10 * light.breakdown["local"]
        # the memory-movement phases are workload-independent
        assert heavy.breakdown["cycling"] == pytest.approx(
            light.breakdown["cycling"])

    def test_deep_labels_cut_cycling_cost(self):
        v = 64
        coarse = random_program(v, labels=[0] * 6, seed=3)
        deep = random_program(v, labels=[5] * 6, seed=3)
        c = HMMSimulator(F).simulate(coarse).breakdown["cycling"]
        d = HMMSimulator(F).simulate(deep).breakdown["cycling"]
        assert d < c / 2


class TestBTBreakdown:
    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=10, deadline=None)
    def test_phases_partition_total_time(self, seed):
        prog = random_program(16, n_steps=5, seed=seed)
        res = BTSimulator(F).simulate(prog)
        assert sum(res.breakdown.values()) == pytest.approx(res.time)

    def test_expected_phase_keys(self):
        res = BTSimulator(F).simulate(random_program(8, n_steps=3, seed=0))
        assert set(res.breakdown) == {
            "pack_unpack", "compute", "delivery", "swaps", "dummies"
        }

    def test_delivery_dominates_for_fine_grained_programs(self):
        """Theorem 12's discussion: the sorting in Step 2 is the dominant
        term of the BT simulation."""
        prog = random_program(64, n_steps=8, seed=4)
        res = BTSimulator(F).simulate(prog)
        assert res.breakdown["delivery"] == max(res.breakdown.values())

    def test_transpose_delivery_is_cheaper(self):
        prog = random_program(32, n_steps=6, seed=5)
        generic = BTSimulator(F, sort="ams").simulate(prog)
        regular = BTSimulator(F, sort="transpose").simulate(prog)
        assert regular.breakdown["delivery"] < generic.breakdown["delivery"]
        # everything else is the same machinery
        assert regular.breakdown["compute"] == pytest.approx(
            generic.breakdown["compute"])
