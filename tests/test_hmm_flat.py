"""Hierarchy-oblivious baselines: correctness and the predicted penalties."""

from __future__ import annotations

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.functions import ConstantAccess, LogarithmicAccess, PolynomialAccess
from repro.hmm.flat import hmm_flat_fft, hmm_flat_matmul, hmm_flat_mergesort
from repro.hmm.machine import HMMMachine


class TestFlatMergesort:
    def run(self, data, f=ConstantAccess()):
        n = len(data)
        machine = HMMMachine(f, max(2 * n, 2))
        machine.mem[:n] = list(data)
        cost = hmm_flat_mergesort(machine, n)
        return machine.mem[:n], cost

    def test_sorts(self):
        rng = random.Random(0)
        data = [rng.randrange(10**6) for _ in range(777)]
        out, _ = self.run(data)
        assert out == sorted(data)

    @given(st.lists(st.integers(-100, 100), max_size=60))
    @settings(max_examples=30)
    def test_matches_sorted(self, data):
        out, _ = self.run(data)
        assert out == sorted(data)

    def test_cost_shape_n_fn_logn(self):
        f = PolynomialAccess(0.5)
        rng = random.Random(1)
        ratios = []
        for n in (1 << 8, 1 << 10, 1 << 12):
            data = [rng.random() for _ in range(n)]
            _, cost = self.run(data, f)
            ratios.append(cost / (n * f(n) * math.log2(n)))
        assert max(ratios) / min(ratios) < 2.0

    def test_memory_requirement(self):
        with pytest.raises(ValueError):
            hmm_flat_mergesort(HMMMachine(ConstantAccess(), 10), 8)


class TestFlatFFT:
    def run(self, values, f=ConstantAccess()):
        n = len(values)
        machine = HMMMachine(f, n)
        machine.mem[:n] = list(values)
        cost = hmm_flat_fft(machine, n)
        return machine.mem[:n], cost

    @pytest.mark.parametrize("n", [2, 8, 64, 256])
    def test_matches_numpy(self, n):
        rng = random.Random(n)
        vals = [complex(rng.uniform(-1, 1), rng.uniform(-1, 1)) for _ in range(n)]
        out, _ = self.run(vals)
        assert np.allclose(np.array(out), np.fft.fft(np.array(vals)))

    def test_cost_shape(self):
        f = LogarithmicAccess()
        ratios = []
        for n in (1 << 8, 1 << 10, 1 << 12):
            vals = [complex(k % 5, 0) for k in range(n)]
            _, cost = self.run(vals, f)
            ratios.append(cost / (n * f(n) * math.log2(n)))
        assert max(ratios) / min(ratios) < 2.0

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            hmm_flat_fft(HMMMachine(ConstantAccess(), 12), 12)


class TestFlatMatmul:
    def run(self, A, B, f=ConstantAccess()):
        side = len(A)
        s = side * side
        machine = HMMMachine(f, 3 * s)
        machine.mem[0:s] = [A[i][j] for i in range(side) for j in range(side)]
        machine.mem[s : 2 * s] = [
            B[i][j] for i in range(side) for j in range(side)
        ]
        cost = hmm_flat_matmul(machine, side)
        C = [machine.mem[2 * s + i * side : 2 * s + (i + 1) * side]
             for i in range(side)]
        return C, cost

    @pytest.mark.parametrize("side", [1, 2, 4, 8])
    def test_matches_numpy(self, side):
        rng = random.Random(side)
        A = [[rng.randrange(10) for _ in range(side)] for _ in range(side)]
        B = [[rng.randrange(10) for _ in range(side)] for _ in range(side)]
        C, _ = self.run(A, B)
        assert np.allclose(np.array(C), np.array(A) @ np.array(B))

    def test_cost_shape_cubic_times_f(self):
        f = PolynomialAccess(0.5)
        ratios = []
        for side in (8, 16, 32):
            A = [[1] * side for _ in range(side)]
            _, cost = self.run(A, A, f)
            ratios.append(cost / (side**3 * f(side * side)))
        assert max(ratios) / min(ratios) < 2.0


class TestObliviousPenalty:
    def test_flat_sort_pays_a_growing_log_factor(self):
        """The motivation of the paper, measured: the flat sort's cost per
        n^{1.5} grows (like log n) on the x^0.5-HMM while the derived
        algorithm's is flat — here we check the flat side."""
        f = PolynomialAccess(0.5)
        rng = random.Random(2)
        normalized = []
        for n in (1 << 8, 1 << 11, 1 << 14):
            machine = HMMMachine(f, 2 * n)
            machine.mem[:n] = [rng.random() for _ in range(n)]
            cost = hmm_flat_mergesort(machine, n)
            normalized.append(cost / n**1.5)
        # log n grows 8 -> 14: the normalized cost should track it
        assert normalized[-1] > 1.5 * normalized[0]
        assert all(b > a for a, b in zip(normalized, normalized[1:]))
