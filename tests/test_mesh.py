"""The mesh-of-HMMs contrast model (Bilardi-Preparata M_1)."""

from __future__ import annotations

import pytest

from repro.functions import two_c_uniformity
from repro.mesh.model import (
    MeshAccess,
    MeshMachine,
    mesh_native_time,
    mesh_simulation_time,
)


class TestMeshAccess:
    def test_module_staircase(self):
        f = MeshAccess(4)
        assert f(0) == 1 and f(3) == 1
        assert f(4) == 2 and f(7) == 2
        assert f(8) == 3

    def test_2c_uniform(self):
        assert two_c_uniformity(MeshAccess(64), 1 << 16) <= 2.0 + 1e-9

    def test_bad_module_size(self):
        with pytest.raises(ValueError):
            MeshAccess(0)


class TestMeshMachine:
    def test_scan_costs_grow_with_depth(self):
        node = MeshMachine(m=8, contexts=4)
        costs = []
        for j in range(4):
            before = node.time
            node.scan_context(j)
            costs.append(node.time - before)
        assert costs == sorted(costs)
        assert costs[0] == pytest.approx(8.0)  # top module: 8 x cost 1
        assert costs[3] == pytest.approx(8.0 * 4)  # 4th module: cost 4

    def test_neighbour_message_costs_far_access(self):
        node = MeshMachine(m=8, contexts=4)
        node.neighbour_message()
        assert node.time == pytest.approx(4.0)  # f(31) = ceil(32/8)

    def test_cycle_never_cheaper_than_constant_factor(self):
        node = MeshMachine(m=8, contexts=8)
        node.cycle_context(7)
        cycled = node.time
        node.time = 0.0
        node.scan_context(7)
        scanned = node.time
        assert 0.5 < cycled / scanned < 4.0


class TestContrast:
    def test_native_time_linear_in_steps(self):
        assert mesh_native_time(64, 16, 10) == pytest.approx(
            10 * mesh_native_time(64, 16, 1)
        )

    def test_simulation_superlinear_slowdown(self):
        """The [16,18] phenomenon: slowdown/(n/p) — Lambda — grows with
        n/p for the lockstep workload, unlike D-BSP's Theorem 10."""
        n, m, steps = 256, 16, 4
        native = mesh_native_time(n, m, steps)
        lambdas = []
        for p in (128, 32, 8, 2):
            host = mesh_simulation_time(n, p, m, steps)
            slowdown = host / native
            lambdas.append(slowdown / (n / p))
        assert all(b > a for a, b in zip(lambdas, lambdas[1:])), lambdas
        assert lambdas[-1] > 4 * lambdas[0]

    def test_both_schedules_same_order(self):
        a = mesh_simulation_time(64, 8, 16, 2, schedule="cycle")
        b = mesh_simulation_time(64, 8, 16, 2, schedule="in-place")
        assert 0.2 < a / b < 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            mesh_simulation_time(64, 7, 16, 1)
        with pytest.raises(ValueError):
            mesh_simulation_time(64, 8, 16, 1, schedule="bogus")
