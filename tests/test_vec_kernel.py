"""The vectorized superstep kernel: bit-identity, composition, contract.

The ``vec`` engine's whole claim is *exact* equivalence — ``==`` on
charged time, counters, breakdowns, contexts, and span tapes, not
``approx``.  These tests pin that claim against every scalar engine,
across trace levels, under ``--jobs`` folding, inside Brent fine runs,
and with fault injection armed; they also exercise the array-kernel
contract errors and the primitives (`deliver_sorted`, the plan cache,
the access-function ufunc cache) the kernel is built from.
"""

from __future__ import annotations

import warnings
from bisect import insort

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dbsp.machine import DBSPMachine
from repro.dbsp.program import Message
from repro.engines import ENGINES, build_program, run
from repro.functions import (
    AccessFunction,
    LogarithmicAccess,
    PolynomialAccess,
    VectorizationWarning,
)
from repro.sim.brent import BrentSimulator
from repro.sim.hmm_sim import HMMSimulator
from repro.sim.hmm_vec import plan_cache_info
from repro.sim.kernel import ArrayView, deliver_sorted, interleave2, ranges_concat
from repro.testing import random_program
from tests.conftest import ACCESS_FUNCTIONS, program_zoo

F = PolynomialAccess(0.5)


def scalar_vs_vec(prog, f=F, trace="counters", **opts):
    """Run one program under both kernels with identical options."""
    s = HMMSimulator(f, kernel="scalar", trace=trace, **opts).simulate(prog)
    v = HMMSimulator(f, kernel="vec", trace=trace, **opts).simulate(prog)
    return s, v


def assert_identical(s, v):
    """``==`` everywhere — the vec kernel promises bit-identity."""
    assert v.time == s.time
    assert v.contexts == s.contexts
    assert v.counters == s.counters
    assert v.breakdown == s.breakdown
    assert v.trace == s.trace


# ------------------------------------------------------------ equivalence
class TestZooEquivalence:
    """Every library program, every trace level, several access functions."""

    @pytest.mark.parametrize("trace", ["counters", "phases", "full"])
    def test_zoo_bit_identical(self, trace):
        for prog, _ in program_zoo(16):
            s, v = scalar_vs_vec(prog, trace=trace)
            assert_identical(s, v)

    @pytest.mark.parametrize("f", ACCESS_FUNCTIONS, ids=lambda f: f.name)
    def test_zoo_across_access_functions(self, f):
        for prog, _ in program_zoo(16)[:4]:  # the algorithmic programs
            s, v = scalar_vs_vec(prog, f=f)
            assert_identical(s, v)

    @pytest.mark.parametrize("name", ["sort", "fft-rec", "fft-dag"])
    def test_vec_engine_matches_all_scalar_engines(self, name):
        """The registry-level check: vec agrees with hmm exactly and
        with every other engine on the computed contexts."""
        vec = run(name, engine="vec", v=16, baseline=False)
        hmm = run(name, engine="hmm", v=16, baseline=False)
        assert vec.time == hmm.time
        assert vec.counters == hmm.counters
        assert vec.breakdown == hmm.breakdown
        assert vec.contexts == hmm.contexts
        for other in ("direct", "bt", "brent"):
            res = run(name, engine=other, v=16, baseline=False)
            assert vec.contexts == res.contexts, other

    def test_vec_engine_reports_kernel_in_meta(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        res = run("sort", engine="vec", v=16, baseline=False)
        assert res.meta["kernel"] == "vec"
        scalar = run("sort", engine="hmm", v=16, baseline=False)
        assert scalar.meta["kernel"] == "scalar"


class TestPropertyEquivalence:
    """Seeded random programs (scalar bodies → the per-pid vec path)."""

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        log_v=st.integers(2, 5),
        n_steps=st.integers(1, 6),
    )
    def test_random_programs_bit_identical(self, seed, log_v, n_steps):
        prog = random_program(1 << log_v, n_steps=n_steps, seed=seed)
        s, v = scalar_vs_vec(prog, trace="full")
        assert_identical(s, v)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_programs_match_direct(self, seed):
        prog = random_program(16, n_steps=4, seed=seed)
        want = [c["w"] for c in DBSPMachine(F).run(prog.with_global_sync()).contexts]
        v = HMMSimulator(F, kernel="vec").simulate(prog)
        assert [c["w"] for c in v.contexts] == want


class TestComposition:
    """The kernel composes with --jobs folding and Brent fine runs."""

    @pytest.mark.parametrize("name", ["sort", "fft-rec"])
    def test_jobs_two_tape_identical(self, name):
        prog = build_program(name, 16)
        serial = HMMSimulator(F, kernel="scalar", trace="full").simulate(prog)
        par = HMMSimulator(
            F, kernel="vec", parallel=2, trace="full"
        ).simulate(prog)
        assert_identical(serial, par)

    @pytest.mark.parametrize("seed", [11, 12])
    def test_jobs_two_random_program(self, seed):
        prog = random_program(16, n_steps=4, seed=seed)
        serial = HMMSimulator(F, kernel="scalar").simulate(prog)
        par = HMMSimulator(F, kernel="vec", parallel=2).simulate(prog)
        assert_identical(serial, par)

    def test_brent_fine_runs_use_vec_identically(self):
        prog = build_program("sort", 16)
        scalar = BrentSimulator(F, v_host=4, kernel="scalar").simulate(prog)
        vec = BrentSimulator(F, v_host=4, kernel="vec").simulate(prog)
        assert vec.time == scalar.time
        assert vec.contexts == scalar.contexts
        assert vec.counters == scalar.counters


class TestKernelSelection:
    def test_default_is_scalar(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert HMMSimulator(F).kernel == "scalar"

    def test_env_var_selects_vec(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "vec")
        assert HMMSimulator(F).kernel == "vec"
        # an explicit kernel= wins over the environment
        assert HMMSimulator(F, kernel="scalar").kernel == "scalar"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            HMMSimulator(F, kernel="simd")

    def test_vec_engine_registered(self):
        assert "vec" in ENGINES
        assert "vec" in ENGINES["vec"].description.lower()

    def test_scalar_fallback_modes_stay_identical(self):
        """Modes execute_vec does not cover (full invariant checks)
        silently fall back to scalar — results must be unchanged."""
        prog = build_program("sort", 16)
        s = HMMSimulator(F, kernel="scalar", check_invariants="full").simulate(prog)
        v = HMMSimulator(F, kernel="vec", check_invariants="full").simulate(prog)
        assert_identical(s, v)


class TestPlanCache:
    def test_plan_is_reused_and_bounded(self):
        prog = build_program("sort", 16)
        HMMSimulator(F, kernel="vec").simulate(prog)
        size_after_first = plan_cache_info()["size"]
        HMMSimulator(F, kernel="vec").simulate(prog)
        info = plan_cache_info()
        assert info["size"] == size_after_first  # second run hit the cache
        assert info["size"] <= info["max"]

    def test_cache_never_exceeds_max(self):
        for v in (4, 8, 16, 32):
            for seed in (1, 2, 3):
                prog = random_program(v, n_steps=2, seed=seed)
                HMMSimulator(F, kernel="vec").simulate(prog)
        info = plan_cache_info()
        assert info["size"] <= info["max"]


# ----------------------------------------------------------------- chaos
class TestChaosCleanRuns:
    """REPRO_FAULTS armed: the vec kernel keeps its bit-identity promise
    (mirrors TestGuardsStayQuietOnCorrectEngine for the scalar engines)."""

    @pytest.mark.parametrize("seed", [1, 3, 5, 7])
    def test_faults_env_does_not_perturb_results(
        self, seed, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(
            "REPRO_FAULTS", f"seed={seed},kill=1.0,dir={tmp_path / 'marks'}"
        )
        prog = random_program(16, n_steps=4, seed=seed)
        want = [c["w"] for c in DBSPMachine(F).run(prog.with_global_sync()).contexts]
        s, v = scalar_vs_vec(prog, trace="full")
        assert_identical(s, v)
        assert [c["w"] for c in v.contexts] == want


# ------------------------------------------------------------ primitives
class TestDeliverSorted:
    def _reference(self, n_pids, outgoing, pending=None):
        pending = pending or [[] for _ in range(n_pids)]
        for dest, msg in outgoing:
            insort(pending[dest], msg)
        return pending

    @settings(max_examples=50, deadline=None)
    @given(
        n=st.integers(0, 60),
        seed=st.integers(0, 2**16),
    )
    def test_matches_insort_loop(self, n, seed):
        rng = np.random.default_rng(seed)
        n_pids = 8
        outgoing = [
            (int(rng.integers(n_pids)), Message(int(rng.integers(n_pids)), i))
            for i in range(n)
        ]
        want = self._reference(n_pids, outgoing)
        got = [[] for _ in range(n_pids)]
        deliver_sorted(got, list(outgoing))
        assert got == want

    def test_nonempty_inbox_fallback_keeps_tie_order(self):
        """Pre-existing messages with equal src sort before the batch,
        the insort_right tie order."""
        n_pids, src = 4, 2
        pending = [[Message(src, "old")] for _ in range(n_pids)]
        outgoing = [(d, Message(src, f"new{i}")) for i in range(20) for d in range(n_pids)]
        want = self._reference(
            n_pids, outgoing, [list(box) for box in pending]
        )
        deliver_sorted(pending, outgoing)
        assert pending == want

    def test_small_batch_uses_insort_path(self):
        pending = [[], []]
        deliver_sorted(pending, [(1, Message(0, "a")), (0, Message(1, "b"))])
        assert pending == [[Message(1, "b")], [Message(0, "a")]]


class TestArrayViewContract:
    def _view(self, n=4, v=4, mu=2, label=0):
        return ArrayView(
            np.arange(n),
            v,
            mu,
            label,
            {"key": np.zeros(n)},
            None,
            None,
        )

    def test_send_must_be_full_width(self):
        view = self._view()
        with pytest.raises(ValueError, match="full-width"):
            view.send(np.array([0, 1]), np.zeros(2))

    def test_send_rejects_out_of_range_dest(self):
        view = self._view()
        with pytest.raises(ValueError, match="destination outside"):
            view.send(np.array([0, 1, 2, 4]), np.zeros(4))

    def test_send_rejects_cross_cluster(self):
        view = self._view(label=1)  # clusters {0,1} and {2,3}
        with pytest.raises(ValueError, match="cluster boundary"):
            view.send(np.array([2, 3, 0, 1]), np.zeros(4))

    def test_send_respects_mu(self):
        view = self._view(mu=1)
        dest = np.array([1, 0, 3, 2])
        view.send(dest, np.zeros(4))
        with pytest.raises(ValueError, match="mu=1"):
            view.send(dest, np.zeros(4))

    def test_negative_charge_rejected(self):
        view = self._view()
        with pytest.raises(ValueError, match="negative"):
            view.charge(-1.0)
        with pytest.raises(ValueError, match="negative"):
            view.charge(np.array([1.0, 1.0, -0.5, 1.0]))

    def test_ranges_concat_matches_python(self):
        starts = [3, 0, 7, 7]
        lengths = [2, 0, 3, 1]
        want = np.concatenate(
            [np.arange(s, s + l) for s, l in zip(starts, lengths)]
        )
        assert (ranges_concat(starts, lengths) == want).all()
        assert ranges_concat([], []).size == 0

    def test_interleave2(self):
        out = interleave2(np.array([1.0, 3.0]), np.array([2.0, 4.0]))
        assert out.tolist() == [1.0, 2.0, 3.0, 4.0]


# ------------------------------------------------- access-function ufunc
class TestEvaluateFallbackCache:
    class _Slow(AccessFunction):
        name = "slow"

        def __call__(self, x: float) -> float:
            return float(x) ** 0.5

    def test_warns_exactly_once_per_instance(self):
        f = self._Slow()
        xs = np.arange(4.0)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = f.evaluate(xs)
            second = f.evaluate(xs)
        vec_warnings = [
            w for w in caught if issubclass(w.category, VectorizationWarning)
        ]
        assert len(vec_warnings) == 1
        assert (first == second).all()
        assert (first == np.sqrt(xs)).all()

    def test_fresh_instance_warns_again(self):
        with pytest.warns(VectorizationWarning):
            self._Slow().evaluate(np.arange(3.0))

    def test_overriding_subclasses_stay_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", VectorizationWarning)
            PolynomialAccess(0.5).evaluate(np.arange(8.0))
            LogarithmicAccess().evaluate(np.arange(1.0, 9.0))
