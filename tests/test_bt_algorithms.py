"""BT algorithm substrate: touching (Fact 2), sorting, transposition."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bt.machine import BTMachine
from repro.bt.permutation import (
    blocked_transpose_supported,
    bt_rational_permutation_bound,
    bt_transpose_permute,
)
from repro.bt.sorting import bt_merge_sort, bt_sorting_bound
from repro.bt.touching import bt_touch_all, bt_touching_bound
from repro.functions import LogarithmicAccess, PolynomialAccess
from repro.hmm.machine import HMMMachine
from repro.hmm.touching import hmm_touch_all


class TestTouching:
    def test_digest_matches_sum(self):
        m = BTMachine(PolynomialAccess(0.5), 64)
        m.mem[32:64] = list(range(32))
        bt_touch_all(m, 32)
        assert m.mem[0] == sum(range(32))

    @pytest.mark.parametrize("f", [PolynomialAccess(0.5), LogarithmicAccess()],
                             ids=["x^0.5", "log"])
    def test_fact2_cost_shape(self, f):
        """Touching costs Theta(n f*(n)) — flat ratio over a sweep."""
        ratios = []
        for n in (1 << 9, 1 << 12, 1 << 15):
            m = BTMachine(f, 2 * n)
            m.mem[n : 2 * n] = [1] * n
            cost = bt_touch_all(m, n)
            ratios.append(cost / bt_touching_bound(f, n))
        assert max(ratios) / min(ratios) < 2.0

    def test_bt_beats_hmm_touching(self):
        """The added power of block transfer (Fact 2 vs Fact 1)."""
        f = PolynomialAccess(0.5)
        n = 1 << 15
        bt = BTMachine(f, 2 * n)
        bt.mem[n : 2 * n] = [1] * n
        bt_cost = bt_touch_all(bt, n)
        hmm = HMMMachine(f, n)
        hmm.mem[:n] = [1] * n
        hmm_cost = hmm_touch_all(hmm, n)
        assert bt_cost < hmm_cost / 10

    def test_insufficient_memory_rejected(self):
        with pytest.raises(ValueError):
            bt_touch_all(BTMachine(PolynomialAccess(0.5), 10), 8)


class TestMergeSort:
    def run_sort(self, data, f=PolynomialAccess(0.5)):
        m = len(data)
        base = max(64, m)
        machine = BTMachine(f, base + 2 * max(m, 1) + 64)
        machine.mem[base : base + m] = list(data)
        cost = bt_merge_sort(machine, base, m)
        return machine.mem[base : base + m], cost

    def test_sorts_random_data(self):
        rng = random.Random(7)
        data = [rng.randrange(10**6) for _ in range(500)]
        out, _ = self.run_sort(data)
        assert out == sorted(data)

    def test_sorts_with_duplicates_and_stability(self):
        data = [(k % 5, k) for k in range(100)]
        m = len(data)
        machine = BTMachine(PolynomialAccess(0.5), 64 + 3 * m + 64)
        base = max(64, m)
        machine.mem[base : base + m] = list(data)
        bt_merge_sort(machine, base, m, key=lambda r: r[0])
        out = machine.mem[base : base + m]
        assert [r[0] for r in out] == sorted(k % 5 for k in range(100))
        # stability: equal keys keep original (second-component) order
        for key in range(5):
            seconds = [r[1] for r in out if r[0] == key]
            assert seconds == sorted(seconds)

    def test_empty_and_single(self):
        assert self.run_sort([])[0] == []
        assert self.run_sort([42])[0] == [42]

    @given(st.lists(st.integers(min_value=-1000, max_value=1000), max_size=80))
    @settings(max_examples=40, deadline=None)
    def test_matches_python_sorted(self, data):
        out, _ = self.run_sort(data)
        assert out == sorted(data)

    def test_cost_near_m_log_m_with_fstar_factor(self):
        """Operational sort is O(m log m * f*(m)) — the documented gap
        to Approx-Median-Sort's bound."""
        f = PolynomialAccess(0.5)
        rng = random.Random(3)
        ratios = []
        for m in (1 << 8, 1 << 10, 1 << 12):
            data = [rng.randrange(10**6) for _ in range(m)]
            _, cost = self.run_sort(data, f)
            ratios.append(cost / (bt_sorting_bound(f, m) * f.star(m)))
        assert max(ratios) / min(ratios) < 3.0

    def test_scratch_requirement_enforced(self):
        machine = BTMachine(PolynomialAccess(0.5), 100)
        with pytest.raises(ValueError):
            bt_merge_sort(machine, 60, 40)  # needs up to 140 cells


class TestTranspose:
    def run_transpose(self, rows, cols, f=PolynomialAccess(0.4)):
        s = rows * cols
        base = max(256, s)
        machine = BTMachine(f, base + 2 * s + 256)
        machine.mem[base : base + s] = list(range(s))
        cost = bt_transpose_permute(machine, base, rows, cols, base + s)
        return machine.mem[base : base + s], cost

    @pytest.mark.parametrize("rows,cols", [(4, 4), (8, 8), (16, 8), (8, 32),
                                           (1, 16), (16, 1), (32, 32)])
    def test_correct_permutation(self, rows, cols):
        out, _ = self.run_transpose(rows, cols)
        want = [(k % rows) * cols + k // rows for k in range(rows * cols)]
        assert out == want

    @given(
        lr=st.integers(min_value=0, max_value=5),
        lc=st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=25, deadline=None)
    def test_transpose_twice_is_identity(self, lr, lc):
        rows, cols = 1 << lr, 1 << lc
        s = rows * cols
        base = max(256, s)
        machine = BTMachine(LogarithmicAccess(), base + 2 * s + 256)
        data = [f"e{k}" for k in range(s)]
        machine.mem[base : base + s] = list(data)
        bt_transpose_permute(machine, base, rows, cols, base + s)
        bt_transpose_permute(machine, base, cols, rows, base + s)
        assert machine.mem[base : base + s] == data

    def test_cost_shape_for_supported_functions(self):
        """Theta(s f*(s)) for f = x^alpha (alpha < 1/2) and f = log x."""
        for f in (PolynomialAccess(0.4), LogarithmicAccess()):
            ratios = []
            for side in (16, 32, 64):
                _, cost = self.run_transpose(side, side, f)
                s = side * side
                ratios.append(cost / bt_rational_permutation_bound(f, s))
            assert max(ratios) / min(ratios) < 3.0, f.name

    def test_supported_predicate(self):
        assert blocked_transpose_supported(PolynomialAccess(0.4), 1 << 16)
        assert blocked_transpose_supported(LogarithmicAccess(), 1 << 16)
        assert not blocked_transpose_supported(PolynomialAccess(0.7), 1 << 16)

    def test_bound_values(self):
        f = LogarithmicAccess()
        assert bt_rational_permutation_bound(f, 1024) == 1024 * f.star(1024)
        assert bt_sorting_bound(f, 1024) == pytest.approx(1024 * 10)
