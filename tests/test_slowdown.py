"""The slowdown() convention is uniform across simulation results.

All three simulation results (HMM, BT, Brent) expose
``slowdown(guest_time)``; a zero guest time has no meaningful ratio and
returns ``None`` — matching ``EngineResult.slowdown``, which the engine
layer and CLI already render as "n/a".
"""

from __future__ import annotations

import pytest

from repro.engines import build_program
from repro.functions import PolynomialAccess
from repro.sim.brent import BrentSimulator
from repro.sim.bt_sim import BTSimulator
from repro.sim.hmm_sim import HMMSimulator

F = PolynomialAccess(0.5)


def _results():
    program = build_program("broadcast", 8, 4)
    return [
        HMMSimulator(F).simulate(program),
        BTSimulator(F).simulate(program),
        BrentSimulator(F, v_host=2).simulate(program),
    ]


@pytest.mark.parametrize("res", _results(), ids=["hmm", "bt", "brent"])
class TestSlowdownConvention:
    def test_positive_guest_time_gives_the_ratio(self, res):
        assert res.slowdown(2.0) == res.time / 2.0

    def test_zero_guest_time_gives_none(self, res):
        assert res.slowdown(0.0) is None

    def test_negative_guest_time_gives_none(self, res):
        # degenerate inputs follow the zero-time convention rather than
        # producing a negative "slowdown"
        assert res.slowdown(-1.0) is None
