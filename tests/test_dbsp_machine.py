"""Direct D-BSP execution: semantics and cost accounting."""

from __future__ import annotations

import pytest

from repro.dbsp.machine import DBSPMachine, superstep_cost
from repro.dbsp.program import DUMMY, Program, Superstep
from repro.functions import ConstantAccess, LogarithmicAccess, PolynomialAccess


def build(v, mu, steps, ctx=None):
    return Program(v, mu, steps, make_context=ctx or (lambda pid: {"x": pid}))


class TestSemantics:
    def test_messages_arrive_next_superstep(self):
        order = []

        def send_step(view):
            order.append(("send", view.pid, list(view.received())))
            view.send(view.pid ^ 1, view.pid * 10)

        def recv_step(view):
            view.ctx["got"] = list(view.received())

        prog = build(2, 4, [Superstep(0, send_step), Superstep(0, recv_step)])
        res = DBSPMachine(ConstantAccess()).run(prog)
        # nothing was pending during the sending superstep
        assert all(received == [] for _, _, received in order)
        assert res.contexts[0]["got"] == [10]
        assert res.contexts[1]["got"] == [0]

    def test_inbox_sorted_by_sender(self):
        def fanin(view):
            if view.pid != 0:
                view.send(0, view.pid)

        def collect(view):
            view.ctx["got"] = list(view.received())

        prog = build(4, 8, [Superstep(0, fanin), Superstep(0, collect)])
        res = DBSPMachine(ConstantAccess()).run(prog)
        assert res.contexts[0]["got"] == [1, 2, 3]

    def test_messages_persist_through_dummy(self):
        def send_step(view):
            view.send(view.pid, "self")

        def collect(view):
            view.ctx["got"] = list(view.received())

        prog = build(2, 4, [
            Superstep(0, send_step),
            Superstep(0, DUMMY, name="dummy"),
            Superstep(0, collect),
        ])
        res = DBSPMachine(ConstantAccess()).run(prog)
        assert res.contexts[0]["got"] == ["self"]

    def test_receive_degree_over_mu_rejected(self):
        def flood(view):
            if view.pid != 0:
                view.send(0, view.pid)

        prog = build(8, 4, [Superstep(0, flood)])
        with pytest.raises(ValueError, match="receives 7 messages"):
            DBSPMachine(ConstantAccess()).run(prog)

    def test_validation_can_be_disabled(self):
        def flood(view):
            if view.pid != 0:
                view.send(0, view.pid)

        prog = build(8, 4, [Superstep(0, flood)])
        DBSPMachine(ConstantAccess(), validate=False).run(prog)

    def test_contexts_are_returned(self):
        def bump(view):
            view.ctx["x"] += 1

        prog = build(4, 4, [Superstep(0, bump), Superstep(0, bump)])
        res = DBSPMachine(ConstantAccess()).run(prog)
        assert [c["x"] for c in res.contexts] == [2, 3, 4, 5]


class TestCostModel:
    def test_superstep_cost_formula(self):
        g = PolynomialAccess(0.5)
        # i-superstep on v=16, mu=2: tau + h * g(mu * v / 2^i)
        assert superstep_cost(g, 2, 16, 2, tau=3.0, h=2) == pytest.approx(
            3.0 + 2 * g(2 * 4)
        )

    def test_run_cost_sums_superstep_costs(self):
        g = LogarithmicAccess()

        def exchange(view):
            view.send(view.pid ^ 1, 0)
            view.charge(4)

        prog = build(4, 4, [Superstep(1, exchange), Superstep(0, exchange)])
        res = DBSPMachine(g).run(prog)
        want = (5.0 + 1 * g(4 * 2)) + (5.0 + 1 * g(4 * 4))
        assert res.total_time == pytest.approx(want)
        assert [r.label for r in res.records] == [1, 0]
        assert [r.h for r in res.records] == [1, 1]
        assert [r.tau for r in res.records] == [5.0, 5.0]

    def test_tau_is_max_over_processors(self):
        def lopsided(view):
            view.charge(10 if view.pid == 3 else 0)

        prog = build(4, 4, [Superstep(0, lopsided)])
        res = DBSPMachine(ConstantAccess()).run(prog)
        assert res.records[0].tau == 11.0

    def test_h_counts_max_of_sent_and_received(self):
        def fanin(view):
            if view.pid in (1, 2, 3):
                view.send(0, None)

        prog = build(4, 8, [Superstep(0, fanin)])
        res = DBSPMachine(ConstantAccess()).run(prog)
        assert res.records[0].h == 3

    def test_dummy_costs_unit_tau(self):
        prog = build(4, 4, [Superstep(2, DUMMY)])
        res = DBSPMachine(LogarithmicAccess()).run(prog)
        assert res.total_time == pytest.approx(1.0)
        assert res.records[0].h == 0

    def test_finer_labels_are_cheaper(self):
        g = PolynomialAccess(0.5)

        def exchange(label):
            def body(view):
                size = view.v >> label
                base = view.pid - view.pid % size
                view.send(base + (view.pid - base) ^ 0, 0)

            return body

        costs = []
        for label in (0, 1, 2, 3):
            prog = build(16, 4, [Superstep(label, exchange(label))])
            costs.append(DBSPMachine(g).run(prog).total_time)
        assert costs == sorted(costs, reverse=True)

    def test_label_counts_and_max_local_time(self):
        def work(view):
            view.charge(2)

        prog = build(8, 4, [Superstep(0, work), Superstep(2, work),
                            Superstep(2, work)])
        res = DBSPMachine(ConstantAccess()).run(prog)
        assert res.label_counts() == {0: 1, 2: 2}
        assert res.max_local_time() == pytest.approx(9.0)
