"""Serving subsystem tests: cache, scheduler, HTTP front end, loadgen.

The load-bearing invariant is the PR 3 determinism contract extended to
the serving paths: the charged document a client receives is
``==``-identical whether it was computed, coalesced onto another
request's computation, served from the in-memory cache, or replayed
from the persistent ledger after a restart — at any ``jobs`` value, and
across worker deaths retried by the resilience machinery.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.parallel import workers
from repro.parallel.config import reset_fallback_warnings
from repro.parallel.pool import shared_pool
from repro.resilience import MISSING, SweepLedger, recovery
from repro.service.cache import ResultCache
from repro.service.loadgen import (
    SERVICE_BENCH_SCHEMA,
    check_service_against,
    run_loadgen,
)
from repro.service.scheduler import (
    SERVICE_SCHEMA,
    TASK_KIND,
    QueueFull,
    Scheduler,
    SimRequest,
)
from repro.service.server import ServiceServer, SimService


@pytest.fixture(autouse=True)
def _clean_slate(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    recovery.reset()
    reset_fallback_warnings()
    yield
    shared_pool(2).shutdown()
    recovery.reset()
    reset_fallback_warnings()


def _request(i: int = 0, **kw) -> SimRequest:
    kw.setdefault("engine", "hmm")
    kw.setdefault("program", "sort")
    kw.setdefault("v", 16)
    kw.setdefault("f", f"x^0.{51 + i}")
    return SimRequest(**kw)


def _post(url: str, path: str, doc) -> tuple[int, dict, dict]:
    data = json.dumps(doc).encode()
    req = urllib.request.Request(
        url + path, data=data,
        headers={"Content-Type": "application/json"}, method="POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


def _get(url: str, path: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(url + path, timeout=60) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


# ------------------------------------------------------------------ cache
class TestResultCache:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ResultCache(0)

    def test_lru_eviction_order(self):
        cache = ResultCache(2)
        cache.put("a", TASK_KIND, {"n": 1})
        cache.put("b", TASK_KIND, {"n": 2})
        assert cache.get("a") != MISSING  # refreshes "a": now b is LRU
        cache.put("c", TASK_KIND, {"n": 3})
        assert cache.keys() == ["a", "c"]
        assert cache.get("b") is MISSING
        assert cache.counters.snapshot()["evictions"] == 1

    def test_refreshing_a_known_key_does_not_evict(self):
        cache = ResultCache(2)
        cache.put("a", TASK_KIND, {"n": 1})
        cache.put("b", TASK_KIND, {"n": 2})
        cache.put("a", TASK_KIND, {"n": 1})
        assert cache.keys() == ["b", "a"]
        assert cache.counters.snapshot()["stores"] == 2

    def test_gauges_shape(self):
        cache = ResultCache(4)
        cache.put("a", TASK_KIND, {"n": 1})
        cache.get("a")
        cache.get("zzz")
        gauges = cache.gauges()
        assert gauges["size"] == 1
        assert gauges["capacity"] == 4
        assert gauges["persistent"] is False
        assert gauges["hits"] == 1
        assert gauges["misses"] == 1

    def test_ledger_preload_survives_restart(self, tmp_path):
        path = str(tmp_path / "cache.ledger")
        ledger = SweepLedger.create(path)
        cache = ResultCache(8, ledger=ledger)
        cache.put("a", TASK_KIND, {"n": 1})
        cache.put("b", TASK_KIND, {"n": 2})
        ledger.close()

        warm = ResultCache(8, ledger=SweepLedger.resume(path))
        assert warm.get("a") == {"n": 1}
        assert warm.get("b") == {"n": 2}
        assert warm.counters.snapshot()["preloaded"] == 2
        assert warm.gauges()["persistent"] is True

    def test_ledger_preload_caps_at_capacity_keeping_newest(self, tmp_path):
        path = str(tmp_path / "cache.ledger")
        ledger = SweepLedger.create(path)
        for i in range(5):
            ledger.record(f"k{i}", TASK_KIND, {"n": i})
        ledger.close()
        warm = ResultCache(2, ledger=SweepLedger.resume(path))
        assert warm.keys() == ["k3", "k4"]

    def test_eviction_does_not_lose_persisted_entries(self, tmp_path):
        path = str(tmp_path / "cache.ledger")
        ledger = SweepLedger.create(path)
        cache = ResultCache(1, ledger=ledger)
        cache.put("a", TASK_KIND, {"n": 1})
        cache.put("b", TASK_KIND, {"n": 2})  # evicts "a" from memory...
        assert cache.get("a") is MISSING
        assert ledger.get("a") == {"n": 1}  # ...but the ledger keeps it


# -------------------------------------------------------------- requests
class TestSimRequest:
    def test_round_trip(self):
        req = _request()
        assert SimRequest.from_json(req.to_json()) == req

    def test_key_is_stable_and_content_addressed(self):
        assert _request().key() == _request().key()
        assert _request().key() != _request(v=32).key()

    @pytest.mark.parametrize("body,fragment", [
        ([], "JSON object"),
        ({"engine": "hmm"}, "missing the 'program'"),
        ({"engine": "hmm", "program": "sort", "bogus": 1}, "unknown request field"),
        ({"engine": "nope", "program": "sort"}, "unknown engine"),
        ({"engine": "hmm", "program": "nope"}, "unknown program"),
        ({"engine": "hmm", "program": "sort", "v": 0}, "positive integer"),
        ({"engine": "hmm", "program": "sort", "v": True}, "positive integer"),
        ({"engine": "hmm", "program": "sort", "mu": -1}, "positive integer"),
        ({"engine": "hmm", "program": "sort", "trace": "loud"}, "trace level"),
    ])
    def test_validation_errors(self, body, fragment):
        with pytest.raises(ValueError, match=fragment):
            SimRequest.from_json(body)

    def test_engine_defaults_to_vec(self):
        # a body without an engine picks the vectorized kernel — charged
        # results are bit-identical to hmm, the wall clock is not
        req = SimRequest.from_json({"program": "sort"})
        assert req.engine == "vec"
        req.validate()

    def test_bad_access_function_rejected(self):
        with pytest.raises(ValueError):
            SimRequest.from_json(
                {"engine": "hmm", "program": "sort", "f": "x^bogus^"}
            )


# ------------------------------------------------------------- scheduler
class TestScheduler:
    def test_compute_then_cache_hit(self):
        sched = Scheduler(ResultCache(8))
        req = _request()
        key1, doc1, served1 = sched.submit(req)
        key2, doc2, served2 = sched.submit(req)
        assert (served1, served2) == ("computed", "cached")
        assert key1 == key2 == req.key()
        assert doc1 == doc2
        snap = sched.counters.snapshot()
        assert snap["served_computed"] == 1
        assert snap["served_cached"] == 1

    def test_queue_limit_validation(self):
        with pytest.raises(ValueError):
            Scheduler(ResultCache(8), queue_limit=0)

    def test_single_flight_coalescing(self, monkeypatch):
        """N identical concurrent requests -> exactly 1 engine invocation."""
        real = workers.TASKS[TASK_KIND]
        invocations = []
        gate = threading.Event()

        def slow_task(args):
            invocations.append(args)
            gate.wait(timeout=10)
            return real(args)

        monkeypatch.setitem(workers.TASKS, TASK_KIND, slow_task)
        sched = Scheduler(ResultCache(8))
        req = _request()
        results: list[tuple] = []

        def client():
            results.append(sched.submit(req))

        threads = [threading.Thread(target=client) for _ in range(6)]
        for t in threads:
            t.start()
        # wait until the leader is inside the (gated) task and every
        # follower has had a chance to enqueue on its flight
        while not invocations:
            pass
        gate.set()
        for t in threads:
            t.join(timeout=30)
        assert len(invocations) == 1
        assert len(results) == 6
        served = sorted(s for _, _, s in results)
        assert served.count("computed") == 1
        assert set(served) <= {"computed", "coalesced", "cached"}
        docs = [doc for _, doc, _ in results]
        assert all(doc == docs[0] for doc in docs)

    def test_backpressure_queue_full(self, monkeypatch):
        real = workers.TASKS[TASK_KIND]
        started = threading.Event()
        gate = threading.Event()

        def slow_task(args):
            started.set()
            gate.wait(timeout=10)
            return real(args)

        monkeypatch.setitem(workers.TASKS, TASK_KIND, slow_task)
        sched = Scheduler(ResultCache(8), queue_limit=1, retry_after_s=0.25)
        leader = threading.Thread(target=sched.submit, args=(_request(0),))
        leader.start()
        assert started.wait(timeout=10)
        with pytest.raises(QueueFull) as exc:
            sched.submit(_request(1))  # distinct key, over the bound
        assert exc.value.retry_after_s == 0.25
        gate.set()
        leader.join(timeout=30)
        assert sched.counters.snapshot()["rejected"] == 1
        # with the flight drained, the same request is admitted fine
        _, _, served = sched.submit(_request(1))
        assert served == "computed"


# ----------------------------------------------------------- determinism
class TestDeterminism:
    @pytest.mark.parametrize("trace", ["counters", "full"])
    def test_all_serving_paths_identical(self, tmp_path, trace):
        """computed == coalesced == cached == ledger-replayed, jobs 1 vs 2."""
        req = _request(trace=trace)

        path = str(tmp_path / "service.ledger")
        sched1 = Scheduler(ResultCache(8, ledger=SweepLedger.create(path)))
        _, computed, s1 = sched1.submit(req)
        _, cached, s2 = sched1.submit(req)
        assert (s1, s2) == ("computed", "cached")
        assert computed == cached
        sched1.cache._ledger.close()

        # a restarted service replays the ledger into a warm cache
        sched2 = Scheduler(ResultCache(8, ledger=SweepLedger.resume(path)))
        _, replayed, s3 = sched2.submit(req)
        assert s3 == "cached"
        assert replayed == computed
        sched2.cache._ledger.close()

        # a pool-dispatched computation charges the identical document
        sched3 = Scheduler(ResultCache(8), parallel=2)
        _, pooled, s4 = sched3.submit(req)
        assert s4 == "computed"
        assert pooled == computed

        # the document survives a JSON wire round-trip unchanged
        assert json.loads(json.dumps(computed)) == computed

    def test_worker_death_mid_request_still_serves(self, tmp_path, monkeypatch):
        """A killed worker is retried; the response matches a clean run."""
        from repro.resilience.retry import RetryPolicy

        clean_sched = Scheduler(ResultCache(8))
        _, clean, _ = clean_sched.submit(_request())

        shared_pool(2).shutdown()  # workers inherit REPRO_FAULTS at spawn
        monkeypatch.setenv(
            "REPRO_FAULTS", f"seed=7,kill=1.0,dir={tmp_path / 'marks'}"
        )
        from repro.parallel.config import ParallelConfig

        cfg = ParallelConfig(
            jobs=2, retry=RetryPolicy(max_retries=4, backoff_s=0.0)
        )
        sched = Scheduler(ResultCache(8), parallel=cfg)
        _, chaotic, served = sched.submit(_request())
        assert served == "computed"
        assert chaotic == clean
        assert recovery.counters()["worker_deaths"] >= 1


# ------------------------------------------------------------------ HTTP
class TestServer:
    @pytest.fixture()
    def server(self):
        with ServiceServer(SimService(cache_capacity=32)) as srv:
            yield srv

    def test_healthz(self, server):
        status, doc = _get(server.url, "/v1/healthz")
        assert status == 200
        assert doc["ok"] is True
        assert doc["api"] == "v1"
        assert doc["jobs_enabled"] is False
        assert "hmm" in doc["engines"]
        assert "sort" in doc["programs"]

    def test_run_then_metrics(self, server):
        body = _request().to_json()
        status1, doc1, _ = _post(server.url, "/v1/run", body)
        status2, doc2, _ = _post(server.url, "/v1/run", body)
        assert (status1, status2) == (200, 200)
        assert doc1["served"] == "computed"
        assert doc2["served"] == "cached"
        assert doc1["key"] == doc2["key"] == _request().key()
        assert doc1["result"] == doc2["result"]

        status, metrics = _get(server.url, "/v1/metrics")
        assert status == 200
        assert metrics["schema"] == SERVICE_SCHEMA
        assert metrics["requests"]["served_computed"] == 1
        assert metrics["requests"]["served_cached"] == 1
        assert metrics["requests"]["errors"] == 0
        assert metrics["cache"]["size"] == 1
        assert metrics["queue"]["limit"] == server.service.scheduler.queue_limit
        assert metrics["jobs"]["enabled"] is False
        assert metrics["http"]["deprecated_requests"] == 0

    def test_batch(self, server):
        body = {"requests": [_request(0).to_json(), _request(1).to_json(),
                             _request(0).to_json()]}
        status, doc, _ = _post(server.url, "/v1/batch", body)
        assert status == 200
        assert [r["served"] for r in doc["results"]] == [
            "computed", "computed", "cached",
        ]

    def test_legacy_aliases_work_with_deprecation_header(self, server):
        """Unprefixed paths serve identically, marked ``Deprecation``."""
        body = _request().to_json()
        status, legacy_doc, headers = _post(server.url, "/run", body)
        assert status == 200
        assert headers["Deprecation"] == "true"
        status, v1_doc, v1_headers = _post(server.url, "/v1/run", body)
        assert status == 200
        assert "Deprecation" not in v1_headers
        assert legacy_doc["result"] == v1_doc["result"]
        # errors on legacy paths carry the header too
        status, doc, headers = _post(server.url, "/run", {"engine": "nope"})
        assert status == 400
        assert headers["Deprecation"] == "true"
        _, metrics = _get(server.url, "/v1/metrics")
        assert metrics["http"]["deprecated_requests"] == 2

    @pytest.mark.parametrize("path,body,fragment", [
        ("/v1/run", {"engine": "nope", "program": "sort"}, "unknown engine"),
        ("/v1/run", "not an object", "JSON object"),
        ("/v1/batch", {"requests": []}, "non-empty list"),
        ("/v1/batch", {"nope": 1}, '"requests"'),
    ])
    def test_bad_request_is_400(self, server, path, body, fragment):
        status, doc, _ = _post(server.url, path, body)
        assert status == 400
        assert doc["error"]["code"] == "bad_request"
        assert fragment in doc["error"]["message"]

    def test_unknown_endpoint_is_404(self, server):
        for status, doc in [
            _get(server.url, "/nope"),
            _get(server.url, "/v1/nope"),
            _post(server.url, "/v1/nope", {})[:2],
        ]:
            assert status == 404
            assert doc["error"]["code"] == "not_found"

    def test_oversized_body_is_413_without_reading(self, server):
        import http.client
        import urllib.parse

        from repro.service.server import MAX_BODY_BYTES

        parsed = urllib.parse.urlsplit(server.url)
        conn = http.client.HTTPConnection(parsed.hostname, parsed.port)
        # declare a huge body but never send it: the server must answer
        # from the Content-Length header alone and close the connection
        conn.putrequest("POST", "/v1/run")
        conn.putheader("Content-Type", "application/json")
        conn.putheader("Content-Length", str(MAX_BODY_BYTES + 1))
        conn.endheaders()
        resp = conn.getresponse()
        doc = json.loads(resp.read())
        assert resp.status == 413
        assert doc["error"]["code"] == "payload_too_large"
        assert resp.headers["Connection"] == "close"
        conn.close()

    def test_error_envelope_schema_is_pinned(self, server):
        """Every error body is exactly the envelope: one ``error`` object
        with exactly ``code``/``message``/``retry_after_s``."""
        cases = [
            _post(server.url, "/v1/run", {"engine": "nope"})[:2],
            _get(server.url, "/v1/nope"),
            _post(server.url, "/run", "junk")[:2],  # legacy alias too
        ]
        for status, doc in cases:
            assert status >= 400
            assert set(doc) == {"error"}
            assert set(doc["error"]) == {"code", "message", "retry_after_s"}
            assert isinstance(doc["error"]["code"], str)
            assert isinstance(doc["error"]["message"], str)
            retry = doc["error"]["retry_after_s"]
            assert retry is None or isinstance(retry, float)

    def test_backpressure_is_429_with_retry_after(self, monkeypatch):
        real = workers.TASKS[TASK_KIND]
        started = threading.Event()
        gate = threading.Event()

        def slow_task(args):
            started.set()
            gate.wait(timeout=10)
            return real(args)

        monkeypatch.setitem(workers.TASKS, TASK_KIND, slow_task)
        service = SimService(queue_limit=1, retry_after_s=2.0)
        with ServiceServer(service) as server:
            blocker = threading.Thread(
                target=_post,
                args=(server.url, "/v1/run", _request(0).to_json()),
            )
            blocker.start()
            assert started.wait(timeout=10)
            status, doc, headers = _post(
                server.url, "/v1/run", _request(1).to_json()
            )
            assert status == 429
            assert headers["Retry-After"] == "2"
            assert doc["error"]["code"] == "queue_full"
            assert doc["error"]["retry_after_s"] == 2.0
            gate.set()
            blocker.join(timeout=30)
            _, metrics = _get(server.url, "/v1/metrics")
            assert metrics["requests"]["rejected"] == 1


# --------------------------------------------------------------- loadgen
class TestLoadgen:
    def test_smoke_run_in_process(self):
        doc = run_loadgen(smoke=True, clients=2, requests_per_client=6,
                          hot_keys=2, seed=11)
        assert doc["schema"] == SERVICE_BENCH_SCHEMA
        assert doc["errors"] == 0
        assert set(doc["phases"]) == {"cold", "hot"}
        cold = doc["phases"]["cold"]
        assert cold["served"] == {"computed": cold["requests"]}
        hot = doc["phases"]["hot"]
        assert sum(hot["served"].values()) == hot["requests"]
        assert hot["served"].get("cached", 0) > 0

    def test_batch_mode(self):
        doc = run_loadgen(smoke=True, clients=1, requests_per_client=6,
                          hot_keys=2, batch=3, seed=11)
        assert doc["errors"] == 0
        assert sum(doc["phases"]["cold"]["served"].values()) == 6

    def test_check_refuses_schema_drift(self):
        with pytest.raises(ValueError, match="schema"):
            check_service_against(
                {"schema": SERVICE_BENCH_SCHEMA, "phases": {}},
                {"schema": SERVICE_BENCH_SCHEMA + 1, "phases": {}},
            )

    def test_check_flags_errors_regressions_and_speedup_floor(self):
        base = {
            "schema": SERVICE_BENCH_SCHEMA,
            "phases": {"cold": {"requests_per_s": 100.0},
                       "hot": {"requests_per_s": 500.0}},
        }
        fresh = {
            "schema": SERVICE_BENCH_SCHEMA,
            "errors": 1,
            "phases": {"cold": {"requests_per_s": 10.0}},
            "hot_vs_cold_speedup": 1.2,
        }
        problems = check_service_against(
            fresh, base, tolerance=3.0, min_speedup=5.0
        )
        text = "\n".join(problems)
        assert "request(s) failed" in text
        assert "phase 'cold'" in text
        assert "phase 'hot' missing" in text
        assert "below the 5x floor" in text

    def test_check_passes_identical_run(self):
        doc = {
            "schema": SERVICE_BENCH_SCHEMA,
            "errors": 0,
            "phases": {"cold": {"requests_per_s": 100.0},
                       "hot": {"requests_per_s": 600.0}},
            "hot_vs_cold_speedup": 6.0,
        }
        assert check_service_against(doc, doc, min_speedup=5.0) == []
