"""The operational HMM machine and the touching problem (Fact 1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.functions import ConstantAccess, LogarithmicAccess, PolynomialAccess
from repro.hmm.machine import HMMMachine
from repro.hmm.touching import hmm_touch_all


class TestAccounting:
    def test_read_write_charge_f(self):
        m = HMMMachine(PolynomialAccess(0.5), 100)
        m.write(3, "v")
        assert m.time == pytest.approx(2.0)  # f(3) = 2
        assert m.read(3) == "v"
        assert m.time == pytest.approx(4.0)

    def test_charge_op_includes_unit_cost(self):
        m = HMMMachine(PolynomialAccess(0.5), 100, op_cost=1.0)
        m.charge_op((0, 3))
        assert m.time == pytest.approx(1.0 + 1.0 + 2.0)
        assert m.ops == 1

    def test_touch_range_uses_prefix_sums(self):
        f = LogarithmicAccess()
        m = HMMMachine(f, 50)
        m.touch_range(5, 15)
        assert m.time == pytest.approx(sum(f(x) for x in range(5, 15)))

    def test_move_range_copies_and_charges_both_sides(self):
        f = ConstantAccess()
        m = HMMMachine(f, 20)
        m.mem[0:3] = ["a", "b", "c"]
        m.move_range(0, 10, 3)
        assert m.mem[10:13] == ["a", "b", "c"]
        assert m.time == pytest.approx(6.0)

    def test_swap_ranges_exchanges_and_charges_twice(self):
        f = ConstantAccess()
        m = HMMMachine(f, 20)
        m.mem[0:2] = ["a", "b"]
        m.mem[5:7] = ["x", "y"]
        m.swap_ranges(0, 5, 2)
        assert m.mem[0:2] == ["x", "y"]
        assert m.mem[5:7] == ["a", "b"]
        assert m.time == pytest.approx(2 * (2 + 2))

    def test_overlapping_ranges_rejected(self):
        m = HMMMachine(ConstantAccess(), 20)
        with pytest.raises(ValueError, match="overlap"):
            m.swap_ranges(0, 1, 3)
        with pytest.raises(ValueError, match="overlap"):
            m.move_range(4, 2, 3)

    def test_out_of_bounds_rejected(self):
        m = HMMMachine(ConstantAccess(), 10)
        with pytest.raises(IndexError):
            m.move_range(0, 8, 3)
        with pytest.raises(ValueError):
            m.move_range(0, 5, -1)

    def test_negative_charge_rejected(self):
        m = HMMMachine(ConstantAccess(), 10)
        with pytest.raises(ValueError):
            m.charge(-1.0)

    def test_reset_clock_keeps_memory(self):
        m = HMMMachine(ConstantAccess(), 10)
        m.write(0, 42)
        m.reset_clock()
        assert m.time == 0.0
        assert m.mem[0] == 42

    @given(
        a=st.integers(min_value=0, max_value=30),
        b=st.integers(min_value=40, max_value=70),
        length=st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=40)
    def test_swap_is_involution(self, a, b, length):
        m = HMMMachine(LogarithmicAccess(), 100)
        m.mem = list(range(100))
        before = list(m.mem)
        m.swap_ranges(a, b, length)
        m.swap_ranges(a, b, length)
        assert m.mem == before


class TestTouching:
    def test_digest_observable(self):
        m = HMMMachine(ConstantAccess(), 10)
        m.mem[:5] = [1, 2, 3, 4, 5]
        hmm_touch_all(m, 5)
        assert m.mem[0] == 15

    def test_cost_is_theta_n_f_n(self):
        """Fact 1 on the live machine."""
        for f in (PolynomialAccess(0.5), LogarithmicAccess()):
            ratios = []
            for n in (1 << 8, 1 << 11, 1 << 14):
                m = HMMMachine(f, n)
                m.mem[:n] = [1] * n
                cost = hmm_touch_all(m, n)
                ratios.append(cost / (n * f(n)))
            assert max(ratios) / min(ratios) < 1.6

    def test_too_large_touch_rejected(self):
        with pytest.raises(ValueError):
            hmm_touch_all(HMMMachine(ConstantAccess(), 4), 5)
