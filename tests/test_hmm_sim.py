"""The D-BSP -> HMM simulation (Section 3, Theorem 5, Corollary 6)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.bounds import program_stats, theorem5_bound
from repro.dbsp.machine import DBSPMachine
from repro.functions import LogarithmicAccess, PolynomialAccess
from repro.sim.hmm_sim import HMMSimulator
from repro.testing import random_program

from tests.conftest import program_zoo


class TestCorrectness:
    def test_zoo_matches_direct_execution(self, case_function):
        sim = HMMSimulator(case_function, check_invariants="full")
        direct = DBSPMachine(case_function)
        for prog, extract in program_zoo(16):
            want = extract(direct.run(prog).contexts)
            got = extract(sim.simulate(prog).contexts)
            assert got == want, prog.name

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=25, deadline=None)
    def test_random_programs_match(self, seed):
        f = PolynomialAccess(0.5)
        prog = random_program(16, n_steps=9, seed=seed)
        want = [c["w"] for c in DBSPMachine(f).run(prog.with_global_sync()).contexts]
        got = [c["w"] for c in HMMSimulator(f, check_invariants="full")
               .simulate(prog).contexts]
        assert got == want

    @given(
        log_v=st.integers(min_value=0, max_value=6),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=20, deadline=None)
    def test_various_machine_widths(self, log_v, seed):
        f = LogarithmicAccess()
        v = 1 << log_v
        prog = random_program(v, n_steps=6, seed=seed)
        want = [c["w"] for c in DBSPMachine(f).run(prog.with_global_sync()).contexts]
        got = [c["w"] for c in HMMSimulator(f).simulate(prog).contexts]
        assert got == want

    def test_explicit_label_set_override(self):
        f = PolynomialAccess(0.5)
        prog = random_program(16, n_steps=6, seed=1)
        want = [c["w"] for c in DBSPMachine(f).run(prog.with_global_sync()).contexts]
        for L in ([0, 1, 2, 3, 4], [0, 4], [0, 3, 4]):
            got = [c["w"] for c in HMMSimulator(f).simulate(prog, label_set=L)
                   .contexts]
            assert got == want


class TestSchedule:
    def test_round_count_is_sum_of_cluster_counts(self):
        f = PolynomialAccess(0.5)
        prog = random_program(16, n_steps=6, seed=2)
        res = HMMSimulator(f).simulate(prog)
        want = sum(1 << s.label for s in res.smoothed.program.supersteps)
        assert res.rounds == want

    def test_trace_records_rounds(self):
        f = PolynomialAccess(0.5)
        prog = random_program(8, n_steps=4, seed=0)
        res = HMMSimulator(f, record_trace=True).simulate(prog)
        assert len(res.trace) == res.rounds
        assert res.trace[0].slot_to_pid == tuple(range(8))
        # every snapshot is a permutation of the processors
        for snap in res.trace:
            assert sorted(snap.slot_to_pid) == list(range(8))

    def test_cycle_visits_every_cluster_once_per_superstep(self):
        f = PolynomialAccess(0.5)
        prog = random_program(16, n_steps=5, seed=4)
        res = HMMSimulator(f, record_trace=True).simulate(prog)
        seen: dict[tuple[int, int], int] = {}
        for snap in res.trace:
            csize = 16 >> snap.label
            cluster = snap.slot_to_pid[0] // csize
            key = (snap.superstep, cluster)
            seen[key] = seen.get(key, 0) + 1
        assert all(count == 1 for count in seen.values())
        for s, step in enumerate(res.smoothed.program.supersteps):
            assert sum(1 for (ss, _c) in seen if ss == s) == 1 << step.label


class TestCost:
    def test_theorem5_bound_holds_and_is_tight(self):
        """measured / bound stays in a narrow band across v (Theta)."""
        for f in (PolynomialAccess(0.5), LogarithmicAccess()):
            ratios = []
            for log_v in (3, 4, 5, 6):
                v = 1 << log_v
                prog = random_program(v, n_steps=8, seed=7)
                stats = DBSPMachine(f).run(prog.with_global_sync())
                tau, lambdas = program_stats(stats)
                bound = theorem5_bound(f, v, prog.mu, tau, lambdas)
                res = HMMSimulator(f).simulate(prog)
                ratios.append(res.time / bound)
            assert max(ratios) < 30.0, f.name
            assert max(ratios) / min(ratios) < 4.0, f.name

    def test_corollary6_linear_slowdown(self):
        """With g = f the slowdown is Theta(v): slowdown/v stays flat."""
        f = PolynomialAccess(0.5)
        normalized = []
        for log_v in (3, 4, 5, 6):
            v = 1 << log_v
            prog = random_program(v, n_steps=8, seed=11)
            guest = DBSPMachine(f).run(prog.with_global_sync())
            res = HMMSimulator(f).simulate(prog)
            normalized.append(res.slowdown(guest.total_time) / v)
        assert max(normalized) / min(normalized) < 3.0

    def test_dummies_do_not_dominate(self):
        f = PolynomialAccess(0.5)
        # a descent-heavy program maximizes inserted dummies
        labels = [4, 0, 4, 0, 4, 0]
        prog = random_program(16, labels=labels, seed=3)
        res = HMMSimulator(f).simulate(prog)
        assert res.smoothed.n_dummies > 0
        stats = DBSPMachine(f).run(prog.with_global_sync())
        tau, lambdas = program_stats(stats)
        assert res.time < 30 * theorem5_bound(f, 16, prog.mu, tau, lambdas)

    def test_single_processor_machine(self):
        f = PolynomialAccess(0.5)
        prog = random_program(1, n_steps=3, seed=0)
        res = HMMSimulator(f).simulate(prog)
        assert res.time > 0
        want = [c["w"] for c in DBSPMachine(f).run(prog.with_global_sync()).contexts]
        assert [c["w"] for c in res.contexts] == want
