"""The report aggregator and its CLI command."""

from __future__ import annotations

from repro.analysis.report import build_report
from repro.cli import main


class TestBuildReport:
    def test_empty_directory(self, tmp_path):
        text = build_report(tmp_path)
        assert "No benchmark results" in text

    def test_missing_directory(self, tmp_path):
        text = build_report(tmp_path / "nope")
        assert "No benchmark results" in text

    def test_groups_known_experiments(self, tmp_path):
        (tmp_path / "test_fact1_x.txt").write_text("FACT1 TABLE\n")
        (tmp_path / "test_fact2_y.txt").write_text("FACT2 TABLE\n")
        text = build_report(tmp_path)
        assert "## E1 — Fact 1: HMM touching" in text
        assert "FACT1 TABLE" in text
        assert text.index("FACT1 TABLE") < text.index("FACT2 TABLE")

    def test_unknown_files_go_to_other(self, tmp_path):
        (tmp_path / "test_something_new.txt").write_text("NEW\n")
        text = build_report(tmp_path)
        assert "## Other results" in text
        assert "NEW" in text

    def test_each_file_appears_once(self, tmp_path):
        (tmp_path / "test_theorem5_on_staircase.txt").write_text("STAIR\n")
        text = build_report(tmp_path)
        assert text.count("STAIR") == 1
        # must land in E11, not E3 (prefix overlap with test_theorem5)
        assert "## E11" in text

    def test_cli_report_command(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "test_fact1_z.txt").write_text("T\n")
        out = tmp_path / "REPORT.md"
        assert main(["report", "--results", str(results),
                     "--output", str(out)]) == 0
        assert out.exists()
        assert "Reproduction report" in out.read_text()
