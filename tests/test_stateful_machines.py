"""Stateful property tests: random operation sequences against shadow models.

Hypothesis drives arbitrary interleavings of machine operations and
checks, after every step, that (a) the machine's data agrees with a plain
Python shadow, (b) charged time/IO counters are nonnegative and strictly
monotone where they must be.  These catch bookkeeping bugs that fixed
scenarios miss.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.bt.machine import BTMachine
from repro.em.machine import EMMachine
from repro.functions import LogarithmicAccess
from repro.hmm.machine import HMMMachine

SIZE = 96


class HMMStateMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.machine = HMMMachine(LogarithmicAccess(), SIZE)
        self.shadow = [None] * SIZE
        self.last_time = 0.0

    @rule(x=st.integers(0, SIZE - 1), value=st.integers())
    def write(self, x, value):
        self.machine.write(x, value)
        self.shadow[x] = value

    @rule(x=st.integers(0, SIZE - 1))
    def read(self, x):
        assert self.machine.read(x) == self.shadow[x]

    @rule(data=st.data())
    def swap(self, data):
        length = data.draw(st.integers(0, SIZE // 3))
        a = data.draw(st.integers(0, max(SIZE // 3 - length, 0)))
        b = data.draw(st.integers(SIZE // 2, SIZE - max(length, 1)))
        self.machine.swap_ranges(a, b, length)
        tmp = self.shadow[a : a + length]
        self.shadow[a : a + length] = self.shadow[b : b + length]
        self.shadow[b : b + length] = tmp

    @rule(data=st.data())
    def move(self, data):
        length = data.draw(st.integers(0, SIZE // 3))
        src = data.draw(st.integers(0, max(SIZE // 3 - length, 0)))
        dst = data.draw(st.integers(SIZE // 2, SIZE - max(length, 1)))
        self.machine.move_range(src, dst, length)
        self.shadow[dst : dst + length] = self.shadow[src : src + length]

    @invariant()
    def memory_matches_shadow(self):
        if hasattr(self, "machine"):
            assert self.machine.mem == self.shadow

    @invariant()
    def time_never_decreases(self):
        if hasattr(self, "machine"):
            assert self.machine.time >= self.last_time - 1e-12
            self.last_time = self.machine.time


class BTStateMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.machine = BTMachine(LogarithmicAccess(), SIZE)
        self.shadow = [None] * SIZE
        self.transfers = 0

    @rule(x=st.integers(0, SIZE - 1), value=st.integers())
    def write(self, x, value):
        self.machine.write(x, value)
        self.shadow[x] = value

    @rule(data=st.data())
    def block_move(self, data):
        length = data.draw(st.integers(1, SIZE // 3))
        src = data.draw(st.integers(0, SIZE // 3 - length))
        dst = data.draw(st.integers(SIZE // 2, SIZE - length))
        before = self.machine.time
        self.machine.block_move(src, dst, length)
        self.shadow[dst : dst + length] = self.shadow[src : src + length]
        self.transfers += 1
        # cost is exactly max(f(x), f(y)) + b
        f = self.machine.f
        want = max(f(src + length - 1), f(dst + length - 1)) + length
        assert abs((self.machine.time - before) - want) < 1e-9

    @invariant()
    def memory_and_counters_consistent(self):
        if hasattr(self, "machine"):
            assert self.machine.mem == self.shadow
            assert self.machine.block_transfers == self.transfers


class EMStateMachine(RuleBasedStateMachine):
    BLOCKS = 12
    B = 4

    @initialize()
    def setup(self):
        self.machine = EMMachine(M=3 * self.B, B=self.B,
                                 disk_blocks=self.BLOCKS)
        self.shadow_disk = [[None] * self.B for _ in range(self.BLOCKS)]
        self.last_io = 0

    @rule(blk=st.integers(0, BLOCKS - 1), pos=st.integers(0, B - 1),
          value=st.integers())
    def load_modify_store(self, blk, pos, value):
        frame = self.machine.load(blk)
        assert frame == self.shadow_disk[blk] or frame is not None
        frame[pos] = value
        self.machine.store(blk)
        self.shadow_disk[blk] = list(frame)

    @rule(blk=st.integers(0, BLOCKS - 1))
    def load_and_check(self, blk):
        frame = self.machine.load(blk)
        # a resident frame may hold newer (unsaved) data only if we wrote
        # it ourselves; in this machine every modification is stored, so
        # it must match the disk shadow
        assert frame == self.shadow_disk[blk] or all(
            w is None for w in self.shadow_disk[blk]
        )

    @rule()
    def evict_all(self):
        self.machine.evict_all()

    @invariant()
    def residency_capacity_respected(self):
        if hasattr(self, "machine"):
            assert len(self.machine.resident) <= self.machine.capacity_blocks

    @invariant()
    def io_monotone(self):
        if hasattr(self, "machine"):
            assert self.machine.io_count >= self.last_io
            self.last_io = self.machine.io_count


TestHMMStateMachine = HMMStateMachine.TestCase
TestBTStateMachine = BTStateMachine.TestCase
TestEMStateMachine = EMStateMachine.TestCase

for case in (TestHMMStateMachine, TestBTStateMachine, TestEMStateMachine):
    case.settings = settings(max_examples=25, stateful_step_count=30,
                             deadline=None)
