"""Extended algorithms: list ranking, convolution, staircase hierarchies."""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.convolution import convolution_program
from repro.algorithms.listranking import (
    list_ranking_program,
    random_list_successors,
)
from repro.dbsp.machine import DBSPMachine
from repro.functions import (
    ConstantAccess,
    LogarithmicAccess,
    PolynomialAccess,
    StaircaseAccess,
    two_c_uniformity,
)
from repro.sim.bt_sim import BTSimulator
from repro.sim.hmm_sim import HMMSimulator

RAM = ConstantAccess()


def true_ranks(succ):
    ranks = {}

    def rank(p):
        if p not in ranks:
            s = succ[p]
            ranks[p] = 0 if s is None else 1 + rank(s)
        return ranks[p]

    return [rank(p) for p in range(len(succ))]


class TestListRanking:
    @pytest.mark.parametrize("v", [1, 2, 4, 16, 64])
    def test_ranks_random_list(self, v):
        succ = random_list_successors(v, seed=v)
        prog = list_ranking_program(v, succ)
        res = DBSPMachine(RAM).run(prog)
        assert [c["rank"] for c in res.contexts] == true_ranks(succ)

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=20, deadline=None)
    def test_ranks_arbitrary_lists(self, seed):
        v = 32
        succ = random_list_successors(v, seed=seed)
        prog = list_ranking_program(v, succ)
        res = DBSPMachine(RAM).run(prog)
        assert [c["rank"] for c in res.contexts] == true_ranks(succ)

    def test_multiple_short_lists(self):
        # two disjoint lists: 0->1->2 (tail 2) and 3->4 (tail 4), 5..7 singletons
        succ = [1, 2, None, 4, None, None, None, None]
        prog = list_ranking_program(8, succ)
        res = DBSPMachine(RAM).run(prog)
        assert [c["rank"] for c in res.contexts] == [2, 1, 0, 1, 0, 0, 0, 0]

    def test_all_supersteps_are_global(self):
        prog = list_ranking_program(16)
        assert all(s.label == 0 for s in prog.supersteps)

    def test_simulates_on_hmm_and_bt(self):
        f = PolynomialAccess(0.5)
        succ = random_list_successors(16, seed=9)
        prog = list_ranking_program(16, succ)
        want = true_ranks(succ)
        hmm = HMMSimulator(f).simulate(prog)
        bt = BTSimulator(f).simulate(prog)
        assert [c["rank"] for c in hmm.contexts] == want
        assert [c["rank"] for c in bt.contexts] == want

    def test_bad_successor_length_rejected(self):
        with pytest.raises(ValueError):
            list_ranking_program(8, successors=[None] * 4)


class TestConvolution:
    def check(self, v, a, b):
        prog = convolution_program(v, a, b)
        res = DBSPMachine(RAM).run(prog)
        got = np.array([res.contexts[k]["coeff"] for k in range(v)])
        want = np.convolve(np.array(a, dtype=float), np.array(b, dtype=float))
        assert np.allclose(got[: len(want)], want, atol=1e-8)
        assert np.allclose(got[len(want):], 0.0, atol=1e-8)

    @pytest.mark.parametrize("v", [4, 8, 16, 64, 256])
    def test_default_instance(self, v):
        prog = convolution_program(v)
        res = DBSPMachine(RAM).run(prog)
        half = v // 2
        a = [prog.make_context(p)["x"].real for p in range(half)]
        b = [prog.make_context(p)["x"].imag for p in range(half)]
        got = np.array([res.contexts[k]["coeff"] for k in range(v)])
        want = np.convolve(np.array(a), np.array(b))
        assert np.allclose(got[: len(want)], want, atol=1e-8)

    @given(seed=st.integers(min_value=0, max_value=300))
    @settings(max_examples=20, deadline=None)
    def test_random_polynomials(self, seed):
        rng = random.Random(seed)
        v = 32
        a = [rng.uniform(-2, 2) for _ in range(rng.randint(1, v // 2))]
        b = [rng.uniform(-2, 2) for _ in range(rng.randint(1, v // 2))]
        self.check(v, a, b)

    def test_short_polynomials_zero_padded(self):
        self.check(16, [1.0, 2.0], [3.0])

    def test_too_many_coefficients_rejected(self):
        with pytest.raises(ValueError):
            convolution_program(8, [1.0] * 5, [1.0])

    def test_too_small_machine_rejected(self):
        with pytest.raises(ValueError):
            convolution_program(2)

    def test_runs_on_all_engines(self):
        f = LogarithmicAccess()
        prog = convolution_program(16, [1, 2, 3], [4, 5])
        want = [c["coeff"] for c in DBSPMachine(f).run(prog).contexts]
        got_hmm = [c["coeff"] for c in HMMSimulator(f).simulate(prog).contexts]
        got_bt = [c["coeff"] for c in BTSimulator(f).simulate(prog).contexts]
        assert got_hmm == want
        assert got_bt == want


class TestStaircase:
    def test_values_step_at_capacities(self):
        f = StaircaseAccess(((8, 1.0), (64, 4.0)), beyond=16.0)
        assert f(0) == 1.0 and f(7) == 1.0
        assert f(8) == 4.0 and f(63) == 4.0
        assert f(64) == 16.0 and f(10**6) == 16.0

    def test_default_is_2c_uniform(self):
        assert two_c_uniformity(StaircaseAccess(), 1 << 24) <= 8.0

    def test_vectorized_matches_scalar(self):
        f = StaircaseAccess()
        xs = np.array([0, 100, 1 << 13, 1 << 20, 1 << 27])
        assert np.allclose(f.evaluate(xs), [f(x) for x in xs])

    def test_validation(self):
        with pytest.raises(ValueError):
            StaircaseAccess(())
        with pytest.raises(ValueError):
            StaircaseAccess(((8, 1.0), (8, 2.0)))
        with pytest.raises(ValueError):
            StaircaseAccess(((8, 4.0), (16, 1.0)))
        with pytest.raises(ValueError):
            StaircaseAccess(((8, 1.0),), beyond=0.5)

    def test_star_converges(self):
        assert StaircaseAccess().star(1 << 24) <= 3

    def test_full_pipeline_on_staircase(self):
        """The paper's theorems hold for any (2, c)-uniform f — including
        a realistic cache staircase."""
        f = StaircaseAccess(((16, 1.0), (128, 4.0), (1024, 16.0)),
                            beyond=64.0)
        from repro.testing import random_program

        prog = random_program(32, n_steps=6, seed=61)
        want = [c["w"] for c in DBSPMachine(f).run(prog.with_global_sync()).contexts]
        res = HMMSimulator(f, check_invariants="full").simulate(prog)
        assert [c["w"] for c in res.contexts] == want
        bt = BTSimulator(f).simulate(prog)
        assert [c["w"] for c in bt.contexts] == want
