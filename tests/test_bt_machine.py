"""The operational BT machine: charged block transfer."""

from __future__ import annotations

import pytest

from repro.bt.machine import BTMachine
from repro.functions import ConstantAccess, LogarithmicAccess, PolynomialAccess


class TestBlockCopyCost:
    def test_formula_max_f_plus_b(self):
        f = PolynomialAccess(0.5)
        m = BTMachine(f, 1000)
        # copy [100, 110) -> [500, 510): endpoints 109 and 509
        want = max(f(109), f(509)) + 10
        assert m.block_copy_cost(100, 500, 10) == pytest.approx(want)

    def test_long_transfers_amortize_latency(self):
        f = PolynomialAccess(0.5)
        m = BTMachine(f, 1 << 20)
        b = 1 << 16
        per_word = m.block_copy_cost(0, 1 << 19, b) / b
        assert per_word < 1.1  # pipelined: ~1 time unit per word

    def test_zero_length_rejected(self):
        m = BTMachine(ConstantAccess(), 100)
        with pytest.raises(ValueError):
            m.block_copy_cost(0, 10, 0)


class TestBlockMove:
    def test_moves_data_and_counts_transfers(self):
        m = BTMachine(ConstantAccess(), 100)
        m.mem[0:4] = list("abcd")
        m.block_move(0, 50, 4)
        assert m.mem[50:54] == list("abcd")
        assert m.mem[0:4] == list("abcd")  # source intact (copy semantics)
        assert m.block_transfers == 1

    def test_overlap_rejected(self):
        m = BTMachine(ConstantAccess(), 100)
        with pytest.raises(ValueError, match="overlap"):
            m.block_move(0, 2, 4)

    def test_block_swap_uses_three_transfers(self):
        m = BTMachine(LogarithmicAccess(), 100)
        m.mem[0:2] = ["a", "b"]
        m.mem[10:12] = ["x", "y"]
        m.block_swap(0, 10, 2, scratch=20)
        assert m.mem[0:2] == ["x", "y"]
        assert m.mem[10:12] == ["a", "b"]
        assert m.block_transfers == 3

    def test_block_swap_scratch_must_be_disjoint(self):
        m = BTMachine(ConstantAccess(), 100)
        with pytest.raises(ValueError):
            m.block_swap(0, 10, 4, scratch=12)

    def test_word_access_keeps_hmm_cost(self):
        f = PolynomialAccess(0.5)
        m = BTMachine(f, 100)
        m.write(49, 1)
        assert m.time == pytest.approx(f(49))


class TestBTvsHMMPower:
    def test_bulk_move_beats_word_moves(self):
        """The defining feature: one block transfer vs n word accesses."""
        f = PolynomialAccess(0.5)
        n = 1 << 14
        bt = BTMachine(f, 4 * n)
        bt.block_move(2 * n, 0, n)
        word_cost = 2 * sum(f(x) for x in (0, n - 1, 2 * n, 3 * n - 1)) / 4 * n
        assert bt.time < word_cost / 10
