"""The D-BSP self-simulation (Section 4): Brent's-lemma analogue."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.bounds import brent_bound, program_stats
from repro.dbsp.machine import DBSPMachine
from repro.functions import LogarithmicAccess, PolynomialAccess
from repro.sim.brent import BrentSimulator
from repro.sim.hmm_sim import HMMSimulator
from repro.testing import random_program

from tests.conftest import program_zoo


class TestCorrectness:
    @pytest.mark.parametrize("v_host", [1, 2, 4, 8, 16])
    def test_zoo_matches_direct_execution(self, v_host):
        f = PolynomialAccess(0.5)
        direct = DBSPMachine(f)
        sim = BrentSimulator(f, v_host=v_host)
        for prog, extract in program_zoo(16):
            want = extract(direct.run(prog).contexts)
            got = extract(sim.simulate(prog).contexts)
            assert got == want, f"{prog.name} on v'={v_host}"

    @given(
        seed=st.integers(min_value=0, max_value=200),
        log_vh=st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=20, deadline=None)
    def test_random_programs_match(self, seed, log_vh):
        f = LogarithmicAccess()
        prog = random_program(16, n_steps=7, seed=seed)
        want = [c["w"] for c in DBSPMachine(f).run(prog.with_global_sync()).contexts]
        got = BrentSimulator(f, v_host=1 << log_vh).simulate(prog)
        assert [c["w"] for c in got.contexts] == want

    def test_host_wider_than_guest_rejected(self):
        with pytest.raises(ValueError):
            BrentSimulator(PolynomialAccess(0.5), v_host=32).simulate(
                random_program(16, n_steps=2, seed=0)
            )

    def test_degenerate_host_equals_guest(self):
        f = PolynomialAccess(0.5)
        prog = random_program(8, n_steps=5, seed=4)
        guest = DBSPMachine(f).run(prog.with_global_sync())
        res = BrentSimulator(f, v_host=8).simulate(prog)
        assert res.time == pytest.approx(guest.total_time)
        assert [c["w"] for c in res.contexts] == [c["w"] for c in guest.contexts]

    def test_v_host_one_matches_hmm_simulation_time(self):
        """With v' = 1 the self-simulation degenerates to Section 3."""
        f = PolynomialAccess(0.5)
        prog = random_program(16, n_steps=6, seed=8)
        brent = BrentSimulator(f, v_host=1).simulate(prog)
        hmm = HMMSimulator(f).simulate(prog)
        assert brent.time == pytest.approx(hmm.time)


class TestCost:
    def test_theorem10_bound_holds(self):
        f = PolynomialAccess(0.5)
        prog = random_program(64, n_steps=8, seed=12)
        stats = DBSPMachine(f).run(prog.with_global_sync())
        tau, lambdas = program_stats(stats)
        for v_host in (1, 2, 4, 8, 16, 32):
            bound = brent_bound(f, 64, v_host, prog.mu, tau, lambdas)
            res = BrentSimulator(f, v_host=v_host).simulate(prog)
            assert res.time < 30 * bound, f"v'={v_host}"

    def test_corollary11_slowdown_scales_with_v_over_vhost(self):
        """Full (here: fine-grained) programs: slowdown Theta(v/v')."""
        f = PolynomialAccess(0.5)
        prog = random_program(64, n_steps=8, seed=13)
        guest = DBSPMachine(f).run(prog.with_global_sync())
        normalized = []
        for v_host in (1, 2, 4, 8, 16):
            res = BrentSimulator(f, v_host=v_host).simulate(prog)
            slowdown = res.slowdown(guest.total_time)
            normalized.append(slowdown / (64 / v_host))
        # the normalized slowdown stays within a constant band
        assert max(normalized) / min(normalized) < 6.0

    def test_time_decreases_with_more_host_processors(self):
        f = LogarithmicAccess()
        prog = random_program(32, n_steps=6, seed=14)
        times = [
            BrentSimulator(f, v_host=v_host).simulate(prog).time
            for v_host in (1, 2, 4, 8, 16, 32)
        ]
        assert times == sorted(times, reverse=True)

    def test_run_records_cover_program(self):
        f = PolynomialAccess(0.5)
        prog = random_program(16, n_steps=6, seed=15)
        res = BrentSimulator(f, v_host=4).simulate(prog)
        covered = sum(r.n_steps for r in res.runs)
        assert covered == len(prog.with_global_sync().supersteps)
        assert {r.kind for r in res.runs} <= {"coarse", "fine"}
        # maximal runs alternate in kind
        for a, b in zip(res.runs, res.runs[1:]):
            assert a.kind != b.kind
