"""Sequential program composition (``concat_programs``)."""

from __future__ import annotations

import pytest

from repro.dbsp.machine import DBSPMachine
from repro.dbsp.program import Program, Superstep, concat_programs
from repro.functions import ConstantAccess, PolynomialAccess
from repro.sim.bt_sim import BTSimulator
from repro.sim.hmm_sim import HMMSimulator
from repro.algorithms.sorting import bitonic_sort_program
from repro.algorithms.primitives import broadcast_program

RAM = ConstantAccess()
F = PolynomialAccess(0.5)


def bump(amount):
    def body(view):
        view.ctx["x"] = view.ctx.get("x", 0) + amount

    return body


class TestConcat:
    def test_runs_phases_in_order(self):
        a = Program(4, 4, [Superstep(0, bump(1))],
                    make_context=lambda pid: {"x": 0})
        b = Program(4, 4, [Superstep(0, bump(10))])
        combo = concat_programs(a, b)
        res = DBSPMachine(RAM).run(combo)
        assert [c["x"] for c in res.contexts] == [11] * 4

    def test_second_make_context_ignored(self):
        a = Program(4, 4, [Superstep(0, bump(1))],
                    make_context=lambda pid: {"x": 100 * pid})
        b = Program(4, 4, [Superstep(0, bump(1))],
                    make_context=lambda pid: {"x": -999})
        res = DBSPMachine(RAM).run(concat_programs(a, b))
        assert [c["x"] for c in res.contexts] == [100 * p + 2 for p in range(4)]

    def test_seam_sync_inserted_only_when_needed(self):
        a = Program(4, 4, [Superstep(2, bump(1))])
        b = Program(4, 4, [Superstep(1, bump(1))])
        combo = concat_programs(a, b)
        assert combo.labels() == [2, 0, 1]
        a_synced = Program(4, 4, [Superstep(0, bump(1))])
        combo2 = concat_programs(a_synced, b)
        assert combo2.labels() == [0, 1]

    def test_shape_mismatch_rejected(self):
        a = Program(4, 4, [])
        with pytest.raises(ValueError):
            concat_programs(a, Program(8, 4, []))
        with pytest.raises(ValueError):
            concat_programs(a, Program(4, 8, []))

    def test_name_defaults_to_joined(self):
        a = Program(4, 4, [], name="alpha")
        b = Program(4, 4, [], name="beta")
        assert concat_programs(a, b).name == "alpha;beta"
        assert concat_programs(a, b, name="custom").name == "custom"

    def test_sort_then_broadcast_pipeline(self):
        """Realistic composition: sort the keys, then broadcast the
        minimum (now at P0) to everyone."""
        v = 16
        sort = bitonic_sort_program(v, make_key=lambda pid: (v - pid) * 3)

        def seed_bcast(view):
            if view.pid == 0:
                view.ctx["bcast"] = view.ctx["key"]

        bridge = Program(v, 8, [Superstep(0, seed_bcast)])
        bcast = broadcast_program(v)
        combo = concat_programs(concat_programs(sort, bridge), bcast)
        res = DBSPMachine(RAM).run(combo)
        minimum = 3  # smallest key
        assert all(c["bcast"] == minimum for c in res.contexts)

    def test_composed_program_simulates_identically(self):
        from repro.testing import random_program

        a = random_program(16, n_steps=4, seed=20)
        b = random_program(16, n_steps=4, seed=21)
        combo = concat_programs(a, b)
        want = [c["w"] for c in DBSPMachine(F).run(combo.with_global_sync()).contexts]
        assert [c["w"] for c in HMMSimulator(F).simulate(combo).contexts] == want
        assert [c["w"] for c in BTSimulator(F).simulate(combo).contexts] == want
