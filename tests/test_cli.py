"""The command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import PROGRAMS, build_parser, main, parse_access_function
from repro.functions import (
    ConstantAccess,
    LinearAccess,
    LogarithmicAccess,
    PolynomialAccess,
    StaircaseAccess,
)


class TestParseAccessFunction:
    def test_polynomial(self):
        f = parse_access_function("x^0.5")
        assert isinstance(f, PolynomialAccess) and f.alpha == 0.5

    def test_log_aliases(self):
        for spec in ("log", "LOG", "log x"):
            assert isinstance(parse_access_function(spec), LogarithmicAccess)

    def test_const_linear_staircase(self):
        assert isinstance(parse_access_function("const"), ConstantAccess)
        assert isinstance(parse_access_function("linear"), LinearAccess)
        assert isinstance(parse_access_function("staircase"), StaircaseAccess)

    def test_bad_specs(self):
        import argparse

        for spec in ("x^2", "x^", "bogus"):
            with pytest.raises(argparse.ArgumentTypeError):
                parse_access_function(spec)


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in PROGRAMS:
            assert name in out

    def test_run_direct(self, capsys):
        assert main(["run", "sort", "--v", "16", "--engine", "direct"]) == 0
        out = capsys.readouterr().out
        assert "direct D-BSP" in out

    @pytest.mark.parametrize("engine", ["hmm", "bt", "brent"])
    def test_run_each_engine(self, capsys, engine):
        assert main(["run", "reduce", "--v", "8", "--engine", engine]) == 0
        out = capsys.readouterr().out
        assert engine in out
        assert "slowdown" in out

    def test_run_all_engines(self, capsys):
        assert main(["run", "random", "--v", "8", "--f", "log"]) == 0
        out = capsys.readouterr().out
        for engine in ("hmm", "bt", "brent"):
            assert engine in out

    def test_run_unknown_program(self):
        with pytest.raises(SystemExit):
            main(["run", "nope", "--v", "8"])

    def test_touch(self, capsys):
        assert main(["touch", "--n", "4096", "--f", "log"]) == 0
        out = capsys.readouterr().out
        assert "Fact 1" in out and "Fact 2" in out

    def test_parser_defaults(self):
        args = build_parser().parse_args(["run", "sort"])
        assert args.v == 64 and args.engine == "all"
        assert isinstance(args.f, PolynomialAccess)

    def test_brent_host_width_flag(self, capsys):
        assert main(["run", "sort", "--v", "16", "--engine", "brent",
                     "--v-host", "2"]) == 0
        assert "v'=2" in capsys.readouterr().out


class TestCLIErrors:
    def test_bad_program_parameters_fail_cleanly(self):
        with pytest.raises(SystemExit, match="cannot build"):
            main(["run", "matmul", "--v", "8"])  # needs a power of 4

    def test_conv_too_small_fails_cleanly(self):
        with pytest.raises(SystemExit, match="cannot build"):
            main(["run", "conv", "--v", "2"])
