"""The command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import PROGRAMS, build_parser, main, parse_access_function
from repro.functions import (
    ConstantAccess,
    LinearAccess,
    LogarithmicAccess,
    PolynomialAccess,
    StaircaseAccess,
)


class TestParseAccessFunction:
    def test_polynomial(self):
        f = parse_access_function("x^0.5")
        assert isinstance(f, PolynomialAccess) and f.alpha == 0.5

    def test_log_aliases(self):
        for spec in ("log", "LOG", "log x"):
            assert isinstance(parse_access_function(spec), LogarithmicAccess)

    def test_const_linear_staircase(self):
        assert isinstance(parse_access_function("const"), ConstantAccess)
        assert isinstance(parse_access_function("linear"), LinearAccess)
        assert isinstance(parse_access_function("staircase"), StaircaseAccess)

    def test_bad_specs(self):
        import argparse

        for spec in ("x^2", "x^", "bogus"):
            with pytest.raises(argparse.ArgumentTypeError):
                parse_access_function(spec)

    def test_degenerate_exponents_get_actionable_messages(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError, match="'const'"):
            parse_access_function("x^0")
        with pytest.raises(argparse.ArgumentTypeError, match="'linear'"):
            parse_access_function("x^1")


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in PROGRAMS:
            assert name in out

    def test_run_direct(self, capsys):
        assert main(["run", "sort", "--v", "16", "--engine", "direct"]) == 0
        out = capsys.readouterr().out
        assert "direct D-BSP" in out

    @pytest.mark.parametrize("engine", ["hmm", "bt", "brent"])
    def test_run_each_engine(self, capsys, engine):
        assert main(["run", "reduce", "--v", "8", "--engine", engine]) == 0
        out = capsys.readouterr().out
        assert engine in out
        assert "slowdown" in out

    def test_run_all_engines(self, capsys):
        assert main(["run", "random", "--v", "8", "--f", "log"]) == 0
        out = capsys.readouterr().out
        for engine in ("hmm", "bt", "brent"):
            assert engine in out

    def test_run_unknown_program(self):
        with pytest.raises(SystemExit):
            main(["run", "nope", "--v", "8"])

    def test_touch(self, capsys):
        assert main(["touch", "--n", "4096", "--f", "log"]) == 0
        out = capsys.readouterr().out
        assert "Fact 1" in out and "Fact 2" in out

    def test_parser_defaults(self):
        args = build_parser().parse_args(["run", "sort"])
        assert args.v == 64 and args.engine == "all"
        assert isinstance(args.f, PolynomialAccess)

    def test_brent_host_width_flag(self, capsys):
        assert main(["run", "sort", "--v", "16", "--engine", "brent",
                     "--v-host", "2"]) == 0
        assert "v'=2" in capsys.readouterr().out


class TestJSONOutput:
    def test_run_json_schema(self, capsys):
        assert main(["run", "reduce", "--v", "8", "--engine", "hmm",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert set(doc) == {"program", "v", "mu", "f", "supersteps",
                            "direct", "engines"}
        assert doc["v"] == 8 and doc["f"] == "x^0.5"
        hmm = doc["engines"]["hmm"]
        assert set(hmm) == {"engine", "time", "slowdown", "baseline_time",
                            "breakdown", "counters", "meta"}
        assert hmm["baseline_time"] == doc["direct"]["time"]
        assert hmm["slowdown"] == pytest.approx(
            hmm["time"] / doc["direct"]["time"]
        )

    def test_touch_json_schema(self, capsys):
        assert main(["touch", "--n", "1024", "--f", "log", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert set(doc) == {"n", "f", "hmm", "bt", "bt_advantage"}
        assert doc["hmm"]["cost"] > doc["bt"]["cost"] > 0
        assert doc["bt_advantage"] == pytest.approx(
            doc["hmm"]["cost"] / doc["bt"]["cost"]
        )


class TestProfile:
    def test_profile_text(self, capsys):
        assert main(["profile", "reduce", "--v", "8", "--engine", "bt"]) == 0
        out = capsys.readouterr().out
        assert "total charged time" in out
        assert "phase breakdown:" in out and "delivery" in out
        assert "counters:" in out and "block_transfers" in out

    @pytest.mark.parametrize("engine", ["direct", "hmm", "bt", "brent"])
    def test_profile_every_engine(self, capsys, engine):
        assert main(["profile", "reduce", "--v", "8",
                     "--engine", engine]) == 0
        assert "total charged time" in capsys.readouterr().out

    def test_profile_json_trace_reproduces_total_time(self, capsys):
        """Acceptance: the exported trace partitions the charged time."""
        assert main(["profile", "sort", "--v", "64", "--f", "x^0.5",
                     "--engine", "bt", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["engine"] == "bt" and doc["trace"]
        total = doc["time"]
        assert sum(doc["breakdown"].values()) == pytest.approx(
            total, rel=1e-12
        )
        assert sum(s["self_cost"] for s in doc["trace"]) == pytest.approx(
            total, rel=1e-12
        )
        roots = [s for s in doc["trace"] if s["parent"] == -1]
        assert sum(s["cost"] for s in roots) == pytest.approx(
            total, rel=1e-12
        )

    def test_profile_jsonl_export(self, capsys, tmp_path):
        from repro.obs import spans_from_jsonl

        path = tmp_path / "trace.jsonl"
        assert main(["profile", "broadcast", "--v", "8", "--engine", "hmm",
                     "--jsonl", str(path)]) == 0
        assert "wrote" in capsys.readouterr().out
        spans = spans_from_jsonl(path.read_text())
        assert spans and spans[0].depth == 0

    def test_profile_json_with_jsonl_omits_inline_trace(self, capsys,
                                                        tmp_path):
        path = tmp_path / "trace.jsonl"
        assert main(["profile", "broadcast", "--v", "8", "--engine", "hmm",
                     "--jsonl", str(path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "trace" not in doc
        assert path.exists()


class TestSlowdownGuard:
    def test_zero_direct_time_prints_na(self, capsys, monkeypatch):
        from repro.cli import ENGINES
        from repro.engines import EngineResult

        class ZeroDirect:
            name = "direct"
            description = "zero-time stand-in"

            def run(self, program, f, trace="phases", **opts):
                return EngineResult(engine="direct", time=0.0, contexts=[])

        monkeypatch.setitem(ENGINES, "direct", ZeroDirect())
        assert main(["run", "reduce", "--v", "8", "--engine", "hmm"]) == 0
        out = capsys.readouterr().out
        assert "n/a" in out
        assert "slowdown =        0.0" not in out


class TestCLIErrors:
    def test_bad_program_parameters_fail_cleanly(self):
        with pytest.raises(SystemExit, match="cannot build"):
            main(["run", "matmul", "--v", "8"])  # needs a power of 4

    def test_conv_too_small_fails_cleanly(self):
        with pytest.raises(SystemExit, match="cannot build"):
            main(["run", "conv", "--v", "2"])


class TestVersionFlag:
    def test_version_prints_and_exits_zero(self, capsys):
        import repro

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert out.strip() == f"repro {repro.__version__}"


class TestServiceCommands:
    def test_loadgen_smoke_writes_and_checks(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_service_smoke.json"
        assert main([
            "loadgen", "--smoke", "--clients", "1", "--requests", "4",
            "--seed", "13", "--output", str(out_path),
        ]) == 0
        doc = json.loads(out_path.read_text())
        assert doc["errors"] == 0
        assert set(doc["phases"]) == {"cold", "hot"}
        # --check against the run's own output always passes
        assert main([
            "loadgen", "--smoke", "--clients", "1", "--requests", "4",
            "--seed", "13", "--output", str(tmp_path / "again.json"),
            "--check", str(out_path),
        ]) == 0

    def test_loadgen_check_fails_on_schema_drift(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": 999, "phases": {}}))
        with pytest.raises(SystemExit, match="schema"):
            main([
                "loadgen", "--smoke", "--clients", "1", "--requests", "2",
                "--output", str(tmp_path / "out.json"), "--check", str(bad),
            ])

    def test_loadgen_min_speedup_floor_fails(self, tmp_path, capsys):
        # a 2-request smoke run cannot hit an absurd 10000x floor
        assert main([
            "loadgen", "--smoke", "--clients", "1", "--requests", "2",
            "--output", str(tmp_path / "out.json"),
            "--min-speedup", "10000",
        ]) == 1
        err = capsys.readouterr().err
        assert "floor" in err


class TestBenchOnlyFilter:
    def test_only_matches_workload_names(self):
        from repro.bench import WORKLOADS

        matched = [w for w in WORKLOADS if "sort/" in w.name]
        assert matched  # the matrix still carries the sort rows

    def test_only_matches_the_program_field_too(self, capsys, monkeypatch):
        # "fft" appears only in the program/name of the fft rows; an
        # engine name like "vec" appears in names only — but a program
        # like "fft-rec" must select rows whose *program* is fft-rec
        # even if a future rename drops it from the row name
        import repro.bench as bench_mod
        from repro.bench import Workload

        rows = (
            Workload("spectral/hmm", "hmm", "fft-rec"),
            Workload("sort/direct", "direct", "sort"),
        )
        monkeypatch.setattr(bench_mod, "WORKLOADS", rows)
        captured: dict = {}

        def fake_run_bench(**kw):
            captured["workloads"] = kw["workloads"]
            return {"schema": 3, "workloads": {}}

        monkeypatch.setattr(bench_mod, "run_bench", fake_run_bench)
        monkeypatch.setattr(bench_mod, "write_bench", lambda *_: None)
        assert main(["bench", "--only", "fft-rec", "--smoke"]) == 0
        names = [w.name for w in captured["workloads"]]
        assert names == ["spectral/hmm"]

    def test_only_without_match_fails_cleanly(self):
        with pytest.raises(SystemExit, match="matches no workload"):
            main(["bench", "--only", "zzz-nothing"])


class TestDagCommand:
    def test_dag_run_checks_values(self, capsys):
        assert main([
            "dag", "run", "stream-scan", "--epochs", "2",
            "--partitions", "4", "--chunk", "2", "--v", "4",
            "--engine", "direct",
        ]) == 0
        out = capsys.readouterr().out
        assert "values match the sequential reference" in out

    def test_dag_run_json(self, capsys):
        assert main([
            "dag", "run", "stream-reduce", "--epochs", "2",
            "--partitions", "4", "--chunk", "2", "--v", "4",
            "--engine", "vec", "--json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["values_ok"] is True
        assert doc["heuristic"] == "locality"
        assert "vec" in doc["engines"]

    def test_dag_schedule_prints_placement(self, capsys):
        assert main([
            "dag", "schedule", "stream-scan", "--epochs", "2",
            "--partitions", "4", "--chunk", "2", "--v", "4",
            "--heuristic", "greedy",
        ]) == 0
        out = capsys.readouterr().out
        assert "greedy onto v=4" in out and "p0:" in out

    def test_dag_compare_both_heuristics(self, capsys):
        assert main([
            "dag", "compare", "stream-stencil", "--epochs", "3",
            "--partitions", "8", "--chunk", "2", "--v", "4", "--json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        heuristics = {row["heuristic"]: row for row in doc["heuristics"]}
        assert set(heuristics) == {"greedy", "locality"}
        assert (heuristics["locality"]["messages"]
                < heuristics["greedy"]["messages"])

    def test_dag_spec_file(self, capsys, tmp_path):
        spec = {
            "schema": 1, "name": "pair",
            "tasks": [{"id": "a", "payload": 2}, {"id": "b"}],
            "edges": [{"src": "a", "dst": "b"}],
        }
        path = tmp_path / "pair.json"
        path.write_text(json.dumps(spec))
        assert main([
            "dag", "run", "--spec", str(path), "--v", "2",
            "--engine", "direct",
        ]) == 0

    def test_dag_refusals_are_actionable(self, tmp_path):
        with pytest.raises(SystemExit, match="stream-scan"):
            main(["dag", "run"])
        with pytest.raises(SystemExit, match="not both"):
            main(["dag", "run", "stream-scan", "--spec", "x.json"])
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": 1, "name": "loop",
                                   "tasks": [{"id": "a"}],
                                   "edges": [{"src": "a", "dst": "a"}]}))
        with pytest.raises(SystemExit, match="self-edge"):
            main(["dag", "run", "--spec", str(bad), "--v", "2"])

    def test_bench_dag_smoke_writes_and_checks(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_dag.json"
        assert main([
            "bench", "--dag", "--smoke", "--output", str(out_path),
        ]) == 0
        doc = json.loads(out_path.read_text())
        assert sum(
            1 for w in doc["workloads"].values() if w["locality_wins"]
        ) >= 2
        assert main([
            "bench", "--dag", "--smoke", "--check", str(out_path),
        ]) == 0

    def test_bench_dag_refuses_wall_matrix_flags(self):
        with pytest.raises(SystemExit, match="wall-clock matrix"):
            main(["bench", "--dag", "--distribute"])
