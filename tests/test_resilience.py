"""Chaos suite for ``repro.resilience``: checkpoint/resume + fault tolerance.

Every fault here is injected deterministically — worker kills and task
delays through ``REPRO_FAULTS`` (decisions are a pure function of the
seed and the task payload), mid-sweep crashes through the parent-side
abort hook, ledger damage through :func:`~repro.resilience.faults.
corrupt_ledger` — so each recovery path is exercised reproducibly:

* worker death → pool rebuild + bounded resubmission (retry policy);
* task past its deadline → resubmission with backoff;
* genuine task exceptions → propagate unchanged on first occurrence,
  never retried;
* mid-sweep crash → ``--resume`` replays the ledger prefix and computes
  only the missing cells, folding a document bit-identical to an
  uninterrupted run;
* corrupt ledger line → skipped with a warning, only that cell redone.

The invariant throughout is the PR 3 one: charged model costs are
compared with ``==`` against a clean serial run — faults, retries and
resume boundaries must be invisible in every charged number.
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro.bench import Workload, run_bench, workload_cell_key
from repro.cli import main
from repro.parallel.config import (
    ParallelConfig,
    reset_fallback_warnings,
)
from repro.parallel.pool import PoolUnavailable, WorkerPool, shared_pool
from repro.parallel.sweep import run_matrix_distributed, touch_sweep
from repro.resilience import (
    MISSING,
    FaultAbort,
    FaultPlan,
    LedgerWarning,
    RetryPolicy,
    SweepLedger,
    cell_key,
    corrupt_ledger,
    resume_map,
)
from repro.resilience import faults, recovery
from repro.resilience.retry import DEFAULT_RETRY, NO_RETRY

SIZES = [256, 512, 1024]

#: tiny bench matrix: one row per engine family, sub-second sweeps
TINY_WORKLOADS = (
    Workload("sort/hmm", "hmm", "sort", start=4, cap=8, delivery_heavy=True),
    Workload("sort/bt", "bt", "sort", start=4, cap=8, delivery_heavy=True),
    Workload("sort/direct", "direct", "sort", start=4, cap=8),
    Workload("touch/hmm", "touch-hmm", "-", start=1 << 10, cap=1 << 11),
)

CHARGED_FIELDS = ("v", "model_time", "rounds", "charged_words")


def eager(**kw) -> ParallelConfig:
    kw.setdefault("jobs", 2)
    kw.setdefault("min_work_per_task", 1)
    kw.setdefault("retry", RetryPolicy(max_retries=4, backoff_s=0.0))
    return ParallelConfig(**kw)


def charged_view(doc):
    """The deterministic slice of a bench document (wall numbers vary)."""
    return {
        name: [{k: cell[k] for k in CHARGED_FIELDS} for cell in wl["sweep"]]
        for name, wl in doc["workloads"].items()
    }


@pytest.fixture(autouse=True)
def _clean_slate(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    recovery.reset()
    reset_fallback_warnings()
    yield
    # a chaos test can leave the shared pool with a kill still landing;
    # shut it down so the next test starts from a fresh executor
    shared_pool(2).shutdown()
    recovery.reset()
    reset_fallback_warnings()


# ---------------------------------------------------------- retry policy
def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(timeout_s=0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_factor=0.5)


def test_retry_policy_backoff_grows_exponentially():
    policy = RetryPolicy(backoff_s=0.1, backoff_factor=3.0)
    assert policy.delay(1) == pytest.approx(0.1)
    assert policy.delay(2) == pytest.approx(0.3)
    assert policy.delay(3) == pytest.approx(0.9)
    assert RetryPolicy(backoff_s=0.0).delay(5) == 0.0
    assert NO_RETRY.max_retries == 0
    assert DEFAULT_RETRY.max_retries > 0


# --------------------------------------------------------------- ledger
def test_cell_key_is_content_addressed():
    base = cell_key("touch-cost", (256, "x^0.5"))
    assert base == cell_key("touch-cost", (256, "x^0.5"))
    assert base != cell_key("touch-cost", (512, "x^0.5"))
    assert base != cell_key("touch-cost", (256, "log"))
    assert base != cell_key("bench-workload", (256, "x^0.5"))
    assert base != cell_key("touch-cost", (256, "x^0.5"), {"schema": 2})


def test_ledger_roundtrip(tmp_path):
    path = str(tmp_path / "cells.ledger")
    with SweepLedger.create(path) as ledger:
        key = cell_key("touch-cost", (256, "x^0.5"))
        assert ledger.get(key) is MISSING
        ledger.record(key, "touch-cost", {"n": 256, "cost": 1.5})
        assert key in ledger
        assert ledger.get(key) == {"n": 256, "cost": 1.5}
    resumed = SweepLedger.resume(path)
    assert len(resumed) == 1
    assert resumed.get(key) == {"n": 256, "cost": 1.5}
    assert resumed.hits == 1
    # appending keeps working after a resume
    key2 = cell_key("touch-cost", (512, "x^0.5"))
    resumed.record(key2, "touch-cost", {"n": 512})
    resumed.close()
    assert len(SweepLedger.resume(path)) == 2


def test_ledger_float_results_roundtrip_exactly(tmp_path):
    path = str(tmp_path / "cells.ledger")
    value = 0.1 + 0.2  # 0.30000000000000004 — shortest-repr territory
    with SweepLedger.create(path) as ledger:
        ledger.record("k", "t", {"cost": value, "big": 2.0**60 + 1.0})
    got = SweepLedger.resume(path).get("k")
    assert got["cost"] == value
    assert got["big"] == 2.0**60 + 1.0


def test_ledger_skips_corrupt_lines_and_warns(tmp_path):
    path = str(tmp_path / "cells.ledger")
    with SweepLedger.create(path) as ledger:
        for n in SIZES:
            ledger.record(
                cell_key("touch-cost", (n, "x^0.5")), "touch-cost", {"n": n}
            )
    corrupt_ledger(path, seed=5)
    with pytest.warns(LedgerWarning):
        resumed = SweepLedger.resume(path)
    assert len(resumed) == len(SIZES) - 1
    assert recovery.counters().get("ledger_corrupt_lines") == 1
    resumed.close()


def test_corrupt_ledger_is_deterministic(tmp_path):
    lines = ['{"ledger":1}'] + [
        json.dumps({"key": f"k{i}", "kind": "t", "result": i})
        for i in range(5)
    ]
    a, b = str(tmp_path / "a"), str(tmp_path / "b")
    for path in (a, b):
        with open(path, "w") as fh:
            fh.write("\n".join(lines) + "\n")
    assert corrupt_ledger(a, seed=9) == corrupt_ledger(b, seed=9)
    assert open(a).read() == open(b).read()


# ----------------------------------------------------------- resume_map
def test_resume_map_serial_checkpoints_every_cell(tmp_path):
    path = str(tmp_path / "cells.ledger")
    args = [(n, "x^0.5") for n in SIZES]
    with SweepLedger.create(path) as ledger:
        first = resume_map("touch-cost", args, ledger)
        assert ledger.cells_recorded == len(SIZES)
    with SweepLedger.resume(path) as ledger:
        again = resume_map("touch-cost", args, ledger)
        assert ledger.hits == len(SIZES)
        assert ledger.cells_recorded == 0
    assert again == first
    assert recovery.counters()["cells_resumed"] == len(SIZES)


def test_resume_map_computes_only_missing_cells(tmp_path):
    path = str(tmp_path / "cells.ledger")
    args = [(n, "x^0.5") for n in SIZES]
    with SweepLedger.create(path) as ledger:
        full = resume_map("touch-cost", args, ledger)
    with SweepLedger.resume(path) as ledger:
        extended = resume_map("touch-cost", args + [(2048, "x^0.5")], ledger)
        assert ledger.hits == len(SIZES)
        assert ledger.cells_recorded == 1
    assert extended[: len(SIZES)] == full


# ----------------------------------------------------- chaos: worker kill
def test_worker_kill_is_retried_to_identical_results(tmp_path):
    clean = touch_sweep(SIZES, parallel=None)
    # workers inherit REPRO_FAULTS at spawn; recycle any pool the clean
    # baseline warmed (REPRO_JOBS may make parallel=None non-serial) so
    # the chaotic run spawns workers that see the fault plan
    shared_pool(2).shutdown()
    with pytest.MonkeyPatch.context() as mp:
        mp.setenv("REPRO_FAULTS", f"seed=7,kill=1.0,dir={tmp_path / 'm'}")
        chaotic = touch_sweep(SIZES, parallel=eager())
    assert chaotic == clean
    counters = recovery.counters()
    assert counters["worker_deaths"] >= 1
    assert counters["pool_retries"] >= 1


def test_worker_kill_exhausts_into_fallback_when_no_retry(tmp_path):
    clean = touch_sweep(SIZES, parallel=None)
    shared_pool(2).shutdown()
    cfg = eager(retry=NO_RETRY)
    with pytest.MonkeyPatch.context() as mp:
        mp.setenv("REPRO_FAULTS", f"seed=7,kill=1.0,dir={tmp_path / 'm'}")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            degraded = touch_sweep(SIZES, parallel=cfg)
    # even with retries off, the serial fallback keeps results identical
    assert degraded == clean


# ---------------------------------------------------- chaos: task timeout
def test_task_past_deadline_is_resubmitted(tmp_path):
    clean = touch_sweep(SIZES, parallel=None)
    shared_pool(2).shutdown()
    cfg = eager(
        retry=RetryPolicy(max_retries=4, timeout_s=0.2, backoff_s=0.0)
    )
    with pytest.MonkeyPatch.context() as mp:
        mp.setenv(
            "REPRO_FAULTS",
            f"seed=11,delay=1.0,delay_s=0.6,dir={tmp_path / 'm'}",
        )
        chaotic = touch_sweep(SIZES, parallel=cfg)
    assert chaotic == clean
    assert recovery.counters()["pool_timeouts"] >= 1


def test_timeout_exhaustion_surfaces_as_pool_unavailable(tmp_path):
    pool = WorkerPool(jobs=2)
    policy = RetryPolicy(max_retries=1, timeout_s=0.1, backoff_s=0.0)
    try:
        with pytest.MonkeyPatch.context() as mp:
            mp.setenv(
                "REPRO_FAULTS",
                # delay far past the deadline, on every attempt the
                # marker allows (first); retries=1 cannot outlast the
                # still-sleeping worker slots on a 2-proc pool
                f"seed=13,delay=1.0,delay_s=30,dir={tmp_path / 'm'}",
            )
            with pytest.raises(PoolUnavailable):
                list(
                    pool.run_ordered(
                        "touch-cost",
                        [(n, "x^0.5") for n in SIZES],
                        policy=policy,
                    )
                )
    finally:
        pool.shutdown()


# ------------------------------------------- taxonomy: genuine exceptions
def test_genuine_task_exception_is_never_retried():
    # x^0 is rejected by resolve_access_function inside the worker — a
    # *task* failure, which must propagate unchanged on first occurrence
    with pytest.raises(ValueError, match="x\\^0"):
        touch_sweep([256], f="x^0", parallel=eager())
    assert recovery.counters().get("pool_retries") is None


# --------------------------------------------- abort + resume: touch sweep
def test_touch_sweep_abort_then_resume_is_identical(tmp_path):
    clean = touch_sweep(SIZES, parallel=None)
    path = str(tmp_path / "touch.ledger")
    with pytest.MonkeyPatch.context() as mp:
        mp.setenv("REPRO_FAULTS", "seed=3,abort=2")
        with SweepLedger.create(path) as ledger:
            with pytest.raises(FaultAbort):
                touch_sweep(SIZES, parallel=None, ledger=ledger)
            assert ledger.cells_recorded == 2
    with SweepLedger.resume(path) as ledger:
        resumed = touch_sweep(SIZES, parallel=None, ledger=ledger)
        assert ledger.hits == 2
        assert ledger.cells_recorded == 1
    assert resumed == clean


# ------------------------------------- abort + resume: bench --distribute
def test_distributed_bench_killed_midway_resumes_byte_identical(tmp_path):
    """The acceptance path: kill a distributed bench mid-sweep, resume,
    and require per-cell charged costs byte-identical to a clean run."""
    cfg = eager()
    clean = run_matrix_distributed(TINY_WORKLOADS, budget_s=0.5, parallel=cfg)
    path = str(tmp_path / "bench.ledger")
    with pytest.MonkeyPatch.context() as mp:
        mp.setenv("REPRO_FAULTS", "seed=3,abort=2")
        with SweepLedger.create(path) as ledger:
            with pytest.raises(FaultAbort):
                run_matrix_distributed(
                    TINY_WORKLOADS, budget_s=0.5, parallel=cfg, ledger=ledger
                )
    with SweepLedger.resume(path) as ledger:
        resumed = run_matrix_distributed(
            TINY_WORKLOADS, budget_s=0.5, parallel=cfg, ledger=ledger
        )
        assert ledger.hits == 2
    assert json.dumps(charged_view(resumed), sort_keys=True) == json.dumps(
        charged_view(clean), sort_keys=True
    )
    assert resumed["resilience"]["cells_resumed"] == 2


def test_distributed_bench_survives_corrupt_ledger(tmp_path):
    cfg = eager()
    clean = run_matrix_distributed(TINY_WORKLOADS, budget_s=0.5, parallel=cfg)
    path = str(tmp_path / "bench.ledger")
    with SweepLedger.create(path) as ledger:
        run_matrix_distributed(
            TINY_WORKLOADS, budget_s=0.5, parallel=cfg, ledger=ledger
        )
    corrupt_ledger(path, seed=5)
    with pytest.warns(LedgerWarning):
        ledger = SweepLedger.resume(path)
    with ledger:
        redone = run_matrix_distributed(
            TINY_WORKLOADS, budget_s=0.5, parallel=cfg, ledger=ledger
        )
        # exactly the corrupted cell was recomputed
        assert ledger.cells_recorded == 1
        assert ledger.hits == len(TINY_WORKLOADS) - 1
    assert charged_view(redone) == charged_view(clean)


# --------------------------------------------------- serial bench ledger
def test_run_bench_shares_ledger_with_distributed(tmp_path):
    path = str(tmp_path / "bench.ledger")
    with SweepLedger.create(path) as ledger:
        serial = run_bench(
            budget_s=0.5, workloads=TINY_WORKLOADS, ledger=ledger
        )
        assert ledger.cells_recorded == len(TINY_WORKLOADS)
    with SweepLedger.resume(path) as ledger:
        distributed = run_matrix_distributed(
            TINY_WORKLOADS, budget_s=0.5, parallel=eager(), ledger=ledger
        )
        # every serial cell is replayed: keys and shapes are shared
        assert ledger.hits == len(TINY_WORKLOADS)
        assert ledger.cells_recorded == 0
    assert charged_view(distributed) == charged_view(serial)
    for w in TINY_WORKLOADS:
        assert workload_cell_key(w, 0.5, False) in ledger


# ------------------------------------------------------------------- CLI
def test_cli_touch_sweep_checkpoint_and_resume(tmp_path, capsys):
    path = str(tmp_path / "touch.ledger")
    sweep = "256,512,1024"
    assert main(["touch", "--sweep", sweep, "--checkpoint", path]) == 0
    first = capsys.readouterr().out
    assert "3 cell(s)" not in first  # nothing resumed on a fresh ledger
    assert main(["touch", "--sweep", sweep, "--resume", path]) == 0
    second = capsys.readouterr().out
    assert "3 cell(s) resumed, 0 recorded" in second
    # the numeric table is identical either way
    assert first.splitlines()[-4:] == second.splitlines()[-4:]


def test_cli_checkpoint_and_resume_are_mutually_exclusive(tmp_path):
    path = str(tmp_path / "touch.ledger")
    with pytest.raises(SystemExit, match="mutually exclusive"):
        main(["touch", "--sweep", "256", "--checkpoint", path,
              "--resume", path])


def test_cli_resume_missing_ledger_fails_cleanly(tmp_path):
    with pytest.raises(SystemExit, match="cannot open ledger"):
        main(["touch", "--sweep", "256",
              "--resume", str(tmp_path / "nope.ledger")])


# ------------------------------------------------------- obs integration
def test_profile_jsonl_interleaves_recovery_events(tmp_path):
    from repro.obs.export import spans_from_jsonl

    recovery.record("worker_deaths", kind="hmm-segment", index=0, attempt=1)
    out = str(tmp_path / "trace.jsonl")
    assert main(["profile", "reduce", "--v", "8", "--engine", "bt",
                 "--jsonl", out]) == 0
    text = open(out).read()
    docs = [json.loads(ln) for ln in text.splitlines() if ln.strip()]
    assert any(doc.get("event") == "worker_deaths" for doc in docs)
    # the span reader skips the event lines
    spans = spans_from_jsonl(text)
    assert spans
    assert len(spans) < len(docs)


# ----------------------------------------------------------- fault plans
def test_fault_plan_parsing():
    plan = FaultPlan.from_spec("seed=7, kill=0.5, delay=0.25, delay_s=0.1, "
                               "abort=3, dir=/tmp/x")
    assert plan == FaultPlan(seed=7, kill=0.5, delay=0.25, delay_s=0.1,
                             abort=3, dir="/tmp/x")
    with pytest.raises(ValueError, match="unknown"):
        FaultPlan.from_spec("seed=7,bogus=1")
    with pytest.raises(ValueError, match="key=value"):
        FaultPlan.from_spec("seed")


def test_fault_decisions_are_deterministic():
    plan = FaultPlan(seed=7, kill=0.5)
    draws = [faults._decide(plan, "kill", bytes([i])) for i in range(64)]
    assert draws == [faults._decide(plan, "kill", bytes([i]))
                     for i in range(64)]
    assert all(0.0 <= d < 1.0 for d in draws)
    other = [faults._decide(FaultPlan(seed=8, kill=0.5), "kill", bytes([i]))
             for i in range(64)]
    assert draws != other


def test_check_abort_fires_only_at_threshold(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "seed=1,abort=3")
    faults.check_abort(2)  # below threshold: no-op
    with pytest.raises(FaultAbort):
        faults.check_abort(3)
    monkeypatch.delenv("REPRO_FAULTS")
    faults.check_abort(100)  # unarmed: never fires
