"""Async jobs API tests: spec validation, lifecycle, restarts, arbitration.

The load-bearing invariants:

* **byte-identity under interruption** — a job killed mid-run (injected
  ``FaultAbort``, killed workers, or a stopped runner) and re-adopted by
  a fresh manager over the same jobs directory produces a result
  document byte-identical (``json.dumps(..., sort_keys=True)``) to an
  uninterrupted run's, which is itself identical to the equivalent
  direct CLI sweep;
* **interactive precedence** — the runner asks the shared
  :class:`~repro.service.scheduler.PoolGate` for a turn before every
  batch cell, so ``/v1/run`` traffic is never queued behind batch work
  (with an anti-starvation deadline);
* **cache warming** — a finished ``cells`` job's documents are exactly
  what ``/v1/run`` would have served, and they land in the interactive
  result cache.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.parallel import workers
from repro.parallel.config import reset_fallback_warnings
from repro.parallel.pool import shared_pool
from repro.resilience import recovery
from repro.service.errors import ApiError
from repro.service.jobs import DEFAULT_PRIORITY, JobManager, JobSpec
from repro.service.scheduler import PoolGate, SimRequest
from repro.service.server import ServiceServer, SimService


@pytest.fixture(autouse=True)
def _clean_slate(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    recovery.reset()
    reset_fallback_warnings()
    yield
    shared_pool(2).shutdown()
    recovery.reset()
    reset_fallback_warnings()


def _wait(manager: JobManager, job_id: str, timeout_s: float = 120.0) -> None:
    deadline = time.monotonic() + timeout_s
    while not manager.get(job_id).terminal:
        assert time.monotonic() < deadline, (
            f"job {job_id} stuck in {manager.get(job_id).state}"
        )
        time.sleep(0.01)


def _canon(doc) -> str:
    return json.dumps(doc, sort_keys=True)


def _post(url, path, doc, method="POST"):
    data = json.dumps(doc).encode() if doc is not None else None
    req = urllib.request.Request(
        url + path, data=data,
        headers={"Content-Type": "application/json"}, method=method,
    )
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _get(url, path):
    try:
        with urllib.request.urlopen(url + path, timeout=60) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


SIZES = [256, 512, 1024]


def _touch_body(sizes=None):
    return {"kind": "touch", "sizes": sizes or SIZES, "f": "x^0.5"}


# ---------------------------------------------------------------- JobSpec
class TestJobSpec:
    def test_round_trip(self):
        for body in [
            _touch_body(),
            {"kind": "bench", "smoke": True, "budget_s": 0.5},
            {"kind": "cells", "cells": [
                {"engine": "hmm", "program": "sort", "v": 16, "mu": 8,
                 "f": "x^0.5", "trace": "counters"},
            ]},
        ]:
            spec = JobSpec.from_json(body)
            assert JobSpec.from_json(spec.to_json()) == spec

    def test_plan_matches_cli_sweep_shapes(self):
        task_kind, args, context = JobSpec.from_json(_touch_body()).plan()
        assert task_kind == "touch-cost"
        assert args == [(n, "x^0.5") for n in SIZES]
        assert context is None  # job ledgers interchange with CLI ledgers

    @pytest.mark.parametrize("body,fragment", [
        ([], "JSON object"),
        ({"kind": "mystery"}, "unknown job kind"),
        ({"kind": "touch"}, '"sizes"'),
        ({"kind": "touch", "sizes": []}, '"sizes"'),
        ({"kind": "touch", "sizes": [0]}, '"sizes"'),
        ({"kind": "touch", "sizes": [True]}, '"sizes"'),
        ({"kind": "touch", "sizes": [256], "f": 7}, '"f" must be a string'),
        ({"kind": "touch", "sizes": [256], "f": "bogus"},
         "unknown access function"),
        ({"kind": "touch", "sizes": [256], "smoke": True}, "unknown field"),
        ({"kind": "bench", "smoke": "yes"}, '"smoke"'),
        ({"kind": "bench", "budget_s": -1}, '"budget_s"'),
        ({"kind": "cells"}, '"cells"'),
        ({"kind": "cells", "cells": []}, '"cells"'),
        ({"kind": "cells", "cells": [{"engine": "nope", "program": "sort"}]},
         "cells\\[0\\]"),
    ])
    def test_validation_errors(self, body, fragment):
        with pytest.raises(ValueError, match=fragment):
            JobSpec.from_json(body)

    def test_traced_cells_rejected(self):
        # recorded spans do not survive the ledger's JSON checkpointing
        with pytest.raises(ValueError, match="trace 'full'"):
            JobSpec.from_json({"kind": "cells", "cells": [
                {"engine": "hmm", "program": "sort", "trace": "full"},
            ]})

    def test_bad_priority_rejected(self, tmp_path):
        manager = JobManager(str(tmp_path / "jobs"))
        try:
            with pytest.raises(ValueError, match='"priority"'):
                manager.submit_json({**_touch_body(), "priority": -1})
            with pytest.raises(ValueError, match='"priority"'):
                manager.submit_json({**_touch_body(), "priority": True})
        finally:
            manager.close()


# --------------------------------------------------------------- PoolGate
class TestPoolGate:
    def test_batch_turn_immediate_when_idle(self):
        gate = PoolGate()
        assert gate.batch_turn() is True
        assert gate.gauges()["interactive_in_flight"] == 0
        assert gate.counters.snapshot().get("batch_waits", 0) == 0

    def test_batch_waits_for_interactive_traffic(self):
        gate = PoolGate(max_batch_wait_s=30.0)
        gate.interactive_begin()
        yielded = {}

        def batch():
            yielded["cleanly"] = gate.batch_turn()

        t = threading.Thread(target=batch)
        t.start()
        time.sleep(0.05)
        assert "cleanly" not in yielded  # still parked behind interactive
        gate.interactive_end()
        t.join(timeout=10)
        assert yielded["cleanly"] is True
        assert gate.counters.snapshot()["batch_waits"] == 1

    def test_anti_starvation_deadline(self):
        gate = PoolGate(max_batch_wait_s=0.05)
        gate.interactive_begin()
        assert gate.batch_turn() is False  # proceeds anyway, counted
        assert gate.counters.snapshot()["batch_wait_timeouts"] == 1
        gate.interactive_end()


# -------------------------------------------------------------- lifecycle
class TestJobLifecycle:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_touch_job_equals_direct_cli_sweep(self, tmp_path, jobs):
        from repro.parallel.sweep import touch_sweep

        manager = JobManager(str(tmp_path / "jobs"), parallel=jobs)
        try:
            job = manager.submit(JobSpec.from_json(_touch_body()))
            assert job.state == "queued"
            _wait(manager, job.id)
            result = manager.result(job.id)
        finally:
            manager.close()
        direct = json.loads(json.dumps(touch_sweep(SIZES, f="x^0.5")))
        assert _canon(result) == _canon(direct)

    def test_event_stream_shape(self, tmp_path):
        manager = JobManager(str(tmp_path / "jobs"))
        try:
            job = manager.submit(JobSpec.from_json(_touch_body()))
            _wait(manager, job.id)
            events = list(manager.stream(job.id))
        finally:
            manager.close()
        kinds = [ev["event"] for ev in events]
        assert kinds[0] == "snapshot"
        assert kinds[-1] == "done"
        cells = [ev for ev in events if ev["event"] == "cell"]
        assert len(cells) == len(SIZES)
        assert [ev["done"] for ev in cells] == [1, 2, 3]
        assert all(ev["total"] == len(SIZES) for ev in cells)
        assert all(ev["replayed"] is False for ev in cells)

    def test_cancel_running_job_stops_at_cell_edge(self, tmp_path, monkeypatch):
        real = workers.TASKS["touch-cost"]
        started = threading.Event()
        release = threading.Event()

        def gated(args):
            started.set()
            release.wait(timeout=30)
            return real(args)

        monkeypatch.setitem(workers.TASKS, "touch-cost", gated)
        manager = JobManager(str(tmp_path / "jobs"), parallel=1)
        try:
            job = manager.submit(JobSpec.from_json(_touch_body()))
            assert started.wait(timeout=30)
            manager.cancel(job.id)
            release.set()
            _wait(manager, job.id)
            assert manager.get(job.id).state == "cancelled"
            assert manager.get(job.id).cells_done < len(SIZES)
            with pytest.raises(ApiError) as exc:
                manager.result(job.id)
            assert exc.value.code == "job_not_finished"
            assert exc.value.status == 409
            with pytest.raises(ApiError) as exc:
                manager.cancel(job.id)  # already terminal
            assert exc.value.code == "job_finished"
        finally:
            release.set()
            manager.close()

    def test_priority_orders_queued_jobs(self, tmp_path, monkeypatch):
        real = workers.TASKS["touch-cost"]
        started = threading.Event()
        release = threading.Event()

        def gated(args):
            started.set()
            release.wait(timeout=60)
            return real(args)

        monkeypatch.setitem(workers.TASKS, "touch-cost", gated)
        manager = JobManager(str(tmp_path / "jobs"), parallel=1)
        try:
            first = manager.submit(JobSpec.from_json(_touch_body([256])))
            assert started.wait(timeout=30)  # runner is busy with `first`
            low = manager.submit(
                JobSpec.from_json(_touch_body([512])), priority=50
            )
            high = manager.submit(
                JobSpec.from_json(_touch_body([1024])), priority=1
            )
            assert low.priority == 50 and high.priority == 1
            release.set()
            for job in (first, low, high):
                _wait(manager, job.id)
            assert manager.started_order == [first.id, high.id, low.id]
        finally:
            release.set()
            manager.close()

    def test_cells_job_warms_interactive_cache(self, tmp_path):
        body = {"engine": "hmm", "program": "sort", "v": 16, "mu": 8,
                "f": "x^0.51", "trace": "counters"}
        service = SimService(cache_capacity=32,
                             jobs_dir=str(tmp_path / "jobs"))
        try:
            job = service.job_manager.submit_json(
                {"kind": "cells", "cells": [body]}
            )
            _wait(service.job_manager, job.id)
            result = service.job_manager.result(job.id)
            # the next interactive request rides the job's work
            key, doc, served = service.scheduler.submit(
                SimRequest.from_json(body)
            )
            assert served == "cached"
            assert result["cells"][0] == doc  # byte-identical to /v1/run
            assert service.cache.counters.snapshot()["stores_job"] == 1
        finally:
            service.close()

    @pytest.mark.slow
    def test_bench_job_produces_distributed_matrix(self, tmp_path):
        manager = JobManager(str(tmp_path / "jobs"))
        try:
            job = manager.submit(JobSpec.from_json(
                {"kind": "bench", "smoke": True, "budget_s": 0.05}
            ))
            _wait(manager, job.id, timeout_s=300.0)
            doc = manager.result(job.id)
        finally:
            manager.close()
        assert doc["distributed"] is True
        assert doc["workloads"]
        assert doc["resilience"]["cells_resumed"] == len(doc["workloads"])


# --------------------------------------------------- restarts and chaos
class TestJobRestarts:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_interrupted_job_resumes_byte_identical(
        self, tmp_path, monkeypatch, jobs
    ):
        """Crash mid-job (injected at a cell edge), re-adopt, re-finish:
        the final document is byte-equal to an uninterrupted run's."""
        sizes = [256, 512, 1024, 2048]
        reference_mgr = JobManager(str(tmp_path / "ref"), parallel=jobs)
        try:
            ref_job = reference_mgr.submit(
                JobSpec.from_json(_touch_body(sizes))
            )
            _wait(reference_mgr, ref_job.id)
            reference = reference_mgr.result(ref_job.id)
        finally:
            reference_mgr.close()

        monkeypatch.setenv("REPRO_FAULTS", "abort=2")
        crashed = JobManager(str(tmp_path / "crash"), parallel=jobs)
        job = crashed.submit(JobSpec.from_json(_touch_body(sizes)))
        crashed._runner.join(timeout=120)  # FaultAbort kills the runner
        assert crashed.get(job.id).state == "running"  # mid-flight manifest
        assert 0 < crashed.get(job.id).cells_done < len(sizes)
        monkeypatch.delenv("REPRO_FAULTS")

        adopted = JobManager(str(tmp_path / "crash"), parallel=jobs)
        try:
            _wait(adopted, job.id)
            resumed = adopted.result(job.id)
            replays = [
                ev for ev in adopted.get(job.id).events
                if ev.get("event") == "cell" and ev.get("replayed")
            ]
            assert len(replays) >= 2  # checkpointed cells were not re-run
        finally:
            adopted.close()
        assert _canon(resumed) == _canon(reference)

    def test_stopped_manager_readopts_and_finishes(self, tmp_path):
        """`close()` mid-job (the in-process server-kill stand-in) leaves
        resumable state behind."""
        from repro.parallel.sweep import touch_sweep

        sizes = [256, 512, 1024, 2048]
        m1 = JobManager(str(tmp_path / "jobs"))
        job = m1.submit(JobSpec.from_json(_touch_body(sizes)))
        while m1.get(job.id).cells_done < 1 and not m1.get(job.id).terminal:
            time.sleep(0.002)
        m1.close()

        m2 = JobManager(str(tmp_path / "jobs"))
        try:
            _wait(m2, job.id)
            resumed = m2.result(job.id)
        finally:
            m2.close()
        direct = json.loads(json.dumps(touch_sweep(sizes, f="x^0.5")))
        assert _canon(resumed) == _canon(direct)

    def test_job_completes_under_worker_kills(self, tmp_path, monkeypatch):
        """Every cell's first pool attempt dies; retries still converge on
        the identical document."""
        from repro.parallel.config import ParallelConfig
        from repro.resilience.retry import RetryPolicy

        reference_mgr = JobManager(str(tmp_path / "ref"))
        try:
            ref_job = reference_mgr.submit(JobSpec.from_json(_touch_body()))
            _wait(reference_mgr, ref_job.id)
            reference = reference_mgr.result(ref_job.id)
        finally:
            reference_mgr.close()

        shared_pool(2).shutdown()  # workers inherit REPRO_FAULTS at spawn
        monkeypatch.setenv(
            "REPRO_FAULTS", f"seed=7,kill=1.0,dir={tmp_path / 'marks'}"
        )
        cfg = ParallelConfig(
            jobs=2, retry=RetryPolicy(max_retries=4, backoff_s=0.0)
        )
        manager = JobManager(str(tmp_path / "jobs"), parallel=cfg)
        try:
            job = manager.submit(JobSpec.from_json(_touch_body()))
            _wait(manager, job.id)
            chaotic = manager.result(job.id)
        finally:
            manager.close()
        assert _canon(chaotic) == _canon(reference)
        assert recovery.counters()["worker_deaths"] >= 1

    def test_adopts_hand_written_queued_manifest(self, tmp_path):
        """The manifest format is a contract: a queued manifest written by
        a previous process is picked up and run."""
        from repro.parallel.sweep import touch_sweep

        jobs_dir = tmp_path / "jobs"
        jobs_dir.mkdir()
        manifest = {
            "schema": 1,
            "id": "job-adopted0001",
            "kind": "touch",
            "spec": _touch_body([256]),
            "priority": DEFAULT_PRIORITY,
            "seq": 0,
            "state": "queued",
            "cells_total": 1,
            "cells_done": 0,
            "error": None,
        }
        (jobs_dir / "job-adopted0001.manifest.json").write_text(
            json.dumps(manifest)
        )
        manager = JobManager(str(jobs_dir))
        try:
            _wait(manager, "job-adopted0001")
            result = manager.result("job-adopted0001")
        finally:
            manager.close()
        direct = json.loads(json.dumps(touch_sweep([256], f="x^0.5")))
        assert _canon(result) == _canon(direct)

    def test_corrupt_manifest_skipped_with_warning(self, tmp_path):
        jobs_dir = tmp_path / "jobs"
        jobs_dir.mkdir()
        (jobs_dir / "job-bad.manifest.json").write_text("{torn")
        with pytest.warns(RuntimeWarning, match="corrupt job manifest"):
            manager = JobManager(str(jobs_dir))
        try:
            assert manager.list() == []
        finally:
            manager.close()


# ------------------------------------------------------------------ HTTP
class TestJobsOverHTTP:
    @pytest.fixture()
    def server(self, tmp_path):
        service = SimService(cache_capacity=32,
                             jobs_dir=str(tmp_path / "jobs"))
        with ServiceServer(service) as srv:
            yield srv

    def test_full_http_lifecycle(self, server):
        from repro.parallel.sweep import touch_sweep

        status, doc = _post(server.url, "/v1/jobs", _touch_body())
        assert status == 202
        assert doc["state"] == "queued"
        assert doc["cells_total"] == len(SIZES)
        job_id = doc["id"]

        status, listing = _get(server.url, "/v1/jobs")
        assert status == 200
        assert [j["id"] for j in listing["jobs"]] == [job_id]

        deadline = time.monotonic() + 120
        while True:
            status, doc = _get(server.url, f"/v1/jobs/{job_id}")
            assert status == 200
            if doc["state"] == "done":
                break
            assert time.monotonic() < deadline
            time.sleep(0.02)
        assert doc["cells_done"] == len(SIZES)

        status, result = _get(server.url, f"/v1/jobs/{job_id}/result")
        assert status == 200
        direct = json.loads(json.dumps(touch_sweep(SIZES, f="x^0.5")))
        assert _canon(result) == _canon(direct)

        # cancelling a finished job is a 409 with the envelope code
        status, doc = _post(
            server.url, f"/v1/jobs/{job_id}", None, method="DELETE"
        )
        assert status == 409
        assert doc["error"]["code"] == "job_finished"

        status, doc = _get(server.url, "/v1/jobs/job-nope/result")
        assert status == 404
        assert doc["error"]["code"] == "not_found"

        status, metrics = _get(server.url, "/v1/metrics")
        assert metrics["jobs"]["enabled"] is True
        assert metrics["jobs"]["done"] == 1
        assert metrics["requests"]["errors"] == 0

    def test_events_stream_over_http(self, server):
        status, doc = _post(server.url, "/v1/jobs", _touch_body())
        assert status == 202
        with urllib.request.urlopen(
            server.url + f"/v1/jobs/{doc['id']}/events", timeout=120
        ) as resp:
            assert resp.headers["Content-Type"] == "application/x-ndjson"
            events = [json.loads(line) for line in resp]
        kinds = [ev["event"] for ev in events]
        assert kinds[0] == "snapshot"
        assert kinds[-1] == "done"
        assert kinds.count("cell") == len(SIZES)

    def test_jobs_disabled_without_jobs_dir(self):
        with ServiceServer(SimService(cache_capacity=4)) as server:
            status, doc = _post(server.url, "/v1/jobs", _touch_body())
            assert status == 400
            assert doc["error"]["code"] == "jobs_disabled"
            status, doc = _get(server.url, "/v1/jobs")
            assert status == 400
            assert doc["error"]["code"] == "jobs_disabled"

    def test_invalid_job_body_is_400(self, server):
        status, doc = _post(server.url, "/v1/jobs", {"kind": "mystery"})
        assert status == 400
        assert doc["error"]["code"] == "bad_request"
        assert "unknown job kind" in doc["error"]["message"]

    def test_server_restart_readopts_and_result_is_identical(self, tmp_path):
        """Kill the serving process mid-job (modulo in-process stand-in),
        restart on the same --jobs-dir, and the finished document equals
        an uninterrupted run's."""
        from repro.parallel.sweep import touch_sweep

        sizes = [256, 512, 1024, 2048]
        jobs_dir = str(tmp_path / "jobs")
        service = SimService(cache_capacity=32, jobs_dir=jobs_dir)
        with ServiceServer(service) as server:
            status, doc = _post(server.url, "/v1/jobs", _touch_body(sizes))
            assert status == 202
            job_id = doc["id"]
            manager = service.job_manager
            while (
                manager.get(job_id).cells_done < 1
                and not manager.get(job_id).terminal
            ):
                time.sleep(0.002)
        # ServiceServer.close() stopped the runner at a cell edge; the
        # manifest and ledger stay behind like after a kill -9

        service2 = SimService(cache_capacity=32, jobs_dir=jobs_dir)
        with ServiceServer(service2) as server:
            deadline = time.monotonic() + 120
            while True:
                status, doc = _get(server.url, f"/v1/jobs/{job_id}")
                if doc["state"] == "done":
                    break
                assert time.monotonic() < deadline
                time.sleep(0.02)
            status, resumed = _get(server.url, f"/v1/jobs/{job_id}/result")
            assert status == 200
        direct = json.loads(json.dumps(touch_sweep(sizes, f="x^0.5")))
        assert _canon(resumed) == _canon(direct)


# --------------------------------------------------------------- loadgen
class TestJobModeLoadgen:
    def test_job_bench_smoke(self):
        from repro.service.loadgen import run_job_bench

        doc = run_job_bench(smoke=True, clients=2, requests_per_client=6,
                            hot_keys=2, seed=11,
                            sizes=[256, 512, 1024, 2048])
        assert doc["errors"] == 0
        assert doc["results_identical"] is True
        assert doc["job_s"] > 0
        assert doc["job_with_restart_s"] > 0
        assert set(doc["rounds"]) == {"baseline", "with_job"}
        for round_doc in doc["rounds"].values():
            assert round_doc["latency_p50_s"] is not None
