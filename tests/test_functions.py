"""Access functions, (2, c)-uniformity, iterated stars, cost tables."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.functions import (
    ConstantAccess,
    CostTable,
    LinearAccess,
    LogarithmicAccess,
    PolynomialAccess,
    iterated_star,
    log_star,
    two_c_uniformity,
)


class TestPolynomialAccess:
    def test_values(self):
        f = PolynomialAccess(0.5)
        assert f(0) == 1.0
        assert f(3) == 2.0
        assert f(99) == pytest.approx(10.0)

    def test_name(self):
        assert PolynomialAccess(0.5).name == "x^0.5"
        assert PolynomialAccess(0.25).name == "x^0.25"

    @pytest.mark.parametrize("alpha", [0.0, 1.0, -0.5, 2.0])
    def test_alpha_out_of_range_rejected(self, alpha):
        with pytest.raises(ValueError):
            PolynomialAccess(alpha)

    def test_vectorized_matches_scalar(self):
        f = PolynomialAccess(0.7)
        xs = np.array([0, 1, 5, 100, 10_000])
        assert np.allclose(f.evaluate(xs), [f(x) for x in xs])

    def test_uniformity_constant_is_two_to_alpha(self):
        f = PolynomialAccess(0.5)
        assert two_c_uniformity(f) <= 2**0.5 + 1e-9

    def test_hashable_and_frozen(self):
        f = PolynomialAccess(0.5)
        assert hash(f) == hash(PolynomialAccess(0.5))
        with pytest.raises(Exception):
            f.alpha = 0.3  # type: ignore[misc]


class TestLogarithmicAccess:
    def test_values(self):
        f = LogarithmicAccess()
        assert f(0) == 1.0
        assert f(2) == 2.0
        assert f(1022) == pytest.approx(10.0)

    def test_two_two_uniform(self):
        assert two_c_uniformity(LogarithmicAccess()) <= 2.0 + 1e-9

    def test_vectorized_matches_scalar(self):
        f = LogarithmicAccess()
        xs = np.array([0, 1, 7, 1000])
        assert np.allclose(f.evaluate(xs), [f(x) for x in xs])


class TestOtherFunctions:
    def test_constant(self):
        f = ConstantAccess()
        assert f(0) == f(10**9) == 1.0
        assert two_c_uniformity(f) == 1.0

    def test_linear(self):
        f = LinearAccess()
        assert f(0) == 1.0 and f(9) == 10.0
        assert two_c_uniformity(f) <= 2.0

    @given(st.integers(min_value=0, max_value=10**9))
    def test_all_nonnegative_and_monotone(self, x):
        for f in (PolynomialAccess(0.5), LogarithmicAccess(),
                  ConstantAccess(), LinearAccess()):
            assert f(x) > 0
            assert f(x + 1) >= f(x)


class TestIteratedStar:
    def test_polynomial_grows_like_loglog(self):
        f = PolynomialAccess(0.5)
        small = iterated_star(f, 2**8)
        large = iterated_star(f, 2**24)
        assert small <= large <= small + 4
        assert large <= 3 * math.log2(math.log2(2**24))

    def test_log_grows_like_logstar(self):
        f = LogarithmicAccess()
        assert iterated_star(f, 2**20) <= 5
        assert iterated_star(f, 2**20) >= iterated_star(f, 2**4)

    def test_matches_log_star_helper(self):
        # the helper iterates pure log2; the access function log2(x+2)
        # differs by at most one iteration on sane inputs
        for n in (16, 2**10, 2**16, 2**20):
            assert abs(log_star(n) - iterated_star(LogarithmicAccess(), n)) <= 1

    def test_small_inputs_give_one(self):
        assert iterated_star(PolynomialAccess(0.5), 1) == 1
        assert iterated_star(LogarithmicAccess(), 0) == 1

    def test_star_method_delegates(self):
        f = PolynomialAccess(0.5)
        assert f.star(12345) == iterated_star(f, 12345)


class TestCostTable:
    def test_access_matches_function(self):
        f = PolynomialAccess(0.5)
        table = CostTable(f, 100)
        for x in (0, 1, 50, 99):
            assert table.access(x) == pytest.approx(f(x))

    def test_range_cost_is_sum(self):
        f = LogarithmicAccess()
        table = CostTable(f, 64)
        want = sum(f(x) for x in range(10, 30))
        assert table.range_cost(10, 30) == pytest.approx(want)

    def test_prefix_cost_fact1_shape(self):
        """Fact 1: touching the first n cells costs Theta(n f(n))."""
        for f in (PolynomialAccess(0.5), LogarithmicAccess()):
            table = CostTable(f, 1 << 16)
            ratios = [
                table.prefix_cost(n) / (n * f(n))
                for n in (1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16)
            ]
            assert max(ratios) / min(ratios) < 1.5
            assert all(0.1 < r <= 1.0 + 1e-9 for r in ratios)

    def test_bounds_checked(self):
        table = CostTable(PolynomialAccess(0.5), 10)
        with pytest.raises(IndexError):
            table.access(10)
        with pytest.raises(IndexError):
            table.range_cost(5, 11)
        with pytest.raises(IndexError):
            table.range_cost(-1, 5)

    def test_empty_range_is_free(self):
        table = CostTable(PolynomialAccess(0.5), 10)
        assert table.range_cost(4, 4) == 0.0

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            CostTable(PolynomialAccess(0.5), 0)

    @given(
        lo=st.integers(min_value=0, max_value=200),
        mid=st.integers(min_value=0, max_value=200),
        hi=st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=60)
    def test_range_cost_additive(self, lo, mid, hi):
        lo, mid, hi = sorted((lo, mid, hi))
        table = CostTable(LogarithmicAccess(), 256)
        total = table.range_cost(lo, hi)
        split = table.range_cost(lo, mid) + table.range_cost(mid, hi)
        assert total == pytest.approx(split)

    @given(n=st.integers(min_value=1, max_value=255))
    @settings(max_examples=40)
    def test_prefix_monotone(self, n):
        table = CostTable(PolynomialAccess(0.3), 256)
        assert table.prefix_cost(n) >= table.prefix_cost(n - 1)
