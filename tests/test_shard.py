"""Sharded service tier tests: ring, router, failover, open-loop stats.

The load-bearing invariant is the serving determinism contract carried
over the process boundary: the document a client receives through the
router — owner shard, failover shard, or a supervisor-respawned shard
reading its ledger — is ``==``-identical to the single-process
:class:`~repro.service.server.SimService` answer, and every failure the
client can observe is the unified ``{"error": {...}}`` envelope, never
a raw reset or proxy error.

Router mechanics are tested against *thread*-backed shards (two
in-process ``ServiceServer``s — cheap, deterministic); one integration
test drives real shard subprocesses through
:class:`~repro.service.shard.ShardedTier` with a deterministic
``REPRO_FAULTS`` shard death and proves identity across the kill,
failover, respawn and ledger-warmed restart.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.parallel.config import reset_fallback_warnings
from repro.parallel.pool import shared_pool
from repro.resilience import recovery
from repro.resilience.faults import FaultPlan
from repro.service.loadgen import (
    MIN_OPEN_LOOP_SAMPLES,
    SHARD_BENCH_SCHEMA,
    _latency_fields,
    _latency_histogram,
    _percentile,
    _run_open_phase,
    _run_phase,
    check_shard_against,
)
from repro.service.router import (
    HashRing,
    Router,
    RouterHandler,
    ShardClient,
    make_router_server,
)
from repro.service.scheduler import SERVICE_SCHEMA, SimRequest
from repro.service.server import ServiceServer, SimService
from repro.service.shard import ShardedTier


@pytest.fixture(autouse=True)
def _clean_slate(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    recovery.reset()
    reset_fallback_warnings()
    yield
    shared_pool(2).shutdown()
    recovery.reset()
    reset_fallback_warnings()


def _body(i: int = 0, **kw) -> dict:
    kw.setdefault("engine", "hmm")
    kw.setdefault("program", "sort")
    kw.setdefault("v", 16)
    kw.setdefault("f", f"x^0.{51 + i}")
    return kw


def _post(url: str, path: str, doc) -> tuple[int, dict, dict]:
    data = json.dumps(doc).encode()
    req = urllib.request.Request(
        url + path, data=data,
        headers={"Content-Type": "application/json"}, method="POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


def _get(url: str, path: str) -> tuple[int, dict, dict]:
    try:
        with urllib.request.urlopen(url + path, timeout=60) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


# ------------------------------------------------------------------- ring
class TestHashRing:
    def test_chain_is_a_permutation_and_deterministic(self):
        ring = HashRing(4)
        key = "ab" * 16
        chain = ring.chain(key)
        assert sorted(chain) == [0, 1, 2, 3]
        assert ring.chain(key) == chain
        assert ring.owner(key) == chain[0]

    def test_distribution_is_roughly_balanced(self):
        ring = HashRing(4)
        counts = [0, 0, 0, 0]
        for i in range(1000):
            # keys are content hashes — uniform leading bits, like real
            # cell_key() values (f"{i:032x}" would all sit at position 0)
            counts[ring.owner(hashlib.sha256(b"%d" % i).hexdigest())] += 1
        # 64 vnodes/shard keeps every shard within a loose band of the
        # 250 ideal — the property that matters is no starved shard
        assert min(counts) > 100, counts

    def test_losing_a_shard_only_remaps_its_keys(self):
        ring = HashRing(3)
        keys = [hashlib.sha256(b"%d" % i).hexdigest() for i in range(300)]
        dead = 1
        for key in keys:
            chain = ring.chain(key)
            survivor = next(i for i in chain if i != dead)
            if chain[0] != dead:
                # keys the dead shard did not own stay put
                assert survivor == chain[0]

    def test_non_hex_keys_fall_back_to_hashing(self):
        ring = HashRing(2)
        assert ring.owner("not hex at all") in (0, 1)

    def test_single_shard_owns_everything(self):
        ring = HashRing(1)
        assert ring.chain("00" * 16) == [0]

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            HashRing(0)


# --------------------------------------------- router over thread shards
class _ThreadTier:
    """Two in-process ServiceServers behind a real Router/HTTP server."""

    def __init__(self, shards: int = 2, cache_capacity: int = 32):
        self.servers = [
            ServiceServer(SimService(
                cache_capacity=cache_capacity,
                identity={"index": i},
            ))
            for i in range(shards)
        ]
        self.clients = [
            ShardClient(i, "127.0.0.1", s.httpd.server_address[1])
            for i, s in enumerate(self.servers)
        ]
        self.router = Router(self.clients)
        self.httpd = make_router_server("127.0.0.1", 0, self.router)
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            kwargs={"poll_interval": 0.05}, daemon=True,
        )
        self._thread.start()

    @property
    def url(self) -> str:
        host, port = self.httpd.server_address[:2]
        return f"http://{host}:{port}"

    def close(self) -> None:
        self.router.close()
        self.httpd.shutdown()
        self.httpd.server_close()
        self._thread.join(timeout=5)
        for server in self.servers:
            try:
                server.close()
            except Exception:
                pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


class TestRouter:
    def test_run_routes_by_key_and_caches(self):
        with _ThreadTier() as tier:
            status, doc, _ = _post(tier.url, "/v1/run", _body(0))
            assert status == 200 and doc["served"] == "computed"
            status, again, _ = _post(tier.url, "/v1/run", _body(0))
            assert status == 200 and again["served"] == "cached"
            assert again["result"] == doc["result"]

    def test_routed_result_identical_to_unsharded(self):
        with _ThreadTier() as tier:
            reference = SimService(cache_capacity=8)
            try:
                for i in range(6):
                    status, doc, _ = _post(tier.url, "/v1/run", _body(i))
                    assert status == 200
                    assert doc["result"] == (
                        reference.handle_run(_body(i))["result"]
                    )
            finally:
                reference.close()

    def test_requests_spread_over_both_shards(self):
        with _ThreadTier() as tier:
            for i in range(12):
                _post(tier.url, "/v1/run", _body(i))
            per_shard = [
                s.service.scheduler.counters.snapshot().get("admitted", 0)
                for s in tier.servers
            ]
            assert all(n > 0 for n in per_shard), per_shard

    def test_batch_spans_shards_and_stitches_in_order(self):
        with _ThreadTier() as tier:
            bodies = [_body(i) for i in range(8)]
            status, doc, _ = _post(
                tier.url, "/v1/batch", {"requests": bodies}
            )
            assert status == 200
            assert len(doc["results"]) == len(bodies)
            reference = SimService(cache_capacity=16)
            try:
                for body, item in zip(bodies, doc["results"]):
                    expected = reference.handle_run(body)
                    assert item["key"] == expected["key"]
                    assert item["result"] == expected["result"]
            finally:
                reference.close()

    def test_owner_death_fails_over_with_identity(self):
        with _ThreadTier() as tier:
            body = _body(3)
            key = SimRequest.from_json(body).key()
            owner = tier.router.ring.owner(key)
            _, expected, _ = _post(tier.url, "/v1/run", body)
            # the owner drops off the network (a pooled keep-alive
            # connection would outlive server_close in-process, which a
            # killed subprocess cannot do — drop it to match reality)
            tier.servers[owner].close()
            tier.clients[owner].drop_pool()
            status, doc, _ = _post(tier.url, "/v1/run", body)
            assert status == 200
            assert doc["result"] == expected["result"]
            counters = tier.router.counters.snapshot()
            assert counters["shard_deaths"] == 1
            assert counters["failovers"] >= 1
            assert not tier.router.shards[owner].alive

    def test_all_shards_dead_is_an_enveloped_503(self):
        with _ThreadTier() as tier:
            for server in tier.servers:
                server.close()
            status, doc, headers = _post(tier.url, "/v1/run", _body(0))
            assert status == 503
            assert set(doc) == {"error"}
            assert set(doc["error"]) == {"code", "message", "retry_after_s"}
            assert doc["error"]["code"] == "shard_unavailable"
            assert doc["error"]["retry_after_s"] is not None
            assert "Retry-After" in headers

    def test_unknown_path_is_an_enveloped_404(self):
        with _ThreadTier() as tier:
            status, doc, _ = _get(tier.url, "/v1/nope")
            assert status == 404
            assert set(doc) == {"error"}
            assert doc["error"]["code"] == "not_found"

    def test_bad_request_rejected_at_the_router(self):
        with _ThreadTier() as tier:
            status, doc, _ = _post(tier.url, "/v1/run", {"nope": 1})
            assert status == 400
            assert doc["error"]["code"] == "bad_request"
            # the router validated it; no shard burned capacity on it
            assert tier.router.counters.snapshot().get("forwards", 0) == 0

    def test_deprecated_alias_carries_marker_through_the_router(self):
        with _ThreadTier() as tier:
            status, doc, headers = _get(tier.url, "/healthz")
            assert status == 200 and doc["ok"] is True
            assert headers.get("Deprecation") == "true"
            status, _, headers = _get(tier.url, "/v1/healthz")
            assert status == 200 and "Deprecation" not in headers

    def test_healthz_is_shard_transparent_plus_router_section(self):
        with _ThreadTier() as tier:
            status, doc, _ = _get(tier.url, "/v1/healthz")
            assert status == 200
            assert doc["ok"] is True
            assert doc["schema"] == SERVICE_SCHEMA
            assert "engines" in doc and "programs" in doc
            assert doc["router"] == {"shards": 2, "alive": 2}

    def test_metrics_envelope_schema(self):
        with _ThreadTier() as tier:
            for i in range(8):
                _post(tier.url, "/v1/run", _body(i))
                _post(tier.url, "/v1/run", _body(i))  # cache hit
            status, doc, _ = _get(tier.url, "/v1/metrics")
            assert status == 200
            assert set(doc) == {
                "schema", "api", "router", "shards", "cache", "kernel",
            }
            assert doc["schema"] == SERVICE_SCHEMA and doc["api"] == "v1"
            for counter in ("forwards", "failovers", "shard_deaths",
                            "rehash_events", "unavailable"):
                assert counter in doc["router"], counter
            assert doc["router"]["shards"] == 2
            assert doc["router"]["alive"] == 2
            assert doc["router"]["forwards"] >= 16
            assert set(doc["shards"]) == {"0", "1"}
            for shard_doc in doc["shards"].values():
                assert shard_doc["alive"] is True
                assert "cache" in shard_doc and "requests" in shard_doc
                # both shards took traffic and re-served it from cache
                assert shard_doc["cache"]["stores"] > 0
                assert shard_doc["cache"]["hits"] > 0
            # the rollup sums the per-shard cache counters
            assert doc["cache"]["stores"] == sum(
                s["cache"]["stores"] for s in doc["shards"].values()
            )
            assert doc["cache"]["hits"] == 8

    def test_router_requires_a_shard(self):
        with pytest.raises(ValueError):
            Router([])

    def test_routes_cover_the_jobs_surface(self):
        surface = {(m, p) for m, p, _ in RouterHandler.ROUTES}
        assert ("POST", ("jobs",)) in surface
        assert ("GET", ("jobs", None, "events")) in surface
        assert ("DELETE", ("jobs", None)) in surface


# ------------------------------------------------- process-level failover
class TestShardedTierProcess:
    def test_kill_failover_respawn_identity(self, tmp_path):
        """The headline invariant, end to end against real processes.

        Shard 0 is armed (via its own environment only) to ``os._exit``
        after 6 answered POSTs.  The stream of requests must keep
        getting ``==``-identical answers through the passive-detection
        failover window; the supervisor respawns the shard on its old
        port with its ledger-warmed cache; and the only client-visible
        failure shape allowed is the ``{"error": {...}}`` envelope.
        """
        marker_dir = str(tmp_path / "markers")
        fault_env = {
            "REPRO_FAULTS": f"seed=7,shard_exit=6,dir={marker_dir}"
        }
        bodies = [_body(i) for i in range(10)]
        reference = SimService(cache_capacity=32)
        try:
            expected = [
                reference.handle_run(body)["result"] for body in bodies
            ]
        finally:
            reference.close()
        with ShardedTier(
            shards=2,
            shard_dir=str(tmp_path / "shards"),
            cache_capacity=32,
            restart=True,
            per_shard_env={0: fault_env},
        ) as tier:
            enveloped = 0
            for round_no in range(4):
                for body, want in zip(bodies, expected):
                    status, doc, _ = _post(tier.url, "/v1/run", body)
                    if status == 200:
                        assert doc["result"] == want
                    else:
                        # the brief in-flight window: enveloped, never raw
                        assert set(doc) == {"error"}, doc
                        assert set(doc["error"]) == {
                            "code", "message", "retry_after_s"}, doc
                        enveloped += 1
            # the fault fired: shard 0 died once and was respawned
            deadline = time.monotonic() + 10.0
            while tier.restarts < 1 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert tier.restarts >= 1
            assert tier.supervisors[0].spawns >= 2
            counters = tier.router.counters.snapshot()
            assert counters.get("shard_deaths", 0) >= 1
            # and the replacement's cache came back warm from the ledger
            deadline = time.monotonic() + 10.0
            preloaded = 0
            while time.monotonic() < deadline:
                status, metrics, _ = _get(tier.url, "/v1/metrics")
                shard0 = metrics["shards"]["0"]
                preloaded = shard0.get("cache", {}).get("preloaded", 0)
                if status == 200 and shard0["alive"] and preloaded:
                    break
                time.sleep(0.2)
            assert preloaded > 0
            # the revived shard serves identical documents again
            for body, want in zip(bodies, expected):
                status, doc, _ = _post(tier.url, "/v1/run", body)
                assert status == 200
                assert doc["result"] == want


# ---------------------------------------------------- open-loop statistics
class TestLatencyStats:
    def test_percentile_nearest_rank(self):
        values = [float(i) for i in range(1, 101)]
        assert _percentile(values, 0.50) == 51.0  # rank round(0.5 * 99)
        assert _percentile(values, 0.99) == 99.0
        assert _percentile([], 0.5) is None

    def test_histogram_buckets_and_trimming(self):
        doc = _latency_histogram([0.00005, 0.0003, 0.0005, 0.009])
        assert doc["floor_s"] == 1e-4 and doc["factor"] == 2
        # bucket 0: below floor; bucket i: [floor*2^(i-1), floor*2^i)
        # 0.3ms -> [0.2ms, 0.4ms), 0.5ms -> [0.4ms, 0.8ms), 9ms -> bucket 7
        assert doc["counts"] == [1, 0, 1, 1, 0, 0, 0, 1]
        assert _latency_histogram([])["counts"] == []
        total = sum(_latency_histogram([0.001] * 7)["counts"])
        assert total == 7

    def test_latency_fields_record_sample_count(self):
        doc = _latency_fields([0.002] * 50)
        assert doc["latency_samples"] == 50
        assert doc["latency_p50_s"] == 0.002
        assert doc["latency_p99_s"] == 0.002
        assert "latency_histogram" in doc

    def test_min_sample_guard_suppresses_percentiles(self):
        doc = _latency_fields([0.002] * 3, min_samples=MIN_OPEN_LOOP_SAMPLES)
        assert doc["latency_samples"] == 3
        assert doc["latency_p50_s"] is None
        assert doc["latency_p99_s"] is None
        assert "suppressed" in doc["latency_note"]
        ok = _latency_fields(
            [0.002] * MIN_OPEN_LOOP_SAMPLES,
            min_samples=MIN_OPEN_LOOP_SAMPLES,
        )
        assert ok["latency_p99_s"] == 0.002
        assert "latency_note" not in ok

    def test_closed_phase_reports_p99_histogram_and_samples(self):
        with ServiceServer(SimService(cache_capacity=16)) as server:
            phase, _ = _run_phase(
                server.url, "t", clients=2, requests_per_client=4,
                hot_ratio=0.5, hot_keys=2, batch=1, seed=7, cold_base=0,
            )
        assert phase["latency_samples"] == 8
        assert phase["latency_p99_s"] >= phase["latency_p50_s"]
        assert sum(phase["latency_histogram"]["counts"]) == 8
        assert phase["errors"] == 0
        assert phase["non_envelope_errors"] == 0

    def test_open_loop_phase_measures_from_scheduled_arrival(self):
        with ServiceServer(SimService(cache_capacity=16)) as server:
            phase, _ = _run_open_phase(
                server.url, "ol", rate=120.0, duration_s=1.0,
                hot_ratio=1.0, hot_keys=4, concurrency=4, seed=7,
                cold_base=0,
            )
        assert phase["mode"] == "open_loop"
        assert phase["offered_rate_per_s"] == 120.0
        assert phase["requests"] == phase["latency_samples"]
        # ~120 Poisson arrivals in 1s clears the 40-sample floor
        assert phase["latency_samples"] >= MIN_OPEN_LOOP_SAMPLES
        assert phase["latency_p99_s"] is not None
        assert phase["errors"] == 0


# -------------------------------------------------------- bench guardrail
class TestCheckShardAgainst:
    def _doc(self, **overrides):
        doc = {
            "schema": SHARD_BENCH_SCHEMA,
            "scaling_floor_x": 1.5,
            "fault_p99_bound_x": 15.0,
            "scaling_x": 2.0,
            "fault_p99_ratio": 3.0,
            "identity_ok": True,
            "errors": 0,
            "non_envelope_errors": 0,
            "phases": {
                "open_loop": {
                    "mode": "open_loop",
                    "requests_per_s": 150.0,
                    "latency_p99_s": 0.02,
                    "latency_samples": 500,
                },
                "scale_1shard": {"requests_per_s": 200.0},
            },
        }
        doc.update(overrides)
        return doc

    def test_clean_self_check(self):
        doc = self._doc()
        assert check_shard_against(doc, doc) == []

    def test_schema_drift_refuses(self):
        with pytest.raises(ValueError):
            check_shard_against(self._doc(schema=99), self._doc())

    def test_errors_and_envelope_leaks_flag(self):
        problems = check_shard_against(
            self._doc(errors=2, non_envelope_errors=1), self._doc()
        )
        assert any("2 request(s) failed" in p for p in problems)
        assert any("envelope" in p for p in problems)

    def test_scaling_floor_enforced(self):
        problems = check_shard_against(self._doc(scaling_x=1.2), self._doc())
        assert any("scaling" in p for p in problems)

    def test_fault_p99_bound_enforced(self):
        problems = check_shard_against(
            self._doc(fault_p99_ratio=40.0), self._doc()
        )
        assert any("fault-free p99" in p for p in problems)

    def test_identity_divergence_flags(self):
        problems = check_shard_against(
            self._doc(identity_ok=False), self._doc()
        )
        assert any("diverged" in p for p in problems)

    def test_throughput_and_p99_drift_vs_baseline(self):
        base = self._doc()
        slow = self._doc()
        slow["phases"] = dict(base["phases"])
        slow["phases"]["open_loop"] = dict(base["phases"]["open_loop"])
        slow["phases"]["open_loop"]["requests_per_s"] = 10.0
        slow["phases"]["open_loop"]["latency_p99_s"] = 1.0
        problems = check_shard_against(slow, base, tolerance=5.0)
        assert any("req/s" in p for p in problems)
        assert any("p99" in p for p in problems)

    def test_suppressed_percentiles_flag(self):
        doc = self._doc()
        doc["phases"]["open_loop"] = dict(doc["phases"]["open_loop"])
        doc["phases"]["open_loop"]["latency_note"] = (
            "percentiles suppressed: 3 sample(s)..."
        )
        problems = check_shard_against(doc, self._doc())
        assert any("suppressed" in p for p in problems)

    def test_missing_phase_in_smoke_run_is_fine(self):
        fresh = self._doc()
        fresh["phases"] = {"open_loop": fresh["phases"]["open_loop"]}
        assert check_shard_against(fresh, self._doc()) == []


# ------------------------------------------------------------- fault knob
class TestShardExitKnob:
    def test_spec_parses(self):
        plan = FaultPlan.from_spec("seed=7,shard_exit=6,dir=/tmp/x")
        assert plan.shard_exit == 6
        assert plan.seed == 7

    def test_default_is_disarmed(self):
        assert FaultPlan.from_spec("seed=7").shard_exit == 0
