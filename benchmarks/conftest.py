"""Shared infrastructure for the experiment benchmarks.

Each benchmark module reproduces one table/figure-equivalent from the
paper (see DESIGN.md's experiment index): it sweeps the relevant
parameters, prints a paper-vs-measured table, saves it under
``benchmarks/results/``, asserts the claimed *shape* (bounded, flat
ratios; fitted exponents), and times one representative configuration
through pytest-benchmark.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


class Reporter:
    """Collects table rows, prints them and persists them per experiment."""

    def __init__(self, experiment: str):
        self.experiment = experiment
        self.lines: list[str] = []

    def title(self, text: str) -> None:
        self.lines.append("")
        self.lines.append(text)
        self.lines.append("-" * len(text))

    def table(self, headers: list[str], rows: list[list]) -> None:
        widths = [
            max(len(str(h)), *(len(_fmt(r[i])) for r in rows)) if rows else len(str(h))
            for i, h in enumerate(headers)
        ]
        self.lines.append(
            "  ".join(str(h).rjust(w) for h, w in zip(headers, widths))
        )
        for row in rows:
            self.lines.append(
                "  ".join(_fmt(cell).rjust(w) for cell, w in zip(row, widths))
            )

    def note(self, text: str) -> None:
        self.lines.append(text)

    def flush(self) -> None:
        text = "\n".join(self.lines) + "\n"
        print(text)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{self.experiment}.txt").write_text(text)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1e5 or abs(cell) < 1e-2:
            return f"{cell:.3g}"
        return f"{cell:.2f}"
    return str(cell)


@pytest.fixture
def reporter(request):
    rep = Reporter(request.node.name)
    yield rep
    rep.flush()
