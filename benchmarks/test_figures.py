"""F2-F4: regenerate the paper's illustrative figures from live simulator state.

* Figure 2 — snapshots of HMM memory during a cycle sweeping the b = 8
  sibling clusters of a coarser cluster;
* Figure 3 — the assignment of submatrices to the four 2-clusters in the
  two rounds of the matrix-multiplication algorithm;
* Figure 4 — snapshots of BT memory during UNPACK(0) on 8 processors.
"""

from __future__ import annotations

from repro.algorithms.matmul import mm_assignment_rounds
from repro.analysis.figures import (
    render_cluster_movements,
    render_mm_assignment,
    render_unpack_layout,
)
from repro.functions import PolynomialAccess
from repro.sim.bt_sim import BTSimulator
from repro.sim.hmm_sim import HMMSimulator
from repro.testing import random_program


def test_fig2_cluster_movements(benchmark, reporter):
    """Figure 2: a b = 8 cycle (labels 3 -> 0 on v = 64)."""
    f = PolynomialAccess(0.5)
    prog = random_program(64, labels=[3, 0], seed=0)

    def run():
        return HMMSimulator(
            f, record_trace=True, check_invariants="full"
        ).simulate(prog, label_set=[0, 3, 6])

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    # phases of the label-3 superstep: the 8 3-clusters each reach the top
    phase_snaps = [s for s in res.trace if s.label == 3]
    assert len(phase_snaps) == 8
    top_clusters = [s.slot_to_pid[0] // 8 for s in phase_snaps]
    assert top_clusters == list(range(8))  # C0, C1, ..., C7 in turn
    # while cluster j is on top, C0 is parked at j's home (Figure 2's swap)
    for j, snap in enumerate(phase_snaps):
        if j > 0:
            assert snap.slot_to_pid[8 * j] // 8 == 0
    reporter.title("Figure 2 — cluster movements during a b=8 cycle (v=64)")
    reporter.note(render_cluster_movements(phase_snaps, cluster_level=3, v=64))


def test_fig3_mm_assignment(benchmark, reporter):
    rounds = benchmark.pedantic(mm_assignment_rounds, rounds=1, iterations=1)
    text = render_mm_assignment(rounds)
    reporter.title("Figure 3 — submatrix assignment during matrix multiplication")
    reporter.note(text)
    # the exact content of the paper's figure
    assert rounds == [
        {0: ("A11", "B11"), 1: ("A12", "B22"),
         2: ("A22", "B21"), 3: ("A21", "B12")},
        {0: ("A12", "B21"), 1: ("A11", "B12"),
         2: ("A21", "B11"), 3: ("A22", "B22")},
    ]


def test_fig4_unpack_layout(benchmark, reporter):
    """Figure 4: the buffer-interspersed layout on v = 8."""
    f = PolynomialAccess(0.5)
    prog = random_program(8, n_steps=2, seed=0)

    def run():
        return BTSimulator(f, record_layout=True).simulate(prog)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    snaps = res.layout_trace[:2]
    reporter.title("Figure 4 — BT memory layout during UNPACK(0), v = 8")
    reporter.note(render_unpack_layout(snaps))
    assert snaps[1].slots[:12] == (0, None, 1, None, 2, 3, None, None,
                                   4, 5, 6, 7)
