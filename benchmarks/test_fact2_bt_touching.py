"""E2 (Fact 2): touching n cells on f(x)-BT costs Theta(n f*(n)).

The paper's motivating contrast with Fact 1: ``n log log n`` for
``f = x^alpha`` and ``n log* n`` for ``f = log x``, versus the HMM's
``Theta(n f(n))`` — block transfer hides almost all of the access cost.
"""

from __future__ import annotations

import pytest

from repro.analysis.fitting import bounded_ratio
from repro.bt.machine import BTMachine
from repro.bt.touching import bt_touch_all, bt_touching_bound
from repro.functions import LogarithmicAccess, PolynomialAccess
from repro.hmm.machine import HMMMachine
from repro.hmm.touching import hmm_touch_all

SIZES = [1 << k for k in range(8, 23, 2)]
FUNCTIONS = [PolynomialAccess(0.5), LogarithmicAccess()]


def measure_bt(f, n):
    machine = BTMachine(f, 2 * n)
    machine.mem[n : 2 * n] = [1] * n
    return bt_touch_all(machine, n)


@pytest.mark.parametrize("f", FUNCTIONS, ids=lambda f: f.name)
def test_fact2_touching_shape(benchmark, reporter, f):
    rows, measured, bounds = [], [], []
    for n in SIZES:
        cost = measure_bt(f, n)
        bound = bt_touching_bound(f, n)
        hmm_machine = HMMMachine(f, n)
        hmm_machine.mem[:n] = [1] * n
        hmm_cost = hmm_touch_all(hmm_machine, n)
        measured.append(cost)
        bounds.append(bound)
        rows.append([n, f.star(n), cost, bound, cost / bound,
                     hmm_cost, hmm_cost / cost])
    reporter.title(
        f"Fact 2 — BT touching, f = {f.name} (paper: Theta(n f*(n)); "
        f"HMM pays Theta(n f(n)))"
    )
    reporter.table(
        ["n", "f*(n)", "BT cost", "n*f*(n)", "ratio", "HMM cost", "HMM/BT"],
        rows,
    )

    check = bounded_ratio(measured, bounds)
    reporter.note(f"ratio band: [{check.min_ratio:.3f}, {check.max_ratio:.3f}]")
    assert check.is_bounded(2.5)
    # the paper's qualitative claim: BT wins by an unbounded factor —
    # f(n)/f*(n), i.e. ~sqrt(n)/loglog n for x^0.5 but only log n/log* n
    # for log x, so the absolute gap at bench sizes is f-dependent
    gaps = [row[-1] for row in rows]
    assert all(b > a for a, b in zip(gaps, gaps[1:])), gaps
    assert gaps[-1] > (10 if isinstance(f, PolynomialAccess) else 2)

    benchmark.pedantic(measure_bt, args=(f, SIZES[-1]), rounds=1, iterations=1)
