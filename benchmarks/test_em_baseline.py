"""E13: the flat coarse-grained baseline cannot see submachine locality.

Section 1 of the paper positions the D-BSP -> HMM result against the
earlier BSP -> EM simulations [8-10]: coarse-grained flat parallelism
maps well onto *two-level* hierarchies but "is unable to afford the finer
exploitation of locality which is required to obtain efficient algorithms
on deeper hierarchies".

Measured here: take the same pseudo-random workload with three label
profiles (coarse/uniform/fine).  The flat BSP-on-EM baseline charges the
*same* I/O volume for all three — it ignores labels by construction —
while the hierarchy-aware D-BSP -> HMM simulation gets cheaper the more
submachine locality the program exposes.
"""

from __future__ import annotations

from repro.em.simulation import FlatBSPOnEMSimulator
from repro.functions import PolynomialAccess
from repro.sim.hmm_sim import HMMSimulator
from repro.testing import random_label_sequence, random_program

F = PolynomialAccess(0.5)


def test_flat_em_vs_hierarchical_hmm(benchmark, reporter):
    """Programs must be long enough that the mandatory final global sync
    (one 0-superstep, costing as much as ~f(mu v)/f(mu) deep supersteps)
    does not dominate; 32 supersteps at v=128 suffice."""
    import random as _random

    from repro.analysis.bounds import program_stats, theorem5_bound
    from repro.dbsp.machine import DBSPMachine

    v, n_steps, seed = 128, 32, 51
    log_v = 7
    rng = _random.Random(seed)
    profiles = {
        "coarse (all label 0)": [0] * n_steps,
        "uniform": random_label_sequence(v, n_steps, seed=seed),
        "deep (labels >= log v - 2)": [
            rng.randint(log_v - 2, log_v) for _ in range(n_steps)
        ],
    }
    em = FlatBSPOnEMSimulator(M=128, B=8)
    hmm = HMMSimulator(F, check_invariants="off")
    rows = []
    em_ios, hmm_times = [], []
    for name, labels in profiles.items():
        prog = random_program(v, labels=labels, seed=seed)
        io = em.simulate(prog).io_count
        t = hmm.simulate(prog).time
        guest = DBSPMachine(F).run(prog.with_global_sync())
        tau, lambdas = program_stats(guest)
        bound = theorem5_bound(F, v, prog.mu, tau, lambdas)
        em_ios.append(io)
        hmm_times.append(t)
        rows.append([name, io, t, bound])
    reporter.title(
        "E13 — same workload, three locality profiles: flat BSP-on-EM "
        "baseline [8-10] vs the D-BSP-on-HMM scheme (v=128, 32 supersteps)"
    )
    reporter.table(
        ["label profile", "EM I/Os (flat)", "HMM time (ours)", "thm5 bound"],
        rows,
    )
    reporter.note(
        "the flat baseline's cost is locality-blind (identical column); "
        "the hierarchical simulation's cost drops as labels deepen — the "
        "paper's §1 motivation, measured.  (The uniform profile carries "
        "extra constant-factor reshuffle overhead from its oscillating "
        "labels — cycle swaps that steady profiles never pay — so only "
        "the coarse-vs-deep comparison isolates the locality effect.)"
    )
    # flat: identical I/O regardless of locality
    assert max(em_ios) == min(em_ios)
    # hierarchical: submachine locality pays, by a clear margin
    assert hmm_times[0] > 2.0 * hmm_times[2]
    # and every profile respects its Theorem 5 bound within the engine
    # constant
    for row in rows:
        assert row[2] < 6.0 * row[3]

    prog = random_program(v, labels=profiles["uniform"], seed=seed)
    benchmark.pedantic(lambda: em.simulate(prog), rounds=1, iterations=1)


def test_em_io_shape(benchmark, reporter):
    """The baseline's I/O volume per superstep: Theta(mu v / B) streaming
    plus the routing passes — linear in v for fixed M, B."""
    em = FlatBSPOnEMSimulator(M=256, B=16)
    rows, per_v = [], []
    for v in (32, 128, 512):
        prog = random_program(v, n_steps=8, seed=53)
        res = em.simulate(prog)
        per_v.append(res.io_count / v)
        rows.append([v, res.io_count, res.io_count / v])
    reporter.title("E13 — flat BSP-on-EM I/O volume vs machine width")
    reporter.table(["v", "I/Os", "I/Os per processor"], rows)
    assert max(per_v) / min(per_v) < 2.5

    benchmark.pedantic(
        lambda: em.simulate(random_program(128, n_steps=8, seed=53)),
        rounds=1, iterations=1,
    )
