"""E11: the theorems on a realistic cache-staircase hierarchy.

The paper's results hold for *any* (2, c)-uniform access function —
"arbitrarily deep hierarchies".  A staircase with four latency plateaus
(L1/L2/L3/DRAM-like) is how an actual machine looks; this experiment runs
the Theorem 5 / Corollary 6 checks on it, and adds the locality contrast:
the structured matrix-multiplication program versus the intrinsically
locality-free list-ranking program of the same D-BSP width.
"""

from __future__ import annotations

from repro.algorithms.listranking import list_ranking_program
from repro.algorithms.matmul import matmul_program
from repro.analysis.bounds import program_stats, theorem5_bound
from repro.analysis.fitting import bounded_ratio
from repro.dbsp.machine import DBSPMachine
from repro.functions import StaircaseAccess
from repro.sim.hmm_sim import HMMSimulator
from repro.testing import random_program

#: a small-machine staircase (capacities sized so the sweep crosses levels)
F = StaircaseAccess(((64, 1.0), (512, 4.0), (4096, 16.0)), beyond=64.0)


def test_theorem5_on_staircase(benchmark, reporter):
    rows, measured, bounds = [], [], []
    for v in (8, 32, 128, 512):
        prog = random_program(v, n_steps=8, seed=71)
        guest = DBSPMachine(F).run(prog.with_global_sync())
        tau, lambdas = program_stats(guest)
        bound = theorem5_bound(F, v, prog.mu, tau, lambdas)
        res = HMMSimulator(F).simulate(prog)
        measured.append(res.time)
        bounds.append(bound)
        rows.append([v, res.time, bound, res.time / bound])
    reporter.title(
        "E11 — Theorem 5 on a 4-level cache staircase "
        "(64w@1, 512w@4, 4096w@16, beyond@64)"
    )
    reporter.table(["v", "sim time", "thm5 bound", "ratio"], rows)
    check = bounded_ratio(measured, bounds)
    reporter.note(f"ratio band: [{check.min_ratio:.2f}, {check.max_ratio:.2f}]")
    assert check.max_ratio < 30.0
    assert check.is_bounded(6.0)

    benchmark.pedantic(
        lambda: HMMSimulator(F).simulate(random_program(128, n_steps=8, seed=71)),
        rounds=1, iterations=1,
    )


def test_structured_vs_locality_free_on_staircase(benchmark, reporter):
    """On a staircase the structured program's working set fits the inner
    levels most of the time; list ranking pays the deep level every round."""
    rows = []
    for v in (64, 256, 1024):
        mm = matmul_program(v, mu=2)
        lr = list_ranking_program(v, mu=2)
        t_mm = HMMSimulator(F, check_invariants="off").simulate(mm).time
        t_lr = HMMSimulator(F, check_invariants="off").simulate(lr).time
        # normalize by supersteps x processors: cost per unit of work
        mm_unit = t_mm / (len(mm) * v)
        lr_unit = t_lr / (len(lr) * v)
        rows.append([v, t_mm, t_lr, mm_unit, lr_unit, lr_unit / mm_unit])
    reporter.title(
        "E11 — per-superstep-per-processor cost on the staircase: "
        "structured (matmul) vs locality-free (list ranking)"
    )
    reporter.table(
        ["v", "T(matmul)", "T(listrank)", "mm unit", "lr unit", "lr/mm"],
        rows,
    )
    reporter.note(
        "the locality-free program's unit price climbs the staircase with "
        "v while the structured one's stays near the inner levels"
    )
    gaps = [r[5] for r in rows]
    assert gaps[-1] > gaps[0]
    assert gaps[-1] > 2.0

    benchmark.pedantic(
        lambda: HMMSimulator(F, check_invariants="off").simulate(
            list_ranking_program(256, mu=2)
        ),
        rounds=1, iterations=1,
    )
