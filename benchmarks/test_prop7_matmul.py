"""E4 (Proposition 7): n-MM on D-BSP and its HMM simulation.

Paper claims, for multiplying two sqrt(n) x sqrt(n) matrices with n
processors:

* D-BSP time ``O(n^alpha)`` for ``1/2 < alpha < 1``; ``O(sqrt n log n)``
  at ``alpha = 1/2``; ``O(sqrt n)`` for ``alpha < 1/2`` and ``g = log x``;
* simulating the algorithm on the matching HMM is *optimal*: it lands on
  the lower bounds of [1] (``n^{1+alpha}`` / ``n^{3/2} log n`` /
  ``n^{3/2}``).
"""

from __future__ import annotations

import pytest

from repro.algorithms.matmul import dbsp_mm_time_bound, matmul_program
from repro.analysis.fitting import bounded_ratio
from repro.dbsp.machine import DBSPMachine
from repro.functions import LogarithmicAccess, PolynomialAccess
from repro.hmm.algorithms import hmm_matmul_lower_bound
from repro.sim.hmm_sim import HMMSimulator

SIZES = [16, 64, 256, 1024]
MU = 2
FUNCTIONS = [
    PolynomialAccess(0.3),
    PolynomialAccess(0.5),
    PolynomialAccess(0.7),
    LogarithmicAccess(),
]


@pytest.mark.parametrize("g", FUNCTIONS, ids=lambda f: f.name)
def test_prop7_dbsp_time(benchmark, reporter, g):
    rows, measured, bounds = [], [], []
    for n in SIZES:
        t = DBSPMachine(g).run(matmul_program(n, mu=MU)).total_time
        bound = dbsp_mm_time_bound(g, n, mu=MU)
        measured.append(t)
        bounds.append(bound)
        rows.append([n, t, bound, t / bound])
    reporter.title(
        f"Proposition 7 — n-MM on D-BSP(n, O(1), {g.name}) "
        f"(paper: {_claim(g)})"
    )
    reporter.table(["n", "T_dbsp", "bound", "ratio"], rows)
    check = bounded_ratio(measured, bounds)
    reporter.note(f"ratio band: [{check.min_ratio:.2f}, {check.max_ratio:.2f}]")
    assert check.is_bounded(4.0)

    benchmark.pedantic(
        lambda: DBSPMachine(g).run(matmul_program(256, mu=MU)),
        rounds=1, iterations=1,
    )


def _claim(g) -> str:
    if isinstance(g, LogarithmicAccess):
        return "O(sqrt n)"
    if g.alpha > 0.5:
        return f"O(n^{g.alpha})"
    if g.alpha == 0.5:
        return "O(sqrt n log n)"
    return "O(sqrt n)"


@pytest.mark.parametrize(
    "f", [PolynomialAccess(0.3), PolynomialAccess(0.5), PolynomialAccess(0.7),
          LogarithmicAccess()],
    ids=lambda f: f.name,
)
def test_prop7_hmm_simulation_optimal(benchmark, reporter, f):
    """The simulated algorithm matches [1]'s HMM n-MM lower bound shape."""
    rows, measured, bounds = [], [], []
    for n in SIZES:
        prog = matmul_program(n, mu=MU)
        res = HMMSimulator(f, check_invariants="off").simulate(prog)
        bound = hmm_matmul_lower_bound(f, n)
        measured.append(res.time)
        bounds.append(bound)
        rows.append([n, res.time, bound, res.time / bound])
    reporter.title(
        f"Proposition 7 — simulated n-MM on {f.name}-HMM vs the [1] lower bound"
    )
    reporter.table(["n", "T_hmm_sim", "LB shape", "ratio"], rows)
    check = bounded_ratio(measured, bounds)
    reporter.note(f"ratio band: [{check.min_ratio:.2f}, {check.max_ratio:.2f}]")
    assert check.is_bounded(5.0)

    benchmark.pedantic(
        lambda: HMMSimulator(f, check_invariants="off").simulate(
            matmul_program(256, mu=MU)
        ),
        rounds=1, iterations=1,
    )
