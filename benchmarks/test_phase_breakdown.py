"""E15: where the simulation time goes — phase-attributed cost profiles.

The observability layer (:mod:`repro.obs`) attributes every charged unit
to a phase of the paper's schemes; ``EngineResult.breakdown`` exposes the
per-phase totals as a view over the span trace.  This experiment profiles
the HMM simulation (Fig. 1: context cycling / message delivery / cluster
swaps / dummies) and the BT simulation (Figs. 4-7: pack-unpack / COMPUTE
/ delivery / swaps) across label profiles, quantifying two analysis
facts:

* on the HMM, the *cycling* term is the one Theorem 5's
  ``mu v f(mu v/2^i)`` prices — it shrinks with label depth — while
  *swaps* only appear for oscillating profiles (and stay a constant
  fraction, as the Theorem 4 amortization argument requires);
* on the BT machine the *delivery* (sorting) phase dominates everything,
  which is exactly why Theorem 12's bound is ``log``-shaped and
  f-independent, and why the §6 regular-routing shortcut pays.
"""

from __future__ import annotations

import repro
from repro.testing import random_label_sequence, random_program

F = "x^0.5"


def test_hmm_phase_profile(benchmark, reporter):
    v = 128
    profiles = {
        "coarse": [0] * 8,
        "uniform": random_label_sequence(v, 8, seed=91),
        "deep": [max(5, lab) for lab in random_label_sequence(v, 8, seed=91)],
        "oscillating": [6, 0, 6, 0, 6, 0, 6, 0],
    }
    rows = []
    stats = {}
    for name, labels in profiles.items():
        res = repro.run(random_program(v, labels=labels, seed=91),
                        engine="hmm", f=F, baseline=False)
        b = res.breakdown
        stats[name] = b
        rows.append([name, res.time, b["cycling"], b["delivery"],
                     b["swaps"], b["dummies"], b["local"]])
    reporter.title("E15 — HMM simulation phase profile by label profile (v=128)")
    reporter.table(
        ["profile", "total", "cycling", "delivery", "swaps", "dummies",
         "local"],
        rows,
    )
    # cycling shrinks with label depth
    assert stats["deep"]["cycling"] < stats["coarse"]["cycling"] / 2
    # steady profiles never swap; oscillating ones do, but swaps stay a
    # bounded fraction of the total (the amortization of Theorem 4)
    assert stats["coarse"]["swaps"] == 0.0
    assert stats["oscillating"]["swaps"] > 0.0
    # (the amortization bounds swaps by a constant multiple of the
    # adjacent supersteps' simulation cost — ~2/3 of the total for the
    # worst-case alternating profile, but never unbounded)
    osc_total = sum(stats["oscillating"].values())
    assert stats["oscillating"]["swaps"] < 0.8 * osc_total

    benchmark.pedantic(
        lambda: repro.run(
            random_program(v, labels=profiles["uniform"], seed=91),
            engine="hmm", f=F, baseline=False),
        rounds=1, iterations=1,
    )


def test_bt_phase_profile(benchmark, reporter):
    v = 64
    rows = []
    shares = []
    for n_steps in (4, 8, 16):
        prog = random_program(v, n_steps=n_steps, seed=93)
        res = repro.run(prog, engine="bt", f=F, baseline=False)
        b = res.breakdown
        share = b["delivery"] / res.time
        shares.append(share)
        rows.append([n_steps, res.time, b["compute"], b["delivery"],
                     b["pack_unpack"], b["swaps"], share])
    reporter.title("E15 — BT simulation phase profile (v=64)")
    reporter.table(
        ["steps", "total", "compute", "delivery", "pack_unpack", "swaps",
         "delivery share"],
        rows,
    )
    reporter.note(
        "delivery (the sorting of Fig. 7) dominates, as the Theorem 12 "
        "discussion states — 'the complexity of the sorting operations ... "
        "is the dominant factor in the simulation time'"
    )
    assert all(share > 0.4 for share in shares)

    benchmark.pedantic(
        lambda: repro.run(random_program(v, n_steps=8, seed=93),
                          engine="bt", f=F, baseline=False),
        rounds=1, iterations=1,
    )


def test_profile_tree_renders(reporter):
    """The rendered profile tree partitions the total charged time."""
    res = repro.run(random_program(32, n_steps=6, seed=95), engine="bt",
                    f=F, trace="full", baseline=False)
    text = repro.render_profile(res.trace, total=res.time, title="E15 tree")
    reporter.title("E15 — BT span-tree profile (v=32)")
    reporter.note(text)
    assert abs(sum(s.self_cost for s in res.trace) - res.time) <= 1e-9 * res.time
