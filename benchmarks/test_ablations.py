"""A1-A3: ablations of the design choices the paper's analyses rely on.

* A1 — **smoothing**: the constructed label set (geometric cost descent)
  versus the two degenerate choices: every level (maximal dummies and
  cluster sweeps) and no intermediate level at all (illegal for steep
  descents unless L = {0, log v}, which forces every descent through a
  full machine sweep);
* A2 lives in test_sec53_bt_casestudies.py (guest bandwidth choice);
* A3 — **COMPUTE chunking** (Fig. 6) and the **delivery sort**
  implementation (charged Approx-Median-Sort bound vs the operational
  chunked merge sort, quantifying the documented f* gap).
"""

from __future__ import annotations

from repro.functions import PolynomialAccess
from repro.sim.bt_sim import BTSimulator
from repro.sim.hmm_sim import HMMSimulator
from repro.sim.smoothing import build_label_set_hmm
from repro.testing import random_program


def test_a1_smoothing_label_sets(benchmark, reporter):
    """A1: the constructed L is never worse than the degenerate choices."""
    f = PolynomialAccess(0.5)
    rows = []
    for v in (16, 64, 256):
        log_v = v.bit_length() - 1
        prog = random_program(v, n_steps=8, seed=41)
        built = build_label_set_hmm(f, v, prog.mu)
        t_built = HMMSimulator(f).simulate(prog, label_set=built).time
        t_all = HMMSimulator(f).simulate(
            prog, label_set=list(range(log_v + 1))).time
        t_two = HMMSimulator(f).simulate(prog, label_set=[0, log_v]).time
        rows.append([v, str(built), t_built, t_all / t_built, t_two / t_built])
    reporter.title(
        "A1 — smoothing label-set ablation on the x^0.5-HMM simulation "
        "(columns: overhead of 'every level' / 'two levels' vs built L)"
    )
    reporter.table(["v", "built L", "T(built)", "all-levels/built",
                    "coarse/built"], rows)
    for row in rows:
        assert row[3] > 0.8 and row[4] > 0.8  # built never loses badly
    # the degenerate choices trend worse as the machine grows
    assert rows[-1][4] >= rows[0][4] * 0.8

    prog = random_program(64, n_steps=8, seed=41)
    benchmark.pedantic(
        lambda: HMMSimulator(f).simulate(prog), rounds=1, iterations=1
    )


def test_a3_compute_chunking(benchmark, reporter):
    """A3a: Fig. 6's chunked COMPUTE vs direct per-context access."""
    f = PolynomialAccess(0.5)
    rows = []
    for v in (32, 128, 512):
        prog = random_program(v, labels=[0] * 4, seed=43)
        t_chunked = BTSimulator(f).simulate(prog).time
        t_direct = BTSimulator(f, chunked_compute=False).simulate(prog).time
        rows.append([v, t_chunked, t_direct, t_direct / t_chunked])
    reporter.title(
        "A3 — COMPUTE chunking ablation on the x^0.5-BT simulation "
        "(4 global supersteps; paper: chunking turns n f(n) into n c*(n))"
    )
    reporter.table(["v", "T(chunked)", "T(direct)", "direct/chunked"], rows)
    gains = [r[3] for r in rows]
    assert gains[-1] > 1.0
    assert gains[-1] > gains[0]  # the advantage grows with depth

    prog = random_program(128, labels=[0] * 4, seed=43)
    benchmark.pedantic(
        lambda: BTSimulator(f).simulate(prog), rounds=1, iterations=1
    )


def test_a3_delivery_sort_implementations(benchmark, reporter):
    """A3b: charged AMS bound vs the operational merge sort (f* gap)."""
    f = PolynomialAccess(0.5)
    rows = []
    for v in (16, 64, 256):
        prog = random_program(v, n_steps=6, seed=47)
        t_ams = BTSimulator(f, sort="ams").simulate(prog).time
        t_merge = BTSimulator(f, sort="mergesort").simulate(prog).time
        rows.append([v, t_ams, t_merge, t_merge / t_ams, f.star(prog.mu * v)])
    reporter.title(
        "A3 — delivery sort ablation: charged Approx-Median-Sort bound vs "
        "operational chunked merge sort (documented Theta(f*) gap)"
    )
    reporter.table(["v", "T(ams)", "T(mergesort)", "merge/ams", "f*(mu v)"],
                   rows)
    for row in rows:
        # the operational sort costs more, but only by ~f* and constants
        assert 1.0 <= row[3] < 12 * row[4]

    prog = random_program(64, n_steps=6, seed=47)
    benchmark.pedantic(
        lambda: BTSimulator(f, sort="mergesort").simulate(prog),
        rounds=1, iterations=1,
    )
