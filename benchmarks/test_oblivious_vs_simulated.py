"""E12: hierarchy-oblivious RAM algorithms vs simulation-derived ones.

The paper's practical pitch (§1, §3.1): flat-RAM code pays the access
function on (nearly) every operation, while simulating the D-BSP
algorithm *automatically* yields a hierarchy-conscious algorithm that is
optimal on the HMM.  On the ``x^0.5``-HMM:

| problem | flat RAM algorithm      | derived via simulation |
|---------|-------------------------|------------------------|
| sorting | ``Theta(n^1.5 log n)``  | ``Theta(n^1.5)``       |
| FFT     | ``Theta(n^1.5 log n)``  | ``Theta(n^1.5)``       |
| n-MM    | ``Theta(n^2)``          | ``Theta(n^1.5 log n)`` |

The separation is asymptotic: the generic simulation carries a large
constant (full context cycling, smoothing, delivery accounting — a few
hundred), so at bench sizes the flat code can still be ahead.  What the
experiment verifies is the *shape* gap — the flat cost normalized by the
derived algorithm's Theta grows without bound while the derived cost's
normalization stays flat — and it reports the estimated crossover size
implied by the fitted constants.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.algorithms.fft import fft_dag_program
from repro.algorithms.matmul import matmul_program
from repro.algorithms.sorting import bitonic_sort_program
from repro.analysis.fitting import bounded_ratio
from repro.functions import PolynomialAccess
from repro.hmm.flat import hmm_flat_fft, hmm_flat_matmul, hmm_flat_mergesort
from repro.hmm.machine import HMMMachine
from repro.sim.hmm_sim import HMMSimulator

F = PolynomialAccess(0.5)
MU = 2


def flat_sort_cost(n: int) -> float:
    rng = random.Random(n)
    machine = HMMMachine(F, 2 * n)
    machine.mem[:n] = [rng.random() for _ in range(n)]
    return hmm_flat_mergesort(machine, n)


def flat_fft_cost(n: int) -> float:
    machine = HMMMachine(F, n)
    machine.mem[:n] = [complex(k % 7, 0) for k in range(n)]
    return hmm_flat_fft(machine, n)


def flat_mm_cost(n: int) -> float:
    side = int(round(n**0.5))
    machine = HMMMachine(F, 3 * side * side)
    machine.mem[: 2 * side * side] = [1.0] * (2 * side * side)
    return hmm_flat_matmul(machine, side)


def derived_cost(builder, n: int) -> float:
    return HMMSimulator(F, check_invariants="off").simulate(
        builder(n, mu=MU)
    ).time


# (name, flat measure, program builder, derived Theta, flat extra factor)
CASES = [
    ("sorting", flat_sort_cost, bitonic_sort_program,
     lambda n: n**1.5, lambda n: math.log2(n)),
    ("fft", flat_fft_cost, fft_dag_program,
     lambda n: n**1.5, lambda n: math.log2(n)),
    ("matmul", flat_mm_cost, matmul_program,
     lambda n: n**1.5 * math.log2(n), lambda n: n**0.5 / math.log2(n)),
]


@pytest.mark.parametrize("name,flat_fn,builder,theta,extra", CASES,
                         ids=[c[0] for c in CASES])
def test_shape_gap_and_crossover(benchmark, reporter, name, flat_fn,
                                 builder, theta, extra):
    sizes = [64, 256, 1024, 4096] if name != "matmul" else [64, 256, 1024]
    rows, flat_norm, derived_norm = [], [], []
    for n in sizes:
        flat = flat_fn(n)
        derived = derived_cost(builder, n)
        flat_norm.append(flat / theta(n))
        derived_norm.append(derived / theta(n))
        rows.append([n, flat, derived, flat_norm[-1], derived_norm[-1]])
    reporter.title(
        f"E12 — {name} on the x^0.5-HMM: flat RAM code vs the algorithm "
        f"derived by simulating the D-BSP program (normalized by the "
        f"derived algorithm's Theta)"
    )
    reporter.table(
        ["n", "flat cost", "derived cost", "flat/Theta", "derived/Theta"],
        rows,
    )
    # the derived algorithm is Theta-optimal: flat normalized column
    derived_check = bounded_ratio(derived_norm, [1.0] * len(derived_norm))
    assert derived_check.is_bounded(2.0), derived_norm
    # the flat code's normalized cost grows without bound
    assert flat_norm[-1] > 1.35 * flat_norm[0], flat_norm
    assert all(b > a for a, b in zip(flat_norm, flat_norm[1:]))

    # crossover estimate: flat ~ a * Theta * extra(n), derived ~ b * Theta
    a = flat_norm[-1] / extra(sizes[-1])
    b = derived_norm[-1]
    target = b / a
    n_star, guess = None, sizes[-1]
    for _ in range(200):
        guess *= 2
        if extra(guess) >= target:
            n_star = guess
            break
    reporter.note(
        f"fitted: flat ≈ {a:.2f}·Theta·extra(n), derived ≈ {b:.1f}·Theta "
        f"-> estimated crossover n* ≈ "
        f"{('2^' + str(int(math.log2(n_star)))) if n_star else '> 2^200'} "
        f"(the win is asymptotic; the simulation constant is the price of "
        f"full generality)"
    )

    benchmark.pedantic(flat_fn, args=(256,), rounds=1, iterations=1)


def test_three_way_matmul(benchmark, reporter):
    """The full triangle for n-MM on the x^0.5-HMM: oblivious flat loop
    vs simulation-derived vs the hand-tuned blocked native algorithm of
    [1] — all three Theta-classes visible, the native one with a small
    constant (flat/native grows like sqrt(n)/log n)."""
    import random as _random

    from repro.hmm.blocked import hmm_blocked_matmul

    rows, gaps = [], []
    for side in (16, 32, 64):
        n = side * side
        s = n
        machine = HMMMachine(F, 3 * s)
        machine.mem[: 2 * s] = [1.0] * (2 * s)
        flat = hmm_flat_matmul(machine, side)
        rng = _random.Random(side)
        native_machine = HMMMachine(F, 6 * s)
        native_machine.mem[3 * s : 5 * s] = [rng.random() for _ in range(2 * s)]
        native = hmm_blocked_matmul(native_machine, side)
        derived = derived_cost(matmul_program, n)
        gaps.append(flat / native)
        rows.append([n, flat, native, derived, flat / native,
                     derived / native])
    reporter.title(
        "E12 — n-MM on the x^0.5-HMM, three ways: flat triple loop vs "
        "hand-tuned blocked native ([1]) vs simulation-derived"
    )
    reporter.table(
        ["n", "flat", "native blocked", "derived (sim)", "flat/native",
         "derived/native"],
        rows,
    )
    reporter.note(
        "flat/native grows (Theta(sqrt n / log n)); derived/native is the "
        "generic scheme's constant — the paper's point is that the derived "
        "algorithm reaches the right Theta *automatically*"
    )
    assert all(b > a for a, b in zip(gaps, gaps[1:])), gaps

    benchmark.pedantic(
        lambda: hmm_blocked_matmul(
            _fresh_blocked_machine(32), 32
        ),
        rounds=1, iterations=1,
    )


def _fresh_blocked_machine(side):
    s = side * side
    machine = HMMMachine(F, 6 * s)
    machine.mem[3 * s : 5 * s] = [1.0] * (2 * s)
    return machine
