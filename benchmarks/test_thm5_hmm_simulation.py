"""E3 (Theorem 5 / Corollary 6): the D-BSP -> HMM simulation.

Two claims are regenerated:

* Theorem 5 — simulation time is
  ``O(v (tau + mu sum_i lambda_i f(mu v / 2^i)))`` for any (2, c)-uniform
  ``f``: measured/bound stays in a constant band over machine widths and
  label profiles;
* Corollary 6 — with ``g = f``, slowdown over the guest D-BSP time is
  ``Theta(v)``: the *linear* slowdown that is the paper's headline ("no
  extra hierarchy-induced slowdown beyond the loss of parallelism").
"""

from __future__ import annotations

import pytest

from repro.analysis.bounds import program_stats, theorem5_bound
from repro.analysis.fitting import bounded_ratio, fit_loglog_slope
from repro.dbsp.machine import DBSPMachine
from repro.functions import LogarithmicAccess, PolynomialAccess
from repro.sim.hmm_sim import HMMSimulator
from repro.testing import random_program

WIDTHS = [1 << k for k in range(2, 11)]
FUNCTIONS = [PolynomialAccess(0.5), LogarithmicAccess()]


def run_pair(f, v, bias):
    from repro.testing import random_label_sequence

    labels = random_label_sequence(v, 8, seed=17, bias=bias)
    prog = random_program(v, labels=labels, seed=17)
    guest = DBSPMachine(f).run(prog.with_global_sync())
    host = HMMSimulator(f).simulate(prog)
    return prog, guest, host


@pytest.mark.parametrize("f", FUNCTIONS, ids=lambda f: f.name)
@pytest.mark.parametrize("bias", ["uniform", "fine", "coarse"])
def test_theorem5_bound_shape(benchmark, reporter, f, bias):
    rows, measured, bounds = [], [], []
    for v in WIDTHS:
        prog, guest, host = run_pair(f, v, bias)
        tau, lambdas = program_stats(guest)
        bound = theorem5_bound(f, v, prog.mu, tau, lambdas)
        measured.append(host.time)
        bounds.append(bound)
        rows.append([v, host.time, bound, host.time / bound])
    reporter.title(
        f"Theorem 5 — D-BSP on {f.name}-HMM, {bias} labels "
        f"(paper: O(v(tau + mu sum lambda_i f(mu v/2^i))))"
    )
    reporter.table(["v", "sim time", "thm5 bound", "ratio"], rows)
    check = bounded_ratio(measured, bounds)
    reporter.note(f"ratio band: [{check.min_ratio:.3f}, {check.max_ratio:.3f}]")
    assert check.max_ratio < 30.0
    assert check.is_bounded(5.0)

    benchmark.pedantic(run_pair, args=(f, 256, bias), rounds=1, iterations=1)


@pytest.mark.parametrize("f", FUNCTIONS, ids=lambda f: f.name)
def test_corollary6_linear_slowdown(benchmark, reporter, f):
    rows, normalized = [], []
    for v in WIDTHS:
        _prog, guest, host = run_pair(f, v, "uniform")
        slowdown = host.slowdown(guest.total_time)
        normalized.append(slowdown / v)
        rows.append([v, guest.total_time, host.time, slowdown, slowdown / v])
    reporter.title(
        f"Corollary 6 — slowdown of the {f.name}-HMM simulation "
        f"(paper: Theta(v), i.e. slowdown/v flat)"
    )
    reporter.table(["v", "T_dbsp", "T_hmm", "slowdown", "slowdown/v"], rows)
    check = bounded_ratio(normalized, [1.0] * len(normalized))
    reporter.note(f"slowdown/v band: [{check.min_ratio:.2f}, {check.max_ratio:.2f}]")
    assert check.is_bounded(3.0)
    slope = fit_loglog_slope(WIDTHS, [r[3] for r in rows])
    reporter.note(f"fitted slowdown exponent in v: {slope:.3f} (paper: 1)")
    assert slope == pytest.approx(1.0, abs=0.25)

    benchmark.pedantic(run_pair, args=(f, 256, "uniform"), rounds=1, iterations=1)
