"""E10 (Section 6 remark): regular permutations beat generic sorting.

Routing the recursive DFT's transpose permutations with the
rational-permutation routine of [2] (``Theta(m f*(m))`` per cluster)
instead of the generic delivery sort drops the simulated cost to
``O(n log n)`` — *optimal* on ``f(x)``-BT for both ``f = x^alpha`` and
``f = log x`` — showing that the generic simulation's sorting is the only
source of non-optimality for this algorithm.
"""

from __future__ import annotations

import math

import pytest

from repro.algorithms.fft import fft_recursive_program
from repro.analysis.fitting import bounded_ratio
from repro.dbsp.machine import DBSPMachine
from repro.functions import LogarithmicAccess, PolynomialAccess
from repro.sim.bt_sim import BTSimulator

MU = 2
HOSTS = [PolynomialAccess(0.5), LogarithmicAccess()]
SIZES = [64, 256, 1024, 4096]


@pytest.mark.parametrize("f", HOSTS, ids=lambda f: f.name)
def test_transpose_delivery_is_optimal(benchmark, reporter, f):
    rows, norm_transpose = [], []
    for n in SIZES:
        prog = fft_recursive_program(n, mu=MU)
        t_sort = BTSimulator(f, sort="ams").simulate(prog).time
        t_perm = BTSimulator(f, sort="transpose").simulate(prog).time
        bound = n * math.log2(n)
        norm_transpose.append(t_perm / bound)
        rows.append([n, t_sort, t_perm, t_perm / bound, t_sort / t_perm])
    reporter.title(
        f"§6 — recursive n-DFT on {f.name}-BT with transpose-permutation "
        f"delivery (paper: O(n log n), optimal)"
    )
    reporter.table(
        ["n", "T(sort delivery)", "T(transpose delivery)", "T/(n log n)",
         "sort/transpose"],
        rows,
    )
    check = bounded_ratio(norm_transpose, [1.0] * len(norm_transpose))
    reporter.note(
        f"T/(n log n) band: [{check.min_ratio:.2f}, {check.max_ratio:.2f}]"
    )
    assert check.is_bounded(2.5)
    # transpose delivery never loses to sorting, and the advantage grows
    advantages = [r[4] for r in rows]
    assert advantages[-1] >= advantages[0]
    assert all(a >= 0.95 for a in advantages)

    benchmark.pedantic(
        lambda: BTSimulator(f, sort="transpose").simulate(
            fft_recursive_program(1024, mu=MU)
        ),
        rounds=1, iterations=1,
    )


def test_transpose_delivery_preserves_semantics(benchmark, reporter):
    """The fast path routes the same messages: identical outputs."""
    f = PolynomialAccess(0.5)
    prog = fft_recursive_program(64, mu=MU)
    want = [c["x"] for c in DBSPMachine(f).run(prog.with_global_sync()).contexts]
    got = [c["x"] for c in
           BTSimulator(f, sort="transpose").simulate(prog).contexts]
    assert got == want
    reporter.title("§6 — transpose delivery: semantics check")
    reporter.note("recursive 64-DFT outputs identical to direct execution: OK")

    benchmark.pedantic(
        lambda: BTSimulator(f, sort="transpose").simulate(prog),
        rounds=1, iterations=1,
    )
