"""E6 (Proposition 9): n-sorting on D-BSP and its HMM simulation.

Paper claims ``T_SORT = O(n^alpha)`` on ``D-BSP(n, O(1), x^alpha)``, whose
simulation is optimal ``O(n^{1+alpha})`` on the ``x^alpha``-HMM.  For
``g = log x`` the paper notes all known BSP-style algorithms are
``Omega(log^2 n)`` (a polylog gap to the ``Omega(log n log log n)``
implied lower bound) — we report our bitonic schedule's ``Theta(log^3 n)``
there for completeness.
"""

from __future__ import annotations

import math

import pytest

from repro.algorithms.sorting import bitonic_sort_program, dbsp_sort_time_bound
from repro.analysis.fitting import bounded_ratio
from repro.dbsp.machine import DBSPMachine
from repro.functions import LogarithmicAccess, PolynomialAccess
from repro.hmm.algorithms import hmm_sorting_lower_bound
from repro.sim.hmm_sim import HMMSimulator

SIZES = [16, 64, 256, 1024]
MU = 2


@pytest.mark.parametrize("alpha", [0.3, 0.5, 0.7])
def test_prop9_dbsp_time(benchmark, reporter, alpha):
    g = PolynomialAccess(alpha)
    rows, measured, bounds = [], [], []
    for n in SIZES:
        t = DBSPMachine(g).run(bitonic_sort_program(n, mu=MU)).total_time
        bound = dbsp_sort_time_bound(g, n, mu=MU)
        measured.append(t)
        bounds.append(bound)
        rows.append([n, t, bound, t / bound])
    reporter.title(
        f"Proposition 9 — n-sorting on D-BSP(n, O(1), {g.name}) "
        f"(paper: O(n^{alpha}))"
    )
    reporter.table(["n", "T_dbsp", "n^alpha", "ratio"], rows)
    check = bounded_ratio(measured, bounds)
    reporter.note(f"ratio band: [{check.min_ratio:.2f}, {check.max_ratio:.2f}]")
    assert check.is_bounded(4.0)

    benchmark.pedantic(
        lambda: DBSPMachine(g).run(bitonic_sort_program(256, mu=MU)),
        rounds=1, iterations=1,
    )


def test_prop9_hmm_simulation_optimal(benchmark, reporter):
    f = PolynomialAccess(0.5)
    rows, measured, bounds = [], [], []
    for n in SIZES:
        prog = bitonic_sort_program(n, mu=MU)
        res = HMMSimulator(f, check_invariants="off").simulate(prog)
        bound = hmm_sorting_lower_bound(f, n)
        measured.append(res.time)
        bounds.append(bound)
        rows.append([n, res.time, bound, res.time / bound])
    reporter.title(
        "Proposition 9 — simulated n-sorting on x^0.5-HMM vs the [1] "
        "lower bound Theta(n^1.5)"
    )
    reporter.table(["n", "T_hmm_sim", "n^1.5", "ratio"], rows)
    check = bounded_ratio(measured, bounds)
    reporter.note(f"ratio band: [{check.min_ratio:.2f}, {check.max_ratio:.2f}]")
    assert check.is_bounded(5.0)

    benchmark.pedantic(
        lambda: HMMSimulator(f, check_invariants="off").simulate(
            bitonic_sort_program(256, mu=MU)
        ),
        rounds=1, iterations=1,
    )


def test_prop9_log_x_gap_remark(benchmark, reporter):
    """The paper's remark: BSP-style sorting is polylog-suboptimal on log x."""
    g = LogarithmicAccess()
    rows = []
    for n in SIZES:
        t = DBSPMachine(g).run(bitonic_sort_program(n, mu=MU)).total_time
        lg = math.log2(n)
        rows.append([n, t, lg**3, t / lg**3, lg * math.log2(lg)])
    reporter.title(
        "Proposition 9 remark — bitonic n-sorting on D-BSP(n, O(1), log x): "
        "Theta(log^3 n) vs the Omega(log n loglog n) simulation-implied bound"
    )
    reporter.table(
        ["n", "T_dbsp", "log^3 n", "ratio", "log n loglog n"], rows
    )
    ratios = [r[3] for r in rows]
    assert max(ratios) / min(ratios) < 4.0

    benchmark.pedantic(
        lambda: DBSPMachine(g).run(bitonic_sort_program(256, mu=MU)),
        rounds=1, iterations=1,
    )
