"""E14: the paper's positioning against Bilardi-Preparata [16, 18].

Scaling processors away on the mesh-of-HMMs model costs
``(n/p) * Lambda(n, p, m)`` with ``Lambda`` up to ``(n/p)^{1/d}`` — an
*extra, unavoidable* hierarchy-induced slowdown.  On D-BSP the analogue
(Theorem 10) is a clean ``Theta(v/v')``.  Both phenomena measured side by
side on comparable lockstep neighbour/exchange workloads.
"""

from __future__ import annotations

from repro.dbsp.machine import DBSPMachine
from repro.functions import PolynomialAccess
from repro.mesh.model import mesh_native_time, mesh_simulation_time
from repro.sim.brent import BrentSimulator
from repro.testing import random_program


def test_mesh_lambda_vs_dbsp_brent(benchmark, reporter):
    n, m, steps = 256, 16, 4
    native = mesh_native_time(n, m, steps)

    g = PolynomialAccess(0.5)
    prog = random_program(n, labels=[0] * 8, seed=81)  # lockstep 0-supersteps
    guest = DBSPMachine(g).run(prog.with_global_sync())

    rows = []
    mesh_lambdas, dbsp_lambdas = [], []
    for ratio in (2, 8, 32, 128):
        p = n // ratio
        mesh_host = mesh_simulation_time(n, p, m, steps)
        mesh_lambda = (mesh_host / native) / ratio
        brent = BrentSimulator(g, v_host=p).simulate(prog)
        dbsp_lambda = brent.slowdown(guest.total_time) / ratio
        mesh_lambdas.append(mesh_lambda)
        dbsp_lambdas.append(dbsp_lambda)
        rows.append([ratio, mesh_lambda, dbsp_lambda])
    reporter.title(
        "E14 — extra slowdown factor Lambda = slowdown/(n/p) when scaling "
        "down: mesh-of-HMMs [16] vs D-BSP (Theorem 10), n = 256"
    )
    reporter.table(
        ["n/p", "mesh Lambda (grows ~n/p)", "D-BSP Lambda (flat)"], rows
    )
    reporter.note(
        "the mesh pays an extra factor that scales with the lost "
        "parallelism; the D-BSP column is the paper's 'no extra "
        "hierarchy-induced slowdown' (engine constant only)"
    )
    # mesh Lambda grows ~linearly with n/p
    assert mesh_lambdas[-1] > 8 * mesh_lambdas[0]
    # D-BSP Lambda stays within a constant band
    assert max(dbsp_lambdas) / min(dbsp_lambdas) < 4.0
    # and the divergence between the two is large at the deep end
    assert mesh_lambdas[-1] / mesh_lambdas[0] > \
        4 * (dbsp_lambdas[-1] / dbsp_lambdas[0])

    benchmark.pedantic(
        lambda: mesh_simulation_time(n, 8, m, steps), rounds=1, iterations=1
    )
