"""E7 (Theorem 10 / Corollary 11): the Brent-lemma analogue.

Simulating a v-processor D-BSP program on a v'-processor D-BSP whose
processors are g(x)-HMMs with the same aggregate memory costs
``O((v/v')(tau + mu sum_i lambda_i g(mu v / 2^i)))`` — for full programs
an optimal ``Theta(v/v')`` slowdown, i.e. memory and network hierarchies
integrate seamlessly.
"""

from __future__ import annotations

import pytest

from repro.analysis.bounds import brent_bound, program_stats
from repro.analysis.fitting import bounded_ratio
from repro.dbsp.machine import DBSPMachine
from repro.functions import LogarithmicAccess, PolynomialAccess
from repro.sim.brent import BrentSimulator
from repro.testing import random_program

V_GUEST = 256
HOSTS = [1, 2, 4, 8, 16, 32, 64, 128, 256]
FUNCTIONS = [PolynomialAccess(0.5), LogarithmicAccess()]


@pytest.mark.parametrize("g", FUNCTIONS, ids=lambda f: f.name)
def test_corollary11_slowdown(benchmark, reporter, g):
    prog = random_program(V_GUEST, n_steps=8, seed=23)
    guest = DBSPMachine(g).run(prog.with_global_sync())
    tau, lambdas = program_stats(guest)
    rows, normalized = [], []
    for v_host in HOSTS:
        res = BrentSimulator(g, v_host=v_host).simulate(prog)
        slowdown = res.slowdown(guest.total_time)
        bound = brent_bound(g, V_GUEST, v_host, prog.mu, tau, lambdas)
        normalized.append(slowdown / (V_GUEST / v_host))
        rows.append([v_host, res.time, slowdown, V_GUEST / v_host,
                     slowdown / (V_GUEST / v_host), res.time / bound])
    reporter.title(
        f"Corollary 11 — self-simulation slowdown on D-BSP(v', mu v/v', {g.name}) "
        f"(paper: Theta(v/v'))"
    )
    reporter.table(
        ["v'", "T_host", "slowdown", "v/v'", "slowdown/(v/v')", "time/thm10"],
        rows,
    )
    # Theorem 10 itself: measured host time is O(bound), uniformly in v'.
    # (The slowdown/(v/v') column mixes two engine constants — coarse
    # supersteps are accounted leanly, fine runs carry the full Section 3
    # machinery — so along a v' sweep at fixed v it interpolates between
    # them; the fixed-ratio sweep below isolates the Theta(v/v') shape.)
    bound_ratios = [r[5] for r in rows]
    reporter.note(f"time/thm10 band: [{min(bound_ratios):.2f}, "
                  f"{max(bound_ratios):.2f}]")
    assert max(bound_ratios) < 10.0
    check = bounded_ratio(normalized[:-1], [1.0] * (len(normalized) - 1))
    assert check.is_bounded(8.0)

    benchmark.pedantic(
        lambda: BrentSimulator(g, v_host=16).simulate(prog),
        rounds=1, iterations=1,
    )


@pytest.mark.parametrize("g", FUNCTIONS, ids=lambda f: f.name)
def test_corollary11_fixed_ratio_scaling(benchmark, reporter, g):
    """Slowdown at fixed v/v' stays flat as the machine scales: Theta(v/v')."""
    ratio = 8
    rows, normalized = [], []
    for log_v in (5, 6, 7, 8):
        v = 1 << log_v
        prog = random_program(v, n_steps=8, seed=29)
        guest = DBSPMachine(g).run(prog.with_global_sync())
        res = BrentSimulator(g, v_host=v // ratio).simulate(prog)
        slowdown = res.slowdown(guest.total_time)
        normalized.append(slowdown / ratio)
        rows.append([v, v // ratio, slowdown, slowdown / ratio])
    reporter.title(
        f"Corollary 11 — slowdown at fixed v/v' = {ratio}, g = {g.name} "
        f"(paper: Theta(v/v') -> flat column)"
    )
    reporter.table(["v", "v'", "slowdown", "slowdown/(v/v')"], rows)
    check = bounded_ratio(normalized, [1.0] * len(normalized))
    reporter.note(
        f"slowdown/(v/v') band: [{check.min_ratio:.2f}, {check.max_ratio:.2f}]"
    )
    assert check.is_bounded(3.0)

    prog = random_program(128, n_steps=8, seed=29)
    benchmark.pedantic(
        lambda: BrentSimulator(g, v_host=16).simulate(prog),
        rounds=1, iterations=1,
    )


def test_theorem10_bound_across_profiles(benchmark, reporter):
    """Theorem 10 ratio stays bounded across label profiles and hosts."""
    from repro.testing import random_label_sequence

    g = PolynomialAccess(0.5)
    rows = []
    worst = 0.0
    for bias in ("uniform", "fine", "coarse"):
        labels = random_label_sequence(64, 8, seed=5, bias=bias)
        prog = random_program(64, labels=labels, seed=5)
        guest = DBSPMachine(g).run(prog.with_global_sync())
        tau, lambdas = program_stats(guest)
        for v_host in (1, 4, 16, 64):
            res = BrentSimulator(g, v_host=v_host).simulate(prog)
            bound = brent_bound(g, 64, v_host, prog.mu, tau, lambdas)
            ratio = res.time / bound
            worst = max(worst, ratio)
            rows.append([bias, v_host, res.time, bound, ratio])
    reporter.title("Theorem 10 — measured / bound across label profiles")
    reporter.table(["labels", "v'", "T_host", "thm10 bound", "ratio"], rows)
    assert worst < 30.0

    prog = random_program(64, n_steps=8, seed=5)
    benchmark.pedantic(
        lambda: BrentSimulator(g, v_host=8).simulate(prog),
        rounds=1, iterations=1,
    )
