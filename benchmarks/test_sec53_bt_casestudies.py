"""E9 (Section 5.3): case studies of the BT simulation.

Three of the paper's claims are regenerated:

* **n-MM**: the simulated algorithm runs in optimal ``O(n^{3/2})`` on
  ``f(x)``-BT, while a trivial step-by-step simulation pays at least a
  touching cost ``Theta(n f*(n))`` per superstep — an
  ``omega(n^{3/2})`` total;
* **n-DFT**: simulating the DAG schedule costs ``Theta(n log^2 n)`` and
  the recursive schedule ``Theta(n log n log log n)`` — asymptotically
  separated on the BT host even though ``g = x^alpha`` prices the two
  identically on the guest;
* **bridging choice**: consequently ``g = log x`` (which separates them,
  Prop. 8) is the effective guest model for writing BT code, ``g =
  x^alpha`` is not.
"""

from __future__ import annotations

import math

import pytest

from repro.algorithms.fft import fft_dag_program, fft_recursive_program
from repro.algorithms.matmul import matmul_program
from repro.analysis.fitting import bounded_ratio
from repro.dbsp.machine import DBSPMachine
from repro.functions import LogarithmicAccess, PolynomialAccess
from repro.sim.bt_sim import BTSimulator

MU = 2
HOSTS = [PolynomialAccess(0.5), LogarithmicAccess()]


@pytest.mark.parametrize("f", HOSTS, ids=lambda f: f.name)
def test_mm_on_bt_optimal(benchmark, reporter, f):
    rows, measured, bounds = [], [], []
    for n in (16, 64, 256, 1024):
        prog = matmul_program(n, mu=MU)
        res = BTSimulator(f).simulate(prog)
        bound = float(n) ** 1.5
        n_steps = len(res.smoothed.program.supersteps)
        naive = n_steps * n * MU * f.star(MU * n)  # touching per superstep
        measured.append(res.time)
        bounds.append(bound)
        rows.append([n, res.time, bound, res.time / bound, naive,
                     naive / bound])
    reporter.title(
        f"§5.3 — simulated n-MM on {f.name}-BT (paper: optimal O(n^1.5); "
        f"step-by-step simulation pays omega(n^1.5))"
    )
    reporter.table(
        ["n", "T_bt_sim", "n^1.5", "ratio", "naive floor", "naive/n^1.5"],
        rows,
    )
    check = bounded_ratio(measured, bounds)
    reporter.note(f"ratio band: [{check.min_ratio:.2f}, {check.max_ratio:.2f}]")
    assert check.is_bounded(4.0)
    # the naive floor's normalized cost grows (the f* factor), ours is flat
    naive_norm = [r[5] for r in rows]
    assert naive_norm[-1] > naive_norm[0]

    benchmark.pedantic(
        lambda: BTSimulator(f).simulate(matmul_program(256, mu=MU)),
        rounds=1, iterations=1,
    )


@pytest.mark.parametrize("f", HOSTS, ids=lambda f: f.name)
def test_dft_two_schedules_on_bt(benchmark, reporter, f):
    rows = []
    dag_norm, rec_norm = [], []
    for n in (64, 256, 1024):
        lg = math.log2(n)
        t_dag = BTSimulator(f).simulate(fft_dag_program(n, mu=MU)).time
        t_rec = BTSimulator(f).simulate(fft_recursive_program(n, mu=MU)).time
        dag_norm.append(t_dag / (n * lg**2))
        rec_norm.append(t_rec / (n * lg * math.log2(lg)))
        rows.append([n, t_dag, t_rec, dag_norm[-1], rec_norm[-1],
                     t_rec / t_dag])
    reporter.title(
        f"§5.3 — simulated n-DFT on {f.name}-BT: DAG (Theta(n log^2 n)) vs "
        f"recursive (Theta(n log n loglog n))"
    )
    reporter.table(
        ["n", "T_dag_sim", "T_rec_sim", "dag/(n log^2 n)",
         "rec/(n log n llog n)", "rec/dag"],
        rows,
    )
    # both normalized columns are flat (each schedule hits its Theta)...
    assert bounded_ratio(dag_norm, [1.0] * len(dag_norm)).is_bounded(2.5)
    assert bounded_ratio(rec_norm, [1.0] * len(rec_norm)).is_bounded(2.5)
    # ...and the rec/dag ratio falls over the sweep: the Theta separation
    # (our recursive schedule spends 3 transposes per level where the
    # paper's counts 1, so the crossover sits beyond bench sizes — the
    # downward trend is the reproducible claim)
    ratios = [r[5] for r in rows]
    assert ratios[-1] < 0.99 * ratios[0], ratios

    benchmark.pedantic(
        lambda: BTSimulator(f).simulate(fft_recursive_program(256, mu=MU)),
        rounds=1, iterations=1,
    )


def test_bridging_model_choice(benchmark, reporter):
    """g = log x ranks the two DFT schedules; g = x^alpha cannot (§5.3)."""
    n = 1024
    g_log, g_pol = LogarithmicAccess(), PolynomialAccess(0.5)
    rows = []
    t = {}
    for name, g in (("log x", g_log), ("x^0.5", g_pol)):
        t_dag = DBSPMachine(g).run(fft_dag_program(n, mu=MU)).total_time
        t_rec = DBSPMachine(g).run(fft_recursive_program(n, mu=MU)).total_time
        t[name] = (t_dag, t_rec)
        rows.append([name, t_dag, t_rec, t_rec / t_dag])
    reporter.title(
        "§5.3 — guest bandwidth choice: normalized D-BSP times of the two "
        "DFT schedules (n = 1024)"
    )
    reporter.table(["g", "T_dag", "T_rec", "rec/dag"], rows)
    lg = math.log2(n)
    reporter.note(
        f"paper: on g=log x the asymptotic orders are log^2 n = {lg**2:.0f} "
        f"vs log n loglog n = {lg * math.log2(lg):.0f} (separated); on "
        f"g=x^0.5 both are Theta(n^0.5) (indistinguishable)"
    )
    # on x^alpha the two schedules differ by at most a small constant
    dag_a, rec_a = t["x^0.5"]
    assert 0.2 < rec_a / dag_a < 5.0
    # on log x the schedules' *growth orders* differ: check via two sizes
    t_dag_big = DBSPMachine(g_log).run(fft_dag_program(4096, mu=MU)).total_time
    t_rec_big = DBSPMachine(g_log).run(
        fft_recursive_program(4096, mu=MU)).total_time
    dag_l, rec_l = t["log x"]
    assert (t_rec_big / rec_l) < (t_dag_big / dag_l)

    benchmark.pedantic(
        lambda: DBSPMachine(g_log).run(fft_recursive_program(1024, mu=MU)),
        rounds=1, iterations=1,
    )
