"""E8 (Theorem 12): the D-BSP -> BT simulation.

Paper claims simulation time
``O(v (tau + mu sum_i lambda_i log(mu v / 2^i)))`` for any (2, c)-uniform
``f(x) = O(x^alpha)`` — notably *independent of f*: block transfer hides
the access costs almost completely.
"""

from __future__ import annotations

import pytest

from repro.analysis.bounds import program_stats, theorem12_bound
from repro.analysis.fitting import bounded_ratio
from repro.dbsp.machine import DBSPMachine
from repro.functions import LogarithmicAccess, PolynomialAccess
from repro.sim.bt_sim import BTSimulator
from repro.testing import random_program

WIDTHS = [1 << k for k in range(2, 9)]
FUNCTIONS = [PolynomialAccess(0.3), PolynomialAccess(0.5), LogarithmicAccess()]


@pytest.mark.parametrize("f", FUNCTIONS, ids=lambda f: f.name)
def test_theorem12_bound_shape(benchmark, reporter, f):
    rows, measured, bounds = [], [], []
    for v in WIDTHS:
        prog = random_program(v, n_steps=8, seed=31)
        guest = DBSPMachine(f).run(prog.with_global_sync())
        tau, lambdas = program_stats(guest)
        bound = theorem12_bound(v, prog.mu, tau, lambdas)
        res = BTSimulator(f).simulate(prog)
        measured.append(res.time)
        bounds.append(bound)
        rows.append([v, res.time, bound, res.time / bound])
    reporter.title(
        f"Theorem 12 — D-BSP on {f.name}-BT "
        f"(paper: O(v(tau + mu sum lambda_i log(mu v/2^i))), f-free)"
    )
    reporter.table(["v", "sim time", "thm12 bound", "ratio"], rows)
    check = bounded_ratio(measured, bounds)
    reporter.note(f"ratio band: [{check.min_ratio:.2f}, {check.max_ratio:.2f}]")
    assert check.max_ratio < 60.0
    assert check.is_bounded(5.0)

    benchmark.pedantic(
        lambda: BTSimulator(f).simulate(random_program(64, n_steps=8, seed=31)),
        rounds=1, iterations=1,
    )


def test_theorem12_f_independence(benchmark, reporter):
    """The hallmark of Section 5: times barely move across access functions."""
    rows = []
    spreads = []
    for v in WIDTHS:
        prog = random_program(v, n_steps=8, seed=37)
        times = [BTSimulator(f).simulate(prog).time for f in FUNCTIONS]
        spread = max(times) / min(times)
        spreads.append(spread)
        rows.append([v] + times + [spread])
    reporter.title(
        "Theorem 12 — f-independence: same program simulated on three BT hosts"
    )
    reporter.table(
        ["v"] + [f"T({f.name})" for f in FUNCTIONS] + ["max/min"], rows
    )
    reporter.note(
        "the HMM simulation's cost, by contrast, scales with f(mu v) "
        "(Theorem 5) — see E3"
    )
    assert max(spreads) < 2.5

    prog = random_program(64, n_steps=8, seed=37)
    benchmark.pedantic(
        lambda: [BTSimulator(f).simulate(prog) for f in FUNCTIONS],
        rounds=1, iterations=1,
    )
