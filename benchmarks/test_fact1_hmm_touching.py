"""E1 (Fact 1): touching n cells on f(x)-HMM costs Theta(n f(n)).

Regenerates the HMM baseline that motivates the whole paper: without block
transfer, scanning memory pays the access function at every cell.
"""

from __future__ import annotations

import pytest

from repro.analysis.fitting import bounded_ratio, fit_loglog_slope
from repro.functions import LogarithmicAccess, PolynomialAccess
from repro.hmm.algorithms import hmm_touching_bound
from repro.hmm.machine import HMMMachine
from repro.hmm.touching import hmm_touch_all

SIZES = [1 << k for k in range(8, 23, 2)]
FUNCTIONS = [PolynomialAccess(0.5), LogarithmicAccess()]


def measure(f, n):
    machine = HMMMachine(f, n)
    machine.mem[:n] = [1] * n
    return hmm_touch_all(machine, n)


@pytest.mark.parametrize("f", FUNCTIONS, ids=lambda f: f.name)
def test_fact1_touching_shape(benchmark, reporter, f):
    rows = []
    measured, bounds = [], []
    for n in SIZES:
        cost = measure(f, n)
        bound = hmm_touching_bound(f, n)
        measured.append(cost)
        bounds.append(bound)
        rows.append([n, cost, bound, cost / bound])
    reporter.title(f"Fact 1 — HMM touching, f = {f.name} (paper: Theta(n f(n)))")
    reporter.table(["n", "measured", "n*f(n)", "ratio"], rows)

    check = bounded_ratio(measured, bounds)
    reporter.note(f"ratio band: [{check.min_ratio:.3f}, {check.max_ratio:.3f}] "
                  f"(spread {check.spread:.2f})")
    assert check.is_bounded(1.5)

    if isinstance(f, PolynomialAccess):
        slope = fit_loglog_slope(SIZES, measured)
        reporter.note(f"fitted exponent {slope:.3f} (paper: {1 + f.alpha})")
        assert slope == pytest.approx(1 + f.alpha, abs=0.1)

    benchmark.pedantic(measure, args=(f, SIZES[-1]), rounds=1, iterations=1)
