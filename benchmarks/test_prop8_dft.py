"""E5 (Proposition 8): n-DFT on D-BSP and its HMM simulation.

Paper claims:

* ``T_DFT = O(n^alpha)`` on ``D-BSP(n, O(1), x^alpha)`` (DAG schedule) and
  ``T_DFT = O(log n log log n)`` on ``D-BSP(n, O(1), log x)`` (recursive
  schedule);
* the simulations match the best known HMM bounds: ``O(n^{1+alpha})`` and
  ``O(n log n log log n)`` respectively.
"""

from __future__ import annotations

import pytest

from repro.algorithms.fft import (
    dbsp_fft_dag_time_bound,
    dbsp_fft_recursive_time_bound,
    fft_dag_program,
    fft_recursive_program,
)
from repro.analysis.fitting import bounded_ratio
from repro.dbsp.machine import DBSPMachine
from repro.functions import LogarithmicAccess, PolynomialAccess
from repro.hmm.algorithms import hmm_fft_lower_bound
from repro.sim.hmm_sim import HMMSimulator

SIZES = [16, 64, 256, 1024]
MU = 2

CASES = [
    ("dag on x^0.5", PolynomialAccess(0.5), fft_dag_program,
     dbsp_fft_dag_time_bound),
    ("recursive on x^0.5", PolynomialAccess(0.5), fft_recursive_program,
     dbsp_fft_recursive_time_bound),
    ("dag on log x", LogarithmicAccess(), fft_dag_program,
     dbsp_fft_dag_time_bound),
    ("recursive on log x", LogarithmicAccess(), fft_recursive_program,
     dbsp_fft_recursive_time_bound),
]


@pytest.mark.parametrize("name,g,builder,bound_fn", CASES,
                         ids=[c[0] for c in CASES])
def test_prop8_dbsp_time(benchmark, reporter, name, g, builder, bound_fn):
    rows, measured, bounds = [], [], []
    for n in SIZES:
        t = DBSPMachine(g).run(builder(n, mu=MU)).total_time
        bound = bound_fn(g, n, mu=MU)
        measured.append(t)
        bounds.append(bound)
        rows.append([n, t, bound, t / bound])
    reporter.title(f"Proposition 8 — n-DFT, {name}")
    reporter.table(["n", "T_dbsp", "bound", "ratio"], rows)
    check = bounded_ratio(measured, bounds)
    reporter.note(f"ratio band: [{check.min_ratio:.2f}, {check.max_ratio:.2f}]")
    assert check.is_bounded(4.0)

    benchmark.pedantic(
        lambda: DBSPMachine(g).run(builder(256, mu=MU)), rounds=1, iterations=1
    )


@pytest.mark.parametrize(
    "f,builder",
    [
        (PolynomialAccess(0.5), fft_dag_program),
        (LogarithmicAccess(), fft_recursive_program),
    ],
    ids=["x^0.5-dag", "log-recursive"],
)
def test_prop8_hmm_simulation_matches_best_bounds(benchmark, reporter, f, builder):
    rows, measured, bounds = [], [], []
    for n in SIZES:
        prog = builder(n, mu=MU)
        res = HMMSimulator(f, check_invariants="off").simulate(prog)
        bound = hmm_fft_lower_bound(f, n)
        measured.append(res.time)
        bounds.append(bound)
        rows.append([n, res.time, bound, res.time / bound])
    reporter.title(
        f"Proposition 8 — simulated n-DFT on {f.name}-HMM vs best known bound"
    )
    reporter.table(["n", "T_hmm_sim", "bound shape", "ratio"], rows)
    check = bounded_ratio(measured, bounds)
    reporter.note(f"ratio band: [{check.min_ratio:.2f}, {check.max_ratio:.2f}]")
    assert check.is_bounded(5.0)

    benchmark.pedantic(
        lambda: HMMSimulator(f, check_invariants="off").simulate(
            builder(256, mu=MU)
        ),
        rounds=1, iterations=1,
    )
