"""Setup shim for environments without PEP-517 editable-install support.

All real metadata lives in pyproject.toml; this file only enables
``python setup.py develop`` / legacy ``pip install -e .`` on offline
machines lacking the ``wheel`` package.
"""

from setuptools import setup

setup()
