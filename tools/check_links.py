#!/usr/bin/env python3
"""Markdown link checker for the repo docs (stdlib only).

Scans markdown files for inline links/images ``[text](target)`` and
reference definitions ``[label]: target`` and verifies that every
*local* target resolves:

* relative file targets must exist on disk (relative to the file that
  links them);
* ``#fragment`` anchors (same-file or ``page.md#section``) must match a
  heading in the target file, using GitHub's slug rules (lowercase,
  punctuation stripped, spaces to hyphens);
* ``http(s)``/``mailto`` targets are *not* fetched — CI must not depend
  on network weather — but their URL syntax is sanity-checked.

Exit status 0 when everything resolves, 1 with one line per broken
link otherwise.  Used by ``tests/test_docs.py`` and the CI docs job::

    python tools/check_links.py README.md DESIGN.md docs/*.md
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from urllib.parse import urlsplit

# inline [text](target) — also matches images; ignores ](... inside code
# spans well enough for our docs, which keep links out of code blocks
_INLINE = re.compile(r"\[[^\]^\[]*\]\(([^()\s]+(?:\([^()\s]*\))?)\)")
# reference definition: [label]: target
_REFDEF = re.compile(r"^\s{0,3}\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
_HEADING = re.compile(r"^#{1,6}\s+(.+?)\s*#*\s*$", re.MULTILINE)


def _strip_code_blocks(text: str) -> str:
    """Drop fenced code blocks — links inside them are illustrative."""
    out, in_fence = [], False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append(line)
    return "\n".join(out)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading text."""
    # inline markup does not contribute to the slug
    heading = re.sub(r"[*_`]", "", heading)
    # links in headings keep only their text
    heading = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug, flags=re.UNICODE)
    return slug.replace(" ", "-")


def heading_slugs(path: Path) -> set[str]:
    text = _strip_code_blocks(path.read_text(encoding="utf-8"))
    slugs: set[str] = set()
    counts: dict[str, int] = {}
    for match in _HEADING.finditer(text):
        slug = github_slug(match.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def iter_targets(path: Path):
    text = _strip_code_blocks(path.read_text(encoding="utf-8"))
    for pattern in (_INLINE, _REFDEF):
        for match in pattern.finditer(text):
            yield match.group(1)


def check_file(path: Path, root: Path) -> list[str]:
    """Return one error string per broken link in ``path``."""
    errors: list[str] = []
    for target in iter_targets(path):
        scheme = urlsplit(target).scheme
        if scheme in ("http", "https", "mailto"):
            if scheme != "mailto" and not urlsplit(target).netloc:
                errors.append(f"{path}: malformed URL {target!r}")
            continue
        if scheme:  # ftp:, file:, ... — nothing in our docs should
            errors.append(f"{path}: unexpected URL scheme in {target!r}")
            continue
        base, _, fragment = target.partition("#")
        dest = (path.parent / base).resolve() if base else path.resolve()
        if not dest.exists():
            errors.append(f"{path}: broken link {target!r} "
                          f"({dest.relative_to(root)} does not exist)")
            continue
        if fragment and dest.suffix == ".md":
            if github_slug(fragment) not in heading_slugs(dest):
                errors.append(f"{path}: broken anchor {target!r} "
                              f"(no such heading in {dest.name})")
    return errors


def main(argv: list[str]) -> int:
    root = Path.cwd()
    files = [Path(arg) for arg in argv] or sorted(
        [root / "README.md", root / "DESIGN.md", *root.glob("docs/*.md")]
    )
    errors: list[str] = []
    for path in files:
        if not path.exists():
            errors.append(f"{path}: file not found")
            continue
        errors.extend(check_file(path, root))
    for err in errors:
        print(err, file=sys.stderr)
    if not errors:
        print(f"checked {len(files)} file(s): all links resolve")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
