#!/usr/bin/env python3
"""The Section 5.3 / Section 6 story: which guest model writes good BT code?

Two D-BSP algorithms compute the same n-point DFT:

* the straight DAG schedule — one superstep per butterfly level;
* the recursive sqrt-decomposition — few coarse transposes, most work in
  exponentially smaller clusters.

On a guest ``D-BSP(n, O(1), x^alpha)`` both cost ``Theta(n^alpha)`` — the
polynomial bandwidth function *cannot tell them apart*.  On
``D-BSP(n, O(1), log x)`` they separate (``log^2 n`` vs
``log n log log n``).  The BT host agrees with the logarithmic guest:
simulated costs are ``Theta(n log^2 n)`` vs ``Theta(n log n log log n)``.
Finally, routing the recursive algorithm's transposes with the
rational-permutation routine (Section 6) reaches the optimal
``Theta(n log n)``.
"""

import math

from repro import (
    BTSimulator,
    DBSPMachine,
    LogarithmicAccess,
    PolynomialAccess,
    fft_dag_program,
    fft_recursive_program,
)

MU = 2


def main() -> None:
    n = 1024
    lg = math.log2(n)
    dag = fft_dag_program(n, mu=MU)
    rec = fft_recursive_program(n, mu=MU)

    print(f"n = {n}-point DFT, two D-BSP schedules\n")

    print("guest times (who can tell the algorithms apart?)")
    for g in (PolynomialAccess(0.5), LogarithmicAccess()):
        t_dag = DBSPMachine(g).run(dag).total_time
        t_rec = DBSPMachine(g).run(rec).total_time
        verdict = "separated" if abs(t_dag - t_rec) > 0.3 * max(t_dag, t_rec) \
            else "indistinguishable"
        print(f"  g = {g.name:6s}: dag {t_dag:10.1f}   rec {t_rec:10.1f}   "
              f"-> {verdict}")

    print("\nBT host (f = x^0.5), generic simulation (delivery by sorting)")
    f = PolynomialAccess(0.5)
    t_dag_bt = BTSimulator(f).simulate(dag).time
    t_rec_bt = BTSimulator(f).simulate(rec).time
    print(f"  dag: {t_dag_bt:12.0f}   = {t_dag_bt / (n * lg * lg):.2f} "
          f"x n log^2 n")
    print(f"  rec: {t_rec_bt:12.0f}   = "
          f"{t_rec_bt / (n * lg * math.log2(lg)):.2f} x n log n loglog n")

    print("\nBT host, Section 6: transposes routed as rational permutations")
    t_rec_perm = BTSimulator(f, sort="transpose").simulate(rec).time
    print(f"  rec: {t_rec_perm:12.0f}   = {t_rec_perm / (n * lg):.2f} "
          f"x n log n   (optimal)")

    print("\nconclusion (the paper's): code for D-BSP(v, O(1), log x) — it")
    print("ranks algorithms the way the BT hierarchy does; x^alpha does not.")


if __name__ == "__main__":
    main()
