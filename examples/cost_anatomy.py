#!/usr/bin/env python3
"""Anatomy of a simulation: where does the charged time actually go?

Both simulation engines attribute every charged time unit to a phase of
the paper's scheme.  This example dissects three contrasting workloads:

* ``matmul``   — structured submachine locality (Prop. 7);
* ``listrank`` — pointer jumping, zero locality (every superstep global);
* ``fft-rec``  — few coarse transposes, most work deep in the tree.

On the HMM engine, ``cycling`` is the term Theorem 5 prices
(``mu v f(mu v / 2^i)`` per superstep — it shrinks with label depth),
``swaps`` is the Theorem 4 amortized reshuffling, and ``delivery`` the
message filing.  On the BT engine, ``delivery`` is the Fig. 7 sorting —
the dominant term the paper's post-Theorem-12 discussion calls out.
"""

from repro import (
    BTSimulator,
    HMMSimulator,
    PolynomialAccess,
    fft_recursive_program,
    list_ranking_program,
    matmul_program,
)


def show(title: str, breakdown: dict[str, float], total: float) -> None:
    parts = "  ".join(
        f"{k}={v / total:5.1%}" for k, v in sorted(breakdown.items())
        if v > 0
    )
    print(f"  {title:34s} total={total:12.0f}  {parts}")


def main() -> None:
    f = PolynomialAccess(0.5)
    v = 256
    workloads = [
        ("matmul (structured)", matmul_program(v, mu=2)),
        ("listrank (locality-free)", list_ranking_program(v, mu=2)),
        ("fft-rec (coarse+deep mix)", fft_recursive_program(v, mu=2)),
    ]

    print(f"HMM engine (f = {f.name}), v = {v}")
    for name, prog in workloads:
        res = HMMSimulator(f, check_invariants="off").simulate(prog)
        show(name, res.breakdown, res.time)

    print(f"\nBT engine (f = {f.name}), v = {v}")
    for name, prog in workloads:
        res = BTSimulator(f).simulate(prog)
        show(name, res.breakdown, res.time)

    print("""
reading: on the HMM, the locality-free workload spends almost everything
in 'cycling' at full machine depth, while structured workloads shift the
weight into cheap deep-cluster work and amortized swaps; on the BT host
the delivery sort dominates across the board — which is why Theorem 12's
bound is log-shaped, f-independent, and why §6's regular-permutation
routing is worth having.""")


if __name__ == "__main__":
    main()
