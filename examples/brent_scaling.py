#!/usr/bin/env python3
"""The Brent-lemma analogue (Section 4): scale processors away for free.

A fine-grained program written for ``D-BSP(v, mu, g)`` runs on a smaller
``D-BSP(v', mu v/v', g)`` — same aggregate memory, each processor now a
``g(x)``-HMM — with slowdown ``Theta(v/v')``.  Equivalently: the model
with hierarchical memory modules integrates the network hierarchy and the
memory hierarchy seamlessly; trading processors for per-processor memory
costs exactly the lost parallelism.
"""

from repro import BrentSimulator, DBSPMachine, LogarithmicAccess
from repro import matmul_program


def main() -> None:
    g = LogarithmicAccess()
    v = 256
    program = matmul_program(v, mu=2)
    guest = DBSPMachine(g).run(program)
    print(f"guest: {program.name} on D-BSP({v}, 2, {g.name}), "
          f"T = {guest.total_time:.1f}\n")

    header = (f"{'v_host':>6s} {'mu_host':>8s} {'T_host':>12s} "
              f"{'slowdown':>9s} {'v/v_host':>8s} {'ratio':>6s}")
    print(header)
    print("-" * len(header))
    for v_host in (256, 64, 16, 4, 1):
        result = BrentSimulator(g, v_host=v_host).simulate(program)
        # sanity: the product matrix is identical on every host width
        assert [c["c"] for c in result.contexts] == \
            [c["c"] for c in guest.contexts]
        slowdown = result.slowdown(guest.total_time)
        print(f"{v_host:6d} {2 * v // v_host:8d} {result.time:12.1f} "
              f"{slowdown:9.1f} {v // v_host:8d} "
              f"{slowdown / (v / v_host):6.2f}")
    print("\nthe last column (slowdown normalized by v/v') stays within a")
    print("constant band: Corollary 11's Theta(v/v') with no extra")
    print("hierarchy-induced loss.")


if __name__ == "__main__":
    main()
