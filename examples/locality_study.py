#!/usr/bin/env python3
"""How much submachine locality does a program expose, and what is it worth?

Three workloads with very different label profiles are simulated on the
same ``f(x)``-HMM:

* ``reduce``    — coarsening tree: labels log v-1, ..., 0 (one global step);
* ``fine``      — random program biased toward deep labels (submachine-local);
* ``prefix``    — Hillis-Steele prefix sums: *every* superstep is global
  (label 0) — zero submachine locality by construction.

Theorem 5 prices an i-superstep at ``mu v f(mu v / 2^i)``: the deeper the
labels, the cheaper the simulation.  The table shows the measured HMM cost
per superstep per processor — the "price of a superstep" — and how the
locality-free workload pays the full ``f(mu v)`` while local ones don't.
"""

from repro import DBSPMachine, HMMSimulator, PolynomialAccess
from repro import prefix_sums_program, reduce_program
from repro.testing import random_label_sequence, random_program


def build_workloads(v: int):
    fine_labels = random_label_sequence(v, 10, seed=5, bias="fine")
    return [
        ("reduce (coarsening)", reduce_program(v)),
        ("fine-biased random", random_program(v, labels=fine_labels, seed=5)),
        ("prefix (all-global)", prefix_sums_program(v)),
    ]


def main() -> None:
    f = PolynomialAccess(0.5)
    print(f"host: f(x) = {f.name}-HMM; guest: D-BSP(v, mu, {f.name})\n")
    header = f"{'workload':22s} {'v':>5s} {'T_dbsp':>10s} {'T_hmm':>12s} " \
             f"{'slowdown':>9s} {'sd/v':>6s} {'cost/step/proc':>14s}"
    print(header)
    print("-" * len(header))
    for v in (64, 256):
        for name, prog in build_workloads(v):
            guest = DBSPMachine(f).run(prog.with_global_sync())
            host = HMMSimulator(f).simulate(prog)
            steps = len(prog.with_global_sync())
            slowdown = host.slowdown(guest.total_time)
            print(f"{name:22s} {v:5d} {guest.total_time:10.1f} "
                  f"{host.time:12.1f} {slowdown:9.1f} {slowdown / v:6.2f} "
                  f"{host.time / steps / v:14.2f}")
        print()
    print("reading: slowdown/v is ~constant for every workload (Cor. 6 is")
    print("paid per unit of *guest* time), but the absolute per-superstep")
    print("price tracks the labels — locality-free supersteps cost f(mu v)")
    print(f"= {f(8 * 256):.1f} per processor at v=256, mu=8, while deep ones")
    print("cost only the access function of their small cluster.")


if __name__ == "__main__":
    main()
