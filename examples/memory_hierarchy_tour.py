#!/usr/bin/env python3
"""A tour of the sequential machine models: HMM vs BT (Facts 1 and 2).

Touch n memory cells on both machines:

* the ``f(x)``-HMM pays ``f`` at every address — ``Theta(n f(n))``;
* the ``f(x)``-BT pipelines blocks toward the top of memory and pays only
  ``Theta(n f*(n))`` — ``n log log n`` for ``f = x^alpha``, ``n log* n``
  for ``f = log x``.

The gap ``f(n) / f*(n)`` is the paper's measure of what block transfer
(spatial locality) buys on top of temporal locality.
"""

from repro import LogarithmicAccess, PolynomialAccess
from repro.bt import BTMachine, bt_touch_all
from repro.hmm import HMMMachine, hmm_touch_all


def main() -> None:
    for f in (PolynomialAccess(0.5), LogarithmicAccess()):
        print(f"access function f(x) = {f.name}")
        header = (f"  {'n':>8s} {'HMM cost':>12s} {'BT cost':>12s} "
                  f"{'HMM/BT':>7s} {'f(n)':>8s} {'f*(n)':>6s}")
        print(header)
        print("  " + "-" * (len(header) - 2))
        for exp in (10, 13, 16):
            n = 1 << exp
            hmm = HMMMachine(f, n)
            hmm.mem[:n] = [1] * n
            hmm_cost = hmm_touch_all(hmm, n)

            bt = BTMachine(f, 2 * n)
            bt.mem[n : 2 * n] = [1] * n
            bt_cost = bt_touch_all(bt, n)

            print(f"  {n:8d} {hmm_cost:12.0f} {bt_cost:12.0f} "
                  f"{hmm_cost / bt_cost:7.2f} {f(n):8.1f} {f.star(n):6d}")
        print()
    print("Facts 1 and 2: the HMM column grows like n f(n), the BT column")
    print("like n f*(n); the widening HMM/BT ratio is the power of block")
    print("transfer that Section 5's simulation taps into.")


if __name__ == "__main__":
    main()
