#!/usr/bin/env python3
"""Quickstart: write a D-BSP program, run it, simulate it on an HMM.

This walks the paper's central pipeline end to end:

1. build a fine-grained D-BSP program (here: sorting, one key per
   processor, communication confined to ever-coarser clusters);
2. execute it directly on the D-BSP model to get the parallel time ``T``;
3. simulate it on a sequential ``f(x)``-HMM with ``f = g`` — the
   submachine locality of the parallel program becomes temporal locality
   of reference, and the slowdown is ``Theta(v)``: nothing is lost beyond
   the parallelism itself (Corollary 6).
"""

from repro import (
    DBSPMachine,
    HMMSimulator,
    PolynomialAccess,
    bitonic_sort_program,
)


def main() -> None:
    v = 64
    f = PolynomialAccess(0.5)  # access cost ~ sqrt(address)

    program = bitonic_sort_program(v)
    print(f"program: {program.name} — {len(program)} supersteps, "
          f"labels 0..{program.log_v}")

    # 1. direct parallel execution on D-BSP(v, mu, x^0.5)
    guest = DBSPMachine(g=f).run(program)
    keys = [ctx["key"] for ctx in guest.contexts]
    assert keys == sorted(keys), "bitonic schedule must sort"
    print(f"D-BSP time         T   = {guest.total_time:10.1f}")

    # 2. sequential simulation on the x^0.5-HMM
    host = HMMSimulator(f).simulate(program)
    hmm_keys = [ctx["key"] for ctx in host.contexts]
    assert hmm_keys == keys, "the simulation reproduces the same results"
    print(f"HMM simulation time    = {host.time:10.1f} "
          f"({host.rounds} rounds)")

    # 3. the headline: slowdown ~ v, the pure loss of parallelism
    slowdown = host.slowdown(guest.total_time)
    print(f"slowdown               = {slowdown:10.1f}  (v = {v})")
    print(f"slowdown / v           = {slowdown / v:10.2f}  "
          f"(Corollary 6: Theta(1))")


if __name__ == "__main__":
    main()
