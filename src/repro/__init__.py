"""repro — reproduction of *Translating Submachine Locality into Locality
of Reference* (C. Fantozzi, A. Pietracaprina, G. Pucci; IPDPS 2004).

The package provides operational, cost-charged implementations of the
three machine models the paper relates —

* :mod:`repro.dbsp` — the Decomposable BSP (guest parallel model),
* :mod:`repro.hmm` — the Hierarchical Memory Model (temporal locality),
* :mod:`repro.bt` — HMM with Block Transfer (plus spatial locality),

the paper's simulation schemes (:mod:`repro.sim`: D-BSP->HMM, D-BSP->BT,
and the Brent-lemma self-simulation), the case-study D-BSP algorithms
(:mod:`repro.algorithms`: matrix multiplication, FFT, sorting, and
primitives), and an analysis toolkit (:mod:`repro.analysis`) used by the
benchmark harness to check every claimed bound's shape.

Quickstart::

    from repro import (DBSPMachine, HMMSimulator, PolynomialAccess,
                       bitonic_sort_program)

    f = PolynomialAccess(0.5)
    program = bitonic_sort_program(v=64)
    guest = DBSPMachine(g=f).run(program)          # direct D-BSP run
    host = HMMSimulator(f).simulate(program)       # simulated on x^0.5-HMM
    assert [c["key"] for c in host.contexts] == \
        [c["key"] for c in guest.contexts]         # identical results
    print(host.slowdown(guest.total_time))         # ~ Theta(v)
"""

from repro.functions import (
    AccessFunction,
    ConstantAccess,
    CostTable,
    LinearAccess,
    LogarithmicAccess,
    PolynomialAccess,
    StaircaseAccess,
)
from repro.dbsp import (DBSPMachine, Message, ProcView, Program,
                        Superstep, concat_programs)
from repro.hmm import HMMMachine
from repro.bt import BTMachine
from repro.sim import (
    BrentSimulator,
    BTSimulator,
    HMMSimulator,
    build_label_set_bt,
    build_label_set_hmm,
    smooth_program,
)
from repro.algorithms import (
    bitonic_sort_program,
    broadcast_program,
    convolution_program,
    fft_dag_program,
    fft_recursive_program,
    list_ranking_program,
    matmul_program,
    permutation_program,
    prefix_sums_program,
    reduce_program,
)
from repro.engines import ENGINES, EngineResult, run
from repro.obs import (
    Counters,
    SpanRecord,
    Tracer,
    render_profile,
    spans_from_jsonl,
    spans_to_jsonl,
)

__version__ = "1.0.0"

__all__ = [
    "AccessFunction",
    "PolynomialAccess",
    "LogarithmicAccess",
    "ConstantAccess",
    "LinearAccess",
    "StaircaseAccess",
    "CostTable",
    "DBSPMachine",
    "Program",
    "Superstep",
    "ProcView",
    "Message",
    "concat_programs",
    "HMMMachine",
    "BTMachine",
    "HMMSimulator",
    "BTSimulator",
    "BrentSimulator",
    "smooth_program",
    "build_label_set_hmm",
    "build_label_set_bt",
    "bitonic_sort_program",
    "broadcast_program",
    "fft_dag_program",
    "fft_recursive_program",
    "matmul_program",
    "permutation_program",
    "prefix_sums_program",
    "reduce_program",
    "list_ranking_program",
    "convolution_program",
    "run",
    "ENGINES",
    "EngineResult",
    "Tracer",
    "Counters",
    "SpanRecord",
    "render_profile",
    "spans_to_jsonl",
    "spans_from_jsonl",
    "__version__",
]
