"""Recovery observability: counters and an event log for fault handling.

Charged model costs must stay bit-identical whether or not any worker
died, any task timed out, or any sweep was resumed from a ledger — so
recovery activity can never be recorded on an engine's charged clock or
in an engine's own counters (``tests/test_parallel.py`` pins those with
``==``).  Instead this module keeps a *process-global* side channel:

* a :class:`~repro.obs.counters.Counters` registry of recovery events
  (``pool_retries``, ``pool_timeouts``, ``worker_deaths``,
  ``cells_resumed``, ``cells_recomputed``, ``ledger_corrupt_lines``);
* a bounded event log with one structured record per event, exported by
  ``python -m repro profile --jsonl`` next to the span trace.

``python -m repro profile`` prints the counters when any are nonzero,
and the bench document carries a ``resilience`` section when a ledger
was in play — recovery is visible without ever perturbing a charge.
"""

from __future__ import annotations

from repro.obs.counters import Counters

__all__ = [
    "record",
    "counters",
    "events",
    "reset",
    "MAX_EVENTS",
]

#: event-log bound: counters keep counting after the log stops growing
MAX_EVENTS = 4096

_counters = Counters()
_events: list[dict] = []
_truncated = 0


def record(event: str, **attrs) -> None:
    """Count one recovery ``event`` and append it to the event log.

    ``event`` is the counter name; ``attrs`` (task index, attempt
    number, task kind, ...) go into the structured event record only.
    """
    global _truncated
    _counters.add(event)
    if len(_events) < MAX_EVENTS:
        doc = {"event": event}
        doc.update(attrs)
        _events.append(doc)
    else:
        _truncated += 1


def counters() -> dict[str, int | float]:
    """Snapshot of the recovery counters (sorted, plain dict)."""
    return _counters.snapshot()


def events() -> list[dict]:
    """Copy of the recovery event log (bounded by :data:`MAX_EVENTS`)."""
    return list(_events)


def reset() -> None:
    """Clear counters and events (tests, and fresh CLI invocations)."""
    global _truncated
    _counters.values.clear()
    _events.clear()
    _truncated = 0
