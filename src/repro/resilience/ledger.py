"""Append-only JSON-lines ledger of completed sweep cells.

A :class:`SweepLedger` is the checkpoint substrate for long sweeps
(``bench --distribute``, ``touch --sweep``, the Fact 1/2 validation
runs): every completed cell is appended as one self-contained JSON line
keyed by a content hash of the cell's full identity (task kind,
arguments, and caller context such as the bench schema and job count).
A crashed or killed run leaves a valid prefix on disk; ``--resume``
loads it, skips every completed cell, and re-folds the recorded results
into the final document **bit-identically** — JSON round-trips floats
exactly (shortest-repr encode, exact decode), so a resumed document's
charged numbers are byte-equal to an uninterrupted run's.

Robustness contract:

* the write path appends and flushes one line per cell, so at most the
  final line can be torn by a crash;
* the read path skips corrupt lines individually (counting them in the
  recovery counters and warning once per load) — a torn tail or a
  garbled middle line costs exactly the affected cells, never the rest
  of the ledger.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from typing import Any, IO

from repro.resilience import recovery

__all__ = [
    "LEDGER_SCHEMA",
    "LedgerWarning",
    "MISSING",
    "cell_key",
    "SweepLedger",
]

#: ledger file format version (the header line carries it)
LEDGER_SCHEMA = 1


class LedgerWarning(RuntimeWarning):
    """A ledger line could not be parsed and was skipped (the affected
    cell will simply be recomputed)."""


class _Missing:
    """Sentinel for "no recorded result" (results themselves may be
    any JSON value, including ``null``)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<missing>"


MISSING = _Missing()


def _canonical(doc: Any) -> str:
    """Canonical JSON for hashing: sorted keys, no whitespace."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def cell_key(kind: str, args: Any, context: dict[str, Any] | None = None) -> str:
    """Content hash identifying one sweep cell.

    ``kind`` is the worker-task name, ``args`` its JSON-serializable
    argument tuple, and ``context`` whatever else qualifies the result
    (bench schema, engine-internal job count, ...).  Two cells share a
    key iff they would compute the identical result, so resuming under
    a changed context recomputes rather than reusing stale cells.
    """
    blob = _canonical({"kind": kind, "args": args, "context": context or {}})
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


class SweepLedger:
    """Append-only journal of ``(cell key -> recorded result)``.

    Construct via :meth:`create` (fresh file) or :meth:`resume` (load an
    existing ledger and continue appending to it).  ``hits`` counts
    :meth:`get` calls that found a recorded cell this session — the
    "cells skipped on resume" number surfaced in documents and echoes.
    """

    def __init__(self, path: str, entries: dict[str, Any], fh: IO[str]):
        self.path = path
        self._entries = entries
        self._fh = fh
        #: cells appended this session
        self.cells_recorded = 0
        #: get() calls that found a recorded result this session
        self.hits = 0
        self._observers: list = []

    def subscribe(self, callback) -> None:
        """Register ``callback(key, kind, result)`` to fire after every
        :meth:`record` append (once the line is flushed and fsynced).

        This is the hook the jobs API streams progress from: a job's
        event feed is literally the ledger's append stream.  Observer
        exceptions propagate to the recorder — observers are expected
        to be in-process bookkeeping, not I/O.
        """
        self._observers.append(callback)

    # ---------------------------------------------------------- constructors
    @classmethod
    def create(cls, path: str) -> "SweepLedger":
        """Start a fresh ledger at ``path`` (truncating any old file)."""
        fh = open(path, "w")
        fh.write(_canonical({"ledger": LEDGER_SCHEMA}) + "\n")
        fh.flush()
        return cls(path, {}, fh)

    @classmethod
    def resume(cls, path: str) -> "SweepLedger":
        """Load an existing ledger and reopen it for appending.

        Corrupt lines (torn tail after a crash, garbled bytes) are
        skipped one by one: each costs only its own cell.  Raises
        :class:`OSError` when the file cannot be read at all.
        """
        entries: dict[str, Any] = {}
        corrupt = 0
        with open(path, "r") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except ValueError:
                    doc = None
                if isinstance(doc, dict) and "ledger" in doc:
                    continue  # header line
                if (
                    isinstance(doc, dict)
                    and isinstance(doc.get("key"), str)
                    and "result" in doc
                ):
                    entries[doc["key"]] = doc["result"]
                else:
                    corrupt += 1
                    recovery.record(
                        "ledger_corrupt_lines", path=path, line=lineno
                    )
        if corrupt:
            warnings.warn(
                f"skipped {corrupt} corrupt line(s) in ledger {path}; the "
                f"affected cells will be recomputed",
                LedgerWarning,
                stacklevel=2,
            )
        return cls(path, entries, open(path, "a"))

    # --------------------------------------------------------------- access
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Any:
        """The recorded result for ``key``, or :data:`MISSING`."""
        if key in self._entries:
            self.hits += 1
            return self._entries[key]
        return MISSING

    def items(self) -> list[tuple[str, Any]]:
        """All recorded ``(key, result)`` pairs, in insertion order.

        Iteration order is the order the lines were appended (dicts
        preserve insertion order), so consumers that warm a bounded
        cache from a ledger see the oldest cells first and the newest
        last — the newest survive an LRU preload cap.
        """
        return list(self._entries.items())

    def record(self, key: str, kind: str, result: Any) -> None:
        """Append one completed cell and flush it to disk immediately."""
        line = json.dumps(
            {"key": key, "kind": kind, "result": result},
            separators=(",", ":"),
        )
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._entries[key] = result
        self.cells_recorded += 1
        for observer in self._observers:
            observer(key, kind, result)

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "SweepLedger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def summary(self) -> dict[str, Any]:
        """The ``resilience`` section embedded in checkpointed documents."""
        return {
            "ledger": self.path,
            "cells_resumed": self.hits,
            "cells_recorded": self.cells_recorded,
        }
