"""Checkpointed sweeps: ``parallel_map`` fused with a :class:`SweepLedger`.

:func:`resume_map` is the cell-granular checkpoint primitive used by
``bench --distribute``, ``touch --sweep`` and the Fact 1/2 validation
sweeps: every completed cell is appended to the ledger *as it finishes*,
already-recorded cells are never recomputed, and the returned list is
bit-identical to a clean :func:`~repro.parallel.sweep.parallel_map` run
no matter where the previous run died.

Results pass through one JSON round-trip before being returned or
recorded, so a cell looks the same whether it was computed this run or
replayed from the ledger (tuples become lists, floats survive exactly).

This module imports ``repro.parallel`` lazily inside the function so the
``resilience`` package stays a leaf of the import graph.
"""

from __future__ import annotations

import json
from typing import Any, Sequence

from repro.resilience import faults, recovery
from repro.resilience.ledger import MISSING, SweepLedger, cell_key

__all__ = ["resume_map"]


def resume_map(
    kind: str,
    args_list: Sequence[Any],
    ledger: SweepLedger,
    parallel: Any = None,
    context: dict[str, Any] | None = None,
) -> list[Any]:
    """Run one registered task per element, checkpointing through ``ledger``.

    Cells already present in the ledger (matched by
    :func:`~repro.resilience.ledger.cell_key` over ``kind``, the cell's
    args, and ``context``) are replayed without recomputation; missing
    cells run through the worker pool (honouring ``parallel`` exactly
    like :func:`~repro.parallel.sweep.parallel_map`, including the
    retry policy and the serial fallback) and are appended to the ledger
    the moment they complete.  Results come back in element order.
    """
    from repro.parallel import workers
    from repro.parallel.config import resolve_parallel, warn_fallback_once
    from repro.parallel.pool import PoolUnavailable, shared_pool

    keys = [cell_key(kind, args, context) for args in args_list]
    results: list[Any] = [MISSING] * len(keys)
    pending: list[int] = []
    for i, key in enumerate(keys):
        recorded = ledger.get(key)
        if recorded is MISSING:
            pending.append(i)
        else:
            results[i] = recorded
            recovery.record("cells_resumed", kind=kind, index=i)

    def finish(index: int, result: Any) -> None:
        # One JSON round-trip so fresh and replayed cells are congruent
        # (floats round-trip exactly; tuples normalize to lists).
        result = json.loads(json.dumps(result))
        ledger.record(keys[index], kind, result)
        results[index] = result
        recovery.record("cells_recomputed", kind=kind, index=index)
        faults.check_abort(ledger.cells_recorded)

    cfg = resolve_parallel(parallel)
    done = 0
    if cfg.enabled and pending:
        pool = shared_pool(cfg.jobs)
        try:
            stream = pool.run_ordered(
                kind, [args_list[i] for i in pending], policy=cfg.retry
            )
            for result in stream:
                finish(pending[done], result)
                done += 1
        except PoolUnavailable as exc:
            if not cfg.fallback:
                raise
            warn_fallback_once(
                f"worker pool unavailable for checkpointed {kind!r} sweep "
                f"({exc}); finishing serially"
            )
    task = workers.TASKS[kind]
    while done < len(pending):
        finish(pending[done], task(args_list[pending[done]]))
        done += 1
    return results
