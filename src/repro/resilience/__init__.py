"""Checkpoint/resume and fault tolerance for long sweeps.

The package is a *leaf* of the import graph: nothing here imports
``repro.parallel`` at module level (``checkpoint`` defers it into the
function body), so ``repro.parallel.config`` can reference
:class:`RetryPolicy` without a cycle.

* :mod:`repro.resilience.retry` — per-task deadlines, bounded retries,
  exponential backoff (:class:`RetryPolicy`).
* :mod:`repro.resilience.ledger` — append-only JSON-lines checkpoint of
  completed sweep cells (:class:`SweepLedger`, :func:`cell_key`).
* :mod:`repro.resilience.checkpoint` — :func:`resume_map`, the
  checkpointed counterpart of ``parallel_map``.
* :mod:`repro.resilience.recovery` — process-global recovery counters
  and event log (never on a charged clock).
* :mod:`repro.resilience.faults` — deterministic fault injection via
  ``REPRO_FAULTS`` for the chaos test suite.
"""

from repro.resilience.checkpoint import resume_map
from repro.resilience.faults import FaultAbort, FaultPlan, corrupt_ledger
from repro.resilience.ledger import (
    LEDGER_SCHEMA,
    LedgerWarning,
    MISSING,
    SweepLedger,
    cell_key,
)
from repro.resilience.retry import DEFAULT_RETRY, NO_RETRY, RetryPolicy

__all__ = [
    "RetryPolicy",
    "DEFAULT_RETRY",
    "NO_RETRY",
    "SweepLedger",
    "cell_key",
    "LEDGER_SCHEMA",
    "LedgerWarning",
    "MISSING",
    "resume_map",
    "FaultAbort",
    "FaultPlan",
    "corrupt_ledger",
]
