"""Deterministic fault injection for the chaos test suite.

Faults are driven entirely by the ``REPRO_FAULTS`` environment variable —
unset (the normal case) this module costs one cached dict lookup per
task and injects nothing.  The spec is a comma-separated list of
``key=value`` pairs::

    REPRO_FAULTS="seed=7,kill=1.0,dir=/tmp/faults"       # kill workers
    REPRO_FAULTS="seed=7,delay=1.0,delay_s=0.5,dir=..."  # stall tasks
    REPRO_FAULTS="seed=7,abort=3"                        # die mid-sweep
    REPRO_FAULTS="seed=7,shard_exit=6,dir=..."           # kill a shard

* ``kill`` / ``delay`` — probability that a pool task's *first* attempt
  kills its worker process (``os._exit``) or sleeps ``delay_s`` seconds.
  The decision is a pure function of ``(seed, payload bytes)``, so a
  given seed always faults the same tasks; a marker file under ``dir``
  makes each fault fire exactly once, so the retry path can be proven to
  recover.  Injection happens only in the worker-side trampoline — the
  serial fallback path never sees it.
* ``abort`` — parent-side: raise :class:`FaultAbort` once that many
  cells have been checkpointed to the active ledger, simulating a crash
  or Ctrl-C at a cell boundary (the ledger keeps its completed prefix).
* ``shard_exit`` — shard-server-side: ``os._exit`` the serving process
  once it has answered that many requests, simulating a shard dying
  mid-run under live traffic.  A marker file (keyed by the shard's
  identity) makes the death fire exactly once, so a supervisor-restarted
  shard armed with the same spec serves on — the recovery path can be
  proven against the identical environment that killed its predecessor.
* :func:`corrupt_ledger` — deterministically garble one entry line of a
  ledger file, for the corrupt-ledger recovery path.

Everything here is test scaffolding for ``tests/test_resilience.py``;
production runs never set ``REPRO_FAULTS``.
"""

from __future__ import annotations

import hashlib
import os
import random
import tempfile
import time
from dataclasses import dataclass

__all__ = [
    "FaultAbort",
    "FaultPlan",
    "active_plan",
    "maybe_inject_task_fault",
    "maybe_exit_shard",
    "check_abort",
    "corrupt_ledger",
]


class FaultAbort(RuntimeError):
    """Injected mid-sweep crash (the parent process dies at a cell
    boundary; the ledger keeps everything checkpointed so far)."""


@dataclass(frozen=True)
class FaultPlan:
    """Parsed ``REPRO_FAULTS`` spec."""

    seed: int = 0
    kill: float = 0.0
    delay: float = 0.0
    delay_s: float = 0.25
    abort: int = 0
    shard_exit: int = 0
    dir: str = ""

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        fields: dict = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"bad REPRO_FAULTS entry {part!r}: expected key=value"
                )
            key, value = part.split("=", 1)
            key = key.strip()
            value = value.strip()
            if key in ("seed", "abort", "shard_exit"):
                fields[key] = int(value)
            elif key in ("kill", "delay", "delay_s"):
                fields[key] = float(value)
            elif key == "dir":
                fields[key] = value
            else:
                raise ValueError(f"unknown REPRO_FAULTS key {key!r}")
        return cls(**fields)

    @property
    def marker_dir(self) -> str:
        """Where once-only markers live (shared by parent and workers)."""
        return self.dir or os.path.join(
            tempfile.gettempdir(), f"repro-faults-{self.seed}"
        )


_cache: tuple[str, FaultPlan | None] = ("", None)


def active_plan() -> FaultPlan | None:
    """The plan from ``REPRO_FAULTS``, or ``None`` when unset/empty."""
    global _cache
    raw = os.environ.get("REPRO_FAULTS", "").strip()
    if not raw:
        return None
    if _cache[0] != raw:
        _cache = (raw, FaultPlan.from_spec(raw))
    return _cache[1]


def _decide(plan: FaultPlan, domain: str, blob: bytes) -> float:
    """Deterministic uniform draw in [0, 1) for (seed, domain, payload)."""
    h = hashlib.sha256(f"{plan.seed}:{domain}:".encode("utf-8") + blob)
    return int.from_bytes(h.digest()[:8], "big") / 2.0**64


def maybe_inject_task_fault(blob: bytes) -> None:
    """Worker-side hook: possibly kill this worker or stall this task.

    Called by the pool trampoline with the task's payload bytes, before
    the task body runs.  Each selected task faults exactly once (marker
    file), so its retry succeeds.  No-op unless ``REPRO_FAULTS`` arms a
    ``kill`` or ``delay`` probability.
    """
    plan = active_plan()
    if plan is None or (plan.kill <= 0.0 and plan.delay <= 0.0):
        return
    marker_dir = plan.marker_dir
    os.makedirs(marker_dir, exist_ok=True)
    digest = hashlib.sha256(blob).hexdigest()[:24]
    marker = os.path.join(marker_dir, digest)
    if os.path.exists(marker):
        return  # this task already faulted once; let it succeed
    if _decide(plan, "kill", blob) < plan.kill:
        with open(marker, "w") as fh:
            fh.write("kill\n")
        os._exit(23)  # hard worker death: parent sees BrokenProcessPool
    if _decide(plan, "delay", blob) < plan.delay:
        with open(marker, "w") as fh:
            fh.write("delay\n")
        time.sleep(plan.delay_s)


def maybe_exit_shard(identity: str, requests_served: int) -> None:
    """Shard-server-side hook: die once ``shard_exit`` requests served.

    Called by the shard HTTP handler after each answered request with
    the shard's stable identity (its index).  Fires ``os._exit`` exactly
    once per ``(plan, identity)`` — the marker file survives the death,
    so the supervisor's replacement process (same identity, same
    environment) keeps serving.  No-op unless ``REPRO_FAULTS`` arms
    ``shard_exit``.
    """
    plan = active_plan()
    if plan is None or plan.shard_exit <= 0:
        return
    if requests_served < plan.shard_exit:
        return
    marker_dir = plan.marker_dir
    os.makedirs(marker_dir, exist_ok=True)
    marker = os.path.join(marker_dir, f"shard-exit-{identity}")
    if os.path.exists(marker):
        return  # this shard already died once; its replacement serves on
    with open(marker, "w") as fh:
        fh.write("shard_exit\n")
    os._exit(21)  # hard shard death: clients see connection resets


def check_abort(cells_checkpointed: int) -> None:
    """Parent-side hook: crash once ``abort`` cells are checkpointed."""
    plan = active_plan()
    if plan is not None and plan.abort and cells_checkpointed >= plan.abort:
        raise FaultAbort(
            f"fault injection: aborting after {cells_checkpointed} "
            f"checkpointed cell(s)"
        )


def corrupt_ledger(path: str, seed: int = 0) -> int:
    """Deterministically garble one entry line of the ledger at ``path``.

    Picks a non-header line with a seeded RNG, truncates it mid-JSON and
    splices in garbage — the shape a torn write or disk corruption
    leaves behind.  Returns the (0-based) corrupted line index.
    """
    with open(path, "r") as fh:
        lines = fh.read().splitlines()
    candidates = [i for i, line in enumerate(lines) if '"key"' in line]
    if not candidates:
        raise ValueError(f"ledger {path} has no entry lines to corrupt")
    index = random.Random(seed).choice(candidates)
    line = lines[index]
    lines[index] = line[: max(1, len(line) // 2)] + "#CORRUPT#"
    with open(path, "w") as fh:
        fh.write("\n".join(lines) + "\n")
    return index
