"""Retry policy for worker-pool tasks: deadlines, bounded retries, backoff.

A :class:`RetryPolicy` governs how :class:`~repro.parallel.pool.WorkerPool`
reacts to *infrastructure* failures — a worker process dying mid-task
(``BrokenProcessPool``) or a task blowing past its per-task deadline.
Genuine task exceptions (the simulated program raised) are **never**
retried: the strict failure taxonomy of ``repro.parallel.pool`` is
preserved, and a real ``ValueError`` from an engine propagates unchanged
on first occurrence.

Retrying an infrastructure failure is always sound here because every
pool task is a pure function of its pickled payload (see
``repro/parallel/workers.py``): re-running it produces the identical
result, so retries can never change charged model costs — they only
trade wall clock for survival.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

__all__ = ["RetryPolicy", "DEFAULT_RETRY", "NO_RETRY"]


@dataclass(frozen=True)
class RetryPolicy:
    """How a pool consumer survives infrastructure failures.

    Parameters
    ----------
    max_retries:
        Extra attempts allowed per task after its first one.  ``0``
        restores the pre-resilience behaviour: the first worker death
        raises :class:`~repro.parallel.pool.PoolUnavailable` immediately.
    timeout_s:
        Per-task deadline in seconds, measured from the moment the
        parent starts waiting on that task's result.  ``None`` (default)
        waits forever.  A task that exceeds the deadline counts as an
        infrastructure failure: it is resubmitted (the original attempt
        keeps running in its worker, but its result is discarded — tasks
        are deterministic, so whichever attempt is consumed yields the
        same charges).
    backoff_s:
        Sleep before the first resubmission; each further retry of the
        same task multiplies the sleep by ``backoff_factor``.  ``0``
        disables sleeping (tests).
    backoff_factor:
        Exponential backoff multiplier (>= 1).

    >>> RetryPolicy().max_retries
    2
    >>> RetryPolicy(backoff_s=0.1, backoff_factor=2.0).delay(3)
    0.4
    >>> NO_RETRY.max_retries
    0
    """

    max_retries: int = 2
    timeout_s: float | None = None
    backoff_s: float = 0.05
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def delay(self, attempt: int) -> float:
        """Backoff delay (seconds) before retrying after ``attempt``."""
        if self.backoff_s <= 0:
            return 0.0
        return self.backoff_s * self.backoff_factor ** (attempt - 1)

    def sleep(self, attempt: int) -> None:
        """Sleep the backoff delay for ``attempt`` (no-op when zero)."""
        delay = self.delay(attempt)
        if delay > 0:
            time.sleep(delay)


#: the pool-wide default: two retries, no deadline, 50 ms base backoff
DEFAULT_RETRY = RetryPolicy()

#: pre-resilience behaviour: first infrastructure failure is terminal
NO_RETRY = RetryPolicy(max_retries=0)
