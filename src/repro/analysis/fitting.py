"""Shape-checking utilities for asymptotic claims.

The paper proves Theta/O bounds; an operational reproduction validates
them by measuring costs over geometric parameter sweeps and checking

* **bounded ratio**: ``measured / bound`` stays within a fixed band (and
  does not trend upward), the empirical reading of ``measured = O(bound)``
  — and, when a matching lower bound exists, the band's lower edge being
  positive reads as ``Theta``;
* **log-log slope**: for power-law claims (``cost ~ n^e``), ordinary least
  squares on ``log cost`` vs ``log n`` recovers the exponent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["fit_loglog_slope", "bounded_ratio", "RatioCheck"]


def fit_loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """OLS slope of ``log ys`` against ``log xs`` (the power-law exponent)."""
    lx = np.log(np.asarray(xs, dtype=np.float64))
    ly = np.log(np.asarray(ys, dtype=np.float64))
    if len(lx) < 2:
        raise ValueError("need at least two points to fit a slope")
    slope, _intercept = np.polyfit(lx, ly, 1)
    return float(slope)


@dataclass(frozen=True)
class RatioCheck:
    """Result of a bounded-ratio check of ``measured`` against ``bound``."""

    ratios: tuple[float, ...]
    min_ratio: float
    max_ratio: float
    spread: float  #: max/min — 1.0 means a perfectly flat ratio

    @property
    def flat_within(self) -> float:
        return self.spread

    def is_bounded(self, max_spread: float) -> bool:
        """True when the ratio band is narrower than ``max_spread``."""
        return self.spread <= max_spread


def bounded_ratio(
    measured: Sequence[float], bound: Sequence[float]
) -> RatioCheck:
    """Compute the ``measured[i] / bound[i]`` band over a sweep."""
    if len(measured) != len(bound) or not measured:
        raise ValueError("need equal-length, non-empty sequences")
    ratios = tuple(m / b for m, b in zip(measured, bound))
    lo, hi = min(ratios), max(ratios)
    if lo <= 0:
        raise ValueError("measured costs must be positive")
    return RatioCheck(ratios=ratios, min_ratio=lo, max_ratio=hi, spread=hi / lo)
