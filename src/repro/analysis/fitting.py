"""Shape-checking utilities for asymptotic claims.

The paper proves Theta/O bounds; an operational reproduction validates
them by measuring costs over geometric parameter sweeps and checking

* **bounded ratio**: ``measured / bound`` stays within a fixed band (and
  does not trend upward), the empirical reading of ``measured = O(bound)``
  — and, when a matching lower bound exists, the band's lower edge being
  positive reads as ``Theta``;
* **log-log slope**: for power-law claims (``cost ~ n^e``), ordinary least
  squares on ``log cost`` vs ``log n`` recovers the exponent.

:class:`PowerLawFit` is the *predictive* reading of the same machinery
(used by :mod:`repro.analysis.predict` for per-host calibration): a
fitted ``y ~ coeff * x^exponent`` curve that remembers its residual band
and calibrated x-range, answers point predictions with honest ``[lo,
hi]`` error bars, and **widens** those bars geometrically when asked to
extrapolate beyond the range it was fitted on — a prediction outside
the calibrated range is a guess and the bars must say so.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

__all__ = [
    "fit_loglog_slope",
    "bounded_ratio",
    "RatioCheck",
    "PowerLawFit",
    "fit_power_law",
]


def fit_loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """OLS slope of ``log ys`` against ``log xs`` (the power-law exponent)."""
    lx = np.log(np.asarray(xs, dtype=np.float64))
    ly = np.log(np.asarray(ys, dtype=np.float64))
    if len(lx) < 2:
        raise ValueError("need at least two points to fit a slope")
    slope, _intercept = np.polyfit(lx, ly, 1)
    return float(slope)


@dataclass(frozen=True)
class RatioCheck:
    """Result of a bounded-ratio check of ``measured`` against ``bound``."""

    ratios: tuple[float, ...]
    min_ratio: float
    max_ratio: float
    spread: float  #: max/min — 1.0 means a perfectly flat ratio

    @property
    def flat_within(self) -> float:
        return self.spread

    def is_bounded(self, max_spread: float) -> bool:
        """True when the ratio band is narrower than ``max_spread``."""
        return self.spread <= max_spread


def bounded_ratio(
    measured: Sequence[float], bound: Sequence[float]
) -> RatioCheck:
    """Compute the ``measured[i] / bound[i]`` band over a sweep."""
    if len(measured) != len(bound) or not measured:
        raise ValueError("need equal-length, non-empty sequences")
    ratios = tuple(m / b for m, b in zip(measured, bound))
    lo, hi = min(ratios), max(ratios)
    if lo <= 0:
        raise ValueError("measured costs must be positive")
    return RatioCheck(ratios=ratios, min_ratio=lo, max_ratio=hi, spread=hi / lo)


#: multiplicative safety margin applied to the residual band of a fit —
#: the calibration points themselves must land inside the band with room
#: for run-to-run noise
RESIDUAL_SAFETY = 1.25

#: band width of a degenerate single-point "fit": with one observation
#: there is no residual evidence at all, so the bars are this wide in
#: each direction
SINGLE_POINT_BAND = 4.0

#: error-bar widening per *doubling* of x beyond the calibrated range
EXTRAPOLATION_WIDENING = 1.5


@dataclass(frozen=True)
class PowerLawFit:
    """A fitted ``y ~ coeff * x^exponent`` with honest error bars.

    ``lo``/``hi`` bound the ``measured / fitted`` residual ratio over
    the calibration points (padded by :data:`RESIDUAL_SAFETY`);
    ``x_min``/``x_max`` remember the calibrated range.  :meth:`band`
    widens the bars by :data:`EXTRAPOLATION_WIDENING` per doubling
    outside that range instead of pretending an extrapolated point is as
    trustworthy as an interpolated one.

    >>> fit = fit_power_law([8, 16, 32], [64.0, 256.0, 1024.0])
    >>> round(fit.exponent, 6)
    2.0
    >>> lo, hi, extrapolated = fit.band(64)
    >>> (lo <= 4096.0 <= hi, extrapolated)
    (True, True)
    """

    coeff: float
    exponent: float
    lo: float  #: lower residual-ratio bound (<= 1 in practice)
    hi: float  #: upper residual-ratio bound (>= 1 in practice)
    x_min: float
    x_max: float
    points: int

    def predict(self, x: float) -> float:
        """The point estimate at ``x``."""
        if x <= 0:
            raise ValueError(f"power-law domain is x > 0, got {x!r}")
        return self.coeff * x ** self.exponent

    def widening(self, x: float) -> float:
        """The extrapolation factor at ``x`` (1.0 inside the range)."""
        if x <= 0:
            raise ValueError(f"power-law domain is x > 0, got {x!r}")
        if x > self.x_max:
            doublings = math.log2(x / self.x_max)
        elif x < self.x_min:
            doublings = math.log2(self.x_min / x)
        else:
            return 1.0
        return EXTRAPOLATION_WIDENING ** doublings

    def band(self, x: float) -> tuple[float, float, bool]:
        """``(lo, hi, extrapolated)`` prediction interval at ``x``."""
        point = self.predict(x)
        widen = self.widening(x)
        return point * self.lo / widen, point * self.hi * widen, widen != 1.0

    def to_json(self) -> dict[str, Any]:
        return {
            "coeff": self.coeff,
            "exponent": self.exponent,
            "lo": self.lo,
            "hi": self.hi,
            "x_min": self.x_min,
            "x_max": self.x_max,
            "points": self.points,
        }

    @classmethod
    def from_json(cls, doc: dict[str, Any]) -> "PowerLawFit":
        try:
            return cls(**{
                name: doc[name]
                for name in (
                    "coeff", "exponent", "lo", "hi",
                    "x_min", "x_max", "points",
                )
            })
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed power-law fit document: {exc}")


def fit_power_law(
    xs: Sequence[float],
    ys: Sequence[float],
    prior_exponent: float | None = None,
) -> PowerLawFit:
    """Fit ``y ~ coeff * x^exponent`` with a residual error band.

    Degenerate inputs degrade instead of crashing: a **single point**
    (the planner's smallest useful calibration) pins the curve through
    that point with ``prior_exponent`` (default 1.0) as the slope and a
    :data:`SINGLE_POINT_BAND`-wide band — wide bars, not a guess dressed
    up as a measurement.  Empty or non-positive data raises
    :class:`ValueError`.
    """
    if len(xs) != len(ys) or not xs:
        raise ValueError("need equal-length, non-empty sequences")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("power-law fits need positive xs and ys")
    if len(xs) == 1:
        exponent = 1.0 if prior_exponent is None else prior_exponent
        coeff = ys[0] / xs[0] ** exponent
        return PowerLawFit(
            coeff=coeff, exponent=exponent,
            lo=1.0 / SINGLE_POINT_BAND, hi=SINGLE_POINT_BAND,
            x_min=float(xs[0]), x_max=float(xs[0]), points=1,
        )
    exponent = fit_loglog_slope(xs, ys)
    lx = np.log(np.asarray(xs, dtype=np.float64))
    ly = np.log(np.asarray(ys, dtype=np.float64))
    coeff = float(np.exp(np.mean(ly - exponent * lx)))
    fitted = [coeff * x ** exponent for x in xs]
    check = bounded_ratio(list(ys), fitted)
    return PowerLawFit(
        coeff=coeff,
        exponent=float(exponent),
        lo=check.min_ratio / RESIDUAL_SAFETY,
        hi=check.max_ratio * RESIDUAL_SAFETY,
        x_min=float(min(xs)),
        x_max=float(max(xs)),
        points=len(xs),
    )
