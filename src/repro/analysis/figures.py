"""Text renderings of the paper's illustrative figures, from live simulator state.

* Figure 2 — snapshots of HMM memory highlighting cluster movements during
  a cycle (rendered from :class:`repro.sim.hmm_sim.RoundSnapshot` traces);
* Figure 3 — assignment of submatrices to the four D-BSP 2-clusters during
  matrix multiplication (rendered from the algorithm's round schedule);
* Figure 4 — BT memory layout during an ``UNPACK(0)`` (rendered from
  :class:`repro.sim.bt_sim.LayoutSnapshot` traces).
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = [
    "render_cluster_movements",
    "render_mm_assignment",
    "render_unpack_layout",
]


def render_cluster_movements(
    snapshots: Iterable,
    cluster_level: int,
    v: int,
) -> str:
    """Figure 2: one column per snapshot; rows are memory positions.

    Each cell shows the index of the ``cluster_level``-cluster whose
    contexts occupy that slot range, starred while the cluster still has
    unsimulated work at the snapshot's superstep (the figure's grey boxes).
    """
    snaps = list(snapshots)
    if not snaps:
        return "(no snapshots)"
    csize = v >> cluster_level
    n_rows = v // csize
    lines = ["t ->  " + "  ".join(f"{k:>4d}" for k in range(len(snaps)))]
    for row in range(n_rows):
        cells = []
        for snap in snaps:
            pid = snap.slot_to_pid[row * csize]
            cluster = pid // csize
            ready = snap.next_step[pid] <= snap.superstep
            cells.append(f"{cluster:>3d}{'*' if ready else ' '}")
        lines.append(f"mem[{row}] " + "  ".join(cells))
    lines.append("(* = cluster not yet simulated at this superstep)")
    return "\n".join(lines)


def render_mm_assignment(rounds: Sequence[dict[int, tuple[str, str]]]) -> str:
    """Figure 3: per-round assignment of (A, B) submatrices to 2-clusters.

    ``rounds[r][cluster] = (a_name, b_name)`` — e.g. ``("A11", "B12")``.
    """
    lines = []
    for r, assignment in enumerate(rounds):
        lines.append(f"Round {r + 1}")
        order = sorted(assignment)
        half = len(order) // 2 or 1
        for start in range(0, len(order), half):
            row = order[start : start + half]
            lines.append(
                "   " + "   ".join(
                    f"C{c}: {assignment[c][0]},{assignment[c][1]}" for c in row
                )
            )
    return "\n".join(lines)


def render_unpack_layout(snapshots: Iterable) -> str:
    """Figure 4: block-level layouts; ``Pk`` for contexts, ``__`` for buffers."""
    lines = []
    for snap in snapshots:
        cells = " ".join(
            "__" if pid is None else f"P{pid}" for pid in snap.slots
        )
        lines.append(f"{snap.stage:>16s} | {cells}")
    return "\n".join(lines)
