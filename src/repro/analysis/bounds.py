"""Closed-form simulation-time bounds from the paper's theorems.

Each function evaluates the bound *exactly as stated* (no hidden
constants): benchmarks divide measured machine time by these values and
check that the ratio stays bounded — and roughly flat — across geometric
sweeps, which is the operational meaning of the Theta/O claims.
"""

from __future__ import annotations

import math

from repro.dbsp.machine import DBSPRunResult
from repro.functions import AccessFunction

__all__ = ["theorem5_bound", "theorem12_bound", "brent_bound", "program_stats"]


def program_stats(result: DBSPRunResult) -> tuple[float, dict[int, int]]:
    """Extract ``(tau, lambda_i)`` of a guest run for the bound formulas.

    ``tau`` is the total per-processor local computation bound (the sum of
    per-superstep maxima) and ``lambda_i`` counts i-supersteps — both as
    used in the statements of Theorems 5, 10 and 12.
    """
    return result.max_local_time(), result.label_counts()


def theorem5_bound(
    f: AccessFunction,
    v: int,
    mu: int,
    tau: float,
    lambdas: dict[int, int],
) -> float:
    """Theorem 5: ``v (tau + mu sum_i lambda_i f(mu v / 2^i))``."""
    comm = sum(
        count * f(mu * (v >> label)) for label, count in lambdas.items()
    )
    return v * (tau + mu * comm)


def theorem12_bound(
    v: int,
    mu: int,
    tau: float,
    lambdas: dict[int, int],
) -> float:
    """Theorem 12: ``v (tau + mu sum_i lambda_i log(mu v / 2^i))``.

    Note the absence of ``f``: the BT simulation's cost is access-function
    independent.
    """
    comm = sum(
        count * math.log2(max(mu * (v >> label), 2))
        for label, count in lambdas.items()
    )
    return v * (tau + mu * comm)


def brent_bound(
    g: AccessFunction,
    v: int,
    v_host: int,
    mu: int,
    tau: float,
    lambdas: dict[int, int],
) -> float:
    """Theorem 10: ``(v/v') (tau + mu sum_i lambda_i g(mu v / 2^i))``."""
    comm = sum(
        count * g(mu * (v >> label)) for label, count in lambdas.items()
    )
    return (v / v_host) * (tau + mu * comm)
