"""Per-host cost prediction: closed-form bounds anchored by calibration.

The planner (:mod:`repro.service.planner`) needs, for any validated
request, *before running anything*: predicted ``charged_words``,
predicted wall seconds, and how long the request will hold an admission
slot.  This module builds that prediction from two ingredients:

* **Shape** comes from the paper's closed-form bounds
  (:mod:`repro.analysis.bounds`).  A program's superstep labels are a
  *structural* property — :func:`repro.engines.build_program`
  constructs the supersteps without executing any body, so the
  ``lambda_i`` counts (and a ``tau`` floor of one context touch per
  superstep) are available in microseconds at any ``v``.  Evaluating
  Theorem 5/10/12 on them gives the right growth curve in ``v``, ``mu``
  and ``f`` — including the ``v log v``-type curvature a plain power
  law misses.
* **Constants** come from calibration.  ``python -m repro calibrate``
  runs a small (engine x program x v) matrix on *this* host, records
  charged words / model time / wall seconds per cell, and fits

  - the ``measured / bound`` ratio band (:func:`~repro.analysis.fitting.
    bounded_ratio`) for charged words and model time — the same
    flat-ratio machinery the bench uses to validate the theorems, read
    forward as a predictor, and
  - a wall-clock power law in ``v`` (:func:`~repro.analysis.fitting.
    fit_power_law`) — wall time is a host property (interpreter, cache
    sizes), which is exactly why it must be calibrated per host.

The result persists as a versioned JSON **calibration profile**
(:data:`PROFILE_SCHEMA`; round-trippable, refused on schema drift) that
``serve --calibration`` loads at startup.

Error bars are part of the contract: every prediction carries ``lo <=
point <= hi`` bounds from the fit residuals, widened geometrically when
``v`` lies outside the calibrated range (extrapolation must widen the
bars, never crash), and predictions for uncalibrated (engine, program)
pairs fall back to bounds-only mode with ``trusted=False`` and very
wide bars.  ``docs/planner.md`` documents when a prediction is trusted
and what the service does when it is not.

>>> profile_doc = calibrate_profile(
...     engines=("vec",), programs=("sort",), v_grid=(8, 16), repeats=1)
>>> model = CostModel(CalibrationProfile(profile_doc))
>>> p = model.predict("vec", "sort", v=16)
>>> p.trusted and p.charged_words_lo <= p.charged_words <= p.charged_words_hi
True
>>> model.predict("vec", "sort", v=64).extrapolated
True
"""

from __future__ import annotations

import math
import os
import platform
import threading
import time
from dataclasses import dataclass
from typing import Any, Sequence

from repro.analysis.bounds import (
    brent_bound,
    theorem5_bound,
    theorem12_bound,
)
from repro.analysis.fitting import (
    EXTRAPOLATION_WIDENING,
    RESIDUAL_SAFETY,
    PowerLawFit,
    bounded_ratio,
    fit_power_law,
)
from repro.engines import ENGINES, build_program, resolve_access_function

__all__ = [
    "PROFILE_SCHEMA",
    "CALIBRATION_ENGINES",
    "CALIBRATION_PROGRAMS",
    "CALIBRATION_V_GRID",
    "Prediction",
    "CalibrationProfile",
    "CostModel",
    "structural_bound",
    "calibrate_profile",
    "load_profile",
    "write_profile",
]

#: calibration-profile document schema; bumping it invalidates every
#: persisted profile at once (loading refuses with an actionable error)
PROFILE_SCHEMA = 1

#: the default calibration matrix: every engine family over the two
#: workloads the bench matrix is built on
CALIBRATION_ENGINES = ("vec", "hmm", "bt", "brent", "direct")
CALIBRATION_PROGRAMS = ("sort", "fft-rec")
CALIBRATION_V_GRID = (8, 16, 32, 64)
CALIBRATION_V_GRID_SMOKE = (8, 16, 32)

#: band half-width (multiplicative) of a bounds-only prediction — no
#: calibration evidence for the pair, so the bars are this wide
UNTRUSTED_BAND = 16.0

#: fallback serving rate (charged words per wall second) when a profile
#: carries no sim cells at all; intentionally conservative
FALLBACK_WORDS_PER_S = 1e6


def structural_bound(
    engine: str, program_name: str, v: int, mu: int, f_spec: str
) -> float:
    """The closed-form cost shape for one request, without running it.

    Builds the program (cheap: superstep construction only, no body
    executes), counts labels, and evaluates the engine's theorem bound
    with ``tau = mu * len(program)`` — a structural floor of one
    context touch per superstep.  The absolute scale is wrong by a
    constant (that is what calibration pins down); the growth shape in
    ``v``/``mu``/``f`` is the paper's.
    """
    program = build_program(program_name, v, mu)
    lambdas = program.label_counts()
    tau = float(mu * len(program))
    f = resolve_access_function(f_spec)
    if engine in ("hmm", "vec"):
        return theorem5_bound(f, v, mu, tau, lambdas)
    if engine == "bt":
        return theorem12_bound(v, mu, tau, lambdas)
    if engine == "brent":
        return brent_bound(f, v, max(1, v // 4), mu, tau, lambdas)
    if engine == "direct":
        # the guest itself: per-superstep sync + message cost, no
        # sequential-simulation factor of v
        comm = sum(
            count * f(mu * (v >> label))
            for label, count in lambdas.items()
        )
        return tau + mu * comm
    raise ValueError(
        f"unknown engine {engine!r}; try: {', '.join(sorted(ENGINES))}"
    )


def _widening(v: float, v_min: float, v_max: float) -> float:
    """Extrapolation widening outside the calibrated ``v`` range."""
    if v > v_max:
        doublings = math.log2(v / v_max)
    elif v < v_min:
        doublings = math.log2(v_min / v)
    else:
        return 1.0
    return EXTRAPOLATION_WIDENING ** doublings


def _geomean(values: Sequence[float]) -> float:
    return math.exp(sum(math.log(x) for x in values) / len(values))


@dataclass(frozen=True)
class Prediction:
    """One request's predicted cost, with error bars.

    ``charged_words`` is the admission currency (the bench's
    ``words_touched + words_moved``); ``wall_s`` doubles as the
    predicted **queue-slot occupancy** — the seconds the request will
    hold one of the scheduler's in-flight slots.  ``source`` is
    ``"calibrated"`` (ratio anchor + wall fit from the profile) or
    ``"bounds_only"`` (no calibration evidence for the pair:
    ``trusted=False``, bars :data:`UNTRUSTED_BAND` wide).
    """

    engine: str
    program: str
    v: int
    mu: int
    f: str
    charged_words: float
    charged_words_lo: float
    charged_words_hi: float
    model_time: float
    wall_s: float
    wall_s_lo: float
    wall_s_hi: float
    source: str
    trusted: bool
    extrapolated: bool

    @property
    def queue_slot_s(self) -> float:
        """Predicted seconds this request holds an admission slot."""
        return self.wall_s

    @property
    def cost(self) -> float:
        """The admission-control scalar (predicted charged words)."""
        return self.charged_words

    def to_json(self) -> dict[str, Any]:
        return {
            "engine": self.engine,
            "program": self.program,
            "v": self.v,
            "mu": self.mu,
            "f": self.f,
            "charged_words": self.charged_words,
            "charged_words_lo": self.charged_words_lo,
            "charged_words_hi": self.charged_words_hi,
            "model_time": self.model_time,
            "wall_s": self.wall_s,
            "wall_s_lo": self.wall_s_lo,
            "wall_s_hi": self.wall_s_hi,
            "queue_slot_s": self.queue_slot_s,
            "source": self.source,
            "trusted": self.trusted,
            "extrapolated": self.extrapolated,
        }


class _PairModel:
    """The calibrated model of one (engine, program) pair."""

    def __init__(self, doc: dict[str, Any]):
        self.v_min = float(doc["v_min"])
        self.v_max = float(doc["v_max"])
        # the measured/bound anchor ratios are themselves fitted as
        # power laws in v: a flat ratio fits with exponent ~0, and an
        # engine whose constant *trends* (brent's host-size scaling)
        # gets its trend captured instead of silently extrapolated flat
        words_doc = doc.get("words_ratio")  # None for direct (0 words)
        self.words_ratio = (
            PowerLawFit.from_json(words_doc) if words_doc else None
        )
        self.time_ratio = PowerLawFit.from_json(doc["time_ratio"])
        self.wall_fit = PowerLawFit.from_json(doc["wall"])
        self.words_per_s = doc.get("words_per_s")

    def to_json(self) -> dict[str, Any]:
        return {
            "v_min": self.v_min,
            "v_max": self.v_max,
            "words_ratio": (
                self.words_ratio.to_json() if self.words_ratio else None
            ),
            "time_ratio": self.time_ratio.to_json(),
            "wall": self.wall_fit.to_json(),
            "words_per_s": self.words_per_s,
        }


class CalibrationProfile:
    """A loaded, validated calibration profile (versioned JSON)."""

    def __init__(self, doc: dict[str, Any]):
        if not isinstance(doc, dict):
            raise ValueError(
                f"calibration profile must be a JSON object, "
                f"got {type(doc).__name__}"
            )
        schema = doc.get("schema")
        if schema != PROFILE_SCHEMA:
            raise ValueError(
                f"calibration profile is schema {schema!r}, this build "
                f"reads schema {PROFILE_SCHEMA}.  Re-run "
                f"`python -m repro calibrate` to regenerate it."
            )
        self.doc = doc
        try:
            self.models = {
                name: _PairModel(model)
                for name, model in doc["models"].items()
            }
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed calibration profile: {exc}")
        glob = doc.get("global", {})
        self.words_per_s = float(
            glob.get("words_per_s") or FALLBACK_WORDS_PER_S
        )
        self.default_ratio = float(glob.get("default_ratio") or 1.0)

    def pair(self, engine: str, program: str) -> "_PairModel | None":
        return self.models.get(f"{engine}/{program}")

    def to_json(self) -> dict[str, Any]:
        return self.doc

    @classmethod
    def from_json(cls, doc: Any) -> "CalibrationProfile":
        return cls(doc)


def load_profile(path: str) -> CalibrationProfile:
    """Read and validate a profile file (``ValueError`` on any defect)."""
    import json

    try:
        with open(path) as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise ValueError(f"cannot read calibration profile {path}: {exc}")
    except ValueError:
        raise ValueError(
            f"calibration profile {path} is not valid JSON; re-run "
            f"`python -m repro calibrate --output {path}`"
        )
    return CalibrationProfile(doc)


def write_profile(path: str, doc: dict[str, Any]) -> None:
    import json

    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")


class CostModel:
    """Prediction engine over one calibration profile (thread-safe)."""

    def __init__(self, profile: CalibrationProfile):
        self.profile = profile
        self._memo: dict[tuple, Prediction] = {}
        self._lock = threading.Lock()

    def predict(
        self,
        engine: str,
        program: str,
        v: int,
        mu: int = 8,
        f: str = "x^0.5",
    ) -> Prediction:
        """Predict one request's cost (raises ``ValueError`` on inputs
        no engine could run, e.g. an unbuildable ``v``)."""
        memo_key = (engine, program, v, mu, f)
        with self._lock:
            hit = self._memo.get(memo_key)
        if hit is not None:
            return hit
        prediction = self._predict(engine, program, v, mu, f)
        with self._lock:
            if len(self._memo) >= 1024:
                self._memo.clear()
            self._memo[memo_key] = prediction
        return prediction

    def _predict(
        self, engine: str, program: str, v: int, mu: int, f: str
    ) -> Prediction:
        bound = structural_bound(engine, program, v, mu, f)
        pair = self.profile.pair(engine, program)
        if pair is None:
            return self._bounds_only(engine, program, v, mu, f, bound)
        extrapolated = _widening(v, pair.v_min, pair.v_max) != 1.0
        if pair.words_ratio is not None:
            ratio_lo, ratio_hi, _ = pair.words_ratio.band(v)
            words = bound * pair.words_ratio.predict(v)
            words_lo = bound * ratio_lo
            words_hi = bound * ratio_hi
        else:  # the direct engine charges no words
            words = words_lo = words_hi = 0.0
        model_time = bound * pair.time_ratio.predict(v)
        wall, wall_lo, wall_hi = self._wall(pair, v, words)
        return Prediction(
            engine=engine, program=program, v=v, mu=mu, f=f,
            charged_words=words,
            charged_words_lo=words_lo,
            charged_words_hi=words_hi,
            model_time=model_time,
            wall_s=wall, wall_s_lo=wall_lo, wall_s_hi=wall_hi,
            source="calibrated", trusted=True, extrapolated=extrapolated,
        )

    def _wall(
        self, pair: _PairModel, v: int, words: float
    ) -> tuple[float, float, float]:
        wall_lo, wall_hi, _ = pair.wall_fit.band(v)
        wall = pair.wall_fit.predict(v)
        if words > 0 and pair.words_per_s:
            # the throughput floor: a request charging W words cannot
            # finish faster than the host's measured peak words/s; this
            # keeps far extrapolations from predicting absurd walls
            floor = words / pair.words_per_s / RESIDUAL_SAFETY
            wall = max(wall, floor)
            wall_hi = max(wall_hi, wall * RESIDUAL_SAFETY)
            wall_lo = min(wall_lo, wall)
        return wall, wall_lo, wall_hi

    def predict_bound(
        self,
        engine: str,
        program: str,
        v: int,
        mu: int,
        f: str,
        bound: float,
    ) -> Prediction:
        """An honest untrusted prediction from a caller-supplied bound.

        For program families outside the bundled registry (the DAG
        front end compiles a program per spec, so no calibration pair
        can exist): the caller computes its own structural bound and
        the model anchors it exactly like an uncalibrated pair —
        ``source="bounds_only"``, bars :data:`UNTRUSTED_BAND` wide,
        never trusted.
        """
        return self._bounds_only(engine, program, v, mu, f, float(bound))

    def _bounds_only(
        self,
        engine: str,
        program: str,
        v: int,
        mu: int,
        f: str,
        bound: float,
    ) -> Prediction:
        words = bound * self.profile.default_ratio
        if engine == "direct":
            words = 0.0
        wall = max(words, bound) / self.profile.words_per_s
        return Prediction(
            engine=engine, program=program, v=v, mu=mu, f=f,
            charged_words=words,
            charged_words_lo=words / UNTRUSTED_BAND,
            charged_words_hi=words * UNTRUSTED_BAND,
            model_time=bound,
            wall_s=wall,
            wall_s_lo=wall / UNTRUSTED_BAND,
            wall_s_hi=wall * UNTRUSTED_BAND,
            source="bounds_only", trusted=False, extrapolated=True,
        )


# ------------------------------------------------------------- calibration


def _ratio_fit(
    vs: Sequence[float],
    measured: Sequence[float],
    bounds: Sequence[float],
) -> PowerLawFit:
    """Fit the ``measured / bound`` anchor ratio as a power law in v."""
    ratios = bounded_ratio(list(measured), list(bounds)).ratios
    return fit_power_law(list(vs), list(ratios), prior_exponent=0.0)


def calibrate_profile(
    engines: Sequence[str] | None = None,
    programs: Sequence[str] | None = None,
    v_grid: Sequence[int] | None = None,
    mu: int = 8,
    f: str = "x^0.5",
    repeats: int = 2,
    smoke: bool = False,
    echo=None,
) -> dict[str, Any]:
    """Run the calibration matrix on this host; returns the profile doc.

    Every cell runs the engine once per repeat (wall is best-of) with
    ``trace="counters"``; charged words and model time are
    deterministic, wall is the per-host quantity being calibrated.
    """
    from repro.bench import _git_revision

    engines = tuple(engines or CALIBRATION_ENGINES)
    programs = tuple(programs or CALIBRATION_PROGRAMS)
    if v_grid is None:
        v_grid = CALIBRATION_V_GRID_SMOKE if smoke else CALIBRATION_V_GRID
    v_grid = tuple(sorted(v_grid))
    access = resolve_access_function(f)
    cells: list[dict[str, Any]] = []
    models: dict[str, Any] = {}
    sim_rates: list[float] = []
    mids: list[float] = []
    for engine in engines:
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; "
                f"try: {', '.join(sorted(ENGINES))}"
            )
        for program_name in programs:
            rows: list[dict[str, Any]] = []
            for v in v_grid:
                program = build_program(program_name, v, mu)
                best_wall = math.inf
                result = None
                for _ in range(max(1, repeats)):
                    t0 = time.perf_counter()
                    result = ENGINES[engine].run(
                        program, access, trace="counters"
                    )
                    best_wall = min(best_wall, time.perf_counter() - t0)
                words = float(
                    result.counters.get("words_touched", 0)
                    + result.counters.get("words_moved", 0)
                )
                bound = structural_bound(engine, program_name, v, mu, f)
                row = {
                    "engine": engine,
                    "program": program_name,
                    "v": v,
                    "charged_words": words,
                    "model_time": float(result.time),
                    "wall_s": best_wall,
                    "bound": bound,
                }
                rows.append(row)
                cells.append(row)
                if echo:
                    echo(
                        f"  {engine:7s} {program_name:8s} v={v:<5d} "
                        f"words={words:>12,.0f}  wall={best_wall * 1e3:8.2f}ms"
                    )
            name = f"{engine}/{program_name}"
            vs = [r["v"] for r in rows]
            words_ratio = None
            if all(r["charged_words"] > 0 for r in rows):
                words_ratio = _ratio_fit(
                    vs,
                    [r["charged_words"] for r in rows],
                    [r["bound"] for r in rows],
                )
                mids.append(
                    _geomean([
                        r["charged_words"] / r["bound"] for r in rows
                    ])
                )
                top = rows[-1]
                sim_rates.append(top["charged_words"] / top["wall_s"])
            time_ratio = _ratio_fit(
                vs,
                [r["model_time"] for r in rows],
                [r["bound"] for r in rows],
            )
            wall_fit = fit_power_law(vs, [r["wall_s"] for r in rows])
            top = rows[-1]
            models[name] = {
                "v_min": float(v_grid[0]),
                "v_max": float(v_grid[-1]),
                "words_ratio": (
                    words_ratio.to_json() if words_ratio else None
                ),
                "time_ratio": time_ratio.to_json(),
                "wall": wall_fit.to_json(),
                "words_per_s": (
                    top["charged_words"] / top["wall_s"]
                    if top["charged_words"] > 0 else None
                ),
            }
    produced_by = "python -m repro calibrate"
    if smoke:
        produced_by += " --smoke"
    return {
        "schema": PROFILE_SCHEMA,
        "produced_by": produced_by,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "revision": _git_revision(),
        "mu": mu,
        "f": f,
        "v_grid": list(v_grid),
        "engines": list(engines),
        "programs": list(programs),
        "cells": cells,
        "models": models,
        "global": {
            "words_per_s": max(sim_rates) if sim_rates else None,
            "default_ratio": _geomean(mids) if mids else None,
        },
    }
