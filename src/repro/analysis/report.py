"""Aggregate the per-experiment benchmark tables into one report.

Every benchmark saves its paper-vs-measured table under
``benchmarks/results/``; :func:`build_report` collates them — grouped by
experiment id, in DESIGN.md's order — into a single markdown document, so
a full reproduction run ends with one reviewable artifact::

    pytest benchmarks/ --benchmark-only
    python -m repro report            # writes REPORT.md
"""

from __future__ import annotations

import pathlib
import re

__all__ = ["build_report", "DEFAULT_RESULTS_DIR"]

DEFAULT_RESULTS_DIR = pathlib.Path("benchmarks") / "results"

#: experiment ordering: (section header, filename-prefix regexes)
_SECTIONS: list[tuple[str, list[str]]] = [
    ("E1 — Fact 1: HMM touching", [r"test_fact1"]),
    ("E2 — Fact 2: BT touching", [r"test_fact2"]),
    ("E3 — Theorem 5 / Corollary 6: D-BSP on HMM",
     [r"test_theorem5_bound", r"test_corollary6"]),
    ("E4 — Proposition 7: matrix multiplication",
     [r"test_prop7"]),
    ("E5 — Proposition 8: DFT", [r"test_prop8"]),
    ("E6 — Proposition 9: sorting", [r"test_prop9"]),
    ("E7 — Theorem 10 / Corollary 11: Brent analogue",
     [r"test_corollary11", r"test_theorem10"]),
    ("E8 — Theorem 12: D-BSP on BT", [r"test_theorem12"]),
    ("E9 — §5.3 case studies on BT",
     [r"test_mm_on_bt", r"test_dft_two_schedules", r"test_bridging"]),
    ("E10 — §6: transpose-routed FFT", [r"test_transpose_delivery"]),
    ("E11 — staircase hierarchies",
     [r"test_theorem5_on_staircase", r"test_structured_vs_locality"]),
    ("E12 — oblivious vs simulation-derived algorithms",
     [r"test_shape_gap"]),
    ("E13 — flat BSP-on-EM baseline", [r"test_flat_em", r"test_em_io"]),
    ("E14 — mesh-of-HMMs contrast", [r"test_mesh_lambda"]),
    ("E15 — phase-attributed cost profiles",
     [r"test_hmm_phase_profile", r"test_bt_phase_profile"]),
    ("Figures 2-4", [r"test_fig"]),
    ("Ablations", [r"test_a1_", r"test_a3_"]),
]


def build_report(results_dir: pathlib.Path | str = DEFAULT_RESULTS_DIR) -> str:
    """Collate the result tables into a markdown report string."""
    results_dir = pathlib.Path(results_dir)
    files = sorted(results_dir.glob("*.txt")) if results_dir.is_dir() else []
    if not files:
        return (
            "# Reproduction report\n\nNo benchmark results found under "
            f"`{results_dir}` — run `pytest benchmarks/ --benchmark-only` "
            "first.\n"
        )

    used: set[pathlib.Path] = set()
    parts = [
        "# Reproduction report",
        "",
        "Collated from the per-experiment tables under "
        f"`{results_dir}` (regenerate with "
        "`pytest benchmarks/ --benchmark-only`).  See EXPERIMENTS.md for "
        "the paper-vs-measured verdict table and DESIGN.md for the "
        "experiment index.",
    ]
    for header, patterns in _SECTIONS:
        matched = [
            f for f in files
            if any(re.match(p, f.stem) for p in patterns) and f not in used
        ]
        if not matched:
            continue
        used.update(matched)
        parts.append("")
        parts.append(f"## {header}")
        for f in matched:
            parts.append("")
            parts.append("```")
            parts.append(f.read_text().strip())
            parts.append("```")
    leftovers = [f for f in files if f not in used]
    if leftovers:
        parts.append("")
        parts.append("## Other results")
        for f in leftovers:
            parts.append("")
            parts.append("```")
            parts.append(f.read_text().strip())
            parts.append("```")
    parts.append("")
    return "\n".join(parts)
