"""Analysis toolkit: closed-form bounds, shape fitting, figure renderings."""

from repro.analysis.bounds import (
    brent_bound,
    theorem5_bound,
    theorem12_bound,
)
from repro.analysis.fitting import (
    RatioCheck,
    bounded_ratio,
    fit_loglog_slope,
)
from repro.analysis.figures import (
    render_cluster_movements,
    render_mm_assignment,
    render_unpack_layout,
)

__all__ = [
    "theorem5_bound",
    "theorem12_bound",
    "brent_bound",
    "fit_loglog_slope",
    "bounded_ratio",
    "RatioCheck",
    "render_cluster_movements",
    "render_mm_assignment",
    "render_unpack_layout",
]
