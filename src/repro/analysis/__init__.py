"""Analysis toolkit: closed-form bounds, shape fitting, figure renderings,
and the per-host cost prediction layer built on both."""

from repro.analysis.bounds import (
    brent_bound,
    theorem5_bound,
    theorem12_bound,
)
from repro.analysis.fitting import (
    PowerLawFit,
    RatioCheck,
    bounded_ratio,
    fit_loglog_slope,
    fit_power_law,
)
from repro.analysis.figures import (
    render_cluster_movements,
    render_mm_assignment,
    render_unpack_layout,
)
from repro.analysis.predict import (
    PROFILE_SCHEMA,
    CalibrationProfile,
    CostModel,
    Prediction,
    calibrate_profile,
    load_profile,
    structural_bound,
    write_profile,
)

__all__ = [
    "theorem5_bound",
    "theorem12_bound",
    "brent_bound",
    "fit_loglog_slope",
    "bounded_ratio",
    "RatioCheck",
    "PowerLawFit",
    "fit_power_law",
    "PROFILE_SCHEMA",
    "CalibrationProfile",
    "CostModel",
    "Prediction",
    "calibrate_profile",
    "load_profile",
    "structural_bound",
    "write_profile",
    "render_cluster_movements",
    "render_mm_assignment",
    "render_unpack_layout",
]
