"""Structured observability: spans, counters, trace export.

Every engine in this package charges model costs (HMM/BT access costs,
D-BSP superstep costs) to a clock; :mod:`repro.obs` makes those charges
*inspectable*:

* :class:`~repro.obs.trace.Tracer` — nested spans over an engine's cost
  clock.  Each span measures the charged-cost delta between open and
  close and attributes its *self cost* (cost minus children) to a phase
  category.  Two operating levels: ``phases`` aggregates per-category
  totals only (cheap, the default — this is what the engines' public
  ``breakdown`` dicts are views of), ``full`` additionally records every
  span for export and profiling.  :data:`~repro.obs.trace.NULL_TRACER`
  turns the whole layer into no-ops.
* :class:`~repro.obs.counters.Counters` — a registry of event counters
  (ops, words moved, block transfers, messages, context swaps) updated
  by the machines and simulators through cheap hooks;
  :data:`~repro.obs.counters.NULL_COUNTERS` disables them.
* :mod:`repro.obs.export` — JSON-lines span export (round-trippable) and
  a rendered text profile: the per-phase cost tree with percentages.

The unified engine API (:mod:`repro.engines`) returns these artifacts on
every :class:`~repro.engines.EngineResult`; ``python -m repro profile``
is the command-line front end.
"""

from repro.obs.counters import NULL_COUNTERS, Counters
from repro.obs.export import (
    render_profile,
    spans_from_jsonl,
    spans_to_jsonl,
)
from repro.obs.trace import NULL_TRACER, SpanRecord, Tracer

__all__ = [
    "Counters",
    "NULL_COUNTERS",
    "Tracer",
    "NULL_TRACER",
    "SpanRecord",
    "render_profile",
    "spans_to_jsonl",
    "spans_from_jsonl",
]
