"""Event counters for the operational machines and simulation engines.

A :class:`Counters` object is a registry of named monotone counters —
``ops``, ``words_touched``, ``words_moved``, ``block_transfers``,
``messages``, ``context_swaps``, ``rounds``, ... — updated through one
cheap hook, :meth:`Counters.add`.  The machines
(:class:`~repro.hmm.machine.HMMMachine`,
:class:`~repro.bt.machine.BTMachine`) hold a counters reference and feed
it from their bulk-access primitives; the simulators layer scheduler
events (messages delivered, contexts swapped) on top.

:data:`NULL_COUNTERS` is the disabled end: ``add`` is a no-op, so a
machine built without observability pays one no-op call per bulk
primitive — noise next to the numpy prefix-table work each primitive
already does.
"""

from __future__ import annotations

__all__ = ["Counters", "NullCounters", "NULL_COUNTERS"]


class Counters:
    """A registry of named monotone event counters."""

    __slots__ = ("values",)

    enabled = True

    def __init__(self) -> None:
        self.values: dict[str, int | float] = {}

    def add(self, name: str, amount: int | float = 1) -> None:
        """Increment counter ``name`` by ``amount`` (creating it at 0)."""
        values = self.values
        values[name] = values.get(name, 0) + amount

    def get(self, name: str, default: int | float = 0) -> int | float:
        return self.values.get(name, default)

    def merge(self, other: "Counters | dict[str, int | float]") -> None:
        """Fold another registry (or snapshot) into this one, summing."""
        items = other.values if isinstance(other, Counters) else other
        for name, amount in items.items():
            self.add(name, amount)

    def snapshot(self) -> dict[str, int | float]:
        """A plain-dict copy, sorted by counter name (stable output)."""
        return {name: self.values[name] for name in sorted(self.values)}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.values.items()))
        return f"Counters({inner})"


class NullCounters:
    """No-op counters: every hook call disappears."""

    __slots__ = ()

    enabled = False
    values: dict[str, int | float] = {}

    def add(self, name: str, amount: int | float = 1) -> None:
        pass

    def get(self, name: str, default: int | float = 0) -> int | float:
        return default

    def merge(self, other) -> None:
        pass

    def snapshot(self) -> dict[str, int | float]:
        return {}


#: shared no-op counters instance
NULL_COUNTERS = NullCounters()
