"""Trace exporters: JSON-lines spans and the rendered text profile.

Two consumers of a recorded span trace:

* machines — :func:`spans_to_jsonl` / :func:`spans_from_jsonl` serialize
  the span list one JSON object per line (round-trippable, streamable,
  greppable);
* humans — :func:`render_profile` aggregates the span tree by name path
  and prints a per-phase cost tree with counts, charged costs and
  percentages of the total, the structured replacement for the engines'
  old hand-rolled ``breakdown`` printouts.
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

from repro.obs.trace import SpanRecord

__all__ = [
    "spans_to_jsonl",
    "spans_from_jsonl",
    "render_profile",
    "render_breakdown",
]


def spans_to_jsonl(spans: Sequence[SpanRecord]) -> str:
    """Serialize spans as JSON-lines (one span object per line)."""
    return "\n".join(json.dumps(span.to_json()) for span in spans)


def spans_from_jsonl(text: str | Iterable[str]) -> list[SpanRecord]:
    """Inverse of :func:`spans_to_jsonl`.

    Lines that are not span objects (no ``index``/``parent`` pair) are
    skipped: ``profile --jsonl`` exports may interleave recovery-event
    lines from :mod:`repro.resilience.recovery` with the span trace.
    """
    lines = text.splitlines() if isinstance(text, str) else text
    spans = []
    for line in lines:
        if not line.strip():
            continue
        doc = json.loads(line)
        if isinstance(doc, dict) and "index" in doc and "parent" in doc:
            spans.append(SpanRecord.from_json(doc))
    return spans


class _Node:
    """Aggregation node: all spans sharing one name path."""

    __slots__ = ("name", "count", "cost", "self_cost", "children")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.cost = 0.0
        self.self_cost = 0.0
        self.children: dict[str, _Node] = {}


def _aggregate(spans: Sequence[SpanRecord]) -> _Node:
    """Fold the span list into a tree keyed by name path.

    Spans with the same name under the same path (e.g. every ``round``)
    merge into one node accumulating count and cost — the profile shows
    the *shape* of where cost goes, not each of thousands of rounds.
    """
    root = _Node("")
    # index -> aggregation node, so children find their parent's node
    node_of: dict[int, _Node] = {}
    for span in spans:
        parent = node_of.get(span.parent, root)
        node = parent.children.get(span.name)
        if node is None:
            node = parent.children[span.name] = _Node(span.name)
        node.count += 1
        node.cost += span.cost
        node.self_cost += span.self_cost
        node_of[span.index] = node
    return root


def render_profile(
    spans: Sequence[SpanRecord],
    total: float | None = None,
    title: str | None = None,
    max_depth: int = 6,
) -> str:
    """Render the aggregated cost tree of a recorded trace.

    ``total`` (default: the summed cost of the root spans) is the 100%
    mark for the percentage column.  Each line shows the span name, how
    many spans aggregated into it, their total charged cost, the share
    of the run total, and the *self* share (cost not covered by child
    spans).
    """
    root = _aggregate(spans)
    if total is None:
        total = sum(child.cost for child in root.children.values())
    lines: list[str] = []
    if title:
        lines.append(title)
    denom = total if total > 0 else 1.0
    name_width = 36

    def emit(node: _Node, depth: int) -> None:
        label = ("  " * depth + node.name)[:name_width]
        lines.append(
            f"{label:<{name_width}s} x{node.count:<7d} "
            f"{node.cost:16.1f} {100.0 * node.cost / denom:6.1f}% "
            f"(self {100.0 * node.self_cost / denom:5.1f}%)"
        )
        if depth + 1 >= max_depth:
            return
        for child in node.children.values():
            emit(child, depth + 1)

    header = (
        f"{'span':<{name_width}s} {'count':<8s} "
        f"{'charged cost':>16s} {'total':>7s} {'self':>12s}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for child in root.children.values():
        emit(child, 0)
    lines.append("-" * len(header))
    lines.append(f"{'total charged time':<{name_width + 9}s} {total:16.1f}")
    return "\n".join(lines)


def render_breakdown(breakdown: dict[str, float], total: float) -> str:
    """Small per-phase table (used when no full trace was recorded)."""
    denom = total if total > 0 else 1.0
    lines = [f"{'phase':<16s} {'charged cost':>16s} {'share':>8s}"]
    for phase, cost in sorted(breakdown.items(), key=lambda item: -item[1]):
        lines.append(f"{phase:<16s} {cost:16.1f} {100.0 * cost / denom:7.1f}%")
    lines.append(f"{'total':<16s} {total:16.1f} {100.0:7.1f}%")
    return "\n".join(lines)
