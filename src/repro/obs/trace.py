"""Nested cost spans over an engine's charged-time clock.

A :class:`Tracer` is bound to a *clock* — a zero-argument callable
returning the engine's accumulated charged cost (e.g. ``machine.time``).
Engines open a span around each scheduler phase (a round, a PACK, a
delivery sort, ...); the span's **cost** is the clock delta between open
and close, and its **self cost** is that delta minus the cost of its
child spans.  Self costs are attributed to *phase categories* (a span
without a category inherits its parent's), so summing the per-category
totals partitions the engine's total charged time — this is the
invariant the breakdown tests pin down.

Design constraints, in order:

1. Opening/closing a span in ``phases`` mode must cost a handful of
   Python operations — the engines open spans inside their innermost
   scheduler loops, and the charged-cost accounting must not slow down
   measurably when profiling is off.  Hot paths therefore use the
   explicit :meth:`Tracer.open` / :meth:`Tracer.close` pair; the
   :meth:`Tracer.span` context manager is sugar over them.
2. ``full`` mode records a :class:`SpanRecord` per span (bounded by
   ``max_spans``) carrying enough structure (index/parent/depth) to
   rebuild the tree for export and profiling.
3. :data:`NULL_TRACER` must make the entire layer disappear: every
   method is a no-op and no state is kept.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = [
    "SpanRecord",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "OTHER",
    "tag_spans",
    "merge_span_lists",
]

#: category that uncategorized root-level self cost is attributed to
OTHER = "other"


@dataclass
class SpanRecord:
    """One closed span: tree position, clock interval, attributed costs."""

    index: int
    parent: int  #: index of the enclosing span, or -1 for a root span
    depth: int
    name: str
    category: str  #: effective phase category (inherited when not given)
    start: float  #: clock value when the span opened
    end: float = 0.0  #: clock value when the span closed
    cost: float = 0.0  #: end - start
    self_cost: float = 0.0  #: cost minus the cost of child spans
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "index": self.index,
            "parent": self.parent,
            "depth": self.depth,
            "name": self.name,
            "category": self.category,
            "start": self.start,
            "end": self.end,
            "cost": self.cost,
            "self_cost": self.self_cost,
        }
        if self.attrs:
            doc["attrs"] = self.attrs
        return doc

    @classmethod
    def from_json(cls, doc: dict[str, Any]) -> "SpanRecord":
        return cls(
            index=doc["index"],
            parent=doc["parent"],
            depth=doc["depth"],
            name=doc["name"],
            category=doc["category"],
            start=doc["start"],
            end=doc["end"],
            cost=doc["cost"],
            self_cost=doc["self_cost"],
            attrs=doc.get("attrs", {}),
        )


def tag_spans(spans: list[SpanRecord], worker: Any) -> list[SpanRecord]:
    """Mark every span with the worker that produced it (in place).

    Fan-out consumers (the parallel sweep runner) collect span lists from
    worker processes; tagging keeps provenance visible after the lists
    are merged.  Returns ``spans`` for chaining.
    """
    for span in spans:
        span.attrs["worker"] = worker
    return spans


def merge_span_lists(lists: list[list[SpanRecord]]) -> list[SpanRecord]:
    """Deterministically concatenate per-worker span lists into one.

    Each input list is a self-contained span forest over its worker's own
    charged-cost clock; merging re-indexes spans (``index``/``parent``
    shifted by the running offset) so the result is again a valid forest,
    in input order.  Clock values are left untouched — spans from
    different workers measure different clocks, which is why consumers
    tag them (:func:`tag_spans`) rather than splicing the timelines.
    """
    merged: list[SpanRecord] = []
    for spans in lists:
        offset = len(merged)
        for span in spans:
            merged.append(
                SpanRecord(
                    index=span.index + offset,
                    parent=span.parent + offset if span.parent >= 0 else -1,
                    depth=span.depth,
                    name=span.name,
                    category=span.category,
                    start=span.start,
                    end=span.end,
                    cost=span.cost,
                    self_cost=span.self_cost,
                    attrs=dict(span.attrs),
                )
            )
    return merged


class _SpanContext:
    """Context-manager sugar over ``Tracer.open``/``Tracer.close``."""

    __slots__ = ("tracer", "name", "category", "attrs")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        category: str | None,
        attrs: dict[str, Any] | None,
    ):
        self.tracer = tracer
        self.name = name
        self.category = category
        self.attrs = attrs

    def __enter__(self) -> None:
        self.tracer.open(self.name, self.category, self.attrs)

    def __exit__(self, *exc) -> None:
        self.tracer.close()


class Tracer:
    """Span emitter bound to a charged-cost clock.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the engine's accumulated
        charged cost.  Spans measure deltas of this clock, so wall time
        never enters the picture — traces are deterministic.
    record:
        Keep a :class:`SpanRecord` per span (``full`` mode).  Off by
        default: only per-category totals are aggregated.
    max_spans:
        Recording stops (aggregation continues) once this many spans
        have been stored, bounding trace memory on huge runs.
    """

    enabled = True

    def __init__(
        self,
        clock: Callable[[], float],
        record: bool = False,
        max_spans: int = 1 << 20,
    ):
        self.clock = clock
        self.record = record
        self.max_spans = max_spans
        self.spans: list[SpanRecord] = []
        #: per-category self-cost totals (the breakdown substrate)
        self.totals: dict[str, float] = {}
        #: per-category span counts
        self.counts: dict[str, int] = {}
        # frame: [name, effective_category, start, child_cost, record_index]
        self._stack: list[list] = []
        self._truncated = 0

    # ----------------------------------------------------------- span API
    def span(
        self,
        name: str,
        category: str | None = None,
        attrs: dict[str, Any] | None = None,
    ) -> _SpanContext:
        """``with tracer.span("COMPUTE", "compute"): ...``"""
        return _SpanContext(self, name, category, attrs)

    def open(
        self,
        name: str,
        category: str | None = None,
        attrs: dict[str, Any] | None = None,
    ) -> None:
        """Open a span; hot-path form (pair with :meth:`close`)."""
        stack = self._stack
        if category is None and stack:
            category = stack[-1][1]
        now = self.clock()
        index = -1
        if self.record:
            if len(self.spans) < self.max_spans:
                index = len(self.spans)
                self.spans.append(
                    SpanRecord(
                        index=index,
                        parent=stack[-1][4] if stack else -1,
                        depth=len(stack),
                        name=name,
                        category=category if category is not None else OTHER,
                        start=now,
                        attrs=attrs or {},
                    )
                )
            else:
                self._truncated += 1
        stack.append([name, category, now, 0.0, index])

    def add_leaf(self, name: str, category: str, start: float, end: float) -> None:
        """Record a childless span in one call — hottest-path form.

        Exactly equivalent to ``open(name, category)`` with the clock at
        ``start`` followed by ``close()`` with the clock at ``end`` and no
        children opened in between: same totals, same counts, same parent
        child-cost attribution, same recorded span (in ``full`` mode), all
        computed with the identical float arithmetic.  Engines use it
        around their innermost charging blocks, where the open/close pair
        itself shows up in wall-clock profiles.
        """
        cost = end - start
        self.totals[category] = self.totals.get(category, 0.0) + cost
        self.counts[category] = self.counts.get(category, 0) + 1
        stack = self._stack
        if stack:
            stack[-1][3] += cost
        if self.record:
            if len(self.spans) < self.max_spans:
                index = len(self.spans)
                self.spans.append(
                    SpanRecord(
                        index=index,
                        parent=stack[-1][4] if stack else -1,
                        depth=len(stack),
                        name=name,
                        category=category,
                        start=start,
                        end=end,
                        cost=cost,
                        self_cost=cost,
                    )
                )
            else:
                self._truncated += 1

    def close(self) -> None:
        """Close the innermost open span, attributing its self cost."""
        frame = self._stack.pop()
        category, start, child_cost, index = frame[1], frame[2], frame[3], frame[4]
        now = self.clock()
        cost = now - start
        self_cost = cost - child_cost
        key = category if category is not None else OTHER
        self.totals[key] = self.totals.get(key, 0.0) + self_cost
        self.counts[key] = self.counts.get(key, 0) + 1
        if self._stack:
            self._stack[-1][3] += cost
        if index >= 0:
            rec = self.spans[index]
            rec.end = now
            rec.cost = cost
            rec.self_cost = self_cost

    # ------------------------------------------------------------ queries
    def phase_totals(self, drop_empty_other: bool = True) -> dict[str, float]:
        """Per-category self-cost totals; their sum is the traced time.

        ``OTHER`` collects uncategorized root-level self cost; it is
        dropped when zero (engines that categorize every charge never
        show it).
        """
        totals = dict(self.totals)
        if drop_empty_other and totals.get(OTHER) == 0.0:
            del totals[OTHER]
        return totals

    @property
    def truncated_spans(self) -> int:
        """Spans aggregated but not recorded (``max_spans`` exceeded)."""
        return self._truncated

    def assert_closed(self) -> None:
        """Raise if any span is still open (engine bookkeeping bug)."""
        if self._stack:
            names = " > ".join(frame[0] for frame in self._stack)
            raise AssertionError(f"unclosed spans at end of run: {names}")


class NullTracer:
    """No-op tracer: the disabled end of the observability layer."""

    enabled = False
    record = False
    spans: list[SpanRecord] = []
    totals: dict[str, float] = {}
    counts: dict[str, int] = {}
    truncated_spans = 0

    _NULL_CONTEXT = None  # set after class creation

    def span(
        self,
        name: str,
        category: str | None = None,
        attrs: dict[str, Any] | None = None,
    ):
        return self._NULL_CONTEXT

    def open(
        self,
        name: str,
        category: str | None = None,
        attrs: dict[str, Any] | None = None,
    ) -> None:
        pass

    def close(self) -> None:
        pass

    def add_leaf(self, name: str, category: str, start: float, end: float) -> None:
        pass

    def phase_totals(self, drop_empty_other: bool = True) -> dict[str, float]:
        return {}

    def assert_closed(self) -> None:
        pass


class _NullContext:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> None:
        return None


NullTracer._NULL_CONTEXT = _NullContext()

#: shared no-op tracer instance
NULL_TRACER = NullTracer()
