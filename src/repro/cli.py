"""Command-line interface: run programs through the engines from a shell.

::

    python -m repro run sort --v 64 --f x^0.5 --engine all
    python -m repro touch --n 65536 --f log
    python -m repro list

``run`` executes one of the bundled D-BSP programs on the chosen engine(s)
and prints the charged costs plus, for simulations, the slowdown against
the direct D-BSP run.  ``touch`` contrasts Fact 1 and Fact 2 at a given
size.  ``list`` enumerates programs and access functions.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.algorithms.convolution import convolution_program
from repro.algorithms.fft import fft_dag_program, fft_recursive_program
from repro.algorithms.listranking import list_ranking_program
from repro.algorithms.matmul import matmul_program
from repro.algorithms.primitives import (
    broadcast_program,
    prefix_sums_program,
    reduce_program,
)
from repro.algorithms.sorting import bitonic_sort_program
from repro.bt.machine import BTMachine
from repro.bt.touching import bt_touch_all, bt_touching_bound
from repro.dbsp.machine import DBSPMachine
from repro.functions import (
    AccessFunction,
    ConstantAccess,
    LinearAccess,
    LogarithmicAccess,
    PolynomialAccess,
    StaircaseAccess,
)
from repro.hmm.algorithms import hmm_touching_bound
from repro.hmm.machine import HMMMachine
from repro.hmm.touching import hmm_touch_all
from repro.sim.brent import BrentSimulator
from repro.sim.bt_sim import BTSimulator
from repro.sim.hmm_sim import HMMSimulator
from repro.testing import random_program

__all__ = ["main", "parse_access_function", "PROGRAMS"]

PROGRAMS: dict[str, tuple[Callable[..., object], str]] = {
    "sort": (bitonic_sort_program, "bitonic n-sorting (Prop. 9)"),
    "fft-dag": (fft_dag_program, "n-DFT, straight DAG schedule (Prop. 8)"),
    "fft-rec": (fft_recursive_program, "n-DFT, recursive schedule (Prop. 8)"),
    "matmul": (matmul_program, "n-MM, recursive quadrants (Prop. 7, Fig. 3)"),
    "broadcast": (broadcast_program, "tree broadcast from P0"),
    "reduce": (reduce_program, "tree reduction to P0"),
    "prefix": (prefix_sums_program, "Hillis-Steele prefix sums (locality-free)"),
    "listrank": (list_ranking_program, "pointer-jumping list ranking"),
    "conv": (convolution_program, "polynomial multiplication via FFT"),
    "random": (random_program, "pseudo-random mixing program"),
}

FUNCTION_HELP = (
    "x^A (0<A<1, e.g. x^0.5) | log | const | linear | staircase"
)


def parse_access_function(spec: str) -> AccessFunction:
    """Parse an access-function spec like ``x^0.5`` or ``log``."""
    spec = spec.strip().lower()
    if spec in ("log", "log x", "logx"):
        return LogarithmicAccess()
    if spec in ("const", "constant", "1", "ram"):
        return ConstantAccess()
    if spec in ("linear", "x"):
        return LinearAccess()
    if spec == "staircase":
        return StaircaseAccess()
    if spec.startswith("x^"):
        try:
            return PolynomialAccess(float(spec[2:]))
        except ValueError as exc:
            raise argparse.ArgumentTypeError(str(exc)) from None
    raise argparse.ArgumentTypeError(
        f"unknown access function {spec!r}; expected {FUNCTION_HELP}"
    )


def _build_program(name: str, v: int, mu: int):
    if name not in PROGRAMS:
        raise SystemExit(
            f"unknown program {name!r}; try: {', '.join(sorted(PROGRAMS))}"
        )
    builder, _ = PROGRAMS[name]
    try:
        return builder(v, mu=mu)
    except ValueError as exc:
        raise SystemExit(f"cannot build {name} with v={v}, mu={mu}: {exc}")


def cmd_list(_args) -> int:
    print("programs:")
    for name, (_b, desc) in sorted(PROGRAMS.items()):
        print(f"  {name:10s} {desc}")
    print(f"\naccess functions: {FUNCTION_HELP}")
    print("engines: direct | hmm | bt | brent | all")
    return 0


def cmd_run(args) -> int:
    f = args.f
    program = _build_program(args.program, args.v, args.mu)
    print(f"program: {program.name}  (v={args.v}, mu={args.mu}, "
          f"{len(program)} supersteps)")
    print(f"access/bandwidth function: {f.name}\n")

    guest = DBSPMachine(f).run(program.with_global_sync())
    print(f"{'direct D-BSP':14s} T = {guest.total_time:14.1f}")
    engines = ([args.engine] if args.engine != "all"
               else ["hmm", "bt", "brent"])
    if args.engine == "direct":
        engines = []
    for engine in engines:
        if engine == "hmm":
            res = HMMSimulator(f).simulate(program)
            extra = f"rounds={res.rounds}"
        elif engine == "bt":
            res = BTSimulator(f).simulate(program)
            extra = f"block transfers={res.block_transfers}"
        elif engine == "brent":
            v_host = args.v_host or max(1, args.v // 4)
            res = BrentSimulator(f, v_host=v_host).simulate(program)
            extra = f"v'={v_host}"
        else:
            raise SystemExit(f"unknown engine {engine!r}")
        slowdown = res.time / guest.total_time if guest.total_time else 0.0
        print(f"{engine:14s} T = {res.time:14.1f}  "
              f"slowdown = {slowdown:10.1f}  ({extra})")
    return 0


def cmd_report(args) -> int:
    import pathlib

    from repro.analysis.report import build_report

    text = build_report(args.results)
    out = pathlib.Path(args.output)
    out.write_text(text)
    print(f"wrote {out} ({len(text.splitlines())} lines)")
    return 0


def cmd_touch(args) -> int:
    f, n = args.f, args.n
    hmm = HMMMachine(f, n)
    hmm.mem[:n] = [1] * n
    hmm_cost = hmm_touch_all(hmm, n)
    bt = BTMachine(f, 2 * n)
    bt.mem[n : 2 * n] = [1] * n
    bt_cost = bt_touch_all(bt, n)
    print(f"touching n = {n} cells, f = {f.name}")
    print(f"  HMM: {hmm_cost:14.1f}   (Fact 1: ~ n f(n) "
          f"= {hmm_touching_bound(f, n):.1f})")
    print(f"  BT : {bt_cost:14.1f}   (Fact 2: ~ n f*(n) "
          f"= {bt_touching_bound(f, n):.1f})")
    print(f"  block transfer wins by {hmm_cost / bt_cost:.1f}x")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Operational D-BSP / HMM / BT machine models and the "
            "simulation schemes of 'Translating Submachine Locality into "
            "Locality of Reference' (IPDPS 2004)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list programs, functions, engines")
    p_list.set_defaults(func=cmd_list)

    p_run = sub.add_parser("run", help="run a program through engines")
    p_run.add_argument("program", help=f"one of: {', '.join(sorted(PROGRAMS))}")
    p_run.add_argument("--v", type=int, default=64,
                       help="number of D-BSP processors (power of two)")
    p_run.add_argument("--mu", type=int, default=8,
                       help="context size in words")
    p_run.add_argument("--f", type=parse_access_function, default="x^0.5",
                       help=f"access function: {FUNCTION_HELP}")
    p_run.add_argument("--engine", default="all",
                       choices=["direct", "hmm", "bt", "brent", "all"])
    p_run.add_argument("--v-host", type=int, default=None,
                       help="host width for the brent engine (default v/4)")
    p_run.set_defaults(func=cmd_run)

    p_touch = sub.add_parser("touch", help="Fact 1 vs Fact 2 at one size")
    p_touch.add_argument("--n", type=int, default=1 << 16)
    p_touch.add_argument("--f", type=parse_access_function, default="x^0.5")
    p_touch.set_defaults(func=cmd_touch)

    p_report = sub.add_parser(
        "report", help="collate benchmark result tables into REPORT.md"
    )
    p_report.add_argument("--results", default="benchmarks/results",
                          help="directory holding the *.txt result tables")
    p_report.add_argument("--output", default="REPORT.md")
    p_report.set_defaults(func=cmd_report)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
