"""Command-line interface: run programs through the engines from a shell.

::

    python -m repro run sort --v 64 --f x^0.5 --engine all
    python -m repro run sort --v 64 --engine hmm --jobs 4
    python -m repro profile sort --v 64 --f x^0.5 --engine bt
    python -m repro touch --n 65536 --f log
    python -m repro touch --sweep 4096,16384,65536 --jobs 4
    python -m repro bench --smoke
    python -m repro bench --jobs 4
    python -m repro bench --distribute --jobs 4 --checkpoint bench.ledger
    python -m repro bench --distribute --jobs 4 --resume bench.ledger
    python -m repro serve --port 8173 --jobs 2 --checkpoint cache.ledger
    python -m repro serve --port 8173 --jobs 2 --jobs-dir jobs/
    python -m repro serve --port 8173 --shards 2 --shard-dir shards/
    python -m repro calibrate --output CALIBRATION.json
    python -m repro serve --port 8173 --calibration CALIBRATION.json
    python -m repro loadgen --url http://127.0.0.1:8173 --smoke
    python -m repro loadgen --job-mode --smoke
    python -m repro loadgen --open-loop --smoke
    python -m repro loadgen --plan-mode --smoke
    python -m repro list
    python -m repro --version

``run`` executes one of the bundled D-BSP programs on the chosen engine(s)
and prints the charged costs plus, for simulations, the slowdown against
the direct D-BSP run.  ``profile`` runs one engine with full tracing and
renders the span tree as a per-phase cost profile.  ``touch`` contrasts
Fact 1 and Fact 2 at a given size.  ``bench`` measures wall-clock engine
throughput (charged words per second) over the fixed workload matrix and
writes ``BENCH_sim_throughput.json``; ``--check`` compares a fresh run
against a recorded baseline.  ``--checkpoint LEDGER`` records every
completed sweep cell to an append-only ledger and ``--resume LEDGER``
replays it after an interruption, recomputing only the missing cells —
the resumed document's charged costs are byte-identical to an
uninterrupted run's (``bench`` and ``touch --sweep`` both take the
pair).  ``serve`` exposes the engines over HTTP under a versioned
``/v1`` surface (``POST /v1/run``, ``POST /v1/batch``, the
``/v1/jobs`` async-sweep lifecycle, ``GET /v1/healthz``,
``GET /v1/metrics``) with a content-addressed result cache,
single-flight coalescing and 429 backpressure; ``--jobs-dir`` enables
background sweep jobs that checkpoint per cell and are resumed by a
restarted server; ``--shards N`` runs the sharded tier instead — N
shard processes (consistent hashing on the content key, one
ledger-backed cache each) behind a health-probing failover router.
``calibrate`` fits per-host cost-model curves against the closed-form
bounds and writes a versioned calibration profile; ``serve
--calibration PROFILE`` loads it to answer ``POST /v1/plan``,
auto-select engines, and gate admission on predicted charged cost
(per-tenant token buckets keyed by the ``X-Tenant`` header plus a
global in-flight ceiling — see ``docs/planner.md``).
``loadgen`` drives a server with a closed-loop
hot/cold client mix and writes ``BENCH_service_throughput.json``
(``--job-mode`` measures batch-job interference and restart-resume
identity; ``--open-loop`` runs the sharded-tier bench — scaling rows,
Poisson-arrival tail-latency phases, a shard-kill fault run — and
writes ``BENCH_service_shard.json``; ``--plan-mode`` runs the
planner bench — prediction accuracy plus the adversarial
cheap/enormous admission comparison — and writes
``BENCH_service_plan.json``).  ``list``
enumerates programs and access functions.  ``run``, ``profile``,
``touch``, ``bench`` and ``loadgen`` all take ``--json`` for
machine-readable output, and ``--version`` prints the package version.

All commands are thin shells over the engine registry
(:mod:`repro.engines`): they build a program, pick an engine from
:data:`~repro.engines.ENGINES`, and format the resulting
:class:`~repro.engines.EngineResult`.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.bt.machine import BTMachine
from repro.bt.touching import bt_touch_all, bt_touching_bound
from repro.engines import (
    ENGINES,
    FUNCTION_HELP,
    PROGRAMS,
    build_program,
    resolve_access_function,
)
from repro.functions import AccessFunction
from repro.hmm.algorithms import hmm_touching_bound
from repro.hmm.machine import HMMMachine
from repro.hmm.touching import hmm_touch_all
from repro.obs.export import render_profile, spans_to_jsonl

__all__ = ["main", "parse_access_function", "PROGRAMS"]


def parse_access_function(spec: str) -> AccessFunction:
    """Argparse adapter around :func:`repro.engines.resolve_access_function`."""
    try:
        return resolve_access_function(spec)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _build_program(name: str, v: int, mu: int):
    if name not in PROGRAMS:
        raise SystemExit(
            f"unknown program {name!r}; try: {', '.join(sorted(PROGRAMS))}"
        )
    try:
        return build_program(name, v, mu)
    except ValueError as exc:
        raise SystemExit(f"cannot build {name} with v={v}, mu={mu}: {exc}")


def _engine_opts(engine: str, args) -> dict:
    opts: dict = {}
    if engine == "brent":
        opts["v_host"] = args.v_host or max(1, args.v // 4)
    jobs = getattr(args, "jobs", None)
    if jobs and jobs > 1 and engine in ("hmm", "vec", "brent"):
        opts["parallel"] = jobs
    return opts


def _dump_json(doc) -> None:
    print(json.dumps(doc, indent=2, sort_keys=True))


def _open_ledger(args):
    """Open the sweep ledger requested by ``--checkpoint``/``--resume``.

    ``--checkpoint PATH`` starts a fresh ledger (truncating any old
    file); ``--resume PATH`` loads an existing one — completed cells are
    skipped and new ones keep appending to the same file, so a run can
    be killed and resumed any number of times.
    """
    from repro.resilience.ledger import SweepLedger

    checkpoint = getattr(args, "checkpoint", None)
    resume = getattr(args, "resume", None)
    if checkpoint and resume:
        raise SystemExit("--checkpoint and --resume are mutually exclusive")
    try:
        if resume:
            return SweepLedger.resume(resume)
        if checkpoint:
            return SweepLedger.create(checkpoint)
    except OSError as exc:
        raise SystemExit(f"cannot open ledger: {exc}")
    return None


def cmd_list(_args) -> int:
    print("programs:")
    for name, (_b, desc) in sorted(PROGRAMS.items()):
        print(f"  {name:10s} {desc}")
    print(f"\naccess functions: {FUNCTION_HELP}")
    print("engines: direct | hmm | vec | bt | brent | all")
    return 0


def _engine_extra(res) -> str:
    if res.engine in ("hmm", "vec"):
        return f"rounds={res.counters.get('rounds', 0)}"
    if res.engine == "bt":
        return f"block transfers={res.counters.get('block_transfers', 0)}"
    if res.engine == "brent":
        return f"v'={res.meta.get('v_host')}"
    return ""


def cmd_run(args) -> int:
    f = args.f
    program = _build_program(args.program, args.v, args.mu)
    if args.engine == "direct":
        engines: list[str] = []
    elif args.engine == "all":
        engines = ["hmm", "vec", "bt", "brent"]
    else:
        engines = [args.engine]

    direct = ENGINES["direct"].run(program, f)
    results = []
    for engine in engines:
        res = ENGINES[engine].run(program, f, **_engine_opts(engine, args))
        res.baseline_time = direct.time
        res.slowdown = res.time / direct.time if direct.time > 0 else None
        results.append(res)

    if args.json:
        _dump_json({
            "program": program.name,
            "v": args.v,
            "mu": args.mu,
            "f": f.name,
            "supersteps": len(program),
            "direct": direct.to_json(include_trace=False),
            "engines": {
                res.engine: res.to_json(include_trace=False)
                for res in results
            },
        })
        return 0

    print(f"program: {program.name}  (v={args.v}, mu={args.mu}, "
          f"{len(program)} supersteps)")
    print(f"access/bandwidth function: {f.name}\n")
    print(f"{'direct D-BSP':14s} T = {direct.time:14.1f}")
    for res in results:
        slowdown = (f"{res.slowdown:10.1f}" if res.slowdown is not None
                    else f"{'n/a':>10s}")
        print(f"{res.engine:14s} T = {res.time:14.1f}  "
              f"slowdown = {slowdown}  ({_engine_extra(res)})")
    return 0


def cmd_profile(args) -> int:
    f = args.f
    program = _build_program(args.program, args.v, args.mu)
    res = ENGINES[args.engine].run(
        program, f, trace="full", **_engine_opts(args.engine, args)
    )

    from repro.resilience import recovery

    if args.jsonl:
        out = pathlib.Path(args.jsonl)
        # recovery events ride along as extra lines (no "index" key, so
        # spans_from_jsonl skips them when re-reading the trace)
        events = recovery.events()
        text = spans_to_jsonl(res.trace)
        if text and not text.endswith("\n"):
            text += "\n"
        text += "".join(
            json.dumps(ev, sort_keys=True) + "\n" for ev in events
        )
        try:
            out.write_text(text)
        except OSError as exc:
            raise SystemExit(f"cannot write trace to {out}: {exc}")
        if not args.json:
            extra = f" + {len(events)} recovery event(s)" if events else ""
            print(f"wrote {len(res.trace)} spans{extra} to {out}")

    if args.json:
        _dump_json(res.to_json(include_trace=not args.jsonl))
        return 0

    title = (f"{args.engine}: {program.name} "
             f"(v={args.v}, mu={args.mu}, f={f.name})")
    print(render_profile(res.trace, total=res.time, title=title))
    if res.breakdown:
        print("\nphase breakdown:")
        for phase, cost in sorted(
            res.breakdown.items(), key=lambda kv: -kv[1]
        ):
            share = 100.0 * cost / res.time if res.time > 0 else 0.0
            print(f"  {phase:12s} {cost:16.1f}  {share:5.1f}%")
    if res.counters:
        print("\ncounters:")
        for name, value in res.counters.items():
            print(f"  {name:16s} {value:>16}")
    rec = recovery.counters()
    if rec:
        print("\nrecovery (host-side, never charged):")
        for name, value in rec.items():
            print(f"  {name:20s} {value:>12}")
    return 0


def cmd_report(args) -> int:
    from repro.analysis.report import build_report

    text = build_report(args.results)
    out = pathlib.Path(args.output)
    out.write_text(text)
    print(f"wrote {out} ({len(text.splitlines())} lines)")
    return 0


def _bench_dag(args) -> int:
    """The ``bench --dag`` matrix: charged scheduling costs, not wall."""
    from repro.dag.bench import (
        check_dag_against,
        run_dag_bench,
        write_dag_bench,
    )

    for flag in ("distribute", "checkpoint", "resume", "only"):
        if getattr(args, flag, None):
            raise SystemExit(
                f"--{flag} applies to the wall-clock matrix; the --dag "
                f"matrix is charged-cost only (fast and deterministic)"
            )
    echo = None if args.json else print
    if echo:
        mode = "smoke engines" if args.smoke else "all engines"
        echo(f"benchmarking DAG scheduling heuristics ({mode}, "
             f"charged costs — deterministic)")
    doc = run_dag_bench(smoke=args.smoke, echo=echo)
    if args.check:
        try:
            baseline = json.loads(pathlib.Path(args.check).read_text())
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot read baseline {args.check}: {exc}")
        try:
            problems = check_dag_against(doc, baseline)
        except ValueError as exc:
            raise SystemExit(str(exc))
        if args.output:
            write_dag_bench(args.output, doc)
        if problems:
            for p in problems:
                print(f"REGRESSION: {p}", file=sys.stderr)
            return 1
        if echo:
            echo(f"no regressions vs {args.check} (exact charged-cost "
                 f"comparison)")
        return 0
    if args.json:
        _dump_json(doc)
    out = args.output or "BENCH_sim_dag.json"
    write_dag_bench(out, doc)
    if echo:
        echo(f"\nwrote {out}")
        echo(f"{'workload':28s} {'greedy msgs':>12s} {'locality msgs':>14s}")
        for name, wl in doc["workloads"].items():
            g = wl["heuristics"].get("greedy", {})
            loc = wl["heuristics"].get("locality", {})
            echo(f"{name:28s} {g.get('messages', 0):>12d} "
                 f"{loc.get('messages', 0):>14d}")
    problems = check_dag_against(doc, doc)
    for p in problems:
        print(f"GUARDRAIL: {p}", file=sys.stderr)
    return 1 if problems else 0


def cmd_bench(args) -> int:
    from repro.bench import WORKLOADS, check_against, run_bench, write_bench

    if args.dag:
        return _bench_dag(args)
    workloads = WORKLOADS
    if args.only:
        workloads = tuple(
            w for w in WORKLOADS
            if args.only in w.name or args.only in w.program
        )
        if not workloads:
            raise SystemExit(
                f"--only {args.only!r} matches no workload; have: "
                f"{', '.join(w.name for w in WORKLOADS)}"
            )
    echo = None if args.json else print
    if echo:
        mode = "smoke matrix" if args.smoke else "full matrix"
        extra = f", jobs={args.jobs}" if args.jobs > 1 else ""
        extra += ", distributed" if args.distribute else ""
        if args.only:
            extra += f", only '{args.only}'"
        echo(f"benchmarking simulator wall-clock throughput ({mode}, "
             f"budget {args.budget:g}s/workload{extra})")
    ledger = _open_ledger(args)
    try:
        if args.distribute:
            from repro.parallel.sweep import run_matrix_distributed

            doc = run_matrix_distributed(
                workloads=workloads,
                budget_s=args.budget, smoke=args.smoke,
                parallel=args.jobs, echo=echo, ledger=ledger,
            )
        else:
            doc = run_bench(budget_s=args.budget, smoke=args.smoke, echo=echo,
                            workloads=workloads, jobs=args.jobs, ledger=ledger)
    finally:
        if ledger is not None:
            ledger.close()
    if ledger is not None and echo:
        echo(f"checkpoint {ledger.path}: {ledger.hits} cell(s) resumed, "
             f"{ledger.cells_recorded} recorded")

    if args.check:
        try:
            baseline = json.loads(pathlib.Path(args.check).read_text())
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot read baseline {args.check}: {exc}")
        problems = check_against(doc, baseline, tolerance=args.tolerance)
        if args.output:
            write_bench(args.output, doc)
        if problems:
            for p in problems:
                print(f"REGRESSION: {p}", file=sys.stderr)
            return 1
        if echo:
            echo(f"no regressions vs {args.check} "
                 f"(tolerance {args.tolerance:g}x)")
        return 0

    if args.json:
        _dump_json(doc)
    out = args.output or "BENCH_sim_throughput.json"
    write_bench(out, doc)
    if echo:
        echo(f"\nwrote {out}")
        echo(f"{'workload':16s} {'peak':>9s} {'best words/s':>14s} "
             f"{'best rounds/s':>14s}")
        for name, wl in doc["workloads"].items():
            words = wl["best_charged_words_per_s"]
            rounds = wl["best_rounds_per_s"]
            echo(f"{name:16s} {wl['peak'] or 0:>9d} "
                 f"{words or 0:>14,.0f} "
                 f"{rounds or 0:>14,.0f}")
    return 0


def cmd_calibrate(args) -> int:
    from repro.analysis.predict import (
        CalibrationProfile,
        calibrate_profile,
        write_profile,
    )

    echo = None if args.json else print
    if echo:
        mode = "smoke grid" if args.smoke else "full grid"
        echo(f"calibrating the cost model on this host ({mode}, "
             f"mu={args.mu}, f={args.f}, best of {args.repeats} repeat(s))")
    try:
        doc = calibrate_profile(
            mu=args.mu,
            f=args.f,
            repeats=args.repeats,
            smoke=args.smoke,
            echo=echo,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    CalibrationProfile(doc)  # self-check: the file we write must load
    if args.json:
        _dump_json(doc)
        return 0
    write_profile(args.output, doc)
    if echo:
        echo(f"\nwrote {args.output} ({len(doc['models'])} engine/program "
             f"model(s) over v={doc['v_grid']})")
        echo(f"serve with:  python -m repro serve --calibration "
             f"{args.output}")
    return 0


def _budget_args(args) -> dict:
    out = {}
    if args.tenant_capacity is not None:
        out["tenant_capacity"] = args.tenant_capacity
    if args.tenant_refill is not None:
        out["tenant_refill"] = args.tenant_refill
    if args.cost_ceiling is not None:
        out["cost_ceiling"] = args.cost_ceiling
    return out


def cmd_serve(args) -> int:
    if args.calibration is None and _budget_args(args):
        raise SystemExit(
            "--tenant-capacity/--tenant-refill/--cost-ceiling configure the "
            "cost-model planner; pass --calibration PROFILE to enable it"
        )
    if args.shards > 1:
        if args.checkpoint or args.resume:
            raise SystemExit(
                "--shards manages one ledger per shard under --shard-dir; "
                "--checkpoint/--resume apply to the single-process server"
            )
        from repro.service.shard import serve_sharded

        return serve_sharded(
            host=args.host,
            port=args.port,
            shards=args.shards,
            shard_dir=args.shard_dir,
            cache_capacity=args.cache_capacity,
            queue_limit=args.queue_limit,
            jobs=args.jobs,
            jobs_dir=args.jobs_dir,
            calibration=args.calibration,
            budget_args=_budget_args(args),
        )
    from repro.service.server import serve

    planner = None
    if args.calibration is not None:
        from repro.service.planner import planner_from_profile

        budgets = _budget_args(args)
        if "tenant_refill" in budgets:
            budgets["tenant_refill_per_s"] = budgets.pop("tenant_refill")
        try:
            planner = planner_from_profile(
                args.calibration, service_jobs=args.jobs, **budgets
            )
        except ValueError as exc:
            raise SystemExit(str(exc))
    ledger = _open_ledger(args)
    try:
        return serve(
            host=args.host,
            port=args.port,
            cache_capacity=args.cache_capacity,
            queue_limit=args.queue_limit,
            jobs=args.jobs,
            ledger=ledger,
            jobs_dir=args.jobs_dir,
            planner=planner,
        )
    finally:
        if ledger is not None:
            ledger.close()


def cmd_loadgen(args) -> int:
    from repro.service.loadgen import (
        check_plan_against,
        check_service_against,
        check_shard_against,
        run_job_bench,
        run_loadgen,
        run_plan_bench,
        run_shard_bench,
        write_service_bench,
    )

    echo = None if args.json else print
    if args.plan_mode:
        if args.open_loop or args.job_mode:
            raise SystemExit("--plan-mode is exclusive with "
                             "--open-loop/--job-mode")
        if args.url:
            raise SystemExit(
                "--plan-mode boots in-process servers (it compares planner "
                "on/off admission policies); --url is not supported"
            )
        doc = run_plan_bench(
            seed=args.seed,
            smoke=args.smoke,
            calibration=args.calibration,
            echo=echo,
        )
        if args.check:
            try:
                baseline = json.loads(pathlib.Path(args.check).read_text())
            except (OSError, ValueError) as exc:
                raise SystemExit(f"cannot read baseline {args.check}: {exc}")
            try:
                problems = check_plan_against(doc, baseline)
            except ValueError as exc:
                raise SystemExit(str(exc))
            if args.output:
                write_service_bench(args.output, doc)
            if problems:
                for p in problems:
                    print(f"REGRESSION: {p}", file=sys.stderr)
                return 1
            if echo:
                echo(f"no regressions vs {args.check}")
            return 0
        if args.json:
            _dump_json(doc)
        out = args.output or "BENCH_service_plan.json"
        write_service_bench(out, doc)
        if echo:
            echo(f"\nwrote {out}")
        problems = check_plan_against(doc, doc)
        for p in problems:
            print(f"SLO VIOLATION: {p}", file=sys.stderr)
        return 1 if problems else 0
    if args.open_loop:
        if args.job_mode:
            raise SystemExit("--open-loop and --job-mode are exclusive")
        doc = run_shard_bench(
            url=args.url,
            shards=args.shards,
            rate=args.rate,
            duration_s=args.duration,
            concurrency=args.concurrency,
            seed=args.seed,
            smoke=args.smoke,
            echo=echo,
        )
        if args.check:
            try:
                baseline = json.loads(pathlib.Path(args.check).read_text())
            except (OSError, ValueError) as exc:
                raise SystemExit(f"cannot read baseline {args.check}: {exc}")
            try:
                problems = check_shard_against(
                    doc, baseline, tolerance=args.tolerance
                )
            except ValueError as exc:
                raise SystemExit(str(exc))
            if args.output:
                write_service_bench(args.output, doc)
            if problems:
                for p in problems:
                    print(f"REGRESSION: {p}", file=sys.stderr)
                return 1
            if echo:
                echo(f"no regressions vs {args.check} "
                     f"(tolerance {args.tolerance:g}x)")
            return 0
        if args.json:
            _dump_json(doc)
        out = args.output or "BENCH_service_shard.json"
        write_service_bench(out, doc)
        if echo:
            echo(f"\nwrote {out}")
        problems = check_shard_against(doc, doc)
        for p in problems:
            print(f"SLO VIOLATION: {p}", file=sys.stderr)
        return 1 if problems else 0
    if args.job_mode:
        if args.url:
            raise SystemExit(
                "--job-mode runs against in-process servers (it must stop "
                "the job runner mid-job); --url is not supported"
            )
        doc = run_job_bench(
            clients=args.clients,
            requests_per_client=args.requests,
            hot_ratio=args.hot_ratio,
            hot_keys=args.hot_keys,
            seed=args.seed,
            smoke=args.smoke,
            jobs=args.jobs,
            echo=echo,
        )
        if args.json:
            _dump_json(doc)
        out = args.output or "BENCH_service_jobs.json"
        write_service_bench(out, doc)
        if echo:
            echo(f"\nwrote {out}")
        if doc["errors"]:
            print(f"{doc['errors']} request(s) failed", file=sys.stderr)
            return 1
        if not doc["results_identical"]:
            print(
                "resumed job result differs from the uninterrupted run",
                file=sys.stderr,
            )
            return 1
        return 0
    doc = run_loadgen(
        url=args.url,
        clients=args.clients,
        requests_per_client=args.requests,
        hot_ratio=args.hot_ratio,
        hot_keys=args.hot_keys,
        batch=args.batch,
        seed=args.seed,
        smoke=args.smoke,
        jobs=args.jobs,
        echo=echo,
    )

    if args.check:
        try:
            baseline = json.loads(pathlib.Path(args.check).read_text())
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot read baseline {args.check}: {exc}")
        try:
            problems = check_service_against(
                doc, baseline,
                tolerance=args.tolerance,
                min_speedup=args.min_speedup,
            )
        except ValueError as exc:
            raise SystemExit(str(exc))
        if args.output:
            write_service_bench(args.output, doc)
        if problems:
            for p in problems:
                print(f"REGRESSION: {p}", file=sys.stderr)
            return 1
        if echo:
            echo(f"no regressions vs {args.check} "
                 f"(tolerance {args.tolerance:g}x)")
        return 0

    if args.json:
        _dump_json(doc)
    out = args.output or "BENCH_service_throughput.json"
    write_service_bench(out, doc)
    if echo:
        echo(f"\nwrote {out}")
    if doc["errors"]:
        print(f"{doc['errors']} request(s) failed", file=sys.stderr)
        return 1
    if args.min_speedup is not None:
        speedup = doc.get("hot_vs_cold_speedup")
        if not speedup or speedup < args.min_speedup:
            print(
                f"hot/cold speedup {speedup!r} is below the "
                f"{args.min_speedup:g}x floor",
                file=sys.stderr,
            )
            return 1
    return 0


def _dag_spec(args):
    """Resolve the DAG under test: a named workload or a spec file."""
    from repro.algorithms.streaming import STREAMING_WORKLOADS, streaming_spec
    from repro.dag.spec import DagSpec

    if args.spec:
        if args.workload:
            raise SystemExit(
                "pass either a named workload or --spec FILE, not both"
            )
        try:
            doc = json.loads(pathlib.Path(args.spec).read_text())
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot read spec {args.spec}: {exc}")
        try:
            return DagSpec.from_json(doc)
        except ValueError as exc:
            raise SystemExit(f"invalid spec {args.spec}: {exc}")
    if not args.workload:
        raise SystemExit(
            f"name a streaming workload ({', '.join(sorted(STREAMING_WORKLOADS))}) "
            f"or pass --spec FILE"
        )
    params = {}
    for name in ("epochs", "partitions", "chunk"):
        value = getattr(args, name, None)
        if value is not None:
            params[name] = value
    try:
        return streaming_spec(args.workload, **params)
    except ValueError as exc:
        raise SystemExit(str(exc))


def cmd_dag(args) -> int:
    from repro.dag.compile import compile_schedule, reference_values
    from repro.dag.scheduler import HEURISTICS, schedule

    spec = _dag_spec(args)
    try:
        f = resolve_access_function(args.f)
    except ValueError as exc:
        raise SystemExit(str(exc))

    if args.action == "schedule":
        try:
            sched = schedule(spec, args.v, heuristic=args.heuristic)
        except ValueError as exc:
            raise SystemExit(str(exc))
        if args.json:
            doc = sched.to_json()
            doc["cross_volume"] = sched.cross_volume(spec)
            doc["tasks"] = len(spec.tasks)
            doc["total_work"] = spec.total_work()
            doc["total_volume"] = spec.total_volume()
            _dump_json(doc)
            return 0
        print(f"dag: {spec.name}  ({len(spec.tasks)} tasks, "
              f"{len(spec.edges)} edges, work {spec.total_work()}, "
              f"volume {spec.total_volume()})")
        print(f"schedule: {args.heuristic} onto v={args.v}  "
              f"({sched.n_steps} steps, cross-processor volume "
              f"{sched.cross_volume(spec)})")
        by_proc: dict[int, list[str]] = {}
        for task, proc, step in sched.assignment:
            by_proc.setdefault(proc, []).append(f"{task}@{step}")
        for proc in sorted(by_proc):
            tasks = by_proc[proc]
            shown = ", ".join(tasks[:8]) + (
                f", ... ({len(tasks)} total)" if len(tasks) > 8 else ""
            )
            print(f"  p{proc}: {shown}")
        return 0

    if args.action == "compare":
        engine = "direct" if args.engine == "all" else args.engine
        if engine not in ENGINES:
            raise SystemExit(
                f"unknown engine {engine!r}; try: "
                f"{', '.join(sorted(ENGINES))}"
            )
        rows = []
        for heuristic in sorted(HEURISTICS):
            try:
                sched = schedule(spec, args.v, heuristic=heuristic)
            except ValueError as exc:
                raise SystemExit(str(exc))
            program = compile_schedule(spec, sched, mu=args.mu)
            res = ENGINES[engine].run(program, f, trace="counters")
            rows.append({
                "heuristic": heuristic,
                "n_steps": sched.n_steps,
                "cross_volume": sched.cross_volume(spec),
                "supersteps": len(program),
                "messages": res.counters.get("messages", 0),
                "communication": res.breakdown.get("communication", 0.0),
                "time": res.time,
            })
        if args.json:
            _dump_json({
                "dag": spec.name, "v": args.v, "mu": args.mu,
                "f": f.name, "engine": engine, "heuristics": rows,
            })
            return 0
        print(f"dag: {spec.name}  (engine {engine}, v={args.v}, "
              f"mu={args.mu}, f={f.name})")
        print(f"{'heuristic':10s} {'steps':>6s} {'x-volume':>9s} "
              f"{'messages':>9s} {'comm':>14s} {'T':>14s}")
        for row in rows:
            print(f"{row['heuristic']:10s} {row['n_steps']:>6d} "
                  f"{row['cross_volume']:>9d} {row['messages']:>9d} "
                  f"{row['communication']:>14.1f} {row['time']:>14.1f}")
        return 0

    # action == "run": schedule, compile, execute like `repro run`
    try:
        sched = schedule(spec, args.v, heuristic=args.heuristic)
    except ValueError as exc:
        raise SystemExit(str(exc))
    program = compile_schedule(spec, sched, mu=args.mu)
    if args.engine == "direct":
        engines: list[str] = []
    elif args.engine == "all":
        engines = ["hmm", "vec", "bt", "brent"]
    elif args.engine in ENGINES:
        engines = [args.engine]
    else:
        raise SystemExit(
            f"unknown engine {args.engine!r}; try: "
            f"{', '.join(sorted(ENGINES))} or all"
        )
    direct = ENGINES["direct"].run(program, f)
    results = []
    for engine in engines:
        res = ENGINES[engine].run(program, f, **_engine_opts(engine, args))
        res.baseline_time = direct.time
        res.slowdown = res.time / direct.time if direct.time > 0 else None
        results.append(res)
    expected = reference_values(spec)
    computed: dict[str, int] = {}
    for ctx in direct.contexts:
        computed.update(ctx["values"])
    values_ok = computed == dict(expected)
    if args.json:
        _dump_json({
            "dag": spec.name,
            "heuristic": args.heuristic,
            "program": program.name,
            "v": args.v,
            "mu": args.mu,
            "f": f.name,
            "supersteps": len(program),
            "n_steps": sched.n_steps,
            "cross_volume": sched.cross_volume(spec),
            "values_ok": values_ok,
            "direct": direct.to_json(include_trace=False),
            "engines": {
                res.engine: res.to_json(include_trace=False)
                for res in results
            },
        })
        return 0 if values_ok else 1
    print(f"dag: {spec.name}  scheduled {args.heuristic} onto v={args.v} "
          f"({sched.n_steps} steps -> {len(program)} supersteps)")
    print(f"access/bandwidth function: {f.name}")
    check = "values match the sequential reference" if values_ok else \
        "VALUES DIVERGE from the sequential reference"
    print(f"{check}\n")
    print(f"{'direct D-BSP':14s} T = {direct.time:14.1f}")
    for res in results:
        slowdown = (f"{res.slowdown:10.1f}" if res.slowdown is not None
                    else f"{'n/a':>10s}")
        print(f"{res.engine:14s} T = {res.time:14.1f}  "
              f"slowdown = {slowdown}  ({_engine_extra(res)})")
    return 0 if values_ok else 1


def cmd_touch(args) -> int:
    if args.sweep:
        from repro.parallel.sweep import touch_sweep

        try:
            sizes = [int(s) for s in args.sweep.split(",")]
        except ValueError:
            raise SystemExit(
                f"--sweep expects comma-separated sizes, got {args.sweep!r}"
            )
        ledger = _open_ledger(args)
        try:
            doc = touch_sweep(
                sizes, f=args.f, parallel=args.jobs, ledger=ledger
            )
        finally:
            if ledger is not None:
                ledger.close()
        if args.json:
            _dump_json(doc)
            return 0
        if ledger is not None:
            print(f"checkpoint {ledger.path}: {ledger.hits} cell(s) "
                  f"resumed, {ledger.cells_recorded} recorded")
        print(f"touching sweep, f = {doc['f']}")
        print(f"{'n':>10s} {'HMM cost':>14s} {'BT cost':>14s} "
              f"{'BT wins by':>11s}")
        for cell in doc["cells"]:
            adv = cell["bt_advantage"]
            adv_s = f"{adv:>10.1f}x" if adv else f"{'n/a':>11s}"
            print(f"{cell['n']:>10d} {cell['hmm_cost']:>14.1f} "
                  f"{cell['bt_cost']:>14.1f} {adv_s}")
        return 0
    try:
        f = resolve_access_function(args.f)
    except ValueError as exc:
        raise SystemExit(str(exc))
    n = args.n
    hmm = HMMMachine(f, n)
    hmm.mem[:n] = [1] * n
    hmm_cost = hmm_touch_all(hmm, n)
    bt = BTMachine(f, 2 * n)
    bt.mem[n : 2 * n] = [1] * n
    bt_cost = bt_touch_all(bt, n)
    hmm_bound = hmm_touching_bound(f, n)
    bt_bound = bt_touching_bound(f, n)
    if args.json:
        _dump_json({
            "n": n,
            "f": f.name,
            "hmm": {"cost": hmm_cost, "fact1_bound": hmm_bound},
            "bt": {"cost": bt_cost, "fact2_bound": bt_bound},
            "bt_advantage": hmm_cost / bt_cost,
        })
        return 0
    print(f"touching n = {n} cells, f = {f.name}")
    print(f"  HMM: {hmm_cost:14.1f}   (Fact 1: ~ n f(n) "
          f"= {hmm_bound:.1f})")
    print(f"  BT : {bt_cost:14.1f}   (Fact 2: ~ n f*(n) "
          f"= {bt_bound:.1f})")
    print(f"  block transfer wins by {hmm_cost / bt_cost:.1f}x")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Operational D-BSP / HMM / BT machine models and the "
            "simulation schemes of 'Translating Submachine Locality into "
            "Locality of Reference' (IPDPS 2004)."
        ),
    )
    from repro import __version__

    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list programs, functions, engines")
    p_list.set_defaults(func=cmd_list)

    p_run = sub.add_parser("run", help="run a program through engines")
    p_run.add_argument("program", help=f"one of: {', '.join(sorted(PROGRAMS))}")
    p_run.add_argument("--v", type=int, default=64,
                       help="number of D-BSP processors (power of two)")
    p_run.add_argument("--mu", type=int, default=8,
                       help="context size in words")
    p_run.add_argument("--f", type=parse_access_function, default="x^0.5",
                       help=f"access function: {FUNCTION_HELP}")
    p_run.add_argument("--engine", default="all",
                       choices=["direct", "hmm", "vec", "bt", "brent", "all"])
    p_run.add_argument("--v-host", type=int, default=None,
                       help="host width for the brent engine (default v/4)")
    p_run.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the hmm/brent engines "
                            "(charged costs are identical for any value)")
    p_run.add_argument("--json", action="store_true",
                       help="emit a JSON document instead of text")
    p_run.set_defaults(func=cmd_run)

    p_prof = sub.add_parser(
        "profile",
        help="run one engine with full tracing; render the cost profile",
    )
    p_prof.add_argument("program",
                        help=f"one of: {', '.join(sorted(PROGRAMS))}")
    p_prof.add_argument("--v", type=int, default=64,
                        help="number of D-BSP processors (power of two)")
    p_prof.add_argument("--mu", type=int, default=8,
                        help="context size in words")
    p_prof.add_argument("--f", type=parse_access_function, default="x^0.5",
                        help=f"access function: {FUNCTION_HELP}")
    p_prof.add_argument("--engine", default="bt",
                        choices=["direct", "hmm", "vec", "bt", "brent"])
    p_prof.add_argument("--v-host", type=int, default=None,
                        help="host width for the brent engine (default v/4)")
    p_prof.add_argument("--jobs", type=int, default=1,
                        help="worker processes (full tracing pins the run "
                             "serial; kept for flag symmetry with run)")
    p_prof.add_argument("--json", action="store_true",
                        help="emit the full result (trace included) as JSON")
    p_prof.add_argument("--jsonl", metavar="PATH", default=None,
                        help="also export the span trace as JSON lines")
    p_prof.set_defaults(func=cmd_profile)

    p_bench = sub.add_parser(
        "bench",
        help="measure simulator wall-clock throughput (perf trajectory)",
    )
    p_bench.add_argument("--budget", type=float, default=3.0,
                         help="wall-clock budget per workload, seconds")
    p_bench.add_argument("--smoke", action="store_true",
                         help="reduced sweep caps (CI smoke job)")
    p_bench.add_argument("--only", default=None, metavar="SUBSTR",
                         help="run only workloads whose name contains "
                              "SUBSTR (e.g. --only vec, --only sort/)")
    p_bench.add_argument("--output", default=None, metavar="PATH",
                         help="output JSON (default BENCH_sim_throughput.json)")
    p_bench.add_argument("--check", default=None, metavar="BASELINE",
                         help="compare against a recorded run; exit 1 on "
                              "throughput regressions")
    p_bench.add_argument("--tolerance", type=float, default=3.0,
                         help="allowed slow-down factor for --check")
    p_bench.add_argument("--jobs", type=int, default=1,
                         help="worker processes inside each cell's engine "
                              "(hmm/brent); charged costs are unchanged")
    p_bench.add_argument("--distribute", action="store_true",
                         help="run one workload per worker task instead "
                              "(wall clock measured inside each worker)")
    p_bench.add_argument("--checkpoint", default=None, metavar="LEDGER",
                         help="start a fresh cell ledger at this path; "
                              "every completed workload is appended as "
                              "it finishes")
    p_bench.add_argument("--resume", default=None, metavar="LEDGER",
                         help="resume from an interrupted run's ledger: "
                              "completed workloads are replayed verbatim, "
                              "only missing ones run")
    p_bench.add_argument("--json", action="store_true",
                         help="emit the result document to stdout as JSON")
    p_bench.add_argument("--dag", action="store_true",
                         help="run the DAG scheduling matrix instead "
                              "(charged costs, deterministic; writes "
                              "BENCH_sim_dag.json; --check compares "
                              "exactly and enforces the locality-beats-"
                              "greedy guardrail)")
    p_bench.set_defaults(func=cmd_bench)

    p_dag = sub.add_parser(
        "dag",
        help="schedule a task DAG onto D-BSP and run it through engines",
    )
    p_dag.add_argument("action", choices=["run", "schedule", "compare"],
                       help="run: schedule+compile+execute; schedule: "
                            "print the placement; compare: both "
                            "heuristics side by side on one engine")
    p_dag.add_argument("workload", nargs="?", default=None,
                       help="named streaming workload (stream-scan, "
                            "stream-stencil, stream-reduce); omit with "
                            "--spec")
    p_dag.add_argument("--spec", default=None, metavar="FILE",
                       help="JSON DAG spec file instead of a named "
                            "workload")
    p_dag.add_argument("--epochs", type=int, default=None,
                       help="streaming epochs (named workloads)")
    p_dag.add_argument("--partitions", type=int, default=None,
                       help="data partitions per epoch (named workloads)")
    p_dag.add_argument("--chunk", type=int, default=None,
                       help="words per partition (named workloads)")
    p_dag.add_argument("--heuristic", default="locality",
                       choices=["greedy", "locality"],
                       help="scheduling heuristic (run/schedule)")
    p_dag.add_argument("--engine", default="all",
                       help="engine for run (direct|hmm|vec|bt|brent|all) "
                            "or compare (single engine, default direct)")
    p_dag.add_argument("--v", type=int, default=8,
                       help="number of D-BSP processors (power of two)")
    p_dag.add_argument("--mu", type=int, default=8,
                       help="context size in words")
    p_dag.add_argument("--f", default="x^0.5",
                       help=f"access function: {FUNCTION_HELP}")
    p_dag.add_argument("--v-host", type=int, default=None,
                       help="host width for the brent engine (default v/4)")
    p_dag.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the hmm/brent engines "
                            "(charged costs are identical for any value)")
    p_dag.add_argument("--json", action="store_true",
                       help="emit a JSON document instead of text")
    p_dag.set_defaults(func=cmd_dag)

    p_cal = sub.add_parser(
        "calibrate",
        help="fit per-host cost-model curves (bound-anchored power laws) "
             "and write a calibration profile for the serve planner",
    )
    p_cal.add_argument("--output", default="CALIBRATION.json", metavar="PATH",
                       help="profile path (default CALIBRATION.json)")
    p_cal.add_argument("--smoke", action="store_true",
                       help="reduced v grid (CI smoke job; wider error "
                            "bars at large v)")
    p_cal.add_argument("--mu", type=int, default=8,
                       help="words per block for calibration runs")
    p_cal.add_argument("--f", default="x^0.5",
                       help=f"access function: {FUNCTION_HELP}")
    p_cal.add_argument("--repeats", type=int, default=2,
                       help="wall-clock repeats per cell (best-of)")
    p_cal.add_argument("--json", action="store_true",
                       help="emit the profile to stdout instead of --output")
    p_cal.set_defaults(func=cmd_calibrate)

    p_serve = sub.add_parser(
        "serve",
        help="serve the engines over HTTP (cache, coalescing, backpressure)",
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8173,
                         help="TCP port (default 8173; 0 for ephemeral)")
    p_serve.add_argument("--cache-capacity", type=int, default=1024,
                         help="result-cache entries kept in memory (LRU)")
    p_serve.add_argument("--queue-limit", type=int, default=64,
                         help="distinct in-flight computations before 429")
    p_serve.add_argument("--jobs", type=int, default=1,
                         help="worker processes computations dispatch to "
                              "(served charged costs are identical for "
                              "any value)")
    p_serve.add_argument("--checkpoint", default=None, metavar="LEDGER",
                         help="persist every cached result to a fresh "
                              "ledger at this path")
    p_serve.add_argument("--resume", default=None, metavar="LEDGER",
                         help="preload the cache from an existing ledger "
                              "(warm restart) and keep appending to it")
    p_serve.add_argument("--jobs-dir", default=None, metavar="DIR",
                         help="enable the async jobs API (POST /v1/jobs): "
                              "manifests, per-job ledgers and results live "
                              "here, and a restarted server re-adopts and "
                              "resumes incomplete jobs from this directory")
    p_serve.add_argument("--shards", type=int, default=1,
                         help="run the sharded tier: N shard processes "
                              "(consistent hashing on the content key, "
                              "per-shard ledger-backed caches) behind a "
                              "failover router on --port (default 1 = the "
                              "single-process server)")
    p_serve.add_argument("--shard-dir", default="shards", metavar="DIR",
                         help="shard state directory (ledgers, port/pid "
                              "files; default shards/) — reuse it across "
                              "restarts for warm shard caches")
    p_serve.add_argument("--calibration", default=None, metavar="PROFILE",
                         help="enable the cost-model planner: load this "
                              "calibration profile (from `python -m repro "
                              "calibrate`), answer POST /v1/plan, auto-"
                              "select engines, and gate admission on "
                              "predicted charged cost")
    p_serve.add_argument("--tenant-capacity", type=float, default=None,
                         metavar="WORDS",
                         help="per-tenant token-bucket capacity in "
                              "predicted charged words (default 20e6; "
                              "needs --calibration)")
    p_serve.add_argument("--tenant-refill", type=float, default=None,
                         metavar="WORDS_PER_S",
                         help="per-tenant budget refill rate in words/s "
                              "(default 10e6; needs --calibration)")
    p_serve.add_argument("--cost-ceiling", type=float, default=None,
                         metavar="WORDS",
                         help="global ceiling on summed in-flight predicted "
                              "cost (default 50e6; needs --calibration)")
    p_serve.set_defaults(func=cmd_serve)

    p_load = sub.add_parser(
        "loadgen",
        help="drive a simulation server with a closed-loop client mix",
    )
    p_load.add_argument("--url", default=None,
                        help="server base URL (default: start an "
                             "in-process server on an ephemeral port)")
    p_load.add_argument("--clients", type=int, default=4,
                        help="concurrent closed-loop clients")
    p_load.add_argument("--requests", type=int, default=50,
                        help="requests per client per phase")
    p_load.add_argument("--hot-ratio", type=float, default=0.9,
                        help="hot-key fraction in the hot phase")
    p_load.add_argument("--hot-keys", type=int, default=8,
                        help="size of the hot-key set")
    p_load.add_argument("--batch", type=int, default=1,
                        help="requests per POST /batch call (1 = POST /run)")
    p_load.add_argument("--seed", type=int, default=7,
                        help="request-stream RNG seed")
    p_load.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the in-process server")
    p_load.add_argument("--smoke", action="store_true",
                        help="reduced request counts (CI smoke job)")
    p_load.add_argument("--job-mode", action="store_true",
                        help="measure batch-job interference instead: "
                             "interactive p50 with/without a background "
                             "sweep job, job time-to-complete with/without "
                             "an injected mid-job restart (writes "
                             "BENCH_service_jobs.json)")
    p_load.add_argument("--open-loop", action="store_true",
                        help="run the sharded-tier bench instead: "
                             "closed-loop scaling rows (N shards vs 1), "
                             "open-loop (Poisson-arrival) tail-latency "
                             "phases at --rate, a shard-kill fault run and "
                             "the identity check (writes "
                             "BENCH_service_shard.json); with --url, one "
                             "open-loop phase against the running tier")
    p_load.add_argument("--plan-mode", action="store_true",
                        help="run the planner/admission bench instead: "
                             "prediction accuracy of POST /v1/plan vs "
                             "measured charged cost, then an adversarial "
                             "cheap/enormous mix under flat queue_limit vs "
                             "cost-aware admission (writes "
                             "BENCH_service_plan.json)")
    p_load.add_argument("--calibration", default=None, metavar="PROFILE",
                        help="with --plan-mode: reuse this calibration "
                             "profile instead of calibrating a smoke "
                             "profile in-process")
    p_load.add_argument("--shards", type=int, default=2,
                        help="shard count for --open-loop standalone mode")
    p_load.add_argument("--rate", type=float, default=150.0,
                        help="offered arrival rate (req/s) for --open-loop")
    p_load.add_argument("--duration", type=float, default=8.0,
                        help="seconds per open-loop phase")
    p_load.add_argument("--concurrency", type=int, default=16,
                        help="open-loop worker threads (bounds in-flight "
                             "requests; queueing beyond it lands in the "
                             "latency distribution)")
    p_load.add_argument("--output", default=None, metavar="PATH",
                        help="output JSON "
                             "(default BENCH_service_throughput.json)")
    p_load.add_argument("--check", default=None, metavar="BASELINE",
                        help="compare against a recorded run; exit 1 on "
                             "throughput regressions or failed requests")
    p_load.add_argument("--tolerance", type=float, default=3.0,
                        help="allowed slow-down factor for --check")
    p_load.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless hot/cold speedup reaches this "
                             "floor")
    p_load.add_argument("--json", action="store_true",
                        help="emit the result document to stdout as JSON")
    p_load.set_defaults(func=cmd_loadgen)

    p_touch = sub.add_parser("touch", help="Fact 1 vs Fact 2 at one size")
    p_touch.add_argument("--n", type=int, default=1 << 16)
    p_touch.add_argument("--f", default="x^0.5",
                         help=f"access function: {FUNCTION_HELP}")
    p_touch.add_argument("--sweep", default=None, metavar="N1,N2,...",
                         help="run the Fact 1/2 sweep over these sizes "
                              "(cells fan out across --jobs workers)")
    p_touch.add_argument("--jobs", type=int, default=1,
                         help="worker processes for --sweep cells")
    p_touch.add_argument("--checkpoint", default=None, metavar="LEDGER",
                         help="with --sweep: checkpoint each cell to a "
                              "fresh ledger at this path")
    p_touch.add_argument("--resume", default=None, metavar="LEDGER",
                         help="with --sweep: resume an interrupted sweep "
                              "from its ledger")
    p_touch.add_argument("--json", action="store_true",
                         help="emit a JSON document instead of text")
    p_touch.set_defaults(func=cmd_touch)

    p_report = sub.add_parser(
        "report", help="collate benchmark result tables into REPORT.md"
    )
    p_report.add_argument("--results", default="benchmarks/results",
                          help="directory holding the *.txt result tables")
    p_report.add_argument("--output", default="REPORT.md")
    p_report.set_defaults(func=cmd_report)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
