"""Direct (fully parallel) execution of D-BSP programs, with cost accounting.

The cost model is the paper's: an i-superstep in which every processor
computes for at most ``tau`` time and the messages form an h-relation costs

    ``tau + h * g(mu * v / 2^i)``

— each message delivery inside an i-cluster is priced like a remote access
just outside the cluster's aggregate memory.  The total running time ``T``
of a program is the sum over its supersteps.

This executor is the *guest-side ground truth*: the simulation theorems are
statements of the form "host time <= slowdown * T", and the equivalence
tests require every engine to reproduce this executor's final contexts
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from repro.dbsp.cluster import cluster_size
from repro.dbsp.program import Message, ProcView, Program
from repro.functions import AccessFunction

__all__ = ["DBSPMachine", "DBSPRunResult", "SuperstepRecord", "superstep_cost"]


def superstep_cost(
    g: AccessFunction, mu: int, v: int, label: int, tau: float, h: int
) -> float:
    """Cost of one i-superstep: ``tau + h * g(mu * v / 2^i)``."""
    return tau + h * g(mu * cluster_size(v, label))


@dataclass(frozen=True)
class SuperstepRecord:
    """Per-superstep accounting row."""

    index: int
    label: int
    name: str
    tau: float  #: max local computation time over processors
    h: int  #: degree of the h-relation routed
    cost: float  #: tau + h * g(mu v / 2^label)


#: phase categories of the direct execution: a superstep's cost splits
#: into ``compute`` (tau) and ``communication`` (h * g(mu v / 2^i))
DBSP_PHASES = ("compute", "communication")


@dataclass
class DBSPRunResult:
    """Outcome of a direct D-BSP run."""

    contexts: list[dict]
    total_time: float
    records: list[SuperstepRecord] = field(default_factory=list)
    #: per-phase charged time: ``compute`` = sum of tau, ``communication``
    #: = sum of h * g(mu v / 2^i) (a view over ``records``)
    breakdown: dict[str, float] = field(default_factory=dict)
    #: event counters: supersteps executed, messages routed, max h seen
    counters: dict[str, int | float] = field(default_factory=dict)

    def label_counts(self) -> dict[int, int]:
        counts: dict[int, int] = {}
        for rec in self.records:
            counts[rec.label] = counts.get(rec.label, 0) + 1
        return counts

    def max_local_time(self) -> float:
        """Total per-processor local computation bound ``O(tau)`` of Thm 5."""
        return sum(rec.tau for rec in self.records)


class DBSPMachine:
    """A ``D-BSP(v, mu, g(x))`` executing programs at full parallelism."""

    def __init__(self, g: AccessFunction, validate: bool = True):
        self.g = g
        self.validate = validate

    def run(self, program: Program) -> DBSPRunResult:
        """Execute ``program``; return final contexts and charged time."""
        v, mu = program.v, program.mu
        contexts = program.initial_contexts()
        inboxes: list[list[Message]] = [[] for _ in range(v)]
        records: list[SuperstepRecord] = []
        total = 0.0
        compute_total = 0.0
        comm_total = 0.0
        n_messages = 0
        n_dummies = 0
        max_h = 0

        for index, step in enumerate(program.supersteps):
            tau = 1.0
            h = 0
            if step.is_dummy:
                next_inboxes = inboxes  # nothing sent; pending stay empty
                n_dummies += 1
            else:
                next_inboxes = [[] for _ in range(v)]
                sent_counts = [0] * v
                recv_counts = [0] * v
                for pid in range(v):
                    view = ProcView(
                        pid, v, mu, step.label, contexts[pid], inboxes[pid]
                    )
                    step.body(view)
                    tau = max(tau, view.local_time)
                    sent_counts[pid] = len(view.outbox)
                    for dest, msg in view.outbox:
                        next_inboxes[dest].append(msg)
                        recv_counts[dest] += 1
                if self.validate:
                    self._check_degrees(recv_counts, mu, index, step.name)
                for pid in range(v):
                    next_inboxes[pid].sort()
                h = max(max(sent_counts), max(recv_counts))
                n_messages += sum(sent_counts)
            cost = superstep_cost(self.g, mu, v, step.label, tau, h)
            records.append(
                SuperstepRecord(index, step.label, step.name, tau, h, cost)
            )
            total += cost
            compute_total += tau
            comm_total += cost - tau
            max_h = max(max_h, h)
            inboxes = next_inboxes

        return DBSPRunResult(
            contexts=contexts,
            total_time=total,
            records=records,
            breakdown={"compute": compute_total, "communication": comm_total},
            counters={
                "supersteps": len(records),
                "dummy_supersteps": n_dummies,
                "messages": n_messages,
                "max_h": max_h,
            },
        )

    @staticmethod
    def _check_degrees(
        recv_counts: list[int], mu: int, index: int, name: str
    ) -> None:
        worst = max(recv_counts)
        if worst > mu:
            pid = recv_counts.index(worst)
            raise ValueError(
                f"superstep {index} ({name!r}): processor {pid} receives "
                f"{worst} messages > mu = {mu} (buffers are part of the "
                f"context, so h cannot exceed mu)"
            )
