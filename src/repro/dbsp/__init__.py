"""The Decomposable BSP (D-BSP) model of De la Torre and Kruskal [19].

A ``D-BSP(v, mu, g(x))`` is a collection of ``v`` processors (``v`` a power
of two), each with a local memory of ``mu`` words, communicating through a
router.  For every ``0 <= i <= log v`` the processors are partitioned into
``2^i`` fixed *i-clusters* of ``v / 2^i`` consecutive processors, forming a
binary decomposition tree.  Programs are sequences of labeled supersteps:
in an *i-superstep* every processor computes locally and exchanges messages
only within its i-cluster; the superstep costs ``tau + h * g(mu v / 2^i)``
where ``tau`` bounds local computation and the messages form an h-relation.
"""

from repro.dbsp.cluster import (
    ClusterTree,
    cluster_of,
    cluster_range,
    cluster_size,
    same_cluster,
)
from repro.dbsp.program import (Message, ProcView, Program, Superstep,
                                concat_programs)
from repro.dbsp.machine import DBSPMachine, DBSPRunResult, superstep_cost

__all__ = [
    "ClusterTree",
    "cluster_of",
    "cluster_range",
    "cluster_size",
    "same_cluster",
    "Message",
    "ProcView",
    "Program",
    "Superstep",
    "concat_programs",
    "DBSPMachine",
    "DBSPRunResult",
    "superstep_cost",
]
