"""D-BSP programs: labeled supersteps over per-processor contexts.

A :class:`Program` is a sequence of :class:`Superstep` objects.  Each
superstep has a *label* ``i`` (communication confined to i-clusters) and a
*body* — a per-processor function ``body(view)`` receiving a
:class:`ProcView` that exposes exactly the resources a D-BSP processor has:

* ``view.pid`` — the processor id, ``view.v`` — the machine width;
* ``view.ctx`` — the processor's own local memory (a dict; its charged
  footprint is the machine's ``mu`` words — see below);
* ``view.inbox`` — messages delivered at the end of the *previous*
  superstep, as ``Message(src, payload)``, sorted by sender;
* ``view.send(dest, payload)`` — post a constant-size message to a
  processor in the same i-cluster (checked);
* ``view.charge(t)`` — account ``t`` units of local computation.

Because a view exposes only its own processor's state and messages are
delivered at the *next* superstep, sequential execution of the processor
bodies in any order is semantically identical to the parallel execution —
this is what lets four different engines (direct D-BSP, HMM simulation, BT
simulation, Brent self-simulation) run the same program and be checked
word-for-word against each other.

Fine-grained convention (Sections 3 and 5): ``mu = O(1)``; the per-processor
context plus its message buffers is charged as one ``mu``-word block.  The
number of messages a processor sends or receives in a superstep must not
exceed ``mu`` (buffers are part of the context).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.dbsp.cluster import ClusterTree

__all__ = ["Message", "Superstep", "Program", "ProcView", "DUMMY",
           "concat_programs"]


@dataclass(order=True, unsafe_hash=True, slots=True)
class Message:
    """A constant-size message: sender id and payload word.

    Treated as immutable by every engine (messages are shared freely
    across inboxes); equality, ordering and hashing consider the sender
    only.  Not ``frozen=True``: the engines create millions of these in
    delivery loops, and the frozen ``__init__`` (``object.__setattr__``)
    costs ~2x a plain slot store.
    """

    src: int
    payload: Any = field(compare=False, default=None)


@dataclass(frozen=True)
class Superstep:
    """One labeled superstep.

    ``body(view)`` is run once per processor.  ``name`` is used in traces
    and error messages.  A ``body`` of ``None`` denotes a dummy superstep
    (inserted by smoothing): no computation, no communication — only the
    synchronization structure of its label.

    ``array_body`` is an optional whole-machine form of the same step:
    called once with an array view (:class:`repro.sim.kernel.ArrayView`)
    over column-store contexts, it must be semantically identical to
    running ``body`` once per processor (the equivalence suites enforce
    this for the built-in algorithms).  The vectorized simulation kernel
    uses it when every non-dummy step of a program provides one; engines
    without an array path ignore it.
    """

    label: int
    body: Callable[["ProcView"], None] | None
    name: str = ""
    array_body: Callable[[Any], None] | None = None

    @property
    def is_dummy(self) -> bool:
        return self.body is None


#: sentinel body for dummy supersteps
DUMMY = None


class Program:
    """A D-BSP program: machine shape plus the superstep sequence.

    Parameters
    ----------
    v:
        Number of processors (power of two).
    mu:
        Local memory size in words — the charged size of one processor
        context (fine-grained programs use a small constant).
    supersteps:
        The labeled supersteps, in execution order.
    make_context:
        Factory producing processor ``pid``'s initial context (a dict).
        Defaults to an empty dict per processor.
    name:
        For reports.
    array_schema:
        Optional column-store schema for the vectorized kernel: a mapping
        of context field name to numpy dtype string (e.g.
        ``{"key": "i8"}``).  Programs whose every context is exactly
        these fields — and whose supersteps all carry ``array_body`` —
        can be executed whole-superstep-at-a-time by the ``vec`` engine.
    """

    def __init__(
        self,
        v: int,
        mu: int,
        supersteps: Sequence[Superstep],
        make_context: Callable[[int], dict] | None = None,
        name: str = "program",
        array_schema: dict[str, str] | None = None,
    ):
        self.tree = ClusterTree(v)
        if mu <= 0:
            raise ValueError(f"mu must be positive, got {mu}")
        self.v = v
        self.mu = int(mu)
        self.supersteps = list(supersteps)
        self.make_context = make_context or (lambda pid: {})
        self.name = name
        self.array_schema = array_schema
        for idx, step in enumerate(self.supersteps):
            if not 0 <= step.label <= self.tree.log_v:
                raise ValueError(
                    f"superstep {idx} ({step.name!r}) has label {step.label} "
                    f"outside [0, {self.tree.log_v}]"
                )

    # ------------------------------------------------------------- queries
    @property
    def log_v(self) -> int:
        return self.tree.log_v

    def __len__(self) -> int:
        return len(self.supersteps)

    def labels(self) -> list[int]:
        return [s.label for s in self.supersteps]

    def label_counts(self) -> dict[int, int]:
        """``lambda_i``: number of i-supersteps, for Theorem 5/12 bounds."""
        counts: dict[int, int] = {}
        for step in self.supersteps:
            counts[step.label] = counts.get(step.label, 0) + 1
        return counts

    def ends_with_global_sync(self) -> bool:
        return bool(self.supersteps) and self.supersteps[-1].label == 0

    def with_global_sync(self) -> "Program":
        """Return a program guaranteed to end with a 0-superstep.

        The paper assumes every D-BSP computation ends with a global
        synchronization; the simulation engines rely on it for their
        termination argument, so they normalize programs through here.
        """
        if self.ends_with_global_sync():
            return self
        cached = getattr(self, "_with_sync", None)
        if cached is not None:
            return cached
        closing = Superstep(0, DUMMY, name="global-sync")
        normalized = self.replace_supersteps(self.supersteps + [closing])
        self._with_sync = normalized
        return normalized

    def replace_supersteps(self, supersteps: Sequence[Superstep]) -> "Program":
        return Program(
            self.v,
            self.mu,
            supersteps,
            make_context=self.make_context,
            name=self.name,
            array_schema=self.array_schema,
        )

    def initial_contexts(self) -> list[dict]:
        return [self.make_context(pid) for pid in range(self.v)]


def concat_programs(first: Program, second: Program, name: str | None = None) -> Program:
    """Sequential composition: run ``first``, then ``second``, on one machine.

    Both programs must have the same ``v`` and ``mu``.  The composed
    program starts from ``first``'s initial contexts; ``second``'s
    ``make_context`` is ignored — its supersteps continue on whatever
    state ``first`` left behind (the usual way to chain phases, e.g. sort
    the keys, then run an FFT over them).  A global synchronization is
    inserted at the seam so ``second`` starts from a barrier, matching
    the semantics of running the two programs back to back.
    """
    if first.v != second.v or first.mu != second.mu:
        raise ValueError(
            f"cannot concatenate programs with different shapes: "
            f"(v={first.v}, mu={first.mu}) vs (v={second.v}, mu={second.mu})"
        )
    seam: list[Superstep] = []
    if not first.ends_with_global_sync():
        seam.append(Superstep(0, DUMMY, name="concat-sync"))
    # column schemas only survive concatenation when both halves agree —
    # otherwise the composed program simply loses the array fast path
    schema = (
        first.array_schema
        if first.array_schema == second.array_schema
        else None
    )
    return Program(
        first.v,
        first.mu,
        list(first.supersteps) + seam + list(second.supersteps),
        make_context=first.make_context,
        name=name or f"{first.name};{second.name}",
        array_schema=schema,
    )


class ProcView:
    """The resources one processor sees during one superstep.

    Engines construct one view per (processor, superstep) execution; the
    view enforces the D-BSP communication discipline (messages stay inside
    the superstep's i-cluster, at most ``mu`` sends per processor) and
    records the local-computation charge and outgoing messages for the
    engine's cost accounting.
    """

    __slots__ = ("pid", "v", "mu", "label", "ctx", "inbox", "outbox", "local_time")

    def __init__(
        self,
        pid: int,
        v: int,
        mu: int,
        label: int,
        ctx: dict,
        inbox: list[Message],
    ):
        self.pid = pid
        self.v = v
        self.mu = mu
        self.label = label
        self.ctx = ctx
        self.inbox = inbox
        self.outbox: list[tuple[int, Message]] = []
        #: local computation time; every executed superstep costs >= 1
        self.local_time: float = 1.0

    def send(self, dest: int, payload: Any = None) -> None:
        """Post a message to ``dest`` (must share this superstep's i-cluster)."""
        if not 0 <= dest < self.v:
            raise ValueError(f"destination {dest} outside [0, {self.v})")
        # i-clusters are aligned power-of-two blocks of size v >> label, so
        # p and q share one iff their pids differ only in the low bits:
        # (p ^ q) < cluster size.  Equivalent to same_cluster(), cheaper.
        if (self.pid ^ dest) >= (self.v >> self.label):
            raise ValueError(
                f"processor {self.pid} cannot reach {dest} in a "
                f"{self.label}-superstep (different {self.label}-clusters)"
            )
        outbox = self.outbox
        if len(outbox) >= self.mu:
            raise ValueError(
                f"processor {self.pid} exceeded its mu={self.mu} outgoing "
                f"message buffer in one superstep"
            )
        outbox.append((dest, Message(self.pid, payload)))

    def charge(self, t: float) -> None:
        """Account ``t`` additional units of local computation."""
        if t < 0:
            raise ValueError(f"cannot charge negative time {t}")
        self.local_time += t

    def received(self) -> Iterable[Any]:
        """Payloads of this superstep's inbox, in sender order."""
        return (msg.payload for msg in self.inbox)
