"""The binary decomposition tree of a D-BSP machine.

For ``0 <= i <= log v`` the ``v`` processors split into ``2^i`` disjoint
*i-clusters* ``C_0^(i) .. C_{2^i - 1}^(i)`` of ``v / 2^i`` consecutive
processors each, with ``C_j^(i) = C_{2j}^(i+1) ∪ C_{2j+1}^(i+1)`` — i.e.
cluster ``(i, j)`` covers processors ``[j * v/2^i, (j+1) * v/2^i)``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "is_power_of_two",
    "log2_exact",
    "cluster_size",
    "cluster_of",
    "cluster_range",
    "same_cluster",
    "ClusterTree",
]


def is_power_of_two(n: int) -> bool:
    """True iff ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def log2_exact(n: int) -> int:
    """``log2 n`` for a power of two ``n``; raises otherwise."""
    if not is_power_of_two(n):
        raise ValueError(f"{n} is not a positive power of two")
    return n.bit_length() - 1


def cluster_size(v: int, i: int) -> int:
    """Number of processors in an i-cluster of a v-processor D-BSP."""
    return v >> i


def cluster_of(pid: int, v: int, i: int) -> int:
    """Index ``j`` of the i-cluster containing processor ``pid``."""
    return pid // (v >> i)


def cluster_range(v: int, i: int, j: int) -> tuple[int, int]:
    """Half-open processor range ``[lo, hi)`` of cluster ``C_j^(i)``."""
    size = v >> i
    return j * size, (j + 1) * size


def same_cluster(p: int, q: int, v: int, i: int) -> bool:
    """True iff processors ``p`` and ``q`` share an i-cluster."""
    return cluster_of(p, v, i) == cluster_of(q, v, i)


@dataclass(frozen=True)
class ClusterTree:
    """Decomposition tree of a ``v``-processor D-BSP (``v`` a power of two)."""

    v: int

    def __post_init__(self) -> None:
        if not is_power_of_two(self.v):
            raise ValueError(f"v must be a power of two, got {self.v}")

    @property
    def log_v(self) -> int:
        return log2_exact(self.v)

    def levels(self) -> range:
        """Valid superstep labels / decomposition levels ``0 .. log v``."""
        return range(self.log_v + 1)

    def n_clusters(self, i: int) -> int:
        self._check_level(i)
        return 1 << i

    def size(self, i: int) -> int:
        self._check_level(i)
        return cluster_size(self.v, i)

    def cluster_of(self, pid: int, i: int) -> int:
        self._check_level(i)
        self._check_pid(pid)
        return cluster_of(pid, self.v, i)

    def members(self, i: int, j: int) -> range:
        """Processor ids in cluster ``C_j^(i)``."""
        self._check_level(i)
        if not 0 <= j < (1 << i):
            raise ValueError(f"cluster index {j} outside [0, {1 << i})")
        lo, hi = cluster_range(self.v, i, j)
        return range(lo, hi)

    def children(self, i: int, j: int) -> tuple[tuple[int, int], tuple[int, int]]:
        """The two (i+1)-subclusters of ``C_j^(i)``."""
        if i >= self.log_v:
            raise ValueError(f"level-{i} clusters are leaves")
        return (i + 1, 2 * j), (i + 1, 2 * j + 1)

    def parent(self, i: int, j: int) -> tuple[int, int]:
        """The (i-1)-cluster containing ``C_j^(i)``."""
        if i <= 0:
            raise ValueError("the root cluster has no parent")
        return i - 1, j // 2

    def same_cluster(self, p: int, q: int, i: int) -> bool:
        self._check_pid(p)
        self._check_pid(q)
        return same_cluster(p, q, self.v, i)

    # ------------------------------------------------------------- helpers
    def _check_level(self, i: int) -> None:
        if not 0 <= i <= self.log_v:
            raise ValueError(f"level {i} outside [0, {self.log_v}]")

    def _check_pid(self, pid: int) -> None:
        if not 0 <= pid < self.v:
            raise ValueError(f"processor id {pid} outside [0, {self.v})")
