"""The Hierarchical Memory Model (HMM) of Aggarwal et al. [1].

An ``f(x)``-HMM is a random access machine where an access to memory
location ``x`` costs ``f(x)``; an n-ary operation on cells ``x_1..x_n``
costs ``1 + sum_i f(x_i)``.  The model rewards *temporal locality*: data
used often should live near address 0.
"""

from repro.hmm.machine import HMMMachine
from repro.hmm.touching import hmm_touch_all
from repro.hmm.algorithms import (
    hmm_matmul_lower_bound,
    hmm_fft_lower_bound,
    hmm_sorting_lower_bound,
    hmm_touching_bound,
)
from repro.hmm.flat import hmm_flat_fft, hmm_flat_matmul, hmm_flat_mergesort
from repro.hmm.blocked import hmm_blocked_matmul

__all__ = [
    "HMMMachine",
    "hmm_touch_all",
    "hmm_matmul_lower_bound",
    "hmm_fft_lower_bound",
    "hmm_sorting_lower_bound",
    "hmm_touching_bound",
    "hmm_flat_mergesort",
    "hmm_flat_fft",
    "hmm_flat_matmul",
    "hmm_blocked_matmul",
]
