"""Hierarchy-oblivious ("flat RAM") algorithms executed on the HMM.

The paper's opening motivation: classical algorithms designed for the
flat RAM "often exhibit poor performance when run on real machines with
hierarchical memory".  These are the textbook algorithms, coded exactly
as one would for a RAM, but executed on an :class:`~repro.hmm.machine.HMMMachine`
so every access is charged ``f(address)``:

* :func:`hmm_flat_mergesort` — bottom-up merge sort over the full array:
  ``Theta(n log n)`` RAM operations, but every pass sweeps addresses up
  to ``~2n``, so the charged cost is ``Theta(n f(n) log n)``;
* :func:`hmm_flat_fft` — iterative radix-2 FFT (bit-reversal + log n
  butterfly stages over the whole array): ``Theta(n f(n) log n)``;
* :func:`hmm_flat_matmul` — the triple loop on row-major operands:
  ``Theta(n^{3/2})`` semiring operations at depth ``Theta(n)``, i.e.
  ``Theta(n^{3/2} f(n))`` charged.

The benchmark ``benchmarks/test_oblivious_vs_simulated.py`` compares them
against the HMM algorithms *derived automatically* by simulating the
D-BSP programs of Propositions 7-9 — e.g. on the ``x^0.5``-HMM the
derived sort costs ``Theta(n^{1.5})`` versus the flat sort's
``Theta(n^{1.5} log n)``, and the derived matrix multiplication
``Theta(n^{1.5} log n)`` versus the flat one's ``Theta(n^2)``.
"""

from __future__ import annotations

import cmath
from typing import Any

from repro.hmm.machine import HMMMachine

__all__ = ["hmm_flat_mergesort", "hmm_flat_fft", "hmm_flat_matmul"]


def hmm_flat_mergesort(machine: HMMMachine, n: int) -> float:
    """Sort ``machine.mem[0:n]`` with textbook bottom-up merge sort.

    Requires ``n`` scratch cells at ``[n, 2n)``.  Returns the charged cost.
    RAM complexity ``Theta(n log n)``; HMM charge ``Theta(n f(n) log n)``
    (each pass streams the whole array at its resting depth).
    """
    if 2 * n > machine.size:
        raise ValueError(f"flat mergesort of {n} needs {2 * n} cells")
    start = machine.time
    src, dst = 0, n
    width = 1
    while width < n:
        pos = 0
        while pos < n:
            a_hi = min(pos + width, n)
            b_hi = min(pos + 2 * width, n)
            run_a = machine.read_range(src + pos, src + a_hi)
            run_b = machine.read_range(src + a_hi, src + b_hi)
            machine.write_range(dst + pos, _merge(run_a, run_b))
            pos += 2 * width
        width *= 2
        src, dst = dst, src
    if src != 0:
        machine.move_range(src, 0, n)
    return machine.time - start


def _merge(a: list[Any], b: list[Any]) -> list[Any]:
    out: list[Any] = []
    i = j = 0
    while i < len(a) and j < len(b):
        if a[i] <= b[j]:
            out.append(a[i])
            i += 1
        else:
            out.append(b[j])
            j += 1
    out.extend(a[i:])
    out.extend(b[j:])
    return out


def hmm_flat_fft(machine: HMMMachine, n: int) -> float:
    """In-place iterative radix-2 FFT of ``machine.mem[0:n]`` (complex).

    Textbook schedule: bit-reversal permutation, then ``log n`` butterfly
    stages each sweeping the whole array.  Charged ``Theta(n f(n) log n)``.
    """
    if n & (n - 1):
        raise ValueError(f"n must be a power of two, got {n}")
    if n > machine.size:
        raise ValueError(f"flat FFT of {n} needs {n} cells")
    start = machine.time
    bits = n.bit_length() - 1
    # bit-reversal permutation: one swap per out-of-place pair
    for i in range(n):
        j = int(bin(i)[2:].zfill(bits)[::-1], 2)
        if i < j:
            xi, xj = machine.read(i), machine.read(j)
            machine.write(i, xj)
            machine.write(j, xi)
    # butterfly stages
    m = 2
    while m <= n:
        w_m = cmath.exp(-2j * cmath.pi / m)
        for block in range(0, n, m):
            w = 1.0 + 0j
            for k in range(m // 2):
                lo = block + k
                hi = lo + m // 2
                a, b = machine.read(lo), machine.read(hi)
                machine.charge_op((lo, hi))
                machine.write(lo, a + w * b)
                machine.write(hi, a - w * b)
                w *= w_m
        m *= 2
    return machine.time - start


def hmm_flat_matmul(machine: HMMMachine, side: int) -> float:
    """Row-major triple-loop ``C = A @ B`` on ``side x side`` matrices.

    Layout: ``A`` at ``[0, s)``, ``B`` at ``[s, 2s)``, ``C`` at
    ``[2s, 3s)`` with ``s = side^2``.  Charged ``Theta(side^3 f(side^2))``
    — the textbook loop pays the deep access on (nearly) every operand.
    """
    s = side * side
    if 3 * s > machine.size:
        raise ValueError(f"flat matmul of side {side} needs {3 * s} cells")
    start = machine.time
    for i in range(side):
        row_a = machine.read_range(i * side, (i + 1) * side)
        for j in range(side):
            acc = 0
            for k in range(side):
                b_kj = machine.read(s + k * side + j)
                acc += row_a[k] * b_kj
                machine.charge(1.0)
            machine.write(2 * s + i * side + j, acc)
    return machine.time - start
