"""The touching problem on the HMM.

Touching brings each of ``n`` memory cells to the top of memory.  On the
``f(x)``-HMM there is no block transfer, so each of the ``n`` cells must be
individually accessed at its own address: the cost is exactly
``sum_{x<n} f(x) = Theta(n f(n))`` by Fact 1.  The contrast with the BT
machine's ``Theta(n f*(n))`` (Fact 2, :mod:`repro.bt.touching`) is the
paper's motivating example for the added power of block transfer.
"""

from __future__ import annotations

from repro.hmm.machine import HMMMachine

__all__ = ["hmm_touch_all"]


def hmm_touch_all(machine: HMMMachine, n: int) -> float:
    """Touch cells ``[0, n)``; return the charged cost of the touch.

    Every cell is read once (charged ``f(x)`` each — there is no block
    transfer to pipeline the reads) and folded into cell 0, so the touch is
    observable: cell 0 ends up holding a digest of all touched values.
    """
    if n > machine.size:
        raise ValueError(f"cannot touch {n} cells of a {machine.size}-cell HMM")
    start = machine.time
    values = machine.read_range(0, n)  # charges sum_{x<n} f(x)
    acc = 0
    for value in values:
        acc = (acc + (value if isinstance(value, (int, float)) else 1)) % (1 << 61)
    machine.write(0, acc)
    return machine.time - start
