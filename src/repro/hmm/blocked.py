"""Hierarchy-aware native HMM algorithms (the upper bounds of [1]).

Section 3.1 measures the simulation-derived algorithms against the HMM
bounds of Aggarwal et al. [1].  Those bounds are achieved by *hand-tuned*
hierarchy-aware algorithms; this module implements the canonical one —
recursive blocked matrix multiplication — so the E12 benchmark can show
the full triangle:

* flat RAM code:        ``Theta(s^{3/2} f(s))``   (oblivious),
* simulation-derived:   optimal up to the generic-scheme constant,
* hand-tuned native:    optimal with a small constant.

The blocked scheme: to multiply matrices resident deep in memory, recurse
on quadrants; each of the 8 subproblems first *moves* its two operand
quadrants (and accumulator) to the top of memory — word by word, the HMM
has no block transfer; the win is pure temporal locality: once staged,
all ``(side/2)^3`` work happens at shallow addresses.  The cost
recursion

    ``T(s) = 8 T(s/4) + Theta(s f(s))``

solves to ``Theta(s^{1+alpha})`` for ``alpha > 1/2``,
``Theta(s^{3/2} log s)`` at ``alpha = 1/2`` and ``Theta(s^{3/2})`` below
— exactly the bounds of [1] quoted by Proposition 7.

Implementation note: the numeric result is computed once (verified
against numpy in the tests) while the memory traffic is charged by the
recursion above, with every term written as an explicit product of
"words moved x access cost at the relevant footprint" — the same style
of operational accounting used by :mod:`repro.bt.permutation` for nested
tiles.
"""

from __future__ import annotations

from repro.hmm.machine import HMMMachine

__all__ = ["hmm_blocked_matmul"]

#: side length at or below which the multiply runs directly at the top
_BASE_SIDE = 4


def hmm_blocked_matmul(machine: HMMMachine, side: int) -> float:
    """Multiply the ``side x side`` matrices at ``[3s, 4s)`` and ``[4s, 5s)``.

    The product is written to ``[5s, 6s)`` (``s = side^2``); ``[0, 3s)``
    is the recursion's staging space, so the machine needs ``6 s`` words.
    Returns the charged cost.
    """
    s = side * side
    if 6 * s > machine.size:
        raise ValueError(
            f"blocked matmul of side {side} needs {6 * s} cells, "
            f"machine has {machine.size}"
        )
    start = machine.time

    # stage the operands into [0, 2s): read at depth, write near the top
    a_flat = machine.read_range(3 * s, 4 * s)
    b_flat = machine.read_range(4 * s, 5 * s)
    machine.touch_range(0, 2 * s)

    _charge_multiply(machine, side)

    a = [a_flat[r * side : (r + 1) * side] for r in range(side)]
    b = [b_flat[r * side : (r + 1) * side] for r in range(side)]
    c = _py_matmul(a, b, side)

    # write the product back out to its deep resting place
    machine.touch_range(2 * s, 3 * s)
    machine.write_range(5 * s, [x for row in c for x in row])
    return machine.time - start


def _charge_multiply(machine: HMMMachine, side: int) -> None:
    """Charge the blocked recursion with operands staged at ``[0, 3s)``."""
    s = side * side
    if side <= _BASE_SIDE:
        # direct triple loop at the top: side^3 multiply-adds, each
        # touching three cells within the 3s-word footprint
        footprint = min(3 * s, machine.size)
        machine.charge(float(side**3))
        machine.time += 3.0 * side**3 * machine.table.access(footprint - 1)
        return
    half = side // 2
    hs = half * half
    parent_fp = min(3 * s, machine.size)
    child_fp = min(3 * hs, machine.size)
    for _sub in range(8):
        # move two operand quadrants and the accumulator quadrant between
        # the parent staging area and the child's: 3 hs words read at the
        # parent footprint plus written at the child footprint, and back
        machine.time += 3.0 * hs * machine.table.access(parent_fp - 1)
        machine.time += machine.table.range_cost(0, child_fp)
        _charge_multiply(machine, half)
        machine.time += machine.table.range_cost(0, child_fp)
        machine.time += hs * machine.table.access(parent_fp - 1)


def _py_matmul(a, b, side: int):
    return [
        [sum(a[i][k] * b[k][j] for k in range(side)) for j in range(side)]
        for i in range(side)
    ]
