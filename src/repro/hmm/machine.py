"""Operational ``f(x)``-HMM machine with exact cost accounting.

The machine holds a word-addressed memory (a Python list, so words can be
arbitrary objects: context words, tags, message payloads) and charges every
access its model cost via a precomputed :class:`~repro.functions.CostTable`.

Two layers of API are exposed:

* word-level: :meth:`HMMMachine.read` / :meth:`HMMMachine.write` — charge
  ``f(x)`` each, plus the unit op cost charged via :meth:`charge_op`;
* bulk: :meth:`HMMMachine.touch_range`, :meth:`HMMMachine.swap_ranges`,
  :meth:`HMMMachine.move_range` — physically move the words and charge the
  exact per-word cost in O(1) Python operations using the prefix table.

On the plain HMM there is **no block transfer**: a bulk move of ``b`` words
between ranges ``[s, s+b)`` and ``[d, d+b)`` is charged
``sum f(s..s+b-1) + sum f(d..d+b-1)`` — i.e. every word is individually
touched at both endpoints (this matches how the paper's Section 3 analysis
charges context relocations, cf. Fact 1).
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.functions import AccessFunction, CostTable
from repro.obs.counters import NULL_COUNTERS, Counters, NullCounters

__all__ = ["HMMMachine"]


class HMMMachine:
    """An ``f(x)``-HMM with ``size`` words of memory.

    Parameters
    ----------
    f:
        The access function.
    size:
        Number of addressable words.
    op_cost:
        Cost of the computational part of one operation (the ``1 +`` in
        ``1 + sum f(x_i)``).  Kept explicit so tests can isolate pure
        memory cost by setting it to 0.
    counters:
        Observability hook (:mod:`repro.obs`): bulk primitives report
        words touched/moved here.  Defaults to the shared no-op
        registry, so an uninstrumented machine pays one no-op call per
        bulk primitive.
    """

    def __init__(
        self,
        f: AccessFunction,
        size: int,
        op_cost: float = 1.0,
        counters: Counters | NullCounters = NULL_COUNTERS,
    ):
        self.f = f
        self.size = int(size)
        self.table = CostTable.shared(f, self.size)
        self.mem: list[Any] = [None] * self.size
        self.op_cost = float(op_cost)
        self.counters = counters
        self.time: float = 0.0
        self.ops: int = 0

    # ---------------------------------------------------------------- core
    def reset_clock(self) -> None:
        """Zero the accumulated time/op counters (memory is untouched)."""
        self.time = 0.0
        self.ops = 0

    def charge(self, t: float) -> None:
        """Charge ``t`` raw time units (e.g. local computation)."""
        if t < 0:
            raise ValueError(f"cannot charge negative time {t}")
        self.time += t

    def charge_op(self, addresses: Iterable[int] = ()) -> None:
        """Charge one n-ary operation touching ``addresses``.

        Cost is ``op_cost + sum_i f(x_i)`` per the HMM definition.
        """
        self.ops += 1
        self.counters.add("ops")
        self.time += self.op_cost
        for x in addresses:
            self.time += self.table.access(x)
            self.counters.add("words_touched")

    # ---------------------------------------------------- word-level access
    def read(self, x: int) -> Any:
        """Read word ``x``, charging ``f(x)``."""
        self.time += self.table.access(x)
        self.counters.add("words_touched")
        return self.mem[x]

    def write(self, x: int, value: Any) -> None:
        """Write word ``x``, charging ``f(x)``."""
        self.time += self.table.access(x)
        self.counters.add("words_touched")
        self.mem[x] = value

    # --------------------------------------------------------- bulk access
    def touch_range(self, lo: int, hi: int) -> None:
        """Charge one access to every address in ``[lo, hi)``."""
        self.time += self.table.range_cost(lo, hi)
        self.counters.add("words_touched", hi - lo)

    def touch_addresses(self, xs) -> None:
        """Charge one access to each address in ``xs`` (any order, repeats ok).

        Gather-style batched charging: a list or ``np.ndarray`` of
        addresses is charged in one :meth:`CostTable.fold_access` pass,
        bit-identical to looping ``read``/``write`` over ``xs`` (minus
        the memory traffic — this only charges).  One counter update for
        the whole batch.
        """
        self.time = self.table.fold_access(self.time, xs)
        self.counters.add("words_touched", len(xs))

    def read_range(self, lo: int, hi: int) -> list[Any]:
        """Read ``[lo, hi)`` (charged once per word)."""
        self.touch_range(lo, hi)
        return self.mem[lo:hi]

    def write_range(self, lo: int, values: list[Any]) -> None:
        """Write ``values`` starting at ``lo`` (charged once per word)."""
        hi = lo + len(values)
        self.touch_range(lo, hi)
        self.mem[lo:hi] = values

    def move_range(self, src: int, dst: int, length: int) -> None:
        """Copy ``length`` words from ``src`` to ``dst`` (word-by-word cost).

        Ranges may not overlap; the source is left in place (callers that
        need move semantics overwrite it afterwards).
        """
        self._check_disjoint(src, dst, length)
        self.touch_range(src, src + length)
        self.touch_range(dst, dst + length)
        self.counters.add("words_moved", length)
        self.mem[dst : dst + length] = self.mem[src : src + length]

    def swap_ranges(self, a: int, b: int, length: int) -> float:
        """Exchange two disjoint ranges of ``length`` words.

        Charged two accesses per word on each side (read + write), i.e.
        ``2 * (sum f(a..) + sum f(b..))``.  Returns the charged amount —
        the parallel round scheduler records it on the charge tape so the
        parent process can re-fold the identical float.
        """
        self._check_disjoint(a, b, length)
        charge = 2.0 * (
            self.table.range_cost(a, a + length)
            + self.table.range_cost(b, b + length)
        )
        self.time += charge
        self.counters.add("words_touched", 2 * length)
        self.counters.add("words_moved", 2 * length)
        tmp = self.mem[a : a + length]
        self.mem[a : a + length] = self.mem[b : b + length]
        self.mem[b : b + length] = tmp
        return charge

    # ------------------------------------------------------------- helpers
    def _check_disjoint(self, a: int, b: int, length: int) -> None:
        if length < 0:
            raise ValueError(f"negative length {length}")
        if a < 0 or b < 0 or a + length > self.size or b + length > self.size:
            raise IndexError(
                f"ranges [{a},{a + length}) / [{b},{b + length}) outside "
                f"memory of size {self.size}"
            )
        if a < b + length and b < a + length and length > 0:
            raise ValueError(
                f"ranges [{a},{a + length}) and [{b},{b + length}) overlap"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HMMMachine(f={self.f.name}, size={self.size}, "
            f"time={self.time:.1f}, ops={self.ops})"
        )
