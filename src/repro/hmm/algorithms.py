"""Closed-form HMM bounds from Aggarwal et al. [1], used as comparison stones.

Section 3.1 of the paper verifies that the D-BSP-to-HMM simulation of the
case-study algorithms matches the best known HMM bounds for the access
functions ``f(x) = x^alpha`` and ``f(x) = log x``.  This module provides
those target bounds as explicit functions of ``n`` so the benchmark harness
can print paper-vs-measured rows.

All bounds are *shapes* (Theta up to constants); the fitting utilities in
:mod:`repro.analysis.fitting` check measured costs against them by bounded
ratios over geometric sweeps.
"""

from __future__ import annotations

import math

from repro.functions import (
    AccessFunction,
    LogarithmicAccess,
    PolynomialAccess,
)

__all__ = [
    "hmm_touching_bound",
    "hmm_matmul_lower_bound",
    "hmm_fft_lower_bound",
    "hmm_sorting_lower_bound",
]


def hmm_touching_bound(f: AccessFunction, n: int) -> float:
    """Touching ``n`` cells on ``f(x)``-HMM: ``Theta(n f(n))`` (Fact 1)."""
    return n * f(n)


def hmm_matmul_lower_bound(f: AccessFunction, n: int) -> float:
    """n-MM (two sqrt(n) x sqrt(n) matrices, semiring ops) on ``f(x)``-HMM.

    From [1] (quoted by Proposition 7): ``Theta(n^{1+alpha})`` for
    ``1/2 < alpha < 1``; ``Theta(n^{3/2} log n)`` at ``alpha = 1/2``;
    ``Theta(n^{3/2})`` for ``alpha < 1/2`` and for ``f = log x``.
    """
    if isinstance(f, PolynomialAccess):
        a = f.alpha
        if a > 0.5:
            return float(n) ** (1.0 + a)
        if a == 0.5:
            return float(n) ** 1.5 * math.log2(max(n, 2))
        return float(n) ** 1.5
    if isinstance(f, LogarithmicAccess):
        return float(n) ** 1.5
    raise ValueError(f"no published HMM n-MM bound for access function {f!r}")


def hmm_fft_lower_bound(f: AccessFunction, n: int) -> float:
    """n-DFT on ``f(x)``-HMM: best known bounds from [1].

    ``Theta(n^{1+alpha})`` for ``f = x^alpha`` and
    ``Theta(n log n log log n)`` for ``f = log x``.
    """
    if isinstance(f, PolynomialAccess):
        return float(n) ** (1.0 + f.alpha)
    if isinstance(f, LogarithmicAccess):
        lg = math.log2(max(n, 2))
        return n * lg * math.log2(max(lg, 2))
    raise ValueError(f"no published HMM n-DFT bound for access function {f!r}")


def hmm_sorting_lower_bound(f: AccessFunction, n: int) -> float:
    """n-sorting on ``f(x)``-HMM.

    ``Theta(n^{1+alpha})`` for ``f = x^alpha`` (Proposition 9's optimality
    reference); ``Theta(n log n)`` comparison bound stated for ``f = log x``
    (the paper notes a ``Theta(n log n)``-vs-``Omega(n log^2 n)`` gap for
    simulated BSP-style sorting there).
    """
    if isinstance(f, PolynomialAccess):
        return float(n) ** (1.0 + f.alpha)
    if isinstance(f, LogarithmicAccess):
        return n * math.log2(max(n, 2))
    raise ValueError(f"no published HMM sorting bound for access function {f!r}")
