"""Simulation of D-BSP programs on the BT machine (Section 5, Figs. 4-7).

The overall schedule is the one of Section 3 (one round simulates one
superstep for one cluster; cycles sweep sibling clusters), but every bulk
move is restructured to use block transfer:

* **Buffers** (Fig. 4): the memory holds ``2v`` blocks — ``v`` contexts
  interspersed with ``v`` empty buffer blocks.  ``UNPACK(i)`` /``PACK(i)``
  create/consume buffer space along the path from level ``i`` to the
  leaves, each with one block transfer per level (cost ``O(mu v / 2^i)``);
  buffer presence at most doubles any context's address, which is harmless
  for (2, c)-uniform access functions.
* **Local computation** (Fig. 6): ``COMPUTE(n)`` brings contexts to the
  top in chunks of size ``c(n) ~ f(mu n)/mu``, recursively — overhead
  ``O(mu n c*(n)) = O(mu n log log(mu n))`` for any ``f(x) = O(x^alpha)``.
* **Communication** (Fig. 7): message delivery sorts the ``Theta(mu |C|)``
  constant-size elements of the cluster by destination tag.  The paper
  uses Approx-Median-Sort [2] (``O(m log m)`` time, ``Theta(m log log m)``
  space); we either charge that bound directly (``sort="ams"``, the
  default — the paper, too, imports the routine as a black box) or run the
  fully operational chunked merge sort of :mod:`repro.bt.sorting`
  (``sort="mergesort"``, an extra ``f*`` factor — see the ablation bench).
  ``ALIGN`` then restores one context per block in ``O(mu n log(mu n))``.

Theorem 12: a fine-grained program with ``lambda_i`` i-supersteps and
local computation ``O(tau)`` is simulated on ``f(x)``-BT, for any
(2, c)-uniform ``f(x) = O(x^alpha)``, in time
``O(v (tau + mu sum_i lambda_i log(mu v / 2^i)))`` — *independent of f*:
block transfer hides the access costs almost completely.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Literal

from repro.bt.machine import BTMachine
from repro.bt.sorting import bt_merge_sort
from repro.dbsp.cluster import cluster_of, cluster_size
from repro.dbsp.program import Message, ProcView, Program
from repro.functions import AccessFunction
from repro.obs.counters import NULL_COUNTERS, Counters
from repro.obs.trace import NULL_TRACER, SpanRecord, Tracer
from repro.sim.kernel import deliver_sorted
from repro.sim.smoothing import SmoothedProgram, build_label_set_bt, smooth_program

__all__ = ["BTSimulator", "BTSimResult", "LayoutSnapshot", "BT_PHASES"]

#: phase categories of the Fig. 5 scheme (the breakdown key set)
BT_PHASES = ("pack_unpack", "compute", "delivery", "swaps", "dummies")


@dataclass(frozen=True)
class LayoutSnapshot:
    """Block-level memory layout (drives the Figure 4 rendering).

    ``slots[k]`` is the processor whose context block ``k`` holds, or
    ``None`` for an empty buffer block.
    """

    stage: str
    slots: tuple[int | None, ...]


@dataclass
class BTSimResult:
    """Outcome of simulating a D-BSP program on the ``f(x)``-BT machine."""

    contexts: list[dict]
    time: float
    rounds: int
    smoothed: SmoothedProgram
    f: AccessFunction
    block_transfers: int
    layout_trace: list[LayoutSnapshot] = field(default_factory=list)
    #: charged time attributed to each phase: ``pack_unpack`` (Fig. 4
    #: buffer management), ``compute`` (Fig. 6 chunked local execution,
    #: including the guest's local time), ``delivery`` (Fig. 7 sort +
    #: ALIGN + space dance), ``swaps`` (step 4 cluster swaps), ``dummies``.
    #: A view over the span trace: per-category self-cost totals.
    breakdown: dict[str, float] = field(default_factory=dict)
    #: event counters (block transfers, words moved, messages, ...) —
    #: empty when observability is off
    counters: dict[str, int | float] = field(default_factory=dict)
    #: recorded spans (``trace="full"`` only)
    spans: list[SpanRecord] = field(default_factory=list)

    def slowdown(self, dbsp_time: float) -> float | None:
        """``None`` when the guest time is zero (no meaningful ratio)."""
        return self.time / dbsp_time if dbsp_time > 0 else None


class BTSimulator:
    """Figure 5's revised round scheduler on an operational BT machine.

    Parameters
    ----------
    f:
        Host access function; the analysis requires ``f(x) = O(x^alpha)``
        for some constant ``alpha < 1``.
    sort:
        ``"ams"`` charges Approx-Median-Sort's ``O(m log m)`` bound for
        each delivery sort (the paper's accounting); ``"mergesort"`` runs
        the operational chunked merge sort of :mod:`repro.bt.sorting`;
        ``"transpose"`` charges the rational-permutation routine of [2]
        (``Theta(m f*(m))``) instead of sorting — valid ONLY for programs
        whose supersteps route fixed regular permutations known in
        advance, e.g. the recursive FFT's transposes (the Section 6
        improvement; the engine cannot check this precondition).
    chunked_compute:
        Disable to replace ``COMPUTE``'s chunked recursion with one
        context at a time brought to the top by direct accesses — the
        ablation showing why Fig. 6 matters.
    """

    def __init__(
        self,
        f: AccessFunction,
        sort: Literal["ams", "mergesort", "transpose"] = "ams",
        chunked_compute: bool = True,
        c2: float = 0.75,
        check_invariants: bool = True,
        record_layout: bool = False,
        max_layout_snapshots: int = 512,
        trace: Literal["off", "counters", "phases", "full"] = "phases",
    ):
        self.f = f
        self.sort = sort
        self.chunked_compute = chunked_compute
        self.c2 = c2
        self.check_invariants = check_invariants
        self.record_layout = record_layout
        self.max_layout_snapshots = max_layout_snapshots
        if trace not in ("off", "counters", "phases", "full"):
            raise ValueError(f"unknown trace level {trace!r}")
        self.trace = trace

    def simulate(
        self, program: Program, label_set: list[int] | None = None
    ) -> BTSimResult:
        if label_set is None:
            label_set = build_label_set_bt(self.f, program.v, program.mu, self.c2)
        smoothed = smooth_program(program, label_set)
        run = _BTSimRun(self, smoothed)
        run.execute()
        run.tracer.assert_closed()
        if self.trace == "off":
            breakdown: dict[str, float] = {}
            counters: dict[str, int | float] = {}
        else:
            breakdown = {}
            if self.trace != "counters":
                breakdown = dict.fromkeys(BT_PHASES, 0.0)
                breakdown.update(run.tracer.phase_totals())
            run.counters.add("rounds", run.round_index)
            counters = run.counters.snapshot()
        return BTSimResult(
            contexts=run.contexts,
            time=run.machine.time,
            rounds=run.round_index,
            smoothed=smoothed,
            f=self.f,
            block_transfers=run.machine.block_transfers,
            layout_trace=run.layout_trace,
            breakdown=breakdown,
            counters=counters,
            spans=run.tracer.spans,
        )


class _BTSimRun:
    """Mutable state of one BT simulation run."""

    #: memory provisioning in blocks, as a multiple of v (contexts + buffers
    #: + sorting workspace; the paper assumes Theta(v log log v) memory)
    SLOT_FACTOR = 4

    def __init__(self, sim: BTSimulator, smoothed: SmoothedProgram):
        self.sim = sim
        self.smoothed = smoothed
        program = smoothed.program
        self.program = program
        self.v = program.v
        self.mu = program.mu
        self.steps = program.supersteps
        self.n_slots = self.SLOT_FACTOR * self.v
        if sim.trace == "off":
            self.counters = NULL_COUNTERS
        else:
            self.counters = Counters()
        self.machine = BTMachine(
            sim.f, self.n_slots * self.mu, op_cost=0.0, counters=self.counters
        )
        if sim.trace in ("off", "counters"):
            self.tracer = NULL_TRACER
        else:
            machine = self.machine
            self.tracer = Tracer(
                clock=lambda: machine.time, record=(sim.trace == "full")
            )
        #: slots[k]: pid whose context occupies block k, or None if empty
        self.slots: list[int | None] = list(range(self.v)) + [None] * (
            self.n_slots - self.v
        )
        self.pid_to_slot = list(range(self.v))
        self.contexts = program.initial_contexts()
        self.pending: list[list[Message]] = [[] for _ in range(self.v)]
        self.next_step = [0] * self.v
        self.round_index = 0
        self.layout_trace: list[LayoutSnapshot] = []
        # the Fig. 5/6 recursion replays the same (src, dst, n_blocks)
        # moves every round: memoize each triple's charged cost (the table
        # is immutable, so the cached float is the exact value
        # block_copy_cost would recompute), and batch the per-move counter
        # updates into one flush at the end of execute()
        self._move_cost: dict[tuple[int, int, int], float] = {}
        self._n_moves = 0
        self._moved_words = 0
        #: COMPUTE(n) charging plans, keyed by n (see _build_compute_plan)
        self._compute_plans: dict[int, tuple] = {}
        self._snapshot("initial")

    # ------------------------------------------------------------- helpers
    def _word(self, slot: int) -> int:
        return slot * self.mu

    def _snapshot(self, stage: str) -> None:
        if self.sim.record_layout and len(self.layout_trace) < self.sim.max_layout_snapshots:
            self.layout_trace.append(
                LayoutSnapshot(stage, tuple(self.slots[: 2 * self.v]))
            )

    def _charged_block_move(self, src: int, dst: int, n_blocks: int) -> None:
        """Move ``n_blocks`` context blocks ``src -> dst`` (one transfer).

        The destination blocks must be empty and disjoint from the source.
        Source blocks become empty.
        """
        if n_blocks <= 0:
            return
        machine = self.machine
        key = (src, dst, n_blocks)
        cost = self._move_cost.get(key)
        if cost is None:
            cost = machine.block_copy_cost(
                self._word(src), self._word(dst), n_blocks * self.mu
            )
            self._move_cost[key] = cost
        machine.time += cost
        machine.block_transfers += 1
        self._n_moves += 1
        self._moved_words += n_blocks * self.mu
        # slot bookkeeping via slice exchange (host-side only, no charging)
        slots = self.slots
        moved = slots[src : src + n_blocks]
        if slots[dst : dst + n_blocks].count(None) != n_blocks:
            for k in range(n_blocks):
                if slots[dst + k] is not None:
                    raise AssertionError(
                        f"block move {src}+{n_blocks}->{dst}: destination "
                        f"block {dst + k} is not empty"
                    )
        slots[dst : dst + n_blocks] = moved
        slots[src : src + n_blocks] = [None] * n_blocks
        pid_to_slot = self.pid_to_slot
        for k, pid in enumerate(moved):
            if pid is not None:
                pid_to_slot[pid] = dst + k

    def _swap_blocks_via_scratch(self, a: int, b: int, n_blocks: int) -> None:
        """Swap block ranges a/b using a nearby empty run: 3 block transfers."""
        scratch = self._find_empty_run(b, n_blocks, forbid=[(a, n_blocks), (b, n_blocks)])
        self._charged_block_move(a, scratch, n_blocks)
        self._charged_block_move(b, a, n_blocks)
        self._charged_block_move(scratch, b, n_blocks)

    def _find_empty_run(
        self, near: int, n_blocks: int, forbid: list[tuple[int, int]]
    ) -> int:
        """Nearest run of ``n_blocks`` empty slots to slot ``near``.

        The buffer layout (Fig. 4) guarantees an empty run of the needed
        size within O(near) blocks of any parked cluster, so the scratch
        the swap uses costs the same order as the swap itself.
        """

        def usable(start: int) -> bool:
            if start < 0 or start + n_blocks > self.n_slots:
                return False
            for flo, fn in forbid:
                if start < flo + fn and flo < start + n_blocks:
                    return False
            return all(
                self.slots[k] is None for k in range(start, start + n_blocks)
            )

        for dist in range(self.n_slots):
            if usable(near + dist):
                return near + dist
            if dist and usable(near - dist):
                return near - dist
        raise AssertionError(
            f"no empty run of {n_blocks} blocks available for a swap"
        )

    # ------------------------------------------------------ PACK / UNPACK
    def unpack(self, i: int) -> None:
        """Fig. 4: intersperse buffers through the topmost i-cluster."""
        t0 = self.machine.time
        log_v = self.program.log_v
        level = i
        while level < log_v:
            n = cluster_size(self.v, level)
            self._charged_block_move(n // 2, n, n // 2)
            level += 1
        self.tracer.add_leaf("UNPACK", "pack_unpack", t0, self.machine.time)

    def pack(self, i: int) -> None:
        """Reverse of :meth:`unpack`: compact the topmost i-cluster."""
        t0 = self.machine.time
        log_v = self.program.log_v
        for level in range(log_v - 1, i - 1, -1):
            n = cluster_size(self.v, level)
            self._charged_block_move(n, n // 2, n // 2)
        self.tracer.add_leaf("PACK", "pack_unpack", t0, self.machine.time)

    # --------------------------------------------------------------- main
    def execute(self) -> None:
        n_steps = len(self.steps)
        tracer = self.tracer
        self.unpack(0)  # step 0 of Fig. 5
        self._snapshot("unpack(0)")
        while True:
            top_pid = self.slots[0]
            assert top_pid is not None
            s = self.next_step[top_pid]
            if s >= n_steps:
                break
            label = self.steps[s].label
            csize = cluster_size(self.v, label)
            first_pid = cluster_of(top_pid, self.v, label) * csize

            self.round_index += 1
            tracer.open(
                "round",
                None,
                {"superstep": s, "label": label, "cluster": first_pid // csize}
                if tracer.record
                else None,
            )
            self.pack(label)  # step 1.a
            if self.sim.check_invariants:
                self._check_invariants(s, first_pid, csize)

            self._simulate_superstep(s, first_pid, csize)  # step 2

            if self.next_step[self.slots[0]] >= n_steps:  # step 3
                tracer.close()
                break
            if s + 1 < n_steps:
                next_label = self.steps[s + 1].label
                if next_label < label:  # step 4
                    self._cycle_swaps(label, next_label, first_pid, csize)
            self.unpack(label)  # step 5: UNPACK(is)
            tracer.close()
            self._snapshot(f"round {self.round_index} end")
        if self._n_moves:
            self.counters.add("block_transfers", self._n_moves)
            self.counters.add("words_moved", self._moved_words)
            self._n_moves = 0
            self._moved_words = 0

    # ---------------------------------------------------- step 2 (Fig. 7)
    def _simulate_superstep(self, s: int, first_pid: int, csize: int) -> None:
        step = self.steps[s]
        machine = self.machine
        tracer = self.tracer

        if step.is_dummy:
            t0 = machine.time
            machine.charge(float(csize))
            tracer.add_leaf("dummy", "dummies", t0, machine.time)
            self.counters.add("dummy_supersteps")
            for k in range(csize):
                self.next_step[self.slots[k]] += 1
            return

        outgoing: list[tuple[int, Message]] = []
        t0 = machine.time
        self._compute(csize, s, outgoing)
        tracer.add_leaf("COMPUTE", "compute", t0, machine.time)
        for k in range(csize):
            self.next_step[self.slots[k]] += 1
        tracer.open("DELIVER", "delivery")
        self._deliver_messages(csize, outgoing)
        tracer.close()
        self.counters.add("messages", len(outgoing))

    # ------------------------------------------------------------- Fig. 6
    def _chunk_size(self, n: int) -> int:
        """``c(n)``: greatest power of two <= min(f(mu n)/mu, n/2)."""
        bound = min(self.machine.f(self.mu * n) / self.mu, n / 2)
        if bound < 1.0:
            return 1
        return 1 << (int(bound).bit_length() - 1)

    def _compute(self, n: int, s: int, outgoing: list) -> None:
        """Run superstep ``s``'s bodies for the packed top ``n`` blocks."""
        if not self.sim.chunked_compute:
            # ablation: access each context at its resting depth directly
            for k in range(n):
                lo = self._word(k)
                self.machine.touch_range(lo, lo + self.mu)
                self.machine.touch_range(lo, lo + self.mu)
                self._run_body(self.slots[k], s, outgoing)
            return
        plan = self._compute_plans.get(n)
        if plan is None:
            plan = self._build_compute_plan(n)
            self._compute_plans[n] = plan
        segments, order, n_moves, moved_words = plan
        machine = self.machine
        slots = self.slots
        t = machine.time
        for idx, origin in enumerate(order):
            for cost in segments[idx]:
                t += cost
            machine.time = t
            self._run_body(slots[origin], s, outgoing)
            t = machine.time
        for cost in segments[-1]:
            t += cost
        machine.time = t
        machine.block_transfers += n_moves
        self._n_moves += n_moves
        self._moved_words += moved_words
        self.counters.add("words_touched", 2 * self.mu * len(order))

    def _build_compute_plan(
        self, n: int
    ) -> tuple[list[list[float]], list[int], int, int]:
        """Precompute COMPUTE(n)'s charged move/touch sequence (Fig. 6).

        The chunked recursion's block moves depend only on ``n`` — the
        identical geometry replays every round — so it is simulated once
        on a virtual slot array, producing (a) cost *segments*: the charged
        floats to add between consecutive body executions, each exactly
        what ``block_copy_cost``/``touch_range`` would charge, in the same
        order (replaying keeps the charged time bit-identical to running
        the recursion); (b) the *order*: for the k-th body executed, the
        slot its context occupies at round start.  The recursion returns
        every block to its starting slot (asserted below), so replays skip
        the per-move slot bookkeeping entirely.
        """
        mu = self.mu
        machine = self.machine
        vslots: list[int | None] = list(range(n)) + [None] * (self.n_slots - n)
        segments: list[list[float]] = [[]]
        order: list[int] = []
        counts = [0, 0]  # block transfers, words moved
        top_touch = machine.table.range_cost(0, mu)

        def move(src: int, dst: int, n_blocks: int) -> None:
            if n_blocks <= 0:
                return
            if any(x is not None for x in vslots[dst : dst + n_blocks]):
                raise AssertionError(
                    f"compute plan {n}: move {src}+{n_blocks}->{dst} hits "
                    f"a non-empty destination block"
                )
            segments[-1].append(
                machine.block_copy_cost(src * mu, dst * mu, n_blocks * mu)
            )
            counts[0] += 1
            counts[1] += n_blocks * mu
            vslots[dst : dst + n_blocks] = vslots[src : src + n_blocks]
            vslots[src : src + n_blocks] = [None] * n_blocks

        def shift(lo: int, hi: int, delta: int) -> None:
            # shift blocks [lo, hi) by delta in chunks of |delta|
            if delta == 0 or hi <= lo:
                return
            step = abs(delta)
            if delta > 0:
                pos = hi
                while pos > lo:
                    length = min(step, pos - lo)
                    move(pos - length, pos - length + delta, length)
                    pos -= length
            else:
                pos = lo
                while pos < hi:
                    length = min(step, hi - pos)
                    move(pos, pos + delta, length)
                    pos += length

        def swap_partial(a: int, b: int, length: int, c: int) -> None:
            # swap `length` blocks at a/b through the free run at [c, 2c)
            if length:
                move(a, c, length)
            move(b, a, length)
            move(c, b, length)

        def rec(m: int) -> None:
            if m == 1:
                # context at block 0: run the body with near-top accesses
                seg = segments[-1]
                seg.append(top_touch)
                seg.append(top_touch)
                order.append(vslots[0])
                segments.append([])
                return
            c = self._chunk_size(m)
            # shift blocks [c, m) right by c, freeing [c, 2c)
            shift(c, m, c)
            rec(c)
            n_chunks = -(-(m - c) // c)  # remaining chunks, now at [2c, m + c)
            for j in range(n_chunks):
                lo = 2 * c + j * c
                length = min(c, (m + c) - lo)
                swap_partial(0, lo, length, c)
                rec(length)
                swap_partial(lo, 0, length, c)
            shift(2 * c, m + c, -c)

        rec(n)
        assert vslots[:n] == list(range(n)), "COMPUTE must restore the layout"
        return segments, order, counts[0], counts[1]

    def _run_body(self, pid: int, s: int, outgoing: list) -> None:
        step = self.steps[s]
        inbox = self.pending[pid]  # kept ordered at delivery time
        self.pending[pid] = []
        view = ProcView(pid, self.v, self.mu, step.label, self.contexts[pid], inbox)
        step.body(view)
        self.machine.charge(view.local_time)
        outgoing.extend(view.outbox)

    # ------------------------------------------------------------- Fig. 7
    def _sort_space(self, m: int) -> int:
        """``L(i_s)``: workspace (in words) for the delivery sort of m elements."""
        if self.sim.sort == "mergesort":
            return 2 * m  # merge sort: data copy + scratch
        return int(m * max(1.0, math.log2(max(math.log2(max(m, 2)), 2))))

    def _deliver_messages(self, csize: int, outgoing: list) -> None:
        """Sort-based delivery of the superstep's messages (Fig. 7)."""
        machine = self.machine
        tracer = self.tracer
        mu = self.mu
        m = mu * csize  # elements to sort (constant-size context pieces)
        words_avail = (self.n_slots - csize) * mu
        space = min(self._sort_space(m), words_avail)

        # space dance (Fig. 7): UNPACK(is); PACK(ik); shift the blocks below
        # the cluster out of the way, opening an L(is)-word gap for sorting.
        # All of it is O(L(is)) block-transfer work, dominated by the sort.
        if space > csize * mu:
            t0 = machine.time
            machine.time += 4.0 * space
            tracer.add_leaf("space-dance", "delivery", t0, machine.time)

        if self.sim.sort == "ams":
            # Approx-Median-Sort bound of [2]: O(m log m) for f = O(x^alpha)
            t0 = machine.time
            machine.charge(m * math.log2(max(m, 2)))
            tracer.add_leaf("sort", "delivery", t0, machine.time)
        elif self.sim.sort == "transpose":
            # Section 6: the superstep routes a known rational permutation,
            # delivered by [2]'s routine at Theta(m f*(m)); no ALIGN needed
            # since regular routing leaves context sizes unchanged
            t0 = machine.time
            machine.charge(float(m) * self.sim.f.star(m))
            tracer.add_leaf("transpose-route", "delivery", t0, machine.time)
            deliver_sorted(self.pending, outgoing)
            return
        else:
            # operational delivery sort: order the cluster's elements by
            # destination tag with the chunked BT merge sort
            tracer.open("sort")
            base = csize * mu
            tags = [
                (self.pid_to_slot[dest], k)
                for k, (dest, _msg) in enumerate(outgoing)
            ]
            tags.extend((k // mu, mu + k % mu) for k in range(m - len(tags)))
            machine.mem[base : base + m] = tags
            bt_merge_sort(machine, base, m)
            tracer.close()

        # ALIGN(|C|): restore one context per block
        t0 = machine.time
        machine.time += self._align_cost(csize)
        tracer.add_leaf("ALIGN", "delivery", t0, machine.time)

        # semantics: file every message into its destination's buffer
        deliver_sorted(self.pending, outgoing)

    def _align_cost(self, n: int) -> float:
        """Cost recursion of ALIGN(n): T(n) = 2 T(n/2) + O(mu n)."""
        machine = self.machine
        total = 0.0
        size = n
        levels = []
        while size > 1:
            levels.append(size)
            size //= 2
        for idx, size in enumerate(levels):
            copies = 1 << idx  # 2^idx subproblems of this size at this depth
            per = (
                3.0 * machine.block_copy_cost(0, self._word(size), size * self.mu // 2)
                if size >= 2
                else float(self.mu)
            )
            # binary search to locate the median context: O(log) accesses
            per += math.log2(max(size * self.mu, 2)) * machine.f(self._word(2 * size))
            total += copies * per
        return total

    # ------------------------------------------------- step 4 of the round
    def _cycle_swaps(
        self, label: int, next_label: int, first_pid: int, csize: int
    ) -> None:
        b = 1 << (label - next_label)
        parent_size = cluster_size(self.v, next_label)
        parent_first = cluster_of(first_pid, self.v, next_label) * parent_size
        j = (first_pid - parent_first) // csize

        t0 = self.machine.time
        if j > 0:
            c0_first = parent_first  # pids of C0
            c0_slot = self.pid_to_slot[c0_first]
            self._check_parked(c0_first, c0_slot, csize)
            self._swap_blocks_via_scratch(0, c0_slot, csize)
            self.counters.add("context_swaps", 2 * csize)
        if j < b - 1:
            nxt_first = parent_first + (j + 1) * csize
            nxt_slot = self.pid_to_slot[nxt_first]
            self._check_parked(nxt_first, nxt_slot, csize)
            self._swap_blocks_via_scratch(0, nxt_slot, csize)
            self.counters.add("context_swaps", 2 * csize)
        self.tracer.add_leaf("cycle-swaps", "swaps", t0, self.machine.time)

    def _check_parked(self, first_pid: int, slot: int, csize: int) -> None:
        if not self.sim.check_invariants:
            return
        if self.slots[slot : slot + csize] != list(
            range(first_pid, first_pid + csize)
        ):
            raise AssertionError(
                f"parked cluster starting at P{first_pid} is not "
                f"contiguous at slots [{slot}, {slot + csize})"
            )

    # ---------------------------------------------------------- invariants
    def _check_invariants(self, s: int, first_pid: int, csize: int) -> None:
        # slice comparisons run at C speed; the scalar loop is only
        # revisited on failure, to name the offending block/processor
        ok = self.slots[:csize] == list(
            range(first_pid, first_pid + csize)
        ) and self.next_step[first_pid : first_pid + csize] == [s] * csize
        if ok:
            return
        for k in range(csize):
            pid = self.slots[k]
            if pid != first_pid + k:
                raise AssertionError(
                    f"Invariant 2 violated at round {self.round_index}: block {k} "
                    f"holds {pid}, expected P{first_pid + k}"
                )
            if self.next_step[pid] != s:
                raise AssertionError(
                    f"Invariant 1 violated at round {self.round_index}: P{pid} at "
                    f"superstep {self.next_step[pid]}, cluster expects {s}"
                )
