"""Simulation of D-BSP programs on the HMM (Section 3, Figure 1).

The guest is a fine-grained ``D-BSP(v, mu, g(x))`` program; the host is an
``f(x)``-HMM whose memory is divided into ``v`` blocks of ``mu`` words,
block 0 at the top.  Block ``j`` initially holds the context of processor
``P_j``; the association changes as the simulation proceeds.

Each *round* simulates one superstep ``s`` for one s-ready ``i_s``-cluster
``C`` and then performs the context swaps that schedule the next round.
The scheduler deliberately advances different clusters unevenly — a cluster
is kept on top of memory through whole runs of fine-grained supersteps, so
the submachine locality of the guest becomes temporal locality on the host.

Two invariants hold at the start of every round (proved by Theorem 4 and
checked here, optionally, at runtime):

1. the cluster about to be simulated is s-ready (all its processors have
   simulated exactly supersteps ``0 .. s-1``);
2. its contexts occupy the topmost ``|C|`` blocks sorted by processor id,
   and every other cluster's contexts are contiguous in memory.

Theorem 5: a program with per-processor computation time ``O(tau)`` and
``lambda_i`` i-supersteps is simulated in time
``O(v (tau + mu sum_i lambda_i f(mu v / 2^i)))``.  With ``g = f`` this is
an optimal ``Theta(T v)`` (Corollary 6).
"""

from __future__ import annotations

import os
from array import array
from bisect import insort
from dataclasses import dataclass, field
from typing import Literal

from repro.dbsp.cluster import cluster_of, cluster_size
from repro.dbsp.program import Message, ProcView, Program, Superstep
from repro.functions import AccessFunction
from repro.hmm.machine import HMMMachine
from repro.obs.counters import NULL_COUNTERS, Counters
from repro.obs.trace import NULL_TRACER, SpanRecord, Tracer
from repro.parallel.config import ParallelConfig, resolve_parallel, warn_fallback_once
from repro.sim.smoothing import SmoothedProgram, build_label_set_hmm, smooth_program

__all__ = [
    "HMMSimulator",
    "HMMSimResult",
    "RoundSnapshot",
    "HMM_PHASES",
    "FlatTape",
    "SpanTape",
]

#: phase categories of the Fig. 1 scheme (the breakdown key set)
HMM_PHASES = ("local", "cycling", "delivery", "swaps", "dummies")


@dataclass(frozen=True)
class RoundSnapshot:
    """State captured at the start of a round (drives the Figure 2 rendering)."""

    round_index: int
    superstep: int
    label: int
    #: pid occupying each block slot, top of memory first
    slot_to_pid: tuple[int, ...]
    #: next superstep to simulate, per processor
    next_step: tuple[int, ...]


class FlatTape:
    """Charge tape without span structure.

    Recorded by worker processes when the parent runs at trace level
    ``off`` or ``counters``: just the elementary charges (every single
    ``time += c`` the simulation performs), in execution order.  The
    parent re-folds them onto its own clock — float addition is not
    associative, so shipping per-cluster *totals* would not reproduce the
    serial clock bit-for-bit, but re-folding the identical charge
    sequence from the identical starting value does.
    """

    __slots__ = ("charges",)

    def __init__(self):
        self.charges = array("d")

    def leaf(self, name: str, category: str, charges) -> None:
        self.charges.extend(charges)

    def open(self, name: str, category: str | None) -> None:
        pass

    def close(self) -> None:
        pass

    def data(self):
        return self.charges


class SpanTape:
    """Charge tape with span markers (parent trace level ``phases``).

    Besides the elementary charges (grouped per leaf), records the
    open/close structure of the worker's spans so the parent can replay
    them into its own tracer: entries are ``("o", name, category)`` /
    ``("c",)`` markers and ``("l", name, category, charges)`` leaves.
    Replaying reproduces the parent tracer's totals, counts and
    child-cost attribution exactly as the serial run would have produced
    them — including the ±ulp self-cost that round spans attribute to
    the ``other`` category.
    """

    __slots__ = ("entries",)

    def __init__(self):
        self.entries: list[tuple] = []

    def leaf(self, name: str, category: str, charges) -> None:
        self.entries.append(("l", name, category, tuple(charges)))

    def open(self, name: str, category: str | None) -> None:
        self.entries.append(("o", name, category))

    def close(self) -> None:
        self.entries.append(("c",))

    def data(self):
        return self.entries


@dataclass
class HMMSimResult:
    """Outcome of simulating a D-BSP program on the ``f(x)``-HMM."""

    contexts: list[dict]
    time: float
    rounds: int
    smoothed: SmoothedProgram
    f: AccessFunction
    trace: list[RoundSnapshot] = field(default_factory=list)
    #: messages left undelivered when the program ended (consumed by the
    #: Brent self-simulation, which chains runs of supersteps)
    pending: list[list[Message]] = field(default_factory=list)
    #: charged time attributed to each phase of the scheme:
    #: ``local`` (guest computation), ``cycling`` (contexts to/from the
    #: top inside Step 2), ``delivery`` (message exchange), ``swaps``
    #: (Step 4 cluster swaps), ``dummies`` (smoothing overhead).
    #: A view over the span trace: per-category self-cost totals.
    breakdown: dict[str, float] = field(default_factory=dict)
    #: event counters (words touched/moved, messages, context swaps,
    #: rounds, ...) — empty when observability is off
    counters: dict[str, int | float] = field(default_factory=dict)
    #: recorded spans (``trace="full"`` only)
    spans: list[SpanRecord] = field(default_factory=list)

    def slowdown(self, dbsp_time: float) -> float | None:
        """Measured slowdown w.r.t. the guest D-BSP running time.

        ``None`` when the guest time is zero (no meaningful ratio) — the
        same convention as :class:`repro.engines.EngineResult.slowdown`.
        """
        return self.time / dbsp_time if dbsp_time > 0 else None


class HMMSimulator:
    """Figure 1's round-based scheduler, operational and fully charged.

    Parameters
    ----------
    f:
        Host access function (must be (2, c)-uniform).
    c2:
        Smoothing constant for the label-set construction (§3).
    check_invariants:
        ``"top"`` verifies Invariants 1-2 for the cluster about to be
        simulated on every round (cheap); ``"full"`` additionally verifies
        the contiguity of *every* parked cluster (quadratic — tests only);
        ``"off"`` disables checking.
    record_trace:
        Capture a :class:`RoundSnapshot` per round (Figure 2 data).
    trace:
        Observability level (:mod:`repro.obs`): ``"phases"`` (default)
        aggregates per-phase cost totals and event counters — this is
        what fills ``breakdown``/``counters`` on the result; ``"full"``
        additionally records every span for export/profiling;
        ``"counters"`` keeps the event counters but drops the span
        layer (what ``python -m repro bench`` measures under);
        ``"off"`` disables the layer entirely (no-op hooks;
        ``breakdown`` and ``counters`` come back empty).
    parallel:
        Host-parallelism policy (:mod:`repro.parallel`): a
        :class:`~repro.parallel.config.ParallelConfig`, a worker-process
        count, or ``None`` to read ``REPRO_JOBS`` from the environment.
        With ``jobs > 1``, independent per-cluster simulations within a
        round are dispatched to worker processes — charged time,
        counters and breakdowns stay **bit-identical** to the serial
        path (only wall clock changes).  Incompatible observability
        modes (``trace="full"``, ``record_trace``,
        ``check_invariants="full"``) silently run serially.
    kernel:
        ``"scalar"`` runs the round loop one charge at a time (the
        reference path); ``"vec"`` compiles the schedule into a
        :class:`~repro.sim.hmm_vec.ChargePlan` and executes whole
        supersteps as array programs — charged time, counters,
        breakdowns and spans stay **bit-identical** (only wall clock
        changes).  ``None`` reads ``REPRO_ENGINE`` from the environment
        (``vec`` selects the vectorized kernel; anything else, or
        unset, selects scalar).  Modes the vectorized kernel does not
        cover (``record_trace``, ``check_invariants="full"``, the
        parallel driver's inline serial bursts) silently run scalar.
    """

    def __init__(
        self,
        f: AccessFunction,
        c2: float = 0.5,
        check_invariants: Literal["top", "full", "off"] = "top",
        record_trace: bool = False,
        max_trace_rounds: int = 4096,
        trace: Literal["off", "counters", "phases", "full"] = "phases",
        parallel: "ParallelConfig | int | None" = None,
        kernel: Literal["scalar", "vec"] | None = None,
    ):
        self.f = f
        self.c2 = c2
        self.check_invariants = check_invariants
        self.record_trace = record_trace
        self.max_trace_rounds = max_trace_rounds
        if trace not in ("off", "counters", "phases", "full"):
            raise ValueError(f"unknown trace level {trace!r}")
        self.trace = trace
        self.parallel = resolve_parallel(parallel)
        if kernel is None:
            kernel = "vec" if os.environ.get("REPRO_ENGINE") == "vec" else "scalar"
        if kernel not in ("scalar", "vec"):
            raise ValueError(f"unknown kernel {kernel!r}")
        self.kernel = kernel
        # per-(v, mu) charged-cost lists shared by every run on this
        # simulator — the Brent engine re-enters simulate() once per host
        # per fine run, always with the same program shape
        self._run_artifacts: dict[tuple[int, int], tuple[list, list]] = {}

    # ------------------------------------------------------------ frontend
    def simulate(
        self,
        program: Program,
        label_set: list[int] | None = None,
        initial_contexts: list[dict] | None = None,
        initial_pending: list[list[Message]] | None = None,
    ) -> HMMSimResult:
        """Simulate ``program``; return final contexts, charged time, trace.

        ``initial_contexts`` / ``initial_pending`` override the program's
        own initial state — the Brent self-simulation uses them to chain
        runs of supersteps while preserving in-flight messages.
        """
        if label_set is None:
            label_set = build_label_set_hmm(
                self.f, program.v, program.mu, self.c2
            )
        smoothed = smooth_program(program, label_set)
        run = _HMMSimRun(self, smoothed, initial_contexts, initial_pending)
        cfg = self.parallel
        if (
            cfg.enabled
            and self.trace != "full"
            and not self.record_trace
            and self.check_invariants != "full"
        ):
            run.execute_parallel(cfg)
        else:
            run.execute()
        run.tracer.assert_closed()
        if self.trace == "off":
            breakdown: dict[str, float] = {}
            counters: dict[str, int | float] = {}
        else:
            breakdown = {}
            if self.trace != "counters":
                breakdown = dict.fromkeys(HMM_PHASES, 0.0)
                breakdown.update(run.tracer.phase_totals())
            run.counters.add("rounds", run.round_index)
            counters = run.counters.snapshot()
        return HMMSimResult(
            contexts=run.contexts,
            time=run.machine.time,
            rounds=run.round_index,
            smoothed=smoothed,
            f=self.f,
            trace=run.trace,
            pending=run.pending,
            breakdown=breakdown,
            counters=counters,
            spans=run.tracer.spans,
        )


class _HMMSimRun:
    """Mutable state of one simulation run."""

    def __init__(
        self,
        sim: HMMSimulator,
        smoothed: SmoothedProgram,
        initial_contexts: list[dict] | None = None,
        initial_pending: list[list[Message]] | None = None,
    ):
        self.sim = sim
        self.smoothed = smoothed
        program = smoothed.program
        self.program = program
        self.v = program.v
        self.mu = program.mu
        self.steps = program.supersteps
        if sim.trace == "off":
            self.counters = NULL_COUNTERS
        else:
            self.counters = Counters()
        self.machine = HMMMachine(
            sim.f, self.v * self.mu, op_cost=0.0, counters=self.counters
        )
        if sim.trace in ("off", "counters"):
            self.tracer = NULL_TRACER
        else:
            machine = self.machine
            self.tracer = Tracer(
                clock=lambda: machine.time, record=(sim.trace == "full")
            )
        # block layout: slot k holds the context of slot_to_pid[k]
        self.slot_to_pid = list(range(self.v))
        self.pid_to_slot = list(range(self.v))
        self.contexts = (
            initial_contexts
            if initial_contexts is not None
            else program.initial_contexts()
        )
        # inboxes are kept ordered at delivery time (insort), so consumers
        # read them without a per-superstep re-sort; caller-supplied boxes
        # are sorted once here
        self.pending: list[list[Message]] = (
            [sorted(box) for box in initial_pending]
            if initial_pending is not None
            else [[] for _ in range(self.v)]
        )
        # per-slot context-block cost, reused every cycling charge instead
        # of re-deriving it from the prefix table (same floats, same order
        # of addition — charged time is bit-identical)
        mu = self.mu
        cached = sim._run_artifacts.get((self.v, mu))
        if cached is None:
            table = self.machine.table
            cached = (
                [table.range_cost(k * mu, (k + 1) * mu) for k in range(self.v)],
                # cost of touching the first word of each slot's block —
                # the message-endpoint charge of the delivery scan (same
                # float the prefix fold would gather for address k * mu)
                [table.access(k * mu) for k in range(self.v)],
            )
            sim._run_artifacts[(self.v, mu)] = cached
        self._block_cost, self._slot_word_cost = cached
        # recycled per-body view (see _simulate_superstep); pid/ctx/inbox/
        # label/local_time are reset before every body call
        self._view = ProcView(0, self.v, mu, 0, {}, [])
        self.next_step = [0] * self.v
        self.round_index = 0
        self.trace: list[RoundSnapshot] = []
        #: charge tape (:class:`FlatTape` / :class:`SpanTape`), set by
        #: worker processes only; ``None`` on the serial/parent path
        self.tape_rec: "FlatTape | SpanTape | None" = None

    # ------------------------------------------------------------- helpers
    def _word(self, slot: int, offset: int = 0) -> int:
        return slot * self.mu + offset

    def _block_range(self, slot: int) -> tuple[int, int]:
        return slot * self.mu, (slot + 1) * self.mu

    def _swap_slot_ranges(self, a: int, b: int, length: int) -> None:
        """Swap the contents of block slots [a, a+length) and [b, b+length)."""
        t0 = self.machine.time
        charge = self.machine.swap_ranges(
            self._word(a), self._word(b), length * self.mu
        )
        self.tracer.add_leaf("swap", "swaps", t0, self.machine.time)
        if self.tape_rec is not None:
            self.tape_rec.leaf("swap", "swaps", (charge,))
        self.counters.add("context_swaps", 2 * length)
        # slot bookkeeping via slice exchange (host-side only, no charging)
        pids_a = self.slot_to_pid[a : a + length]
        pids_b = self.slot_to_pid[b : b + length]
        self.slot_to_pid[a : a + length] = pids_b
        self.slot_to_pid[b : b + length] = pids_a
        pid_to_slot = self.pid_to_slot
        for k, pid in enumerate(pids_a):
            pid_to_slot[pid] = b + k
        for k, pid in enumerate(pids_b):
            pid_to_slot[pid] = a + k

    # --------------------------------------------------------------- main
    def execute(self, stop: int | None = None) -> None:
        """Run rounds until the program ends.

        With ``stop``, run only until the cluster on top of memory
        reaches superstep ``stop`` (exclusive).  The parallel driver uses
        this to advance the simulation in serial bursts that end exactly
        at cluster boundaries: all in-round logic (including the
        inter-cluster context swaps of a round whose *next* superstep is
        at or past ``stop``) still runs, so the state at the cut is
        bit-identical to a full serial run paused at the same point.

        Full runs on a ``kernel="vec"`` simulator are dispatched to the
        vectorized kernel (:mod:`repro.sim.hmm_vec`); partial runs
        (``stop``) and the modes the kernel does not cover fall through
        to the scalar loop.  Both produce the identical charge sequence,
        so the choice is invisible to everything downstream.
        """
        if stop is None and self.sim.kernel == "vec" and self._vec_ok():
            from repro.sim.hmm_vec import execute_vec

            execute_vec(self)
            return
        self._execute_scalar(stop)

    def _vec_ok(self) -> bool:
        sim = self.sim
        return (
            not sim.record_trace
            and sim.check_invariants != "full"
            and not isinstance(self.tape_rec, SpanTape)
            and self.round_index == 0
        )

    def _execute_scalar(self, stop: int | None = None) -> None:
        """The reference round loop, one elementary charge at a time."""
        steps = self.steps
        n_steps = len(steps)
        limit = n_steps if stop is None else min(stop, n_steps)
        tracer = self.tracer
        tracing = tracer.enabled
        rec = self.tape_rec
        slot_to_pid = self.slot_to_pid
        next_step = self.next_step
        v = self.v
        checking = self.sim.check_invariants != "off"
        recording = self.sim.record_trace
        while True:
            top_pid = slot_to_pid[0]
            s = next_step[top_pid]
            if s >= limit:
                break
            label = steps[s].label
            # cluster_size / cluster_of, inlined: clusters are aligned
            # power-of-two blocks, so first_pid is top_pid rounded down
            csize = v >> label
            first_pid = top_pid & -csize

            if checking:
                self._check_invariants(s, label, first_pid, csize)
            if recording and len(self.trace) < self.sim.max_trace_rounds:
                self.trace.append(
                    RoundSnapshot(
                        self.round_index,
                        s,
                        label,
                        tuple(slot_to_pid),
                        tuple(next_step),
                    )
                )
            self.round_index += 1
            if tracing:
                tracer.open(
                    "round",
                    None,
                    {"superstep": s, "label": label, "cluster": first_pid // csize}
                    if tracer.record
                    else None,
                )
            if rec is not None:
                rec.open("round", None)

            self._simulate_superstep(s, first_pid, csize)

            done = next_step[slot_to_pid[0]] >= n_steps
            if not done and s + 1 < n_steps:
                next_label = steps[s + 1].label
                if next_label < label:
                    self._cycle_swaps(label, next_label, first_pid, csize)
            if tracing:
                tracer.close()
            if rec is not None:
                rec.close()
            if done:
                break

    # ------------------------------------------------- step 2 of the round
    def _simulate_superstep(self, s: int, first_pid: int, csize: int) -> None:
        """Simulate superstep ``s`` for the cluster on top of memory."""
        step = self.steps[s]
        machine = self.machine
        tracer = self.tracer
        mu = self.mu

        rec = self.tape_rec
        if step.is_dummy:
            # no computation, no communication: only the unit sync charge
            t0 = machine.time
            machine.charge(float(csize))
            tracer.add_leaf("dummy", "dummies", t0, machine.time)
            if rec is not None:
                rec.leaf("dummy", "dummies", (float(csize),))
            self.counters.add("dummy_supersteps")
            for k in range(csize):
                self.next_step[self.slot_to_pid[k]] += 1
            return

        outgoing: list[tuple[int, Message]] = []
        block_cost = self._block_cost
        top_cost = block_cost[0]
        counters = self.counters
        tracing = tracer.enabled
        slot_to_pid = self.slot_to_pid
        pending = self.pending
        contexts = self.contexts
        next_step = self.next_step
        label = step.label
        body = step.body
        extend = outgoing.extend
        # one ProcView is recycled across the loop: the engine owns it for
        # exactly the duration of one body call, and bodies must not
        # retain views past their superstep (the documented discipline)
        view = self._view
        view.label = label
        outbox = view.outbox
        clear = outbox.clear
        # the charged clock is kept in a local and written back once: no
        # span opens inside this loop, so nothing reads machine.time until
        # the delivery fold below
        t = machine.time
        for k in range(csize):
            pid = slot_to_pid[k]
            # bring the context to the top of memory and back: the paper
            # charges a constant number of accesses to blocks k and 0
            # (two touches of block k, two of block 0 — charged from the
            # cached per-slot costs in the same order as touch_range)
            if k > 0:
                t0 = t
                bc = block_cost[k]
                t = t0 + bc
                t += bc
                t += top_cost
                t += top_cost
                if tracing:
                    tracer.add_leaf("cycle-context", "cycling", t0, t)
                if rec is not None:
                    rec.leaf(
                        "cycle-context", "cycling", (bc, bc, top_cost, top_cost)
                    )
            view.pid = pid
            view.ctx = contexts[pid]
            view.inbox = pending[pid]  # kept ordered at delivery time
            pending[pid] = []
            view.local_time = 1.0
            body(view)
            t0 = t
            t = t0 + view.local_time
            if tracing:
                tracer.add_leaf("local", "local", t0, t)
            if rec is not None:
                rec.leaf("local", "local", (view.local_time,))
            extend(outbox)
            clear()
            next_step[pid] += 1
        if csize > 1:
            # integer sum over the loop, batched (addition is associative)
            counters.add("words_touched", 4 * mu * (csize - 1))

        # message exchange: scan outgoing buffers and deliver each message
        # to the destination's incoming buffer; both endpoints live in the
        # topmost |C| blocks, located via the sorted-by-pid invariant.
        # Charging folds the per-endpoint word costs in message order —
        # the same float sequence as per-message pairs of length-1
        # touch_range calls (and as a touch_addresses gather over the
        # interleaved src/dst addresses).
        t0 = t
        pid_to_slot = self.pid_to_slot
        word_cost = self._slot_word_cost
        if rec is None:
            for dest, msg in outgoing:
                insort(pending[dest], msg)
                t += word_cost[pid_to_slot[msg.src]]
                t += word_cost[pid_to_slot[dest]]
        else:
            charges: list[float] = []
            append = charges.append
            for dest, msg in outgoing:
                insort(pending[dest], msg)
                c_src = word_cost[pid_to_slot[msg.src]]
                c_dst = word_cost[pid_to_slot[dest]]
                t += c_src
                t += c_dst
                append(c_src)
                append(c_dst)
            rec.leaf("delivery", "delivery", charges)
        machine.time = t
        if tracing:
            tracer.add_leaf("delivery", "delivery", t0, t)
        counters.add("words_touched", 2 * len(outgoing))
        counters.add("messages", len(outgoing))

    # ------------------------------------------------- step 4 of the round
    def _cycle_swaps(
        self, label: int, next_label: int, first_pid: int, csize: int
    ) -> None:
        """Context swaps preparing the next phase of the current cycle."""
        b = 1 << (label - next_label)
        parent_size = cluster_size(self.v, next_label)
        parent_first = cluster_of(first_pid, self.v, next_label) * parent_size
        j = (first_pid - parent_first) // csize

        self.tracer.open("cycle-swaps", "swaps")
        rec = self.tape_rec
        if rec is not None:
            rec.open("cycle-swaps", "swaps")
        if j > 0:
            # C (on top) <-> C0 (parked at C's home, slot range j)
            self._swap_slot_ranges(0, j * csize, csize)
        if j < b - 1:
            # C0 (now on top) <-> C_{j+1} (at its home, slot range j+1)
            self._swap_slot_ranges(0, (j + 1) * csize, csize)
        self.tracer.close()
        if rec is not None:
            rec.close()

    # ------------------------------------------------ parallel round driver
    def execute_parallel(self, cfg: ParallelConfig) -> None:
        """Run the schedule, fanning independent clusters out to workers.

        The smoothed schedule decomposes into maximal *segments* of
        supersteps with nonzero labels; within a segment the ``1 << l1``
        top-level clusters (``l1 = label_set[1]``) evolve independently,
        so each is simulated in a worker process and the charged costs
        are re-folded here **in cluster order** — bit-identical to the
        serial path (each worker returns a charge tape of the elementary
        ``time +=`` operands, replayed in sequence on the parent clock).

        Label-0 supersteps, undersized segments (per the
        ``min_work_per_task`` gate) and any segment whose dispatch fails
        run inline via :meth:`execute`, whose ``stop`` parameter pauses
        exactly at segment boundaries.
        """
        from repro.parallel.pool import PoolUnavailable, shared_pool

        steps = self.steps
        n_steps = len(steps)
        label_set = self.smoothed.label_set
        if len(label_set) < 2 or label_set[1] < 1:
            # degenerate schedule (v == 1): nothing to fan out
            self.execute()
            return
        l1 = label_set[1]
        v_sub = self.v >> l1
        pool = None
        pos = 0
        while pos < n_steps:
            if steps[pos].label == 0:
                self.execute(stop=pos + 1)
                pos += 1
                continue
            end = pos
            while end < n_steps and steps[end].label != 0:
                end += 1
            # smoothed programs end with a global sync, so end < n_steps
            if (end - pos) * v_sub < cfg.min_work_per_task:
                self.execute(stop=end)
                pos = end
                continue
            try:
                if pool is None:
                    pool = shared_pool(cfg.jobs)
                self._run_segment_parallel(
                    pool, pos, end, l1, v_sub, cfg.retry
                )
            except PoolUnavailable as exc:
                if not cfg.fallback:
                    raise
                warn_fallback_once(
                    f"parallel round scheduling degraded to serial: {exc}"
                )
                self.execute(stop=end)
            pos = end

    def _run_segment_parallel(
        self, pool, pos: int, end: int, l1: int, v_sub: int, policy=None
    ) -> None:
        """Dispatch one segment's clusters to the pool and merge in order.

        The shifted sub-program (labels ``- l1``, bodies wrapped to see
        global pids) is pickled once; each cluster's task adds only its
        context/pending slices.  Raises ``PoolUnavailable`` before any
        state is mutated, so the caller can rerun the segment serially.
        """
        from repro.parallel.pool import dumps_payload

        sim = self.sim
        counters_on = self.counters is not NULL_COUNTERS
        want_spans = self.tracer is not NULL_TRACER
        steps = self.steps
        sub_steps = [
            Superstep(
                s.label - l1, s.body, name=s.name, array_body=s.array_body
            )
            for s in steps[pos:end]
        ]
        sub_label_set = [
            lab - l1 for lab in self.smoothed.label_set if lab >= l1
        ]
        common = dumps_payload(
            (
                sim.f,
                sim.c2,
                sim.check_invariants,
                v_sub,
                self.mu,
                l1,
                sub_steps,
                sub_label_set,
                counters_on,
                self.v,
                self.program.array_schema,
                sim.kernel,
            )
        )
        payloads = []
        for j in range(1 << l1):
            offset = j * v_sub
            args = (
                common,
                offset,
                self.contexts[offset : offset + v_sub],
                self.pending[offset : offset + v_sub],
                want_spans,
            )
            payloads.append(dumps_payload(("hmm-segment", args)))
        futures = pool.submit_many("hmm-segment", payloads)
        results = pool.gather_ordered(
            futures, kind="hmm-segment", payloads=payloads, policy=policy
        )
        for j, result in enumerate(results):
            self._merge_segment_result(
                j, v_sub, l1, end, result, want_spans, counters_on
            )

    def _merge_segment_result(
        self,
        j: int,
        v_sub: int,
        l1: int,
        end: int,
        result,
        want_spans: bool,
        counters_on: bool,
    ) -> None:
        """Fold cluster ``j``'s worker result back into the parent run.

        The worker's final round closed without the inter-cluster swaps
        (its sub-program simply ends); serially those swaps happen
        *inside* that round's span.  So the tape replay stops before the
        final close, the parent performs the swaps against its real slot
        layout (the only parent-side slot mutation — worker-internal
        swaps net to identity by segment end), then closes the span.
        """
        w_contexts, w_pending, tape, rounds, w_counters = result
        offset = j * v_sub
        self.contexts[offset : offset + v_sub] = w_contexts
        if offset:
            pending = self.pending
            for k, box in enumerate(w_pending):
                pending[offset + k] = [
                    Message(m.src + offset, m.payload) for m in box
                ]
        else:
            self.pending[:v_sub] = w_pending
        next_step = self.next_step
        for pid in range(offset, offset + v_sub):
            next_step[pid] = end
        self.round_index += rounds
        if counters_on and w_counters:
            self.counters.merge(w_counters)
        if want_spans:
            self._replay_span_tape(tape)
        else:
            machine = self.machine
            t = machine.time
            for c in tape:
                t += c
            machine.time = t
        self._cycle_swaps(l1, 0, offset, v_sub)
        if want_spans:
            self.tracer.close()

    def _replay_span_tape(self, entries) -> None:
        """Re-fold a worker's span tape onto the parent clock and tracer.

        Leaves carry their elementary charge operands; markers re-open
        and re-close the worker's spans so the phase breakdown (including
        per-span self-cost rounding into ``other``) matches the serial
        trace exactly.  The final close is skipped — the caller supplies
        the deferred inter-cluster swaps and then closes the round span.
        """
        machine = self.machine
        tracer = self.tracer
        assert entries and entries[-1] == ("c",)
        for entry in entries[:-1]:
            kind = entry[0]
            if kind == "l":
                t = t0 = machine.time
                for c in entry[3]:
                    t += c
                machine.time = t
                tracer.add_leaf(entry[1], entry[2], t0, t)
            elif kind == "o":
                tracer.open(entry[1], entry[2])
            else:
                tracer.close()

    # ---------------------------------------------------------- invariants
    def _check_invariants(
        self, s: int, label: int, first_pid: int, csize: int
    ) -> None:
        # slice comparisons run at C speed; the scalar loop is only
        # revisited on failure, to name the offending slot/processor
        ok = self.slot_to_pid[:csize] == list(
            range(first_pid, first_pid + csize)
        ) and self.next_step[first_pid : first_pid + csize] == [s] * csize
        if not ok:
            for k in range(csize):
                pid = self.slot_to_pid[k]
                if pid != first_pid + k:
                    raise AssertionError(
                        f"Invariant 2 violated at round {self.round_index}: slot {k} "
                        f"holds P{pid}, expected P{first_pid + k}"
                    )
                if self.next_step[pid] != s:
                    raise AssertionError(
                        f"Invariant 1 violated at round {self.round_index}: P{pid} "
                        f"is at superstep {self.next_step[pid]}, cluster expects {s}"
                    )
        if self.sim.check_invariants == "full":
            self._check_contiguity()

    def _check_contiguity(self) -> None:
        """Invariant 2, second part: parked clusters occupy consecutive blocks.

        Only levels in the smoothed label set matter: an L-smooth program
        never addresses clusters at other levels, and the cycle schedule
        legitimately splits levels strictly between ``i_{s+1}`` and ``i_s``
        while a cycle is in flight (cf. Figure 2's intermediate snapshots).
        """
        v = self.v
        for i in self.smoothed.label_set:
            size = cluster_size(v, i)
            for j in range(1 << i):
                slots = sorted(
                    self.pid_to_slot[pid] for pid in range(j * size, (j + 1) * size)
                )
                if slots[-1] - slots[0] != size - 1:
                    raise AssertionError(
                        f"Invariant 2 violated: cluster C_{j}^({i}) occupies "
                        f"non-contiguous slots {slots}"
                    )
