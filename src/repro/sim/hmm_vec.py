"""Vectorized execution of the HMM round scheduler (the ``vec`` kernel).

The key observation (the charge-tape contract of the parallel scheduler,
taken to its conclusion): for a fixed access function and machine shape,
the Figure 1 schedule — which cluster runs in which round, every context
cycling charge, every swap charge, the *order* of every elementary
``time +=`` — depends only on the smoothed label sequence, never on what
the superstep bodies compute.  So the schedule is compiled once into a
:class:`ChargePlan` (cached per ``(f, v, mu, labels)``), bodies are run
superstep-major (valid because processor bodies within a superstep are
independent — the direct engine already executes step-major and passes
the equivalence suites), and the charged clock is produced by scattering
the plan's charge templates, the bodies' local times and the batched
delivery charges into one operand stream and folding it with a single
``np.cumsum`` — the same fold :meth:`repro.functions.CostTable.fold_access`
uses, which reproduces the serial ``t += c`` sequence bit-for-bit,
including every intermediate clock value.

Observability is preserved exactly: counters replicate the scalar
``add`` calls (amounts *and* key-creation), and in ``phases``/``full``
trace modes a post-pass walks the plan against the folded clock and
drives the real :class:`~repro.obs.trace.Tracer` through the identical
open/leaf/close sequence the scalar engine performs — same breakdowns,
same span records, same ±ulp self-cost attribution.

Two body-execution modes share all of the above:

* **array mode** — every non-dummy superstep carries an ``array_body``
  and the program declares an ``array_schema``: contexts become column
  arrays, bodies run as whole-machine numpy programs, and message
  delivery is an aligned scatter.  This is the ≥10x path.
* **per-processor mode** — scalar bodies are executed step-major with
  the ordinary :class:`~repro.dbsp.program.ProcView`; charging and
  delivery batching are still vectorized.  Any program runs this way
  (it is also the fallback when a run starts with in-flight messages,
  e.g. the Brent engine's chained fine runs).
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.dbsp.program import Message
from repro.obs.counters import NULL_COUNTERS
from repro.sim.kernel import ArrayView, interleave2, ranges_concat

__all__ = ["ChargePlan", "execute_vec", "plan_cache_info"]

_PLAN_CACHE: "OrderedDict[tuple, ChargePlan]" = OrderedDict()
_PLAN_CACHE_MAX = 8
_PLAN_CACHE_HITS = 0
_PLAN_CACHE_MISSES = 0
_PLAN_CACHE_EVICTIONS = 0


class ChargePlan:
    """The compiled, body-independent part of one HMM simulation run.

    Per round: the superstep simulated, the cluster (``first``/``csize``),
    the fixed charge template (dummy sync or cycling charges with holes
    for the bodies' local times) and the Step 4 swap charges.  Plus the
    gather/scatter indices and counter constants needed to assemble a
    full run's charge stream without touching the scalar loop.
    """

    __slots__ = (
        "v", "mu", "n_steps", "R",
        "step", "first", "csize", "label", "dummy",
        "a_len", "A_all", "local_pos", "local_src",
        "c_len", "C_all",
        "b_starts_cache",
        "rounds_of_step", "csize_of_step",
        "wc",
        "cycle_words", "n_normal_rounds", "n_dummy_rounds",
        "total_context_swaps", "total_swap_words",
    )


def _build_plan(v, mu, steps, block_cost, word_cost, table) -> ChargePlan:
    """Replay the Figure 1 scheduler bookkeeping (no bodies, no clock).

    This is a faithful replication of ``_HMMSimRun.execute``'s control
    flow; the Theorem 4 invariants are asserted while building, so every
    run on the plan inherits the ``check_invariants="top"`` guarantee.
    """
    n_steps = len(steps)
    labels = [s.label for s in steps]
    dummy_step = [s.body is None for s in steps]
    slot_to_pid = list(range(v))
    next_step = [0] * v

    r_step: list[int] = []
    r_first: list[int] = []
    r_csize: list[int] = []
    r_label: list[int] = []
    r_dummy: list[bool] = []
    c_len: list[int] = []
    a_parts: list[np.ndarray] = []
    a_len: list[int] = []
    swap_charges: list[float] = []
    rounds_of_step: dict[int, list[int]] = {}

    cycle_words = 0
    n_dummy_rounds = 0
    total_context_swaps = 0
    total_swap_words = 0

    top_cost = block_cost[0]
    # per-csize charge template for a normal round: a hole for the k=0
    # local time, then (bc_k, bc_k, top, top, hole) per cycled context
    templates: dict[int, np.ndarray] = {}

    def template_for(csize: int) -> np.ndarray:
        tpl = templates.get(csize)
        if tpl is None:
            tpl = np.zeros(5 * csize - 4, dtype=np.float64)
            for k in range(1, csize):
                bc = block_cost[k]
                base = 5 * k - 4
                tpl[base] = bc
                tpl[base + 1] = bc
                tpl[base + 2] = top_cost
                tpl[base + 3] = top_cost
            templates[csize] = tpl
        return tpl

    def do_swap(a: int, b: int, length: int) -> None:
        nonlocal total_context_swaps, total_swap_words
        charge = 2.0 * (
            table.range_cost(a * mu, (a + length) * mu)
            + table.range_cost(b * mu, (b + length) * mu)
        )
        swap_charges.append(charge)
        total_context_swaps += 2 * length
        total_swap_words += 2 * length * mu
        pids_a = slot_to_pid[a : a + length]
        slot_to_pid[a : a + length] = slot_to_pid[b : b + length]
        slot_to_pid[b : b + length] = pids_a

    while True:
        top_pid = slot_to_pid[0]
        s = next_step[top_pid]
        if s >= n_steps:
            break
        label = labels[s]
        csize = v >> label
        first = top_pid & -csize
        # Theorem 4 invariants, asserted once per (f, v, mu, labels)
        if slot_to_pid[:csize] != list(range(first, first + csize)):
            raise AssertionError(
                f"Invariant 2 violated at round {len(r_step)}: top slots "
                f"{slot_to_pid[:csize]} != cluster [{first}, {first + csize})"
            )
        if next_step[first : first + csize] != [s] * csize:
            raise AssertionError(
                f"Invariant 1 violated at round {len(r_step)}: cluster "
                f"[{first}, {first + csize}) not {s}-ready"
            )
        r = len(r_step)
        r_step.append(s)
        r_first.append(first)
        r_csize.append(csize)
        r_label.append(label)
        if dummy_step[s]:
            r_dummy.append(True)
            a_parts.append(np.array([float(csize)]))
            a_len.append(1)
            n_dummy_rounds += 1
        else:
            r_dummy.append(False)
            tpl = template_for(csize)
            a_parts.append(tpl)
            a_len.append(len(tpl))
            cycle_words += 4 * mu * (csize - 1)
            rounds_of_step.setdefault(s, []).append(r)
        for pid in range(first, first + csize):
            next_step[pid] += 1

        n_swaps_before = len(swap_charges)
        done = next_step[slot_to_pid[0]] >= n_steps
        if not done and s + 1 < n_steps:
            next_label = labels[s + 1]
            if next_label < label:
                b = 1 << (label - next_label)
                parent_size = v >> next_label
                parent_first = first & -parent_size
                j = (first - parent_first) // csize
                if j > 0:
                    do_swap(0, j * csize, csize)
                if j < b - 1:
                    do_swap(0, (j + 1) * csize, csize)
        c_len.append(len(swap_charges) - n_swaps_before)
        if done:
            break

    plan = ChargePlan()
    plan.v = v
    plan.mu = mu
    plan.n_steps = n_steps
    plan.R = len(r_step)
    plan.step = np.array(r_step, dtype=np.int64)
    plan.first = np.array(r_first, dtype=np.int64)
    plan.csize = np.array(r_csize, dtype=np.int64)
    plan.label = np.array(r_label, dtype=np.int64)
    plan.dummy = np.array(r_dummy, dtype=bool)
    plan.a_len = np.array(a_len, dtype=np.int64)
    plan.A_all = (
        np.concatenate(a_parts) if a_parts else np.empty(0, dtype=np.float64)
    )
    plan.c_len = np.array(c_len, dtype=np.int64)
    plan.C_all = np.array(swap_charges, dtype=np.float64)
    plan.wc = np.array(word_cost, dtype=np.float64)
    plan.rounds_of_step = {
        s: np.array(rs, dtype=np.int64) for s, rs in rounds_of_step.items()
    }
    plan.csize_of_step = {s: v >> labels[s] for s in rounds_of_step}
    plan.cycle_words = cycle_words
    plan.n_normal_rounds = int(plan.R - n_dummy_rounds)
    plan.n_dummy_rounds = n_dummy_rounds
    plan.total_context_swaps = total_context_swaps
    plan.total_swap_words = total_swap_words
    plan.b_starts_cache = {}

    # positions of the local-time holes inside A_all, and the
    # (step * v + pid) source index each hole reads from local_flat
    normal = ~plan.dummy
    a_off = np.zeros(plan.R, dtype=np.int64)
    np.cumsum(plan.a_len[:-1], out=a_off[1:])
    n_csize = plan.csize[normal]
    if n_csize.size:
        intra = ranges_concat(np.zeros(len(n_csize), dtype=np.int64), n_csize)
        plan.local_pos = np.repeat(a_off[normal], n_csize) + 5 * intra
        plan.local_src = ranges_concat(
            plan.step[normal] * v + plan.first[normal], n_csize
        )
    else:
        plan.local_pos = np.empty(0, dtype=np.int64)
        plan.local_src = np.empty(0, dtype=np.int64)
    return plan


def _plan_for(run) -> ChargePlan:
    global _PLAN_CACHE_HITS, _PLAN_CACHE_MISSES, _PLAN_CACHE_EVICTIONS
    sim = run.sim
    steps = run.steps
    sig = (
        sim.f,
        run.v,
        run.mu,
        tuple((s.label, s.body is None) for s in steps),
    )
    plan = _PLAN_CACHE.get(sig)
    if plan is not None:
        _PLAN_CACHE_HITS += 1
        _PLAN_CACHE.move_to_end(sig)
        return plan
    _PLAN_CACHE_MISSES += 1
    plan = _build_plan(
        run.v,
        run.mu,
        steps,
        run._block_cost,
        run._slot_word_cost,
        run.machine.table,
    )
    _PLAN_CACHE[sig] = plan
    while len(_PLAN_CACHE) > _PLAN_CACHE_MAX:
        _PLAN_CACHE.popitem(last=False)
        _PLAN_CACHE_EVICTIONS += 1
    return plan


def plan_cache_info() -> dict:
    """Introspection hook for tests and ``/v1/metrics``: cached plan
    count plus lifetime hit/miss/eviction counters (process-wide)."""
    return {
        "size": len(_PLAN_CACHE),
        "max": _PLAN_CACHE_MAX,
        "hits": _PLAN_CACHE_HITS,
        "misses": _PLAN_CACHE_MISSES,
        "evictions": _PLAN_CACHE_EVICTIONS,
    }


# --------------------------------------------------------------- bodies
def _array_mode_ok(run) -> bool:
    program = run.program
    if program.array_schema is None:
        return False
    if any(
        s.array_body is None for s in run.steps if s.body is not None
    ):
        return False
    # a run that starts with in-flight messages (Brent's chained fine
    # runs) would need list->array inbox bridging; take the scalar-body
    # path instead
    return all(not box for box in run.pending)


def _run_bodies_array(run, local_flat, step_src, step_dest):
    """Array mode: column contexts, one ``array_body`` call per step."""
    v = run.v
    steps = run.steps
    schema = run.program.array_schema
    contexts = run.contexts
    cols = {
        name: np.array([ctx[name] for ctx in contexts], dtype=dt)
        for name, dt in schema.items()
    }
    pids = np.arange(v, dtype=np.int64)
    unconsumed = None  # (src, dest, payload) sent but not yet delivered
    for s, st in enumerate(steps):
        if st.body is None:
            continue
        if unconsumed is not None:
            u_src, u_dest, u_payload = unconsumed
            in_src = np.full(v, -1, dtype=np.int64)
            in_src[u_dest] = u_src
            in_payload = np.zeros(v, dtype=u_payload.dtype)
            in_payload[u_dest] = u_payload
            unconsumed = None
        else:
            in_src = in_payload = None
        view = ArrayView(pids, v, run.mu, st.label, cols, in_src, in_payload)
        st.array_body(view)
        local_flat[s * v : (s + 1) * v] = view.local_time
        sends = view._sends
        if not sends:
            continue
        if len(sends) == 1:
            dest, payload = sends[0]
            src = pids
        else:
            # pid-major interleave: processor k's sends in call order,
            # then processor k+1's — the scalar outbox order
            dest = np.stack([d for d, _ in sends], axis=1).ravel()
            payload = np.stack([p for _, p in sends], axis=1).ravel()
            src = np.repeat(pids, len(sends))
        counts = np.bincount(dest, minlength=v)
        if counts.max() > 1:
            raise RuntimeError(
                f"array step {st.name!r} delivered multiple messages to "
                f"one processor — aligned array inboxes require at most "
                f"one; use the scalar body for this program"
            )
        step_src[s] = src
        step_dest[s] = dest
        unconsumed = (src, dest, payload)

    # write columns back into the per-processor dicts (native scalars,
    # exactly what the scalar bodies would have stored)
    for name, col in cols.items():
        values = col.tolist()
        for pid in range(v):
            contexts[pid][name] = values[pid]
    if unconsumed is not None:
        # the program ended with undelivered-to-a-body messages (its
        # trailing steps were dummies): group them into sorted inboxes
        src, dest, payload = unconsumed
        order = np.argsort(dest, kind="stable")
        d_sorted = dest[order].tolist()
        s_sorted = src[order].tolist()
        p_sorted = payload[order].tolist()
        pending = run.pending
        box: list[Message] = []
        prev = None
        for d, sp, pp in zip(d_sorted, s_sorted, p_sorted):
            if d != prev:
                box = pending[d] = []
                prev = d
            box.append(Message(sp, pp))


def _run_bodies_scalar(run, local_flat, step_src, step_dest):
    """Per-processor mode: scalar bodies, step-major, batched delivery."""
    v = run.v
    steps = run.steps
    contexts = run.contexts
    pending = run.pending
    view = run._view
    outbox = view.outbox
    clear = outbox.clear
    for s, st in enumerate(steps):
        if st.body is None:
            continue
        body = st.body
        view.label = st.label
        base = s * v
        src_list: list[int] = []
        dest_list: list[int] = []
        deliveries: list[tuple[int, Message]] = []
        for pid in range(v):
            view.pid = pid
            view.ctx = contexts[pid]
            view.inbox = pending[pid]
            pending[pid] = []
            view.local_time = 1.0
            body(view)
            local_flat[base + pid] = view.local_time
            if outbox:
                for dest, msg in outbox:
                    src_list.append(msg.src)
                    dest_list.append(dest)
                    deliveries.append((dest, msg))
                clear()
        # deliveries are pid-major, so appending keeps every inbox
        # sorted by sender — the invariant insort maintains serially
        for dest, msg in deliveries:
            pending[dest].append(msg)
        if src_list:
            step_src[s] = np.array(src_list, dtype=np.int64)
            step_dest[s] = np.array(dest_list, dtype=np.int64)


# ------------------------------------------------------------- assembly
def _delivery_stream(plan, step_src, step_dest):
    """Per-round delivery charges, in round order.

    Step-major send arrays are charged in one vectorized pass per step
    (``wc[src & (csize-1)]`` — the top slots hold the cluster sorted by
    pid at delivery time, so a message endpoint's slot is just its pid
    offset within the cluster), then gathered into round order: each
    round's messages are a contiguous pid-range slice of its step's
    pid-major arrays.
    """
    R = plan.R
    b_len = np.zeros(R, dtype=np.int64)
    b_start = np.zeros(R, dtype=np.int64)
    parts: list[np.ndarray] = []
    base = 0
    wc = plan.wc
    for s, rounds_idx in plan.rounds_of_step.items():
        src = step_src[s]
        if src is None:
            continue
        dest = step_dest[s]
        csize = plan.csize_of_step[s]
        mask = csize - 1
        inter = interleave2(wc[src & mask], wc[dest & mask])
        firsts = plan.first[rounds_idx]
        lo = np.searchsorted(src, firsts)
        hi = np.searchsorted(src, firsts + csize)
        b_len[rounds_idx] = 2 * (hi - lo)
        b_start[rounds_idx] = base + 2 * lo
        parts.append(inter)
        base += len(inter)
    if not parts:
        return np.empty(0, dtype=np.float64), b_len
    inter_concat = np.concatenate(parts)
    return inter_concat[ranges_concat(b_start, b_len)], b_len


def _assemble_stream(plan, local_flat, step_src, step_dest):
    """Scatter charge templates, local times and delivery charges into
    the one operand stream the scalar engine folds serially.

    The scatter indices depend on the plan and on ``b_len`` only — and
    repeated runs of the same program deliver the same per-round message
    counts — so they are cached on the plan (one entry, keyed by the
    ``b_len`` bytes; a different delivery pattern just rebuilds).  The
    cache turns assembly from three index constructions plus a template
    copy into three fancy-index writes.
    """
    B, b_len = _delivery_stream(plan, step_src, step_dest)
    key = b_len.tobytes()
    cached = plan.b_starts_cache.get(key)
    if cached is None:
        r_len = plan.a_len + b_len + plan.c_len
        off = np.zeros(plan.R + 1, dtype=np.int64)
        np.cumsum(r_len, out=off[1:])
        a_idx = ranges_concat(off[:-1], plan.a_len)
        b_idx = ranges_concat(off[:-1] + plan.a_len, b_len)
        c_idx = ranges_concat(off[:-1] + plan.a_len + b_len, plan.c_len)
        local_idx = a_idx[plan.local_pos]
        plan.b_starts_cache.clear()  # keep exactly one pattern resident
        cached = (off, a_idx, b_idx, c_idx, local_idx)
        plan.b_starts_cache[key] = cached
    off, a_idx, b_idx, c_idx, local_idx = cached
    # one extra slot up front: the caller seeds it with the machine
    # clock and cumsums in place, so the stream never has to be copied
    # into a separate fold buffer
    buf = np.empty(off[-1] + 1, dtype=np.float64)
    stream = buf[1:]
    stream[a_idx] = plan.A_all
    if local_idx.size:
        stream[local_idx] = local_flat[plan.local_src]
    if B.size:
        stream[b_idx] = B
    if plan.C_all.size:
        stream[c_idx] = plan.C_all
    return buf, off, b_len


# ----------------------------------------------------------- observability
def _add_counters(run, plan, b_len) -> None:
    counters = run.counters
    if counters is NULL_COUNTERS:
        return
    # same totals and same key-creation as the scalar adds: delivery
    # creates words_touched/messages on every normal round (amount may
    # be zero), swaps create their keys whenever at least one happens
    if plan.n_normal_rounds:
        total_msgs = int(b_len.sum()) // 2
        counters.add("words_touched", plan.cycle_words + 2 * total_msgs)
        counters.add("messages", total_msgs)
    if plan.total_context_swaps:
        counters.add("context_swaps", plan.total_context_swaps)
        counters.add("words_touched", plan.total_swap_words)
        counters.add("words_moved", plan.total_swap_words)
    if plan.n_dummy_rounds:
        counters.add("dummy_supersteps", plan.n_dummy_rounds)


def _walk_tracer(run, plan, clk, off, b_len) -> None:
    """Drive the real tracer through the scalar call sequence.

    ``clk[i]`` is the charged clock after the first ``i`` elementary
    operands — every value the serial run's ``machine.time`` ever takes,
    reproduced by the cumsum fold.  ``open``/``close`` sample the clock
    through ``machine.time``, so it is positioned before each call
    exactly where the scalar engine would have it.
    """
    tracer = run.tracer
    machine = run.machine
    record = tracer.record
    steps = run.steps
    off_l = off.tolist()
    b_l = b_len.tolist()
    c_l = plan.c_len.tolist()
    dummy_l = plan.dummy.tolist()
    csize_l = plan.csize.tolist()
    add_leaf = tracer.add_leaf
    for r in range(plan.R):
        i = off_l[r]
        machine.time = clk[i]
        if record:
            s = int(plan.step[r])
            csize = csize_l[r]
            first = int(plan.first[r])
            tracer.open(
                "round",
                None,
                {
                    "superstep": s,
                    "label": steps[s].label,
                    "cluster": first // csize,
                },
            )
        else:
            tracer.open("round", None, None)
        if dummy_l[r]:
            add_leaf("dummy", "dummies", clk[i], clk[i + 1])
            i += 1
        else:
            csize = csize_l[r]
            add_leaf("local", "local", clk[i], clk[i + 1])
            i += 1
            for _ in range(csize - 1):
                add_leaf("cycle-context", "cycling", clk[i], clk[i + 4])
                i += 4
                add_leaf("local", "local", clk[i], clk[i + 1])
                i += 1
            nb = b_l[r]
            add_leaf("delivery", "delivery", clk[i], clk[i + nb])
            i += nb
        n_swaps = c_l[r]
        if n_swaps:
            machine.time = clk[i]
            tracer.open("cycle-swaps", "swaps")
            for _ in range(n_swaps):
                add_leaf("swap", "swaps", clk[i], clk[i + 1])
                i += 1
            machine.time = clk[i]
            tracer.close()
        machine.time = clk[i]
        tracer.close()


# ------------------------------------------------------------------ entry
def execute_vec(run) -> None:
    """Vectorized replacement for ``_HMMSimRun._execute_scalar()``.

    Only full runs are dispatched here (the parallel driver's serial
    bursts use the scalar path; worker processes, which each run their
    whole sub-program, land here with a :class:`FlatTape` attached).
    """
    assert run.round_index == 0, "vec kernel only executes full runs"
    plan = _plan_for(run)
    v = run.v

    local_flat = np.empty(plan.n_steps * v, dtype=np.float64)
    step_src: list = [None] * plan.n_steps
    step_dest: list = [None] * plan.n_steps
    if _array_mode_ok(run):
        _run_bodies_array(run, local_flat, step_src, step_dest)
    else:
        _run_bodies_scalar(run, local_flat, step_src, step_dest)

    buf, off, b_len = _assemble_stream(plan, local_flat, step_src, step_dest)
    if run.tape_rec is not None:
        run.tape_rec.charges.frombytes(buf[1:].tobytes())
    _add_counters(run, plan, b_len)

    machine = run.machine
    buf[0] = machine.time
    np.cumsum(buf, out=buf)
    if run.tracer.enabled:
        _walk_tracer(run, plan, buf.tolist(), off, b_len)
    machine.time = float(buf[-1])
    run.round_index = plan.R
