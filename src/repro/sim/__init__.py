"""The paper's simulation schemes.

* :mod:`repro.sim.smoothing` — the L-smooth program transformation
  (Definition 3) and the label-set constructions used by the HMM (§3) and
  BT (§5.2.2) analyses;
* :mod:`repro.sim.hmm_sim` — D-BSP on HMM (Figure 1, Theorem 5);
* :mod:`repro.sim.bt_sim` — D-BSP on BT (Figures 4-7, Theorem 12);
* :mod:`repro.sim.brent` — D-BSP self-simulation (Theorem 10), the
  analogue of Brent's lemma.
"""

from repro.sim.smoothing import (
    SmoothedProgram,
    build_label_set_bt,
    build_label_set_hmm,
    is_l_smooth,
    smooth_program,
)
from repro.sim.hmm_sim import HMMSimResult, HMMSimulator
from repro.sim.bt_sim import BTSimResult, BTSimulator
from repro.sim.brent import BrentSimResult, BrentSimulator

__all__ = [
    "SmoothedProgram",
    "build_label_set_hmm",
    "build_label_set_bt",
    "smooth_program",
    "is_l_smooth",
    "HMMSimulator",
    "HMMSimResult",
    "BTSimulator",
    "BTSimResult",
    "BrentSimulator",
    "BrentSimResult",
]
