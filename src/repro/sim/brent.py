"""D-BSP self-simulation — the analogue of Brent's lemma (Section 4).

Guest: a program for ``D-BSP(v, mu, g(x))``.  Host: a
``D-BSP(v', mu v / v', g(x))`` with ``v' <= v``, same aggregate memory,
whose individual processors are regarded as ``g(x)``-HMMs of size
``mu v / v'``.  Host processor ``P_j`` simulates guest cluster
``C_j^(log v')``, keeping the ``v / v'`` guest contexts as blocks of its
local hierarchical memory.

The program is split into maximal *runs* of supersteps whose labels are
either all ``< log v'`` (coarse runs — real host communication happens) or
all ``>= log v'`` (fine runs — entirely local to each host processor):

* each i-superstep of a coarse run becomes a host i-superstep (cycle the
  guest contexts through the top of the local memory, execute bodies, ship
  an ``h v/v'``-relation) followed by a host ``log v'``-superstep that
  files received messages into the destination guests' context blocks;
* a fine run is handed verbatim (labels shifted by ``log v'``) to the
  Section 3 HMM-simulation scheme running inside every host processor.

Theorem 10: the host time is
``O((v/v')(tau + mu sum_i lambda_i g(mu v / 2^i)))``; for *full* programs
(every superstep routes a Theta(mu)-relation — fine-grained programs are
full) this is an optimal ``Theta(T v / v')`` slowdown (Corollary 11),
showing that D-BSP with hierarchical memory integrates network and memory
hierarchies seamlessly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Literal

from repro.dbsp.cluster import cluster_size, log2_exact
from repro.dbsp.program import Message, ProcView, Program, Superstep
from repro.functions import AccessFunction, CostTable
from repro.obs.counters import NULL_COUNTERS, Counters
from repro.obs.trace import NULL_TRACER, SpanRecord, Tracer
from repro.parallel.config import ParallelConfig, resolve_parallel, warn_fallback_once
from repro.sim.hmm_sim import HMMSimulator
from repro.sim.kernel import deliver_sorted

__all__ = ["BrentSimulator", "BrentSimResult", "RunRecord", "BRENT_PHASES"]

#: phase categories of the Theorem 10 scheme: ``compute`` (cycling guest
#: contexts through the host HMMs + body execution), ``communication``
#: (the host (h v/v')-relations), ``filing`` (the extra log v'-superstep
#: filing received messages), ``fine`` (whole fine runs, simulated by the
#: embedded Section 3 scheme)
BRENT_PHASES = ("compute", "communication", "filing", "fine")


@dataclass(frozen=True)
class RunRecord:
    """Accounting for one maximal run of supersteps."""

    kind: str  #: "coarse" (labels < log v') or "fine" (labels >= log v')
    first_step: int
    n_steps: int
    host_time: float


@dataclass
class BrentSimResult:
    """Outcome of the self-simulation."""

    contexts: list[dict]
    time: float
    v_host: int
    runs: list[RunRecord] = field(default_factory=list)
    #: per-phase charged time (view over the span trace); empty when
    #: observability is off
    breakdown: dict[str, float] = field(default_factory=dict)
    #: event counters, including those of the embedded HMM simulations
    counters: dict[str, int | float] = field(default_factory=dict)
    #: recorded spans (``trace="full"`` only)
    spans: list[SpanRecord] = field(default_factory=list)

    def slowdown(self, guest_time: float) -> float | None:
        """``None`` when the guest time is zero (no meaningful ratio)."""
        return self.time / guest_time if guest_time > 0 else None


class _GlobalizedView:
    """Adapter exposing a cluster-local :class:`ProcView` under global ids.

    Fine runs execute inside one host processor over the ``v/v'`` guests of
    one ``log v'``-cluster; program bodies, however, speak global processor
    ids.  This proxy translates pids on the way in and out.
    """

    __slots__ = ("_view", "_offset", "pid", "v", "mu", "label", "ctx", "inbox")

    def __init__(self, view: ProcView, offset: int, v_global: int):
        self._view = view
        self._offset = offset
        self.pid = view.pid + offset
        self.v = v_global
        self.mu = view.mu
        self.label = view.label  # local label; bodies rarely inspect it
        self.ctx = view.ctx
        # messages are immutable, so host 0 (offset 0) can share the list
        if offset:
            self.inbox = [Message(m.src + offset, m.payload) for m in view.inbox]
        else:
            self.inbox = view.inbox

    def send(self, dest: int, payload: Any = None) -> None:
        self._view.send(dest - self._offset, payload)

    def charge(self, t: float) -> None:
        self._view.charge(t)

    def received(self):
        return (msg.payload for msg in self.inbox)


class BrentSimulator:
    """Theorem 10's self-simulation engine."""

    def __init__(
        self,
        g: AccessFunction,
        v_host: int,
        c2: float = 0.5,
        trace: Literal["off", "counters", "phases", "full"] = "phases",
        parallel: "ParallelConfig | int | None" = None,
        kernel: Literal["scalar", "vec"] | None = None,
    ):
        self.g = g
        self.v_host = v_host
        self.c2 = c2
        self.log_v_host = log2_exact(v_host)
        if trace not in ("off", "counters", "phases", "full"):
            raise ValueError(f"unknown trace level {trace!r}")
        self.trace = trace
        #: execution kernel for the embedded Section 3 fine runs — passed
        #: through to HMMSimulator (``None`` reads ``REPRO_ENGINE``)
        self.kernel = kernel
        # host-parallelism policy: with jobs > 1, the independent per-host
        # fine runs are dispatched to worker processes; charged time,
        # counters and breakdowns stay bit-identical to the serial path
        # (see HMMSimulator's ``parallel`` parameter)
        self.parallel = resolve_parallel(parallel)

    def simulate(self, program: Program) -> BrentSimResult:
        """Simulate ``program`` on ``D-BSP(v', mu v/v', g)``; charge host time."""
        v, v_host = program.v, self.v_host
        if v_host > v:
            raise ValueError(f"host width {v_host} exceeds guest width {v}")
        if v_host == v:
            # degenerate: the host *is* the guest machine
            from repro.dbsp.machine import DBSPMachine

            run = DBSPMachine(self.g).run(program.with_global_sync())
            breakdown: dict[str, float] = {}
            if self.trace in ("phases", "full"):
                breakdown = dict.fromkeys(BRENT_PHASES, 0.0)
                breakdown.update(run.breakdown)
            return BrentSimResult(
                run.contexts,
                run.total_time,
                v_host,
                breakdown=breakdown,
                counters=dict(run.counters) if self.trace != "off" else {},
            )

        normalized = program.with_global_sync()
        state = _BrentRun(self, normalized)
        state.execute()
        state.tracer.assert_closed()
        if self.trace == "off":
            breakdown = {}
            counters: dict[str, int | float] = {}
        else:
            breakdown = {}
            if self.trace != "counters":
                breakdown = dict.fromkeys(BRENT_PHASES, 0.0)
                breakdown.update(state.tracer.phase_totals())
            counters = state.counters.snapshot()
        return BrentSimResult(
            contexts=state.contexts,
            time=state.time,
            v_host=v_host,
            runs=state.records,
            breakdown=breakdown,
            counters=counters,
            spans=state.tracer.spans,
        )


class _BrentRun:
    def __init__(self, sim: BrentSimulator, program: Program):
        self.sim = sim
        self.program = program
        self.v = program.v
        self.mu = program.mu
        self.v_host = sim.v_host
        self.log_v_host = sim.log_v_host
        self.guests_per_host = self.v // self.v_host
        #: local memory of one host processor, in words
        self.mu_host = self.mu * self.guests_per_host
        self.table = CostTable.shared(sim.g, max(self.mu_host, 2))
        # per-guest charged costs reused by every coarse superstep (the
        # same floats the prefix table would produce, added in the same
        # order — charged time is bit-identical): cycling a guest context
        # through the top of the local HMM, and filing one message into a
        # guest's context block
        table, mu = self.table, self.mu
        top_cost = table.range_cost(0, mu)
        self._cycle_cost = [
            2.0 * (table.range_cost(k * mu, (k + 1) * mu) + top_cost)
            for k in range(self.guests_per_host)
        ]
        self._file_cost = [
            table.access(k * mu) for k in range(self.guests_per_host)
        ]
        self.contexts = program.initial_contexts()
        self.pending: list[list[Message]] = [[] for _ in range(self.v)]
        # recycled per-body view (see _coarse_superstep)
        self._view = ProcView(0, self.v, self.mu, 0, {}, [])
        self.time = 0.0
        self.records: list[RunRecord] = []
        #: pid offset of the host processor currently simulated (fine runs)
        self.current_offset = 0
        if sim.trace == "off":
            self.counters = NULL_COUNTERS
            self.tracer = NULL_TRACER
        elif sim.trace == "counters":
            self.counters = Counters()
            self.tracer = NULL_TRACER
        else:
            self.counters = Counters()
            self.tracer = Tracer(
                clock=lambda: self.time, record=(sim.trace == "full")
            )

    # ------------------------------------------------------------- helpers
    def _host_of(self, pid: int) -> int:
        return pid // self.guests_per_host

    def _block_range(self, pid: int) -> tuple[int, int]:
        """Word range of guest ``pid``'s context inside its host's memory."""
        local = pid % self.guests_per_host
        return local * self.mu, (local + 1) * self.mu

    # --------------------------------------------------------------- main
    def execute(self) -> None:
        steps = self.program.supersteps
        pos = 0
        while pos < len(steps):
            coarse = steps[pos].label < self.log_v_host
            end = pos
            while end < len(steps) and (
                (steps[end].label < self.log_v_host) == coarse
            ):
                end += 1
            before = self.time
            if coarse:
                for s in range(pos, end):
                    self.tracer.open(
                        "coarse-superstep",
                        None,
                        {"superstep": s, "label": steps[s].label}
                        if self.tracer.record
                        else None,
                    )
                    self._coarse_superstep(steps[s])
                    self.tracer.close()
            else:
                self.tracer.open(
                    "fine-run",
                    "fine",
                    {"first_step": pos, "n_steps": end - pos}
                    if self.tracer.record
                    else None,
                )
                self._fine_run(steps[pos:end])
                self.tracer.close()
            self.records.append(
                RunRecord(
                    kind="coarse" if coarse else "fine",
                    first_step=pos,
                    n_steps=end - pos,
                    host_time=self.time - before,
                )
            )
            pos = end

    # ----------------------------------------------------- coarse supersteps
    def _coarse_superstep(self, step: Superstep) -> None:
        """One guest i-superstep with ``i < log v'`` on the host machine."""
        local_times = [0.0] * self.v_host
        sent_counts = [0] * self.v_host
        recv_counts = [0] * self.v_host
        deliveries: list[list[tuple[int, Message]]] = [
            [] for _ in range(self.v_host)
        ]

        if not step.is_dummy:
            g_per_host = self.guests_per_host
            cycle_cost = self._cycle_cost
            pending = self.pending
            contexts = self.contexts
            body = step.body
            # recycled per-body view, same discipline as the HMM engine
            view = self._view
            view.label = step.label
            outbox = view.outbox
            clear = outbox.clear
            pid = 0
            for host in range(self.v_host):
                lt = local_times[host]
                for k in range(g_per_host):
                    # bring the guest context to the top of the local HMM
                    # and back (same float order as the pid loop: cycle
                    # charge then local charge, guest by guest)
                    lt += cycle_cost[k]
                    view.pid = pid
                    view.ctx = contexts[pid]
                    view.inbox = pending[pid]  # kept ordered at delivery
                    pending[pid] = []
                    view.local_time = 1.0
                    body(view)
                    lt += view.local_time
                    sent_counts[host] += len(outbox)
                    for dest, msg in outbox:
                        dest_host = dest // g_per_host
                        recv_counts[dest_host] += 1
                        deliveries[dest_host].append((dest, msg))
                    clear()
                    pid += 1
                local_times[host] = lt
        else:
            for host in range(self.v_host):
                local_times[host] = 1.0

        # host i-superstep: local simulation plus an (h v/v')-relation
        # within host i-clusters; message cost g(mu_host * v'/2^i) = g(mu v/2^i)
        h_host = max(max(sent_counts), max(recv_counts), 0)
        comm = h_host * self.sim.g(self.mu_host * cluster_size(self.v_host, step.label))
        self.tracer.open("compute", "compute")
        self.time += max(local_times)
        self.tracer.close()
        self.tracer.open("communication", "communication")
        self.time += comm
        self.tracer.close()

        # host (log v')-superstep: file received messages into the guests'
        # incoming buffers (an access into the destination block)
        self.tracer.open("filing", "filing")
        file_cost = self._file_cost
        g_per_host = self.guests_per_host
        pending = self.pending
        max_filing = 0.0
        n_delivered = 0
        all_outgoing: list[tuple[int, Message]] = []
        for host in range(self.v_host):
            box = deliveries[host]
            n_delivered += len(box)
            host_filing = 0.0
            for dest, _msg in box:
                host_filing += file_cost[dest % g_per_host]
            if host_filing > max_filing:
                max_filing = host_filing
            all_outgoing.extend(box)
        # host-order concatenation preserves the per-message insort tie
        # order, so the batched delivery rebuilds identical inboxes
        deliver_sorted(pending, all_outgoing)
        self.time += max_filing + 1.0
        self.tracer.close()
        self.counters.add("messages", n_delivered)

    # --------------------------------------------------------- fine runs
    def _fine_run(self, steps: list[Superstep]) -> None:
        """A maximal run with labels ``>= log v'``: local to each host."""
        g_per_host = self.guests_per_host
        cfg = self.sim.parallel
        host_times: list[float] = []
        start_host = 0
        if (
            cfg.enabled
            and self.sim.trace != "full"
            and self.v_host >= 2
            and len(steps) * g_per_host >= cfg.min_work_per_task
        ):
            start_host = self._fine_run_parallel(cfg, steps, host_times)
        if start_host < self.v_host:
            self._fine_run_serial(steps, host_times, start_host)
        # the run is local: one host "superstep" costing the slowest member
        self.time += max(host_times)

    def _fine_run_serial(
        self, steps: list[Superstep], host_times: list[float], start_host: int
    ) -> None:
        """Serial host loop (also the tail after a degraded dispatch)."""
        g_per_host = self.guests_per_host
        shifted = [
            Superstep(
                s.label - self.log_v_host,
                None if s.is_dummy else _shift_body(s.body, self),
                name=s.name,
            )
            for s in steps
        ]
        # parallel=1: each host's embedded run is already scheduled here
        hmm = HMMSimulator(
            self.sim.g,
            c2=self.sim.c2,
            check_invariants="off",
            trace=(
                self.sim.trace
                if self.sim.trace in ("off", "counters")
                else "phases"
            ),
            parallel=1,
            kernel=self.sim.kernel,
        )
        # one shared Program for all hosts: its smoothing (and the label
        # set) is computed once by the first host's simulate() call and
        # served from the per-program memo for the other v'-1 hosts
        local_program = Program(
            g_per_host,
            self.mu,
            shifted,
            make_context=lambda pid: {},  # replaced via initial_contexts
            name=f"{self.program.name}@fine",
        )
        for host in range(start_host, self.v_host):
            offset = host * g_per_host
            self.current_offset = offset
            local_contexts = self.contexts[offset : offset + g_per_host]
            if offset:
                local_pending = [
                    [Message(m.src - offset, m.payload) for m in self.pending[pid]]
                    for pid in range(offset, offset + g_per_host)
                ]
            else:
                # messages are immutable and the HMM run copies the boxes
                local_pending = self.pending[:g_per_host]
            result = hmm.simulate(
                local_program,
                initial_contexts=local_contexts,
                initial_pending=local_pending,
            )
            host_times.append(result.time)
            self.counters.merge(result.counters)
            # contexts are shared dict objects: mutations already visible
            if offset:
                for k in range(g_per_host):
                    self.pending[offset + k] = [
                        Message(m.src + offset, m.payload)
                        for m in result.pending[k]
                    ]
            else:
                self.pending[:g_per_host] = result.pending

    def _fine_run_parallel(
        self, cfg: ParallelConfig, steps: list[Superstep], host_times: list[float]
    ) -> int:
        """Dispatch per-host fine runs to the pool; merge in host order.

        Each host's embedded HMM run starts from charged time zero in the
        serial path already, so no charge tape is needed: the worker ships
        back ``(contexts, pending, time, counters)`` and the parent takes
        ``max`` over host times exactly as the serial loop does.  Returns
        the number of hosts merged; on a mid-flight pool failure the
        caller's serial loop finishes the remaining hosts (host runs are
        independent, so the prefix/suffix split is sound).
        """
        from repro.parallel.pool import PoolUnavailable, dumps_payload, shared_pool

        g_per_host = self.guests_per_host
        counters_on = self.counters is not NULL_COUNTERS
        done = 0
        try:
            pool = shared_pool(cfg.jobs)
            # ship the *original* bodies: the worker adds its own
            # _OffsetBody wrapper (the picklable equivalent of
            # _shift_body, which closes over this run)
            payload_steps = [
                Superstep(
                    s.label - self.log_v_host,
                    None if s.is_dummy else s.body,
                    name=s.name,
                )
                for s in steps
            ]
            common = dumps_payload(
                (
                    self.sim.g,
                    self.sim.c2,
                    g_per_host,
                    self.mu,
                    payload_steps,
                    self.v,
                    self.sim.trace == "off",
                    self.sim.kernel,
                )
            )
            payloads = []
            for host in range(self.v_host):
                offset = host * g_per_host
                args = (
                    common,
                    offset,
                    self.contexts[offset : offset + g_per_host],
                    self.pending[offset : offset + g_per_host],
                )
                payloads.append(dumps_payload(("brent-hosts", args)))
            futures = pool.submit_many("brent-hosts", payloads)
            results = pool.gather_ordered(
                futures,
                kind="brent-hosts",
                payloads=payloads,
                policy=cfg.retry,
            )
            for host, result in enumerate(results):
                w_contexts, w_pending, w_time, w_counters = result
                offset = host * g_per_host
                self.contexts[offset : offset + g_per_host] = w_contexts
                if offset:
                    for k in range(g_per_host):
                        self.pending[offset + k] = [
                            Message(m.src + offset, m.payload)
                            for m in w_pending[k]
                        ]
                else:
                    self.pending[:g_per_host] = w_pending
                host_times.append(w_time)
                if counters_on:
                    self.counters.merge(w_counters)
                done = host + 1
        except PoolUnavailable as exc:
            if not cfg.fallback:
                raise
            warn_fallback_once(
                f"parallel fine-run degraded to serial: {exc}"
            )
        return done


class _shift_body:
    """Wrap a superstep body so it sees global processor ids.

    Host processors are simulated one after another; the enclosing
    :class:`_BrentRun` records the pid offset of the host currently being
    simulated in ``current_offset``, and the wrapper hands bodies a
    :class:`_GlobalizedView` built from it.
    """

    def __init__(self, body, run: _BrentRun):
        self.body = body
        self.run = run

    def __call__(self, view: ProcView) -> None:
        self.body(_GlobalizedView(view, self.run.current_offset, self.run.v))
