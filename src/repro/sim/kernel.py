"""Array primitives shared by the vectorized simulation kernel.

The scalar engines interleave *scheduling* (which cluster runs when,
what every elementary ``time +=`` charges) with *execution* (running
superstep bodies, moving messages).  The vectorized kernel
(:mod:`repro.sim.hmm_vec`) splits the two: scheduling is compiled once
into a :class:`~repro.sim.hmm_vec.ChargePlan` and execution becomes a
handful of array operations.  This module holds the execution-side
primitives:

* :class:`ArrayView` — the whole-machine counterpart of
  :class:`~repro.dbsp.program.ProcView`, handed to
  ``Superstep.array_body`` over column-store contexts;
* :func:`ranges_concat` — concatenated ``arange`` ranges (the
  gather/scatter index builder for assembling charge streams);
* :func:`interleave2` — pairwise interleaving of two equal-length
  arrays (the ``src``/``dst`` charge pattern of message delivery);
* :func:`deliver_sorted` — batched replacement for per-message
  ``bisect.insort`` delivery loops (used by the BT and Brent engines),
  bit-identical in the resulting inbox order.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.dbsp.program import Message

__all__ = [
    "ArrayView",
    "GlobalizedArrayView",
    "ranges_concat",
    "interleave2",
    "deliver_sorted",
]

#: below this many messages the numpy fixed cost exceeds the insort loop
_DELIVER_BATCH_MIN = 16


class ArrayView:
    """The resources a whole cluster sees during one superstep.

    The array counterpart of :class:`~repro.dbsp.program.ProcView`: one
    view per superstep execution, covering every processor at once.
    ``ctx`` maps context field names to length-``n`` column arrays
    (``n == len(pids)``); ``inbox_src`` / ``inbox_payload`` are aligned
    per-processor arrays (position ``k`` holds the message received by
    ``pids[k]``, ``inbox_src[k] == -1`` when it received none), or
    ``None`` when no messages were delivered.

    Contract for ``array_body`` authors: the body must be semantically
    identical to running the scalar ``body`` once per processor — same
    context updates, same messages, same ``charge`` calls.  Sends are
    full-width: every processor sends in each :meth:`send` call (partial
    sends need the scalar body).  The equivalence suites enforce the
    contract for the built-in algorithm library.
    """

    __slots__ = (
        "pids",
        "v",
        "mu",
        "label",
        "ctx",
        "inbox_src",
        "inbox_payload",
        "local_time",
        "_sends",
    )

    def __init__(
        self,
        pids: np.ndarray,
        v: int,
        mu: int,
        label: int,
        ctx: dict[str, np.ndarray],
        inbox_src: np.ndarray | None,
        inbox_payload: np.ndarray | None,
    ):
        self.pids = pids
        self.v = v
        self.mu = mu
        self.label = label
        self.ctx = ctx
        self.inbox_src = inbox_src
        self.inbox_payload = inbox_payload
        #: per-processor local computation time; every superstep costs >= 1
        self.local_time = np.ones(len(pids), dtype=np.float64)
        self._sends: list[tuple[np.ndarray, np.ndarray]] = []

    def send(self, dest: np.ndarray, payload: np.ndarray) -> None:
        """Post one message per processor (``dest[k]`` from ``pids[k]``)."""
        dest = np.asarray(dest)
        if dest.shape != self.pids.shape:
            raise ValueError(
                f"send is full-width: expected {self.pids.shape} "
                f"destinations, got {dest.shape}"
            )
        if dest.size and (dest.min() < 0 or dest.max() >= self.v):
            raise ValueError(f"destination outside [0, {self.v})")
        # same aligned-cluster check as ProcView.send, over the whole batch
        if np.any((self.pids ^ dest) >= (self.v >> self.label)):
            raise ValueError(
                f"send crosses a {self.label}-cluster boundary"
            )
        if len(self._sends) >= self.mu:
            raise ValueError(
                f"exceeded the mu={self.mu} outgoing message buffer "
                f"in one superstep"
            )
        self._sends.append((dest, np.asarray(payload)))

    def charge(self, t: Any) -> None:
        """Account ``t`` additional units of local computation.

        ``t`` may be a scalar (uniform across the cluster) or a
        per-processor array.
        """
        if np.any(np.asarray(t) < 0):
            raise ValueError(f"cannot charge negative time {t!r}")
        self.local_time += t


class GlobalizedArrayView:
    """Present global pids to an array body running on a sub-machine.

    The array analog of :class:`repro.sim.brent._GlobalizedView`: worker
    processes simulate a pid slice ``offset .. offset + v_sub`` as local
    pids ``0 .. v_sub``, while program bodies index processors globally.
    Sends are translated back to local coordinates; the underlying
    view's cluster check still applies (cluster widths agree because the
    label is shifted by the same amount as the machine is narrowed).
    """

    __slots__ = ("_view", "_offset", "pids", "v", "mu", "label", "ctx",
                 "inbox_src", "inbox_payload")

    def __init__(self, view: ArrayView, offset: int, v_global: int,
                 label_shift: int = 0):
        self._view = view
        self._offset = offset
        self.pids = view.pids + offset
        self.v = v_global
        self.mu = view.mu
        self.label = view.label + label_shift
        self.ctx = view.ctx
        self.inbox_src = (
            view.inbox_src + offset if view.inbox_src is not None else None
        )
        self.inbox_payload = view.inbox_payload

    def send(self, dest, payload) -> None:
        self._view.send(np.asarray(dest) - self._offset, payload)

    def charge(self, t) -> None:
        self._view.charge(t)


def ranges_concat(starts, lengths) -> np.ndarray:
    """``concatenate([arange(s, s + l) for s, l in zip(starts, lengths)])``.

    The standard repeat/cumsum construction — no Python loop, zero-length
    groups allowed.  This is how the kernel scatters per-round charge
    segments into one stream and gathers per-round delivery slices out
    of step-major arrays.
    """
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    keep = lengths > 0
    if not keep.all():
        starts = starts[keep]
        lengths = lengths[keep]
    if starts.size == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(lengths)
    out = np.ones(ends[-1], dtype=np.int64)
    out[0] = starts[0]
    out[ends[:-1]] = starts[1:] - starts[:-1] - lengths[:-1] + 1
    return np.cumsum(out)


def interleave2(even: np.ndarray, odd: np.ndarray) -> np.ndarray:
    """Interleave two equal-length arrays: ``[e0, o0, e1, o1, ...]``."""
    out = np.empty(2 * len(even), dtype=np.float64)
    out[0::2] = even
    out[1::2] = odd
    return out


def deliver_sorted(
    pending: list[list[Message]], outgoing: list[tuple[int, Message]]
) -> None:
    """Deliver ``(dest, msg)`` pairs into per-pid sorted inboxes, batched.

    Bit-identical replacement for the per-message loop

    .. code-block:: python

        for dest, msg in outgoing:
            insort(pending[dest], msg)

    Messages compare by ``src`` only, and both ``insort_right`` and a
    stable sort resolve equal-``src`` ties to insertion order, so
    grouping the batch with one stable ``np.lexsort`` over
    ``(src, dest)`` and splicing per destination reproduces exactly the
    inboxes the scalar loop builds — in O(m log m) array work instead of
    m bisections and list shifts.
    """
    m = len(outgoing)
    if m < _DELIVER_BATCH_MIN:
        from bisect import insort

        for dest, msg in outgoing:
            insort(pending[dest], msg)
        return
    dests = np.fromiter(
        (d for d, _ in outgoing), dtype=np.int64, count=m
    )
    srcs = np.fromiter(
        (msg.src for _, msg in outgoing), dtype=np.int64, count=m
    )
    # stable: equal (dest, src) pairs keep batch order, like insort_right
    order = np.lexsort((srcs, dests))
    d_sorted = dests[order]
    uniq, starts = np.unique(d_sorted, return_index=True)
    starts = starts.tolist()
    starts.append(m)
    order = order.tolist()
    for i, dest in enumerate(uniq.tolist()):
        batch = [outgoing[k][1] for k in order[starts[i] : starts[i + 1]]]
        box = pending[dest]
        if box:
            # rare path: the inbox already holds messages — splice and
            # re-sort (stable, so existing-before-new on equal src, the
            # insort_right tie order)
            box.extend(batch)
            box.sort()
        else:
            pending[dest] = batch
