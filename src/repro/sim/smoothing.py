"""L-smooth programs (Definition 3) and the smoothing transformation.

Let ``L = {0 = l_0 < l_1 < ... < l_m = log v}`` be a set of superstep
labels.  A D-BSP program is *L-smooth* when

1. every superstep label belongs to ``L``, and
2. whenever a superstep labeled ``l_i`` directly follows one labeled
   ``l_j > l_i``, then ``i = j - 1`` — i.e. descents through the
   decomposition tree happen one L-level at a time.

Any program is made L-smooth by (a) *upgrading* each i-superstep to the
largest label in ``L`` not exceeding ``i`` (bundling communication into a
coarser cluster never loses reachability), then (b) inserting *dummy*
supersteps to fill skipped levels on descents.

The choice of ``L`` drives the simulation costs:

* **HMM rule** (§3): pick ``L`` so that ``f(mu v / 2^{l_{i+1}})`` drops by
  a constant factor ``c2 < 1`` per level — then upgraded supersteps pay only
  a constant-factor higher access cost and dummies contribute a geometric
  (hence constant-fraction) overhead.
* **BT rule** (§5.2.2): the same construction applied to
  ``log(d1 mu v / 2^l)`` (the BT simulation's per-superstep cost is
  sorting-dominated, ``~ mu v/2^l * log(mu v / 2^l)``), with the extra
  property (c) ``f(mu v / 2^{l_i}) <= d2 mu v / 2^{l_{i+1}}``, which holds
  automatically for ``f(x) = O(x^alpha)`` once ``c2 > alpha``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.dbsp.program import DUMMY, Program, Superstep
from repro.functions import AccessFunction

__all__ = [
    "build_label_set_hmm",
    "build_label_set_bt",
    "smooth_program",
    "is_l_smooth",
    "SmoothedProgram",
]


def build_label_set_hmm(
    f: AccessFunction, v: int, mu: int, c2: float = 0.5
) -> list[int]:
    """Label set for the HMM simulation (§3).

    Greedy construction from the paper: starting at ``l_0 = 0``, take as
    the next label the first ``l`` with ``f(mu v / 2^l) <= c2 * f(mu v /
    2^{l_prev})``; close with ``log v``.  Because ``f`` is (2, c)-uniform
    the reverse bound ``f(mu v / 2^{l_{i+1}}) >= (c2 / c) f(mu v / 2^{l_i})``
    holds automatically.
    """
    if not 0.0 < c2 < 1.0:
        raise ValueError(f"c2 must lie in (0, 1), got {c2}")
    try:
        return list(_label_set_hmm_cached(f, v, mu, c2))
    except TypeError:  # unhashable custom function
        return _greedy_label_set(lambda lab: f(mu * (v >> lab)), v, c2)


@lru_cache(maxsize=256)
def _label_set_hmm_cached(
    f: AccessFunction, v: int, mu: int, c2: float
) -> tuple[int, ...]:
    return tuple(_greedy_label_set(lambda lab: f(mu * (v >> lab)), v, c2))


def build_label_set_bt(
    f: AccessFunction,
    v: int,
    mu: int,
    c2: float = 0.75,
    d1: float = 2.0,
) -> list[int]:
    """Label set for the BT simulation (§5.2.2).

    Applies the greedy construction to ``phi(l) = log2(d1 mu v / 2^l)``.
    ``c2`` must exceed the polynomial degree ``alpha`` of ``f = O(x^alpha)``
    for property (c) to follow; the default 0.75 covers both case-study
    functions (``x^0.5`` and ``log x``).
    """
    if not 0.0 < c2 < 1.0:
        raise ValueError(f"c2 must lie in (0, 1), got {c2}")
    if d1 <= 1.0:
        raise ValueError(f"d1 must exceed 1, got {d1}")
    try:
        return list(_label_set_bt_cached(v, mu, c2, d1))
    except TypeError:  # pragma: no cover - all-numeric key, always hashable
        pass
    return _greedy_label_set(
        lambda lab: math.log2(d1 * mu * (v >> lab)), v, c2
    )


@lru_cache(maxsize=256)
def _label_set_bt_cached(
    v: int, mu: int, c2: float, d1: float
) -> tuple[int, ...]:
    return tuple(
        _greedy_label_set(lambda lab: math.log2(d1 * mu * (v >> lab)), v, c2)
    )


def _greedy_label_set(phi, v: int, c2: float) -> list[int]:
    log_v = v.bit_length() - 1
    if v != 1 << log_v:
        raise ValueError(f"v must be a power of two, got {v}")
    labels = [0]
    while labels[-1] < log_v:
        prev = phi(labels[-1])
        nxt = None
        for lab in range(labels[-1] + 1, log_v + 1):
            if phi(lab) <= c2 * prev:
                nxt = lab
                break
        if nxt is None:
            break
        labels.append(nxt)
    if labels[-1] != log_v:
        labels.append(log_v)
    return labels


def is_l_smooth(labels: list[int], label_set: list[int]) -> bool:
    """Check Definition 3 for a sequence of superstep labels."""
    index = {lab: k for k, lab in enumerate(label_set)}
    if any(lab not in index for lab in labels):
        return False
    for prev, cur in zip(labels, labels[1:]):
        if cur < prev and index[cur] != index[prev] - 1:
            return False
    return True


@dataclass
class SmoothedProgram:
    """An L-smooth program plus its provenance.

    ``origin[k]`` is the index of the original superstep that new superstep
    ``k`` came from, or ``None`` for an inserted dummy.  The analyses in
    the paper are stated against the *original* program's parameters, so
    benchmark code uses ``origin`` to attribute costs.
    """

    program: Program
    label_set: list[int]
    origin: list[int | None]

    @property
    def n_dummies(self) -> int:
        return sum(1 for o in self.origin if o is None)


def smooth_program(program: Program, label_set: list[int]) -> SmoothedProgram:
    """Transform ``program`` into an equivalent L-smooth program.

    The program is first normalized to end with a global synchronization
    (a 0-superstep), as the paper assumes.  Dummies perform no computation
    and route no messages; pending message buffers persist through them
    (buffers are part of the processor context), so the transformation is
    semantics-preserving — the equivalence tests check this program-by-
    program.

    Results are memoized per ``(program, label_set)`` on the program object
    itself (so the cache lives and dies with the program): the Brent
    self-simulation smooths the identical fine-run program once per host
    processor, and chained runs re-smooth the same program repeatedly.
    Supersteps are immutable, so sharing the smoothed result is safe.
    """
    key = tuple(label_set)
    cache: dict | None = getattr(program, "_smooth_cache", None)
    if cache is not None:
        hit = cache.get(key)
        if hit is not None:
            return hit
    result = _smooth_program_uncached(program, label_set)
    if cache is None:
        cache = {}
        try:
            program._smooth_cache = cache  # type: ignore[attr-defined]
        except AttributeError:  # pragma: no cover - exotic Program subclass
            return result
    cache[key] = result
    return result


def _smooth_program_uncached(
    program: Program, label_set: list[int]
) -> SmoothedProgram:
    if label_set[0] != 0 or label_set[-1] != program.log_v:
        raise ValueError(
            f"label set must span 0..log v = {program.log_v}, got {label_set}"
        )
    if any(b <= a for a, b in zip(label_set, label_set[1:])):
        raise ValueError(f"label set must be strictly increasing: {label_set}")

    normalized = program.with_global_sync()
    index_of: dict[int, int] = {}
    for label in range(program.log_v + 1):
        # largest label in L not greater than `label`
        k = max(k for k, l in enumerate(label_set) if l <= label)
        index_of[label] = k

    new_steps: list[Superstep] = []
    origin: list[int | None] = []
    prev_idx: int | None = None
    for orig_pos, step in enumerate(normalized.supersteps):
        idx = index_of[step.label]
        if prev_idx is not None and idx < prev_idx - 1:
            # descending more than one L-level: fill with dummies
            for k in range(prev_idx - 1, idx, -1):
                new_steps.append(
                    Superstep(label_set[k], DUMMY, name=f"dummy-l{label_set[k]}")
                )
                origin.append(None)
        new_steps.append(
            Superstep(
                label_set[idx],
                step.body,
                name=step.name,
                array_body=step.array_body,
            )
        )
        origin.append(orig_pos)
        prev_idx = idx

    smoothed = normalized.replace_supersteps(new_steps)
    assert is_l_smooth(smoothed.labels(), label_set)
    return SmoothedProgram(program=smoothed, label_set=label_set, origin=origin)
