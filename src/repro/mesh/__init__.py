"""The mesh-of-HMMs model ``M_d(n, p, m)`` of Bilardi and Preparata [16].

Section 1 of the paper positions its headline result against [16,18]:
simulating an ``M_d(n, n, m)`` on an ``M_d(n, p, m)`` with fewer
processors incurs slowdown ``(n/p) * Lambda(n, p, m)`` where the extra
factor ``Lambda`` — caused by aggregating the guests' memories into one
deeper hierarchy — can grow up to ``(n/p)^{1/d}`` and is *unavoidable*
for certain computations [18].  The paper's contribution is that D-BSP's
submachine locality eliminates this extra factor.

This subpackage implements the ``d = 1`` instance operationally so the
contrast is measurable (benchmark E14): a lockstep neighbour-exchange
workload self-simulated on the mesh pays a growing ``Lambda``, while the
same scale-down on D-BSP (Theorem 10) stays at ``Theta(v/v')``.
"""

from repro.mesh.model import (
    MeshAccess,
    MeshMachine,
    mesh_native_time,
    mesh_simulation_time,
)

__all__ = [
    "MeshAccess",
    "MeshMachine",
    "mesh_native_time",
    "mesh_simulation_time",
]
