"""Operational ``M_1(n, p, m)`` and its self-simulation (illustrative).

Model (following [16], specialized to ``d = 1``): ``p`` HMM nodes on a
line; each node's local memory has ``n m / p`` words with access function
``f(x) = ceil((x + 1) / m)`` — the memory is a chain of size-``m``
modules, the k-th module costing ``k`` per access.  Sending a
constant-size message to a neighbour costs as much as accessing the
farthest local cell, ``f(n m / p - 1) = n / p``.

Workload: the *lockstep neighbour-exchange* computation — in every step,
every node scans its ``m``-word context and exchanges one word with each
line neighbour.  This is the natural mesh analogue of a fine-grained
0-superstep workload: communication crosses node boundaries every step,
so a scaled-down host cannot park any guest context at the top of its
memory for long.

* :func:`mesh_native_time` — the workload on ``M_1(n, n, m)``: every
  context is an entire local memory (all accesses cost 1), neighbour
  messages cost 1.
* :func:`mesh_simulation_time` — the workload simulated on
  ``M_1(n, p, m)`` by the natural block schedule: host node ``h`` holds
  guest contexts ``h n/p .. (h+1) n/p - 1`` consecutively and, every
  step, cycles each of them to the top of its memory, runs the scan
  there, and returns it (cycling is no worse than scanning in place, and
  matches the strategy of [16]).  Boundary messages cost ``n/p``.

The measured slowdown divided by the parallelism loss ``n/p`` is the
``Lambda`` of [16]: for this workload it grows linearly in ``n/p``
(every guest context must still be hauled past ``Theta((n/p) m)`` words
of its siblings every step — there is no submachine structure the
schedule could exploit).  Benchmark E14 shows the contrast with
Theorem 10's flat ``Theta(v/v')``.

This is an *illustrative* reproduction of the contrast the paper draws,
not a re-implementation of [16]'s general simulation (which interleaves
memories block-cyclically and proves matching upper and lower bounds);
DESIGN.md records the substitution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.functions import AccessFunction, CostTable

__all__ = [
    "MeshAccess",
    "MeshMachine",
    "mesh_native_time",
    "mesh_simulation_time",
]


@dataclass(frozen=True, repr=False)
class MeshAccess(AccessFunction):
    """``f(x) = ceil((x + 1) / m)``: a chain of size-``m`` memory modules."""

    m: int = 64

    def __post_init__(self) -> None:
        if self.m <= 0:
            raise ValueError(f"module size must be positive, got {self.m}")
        object.__setattr__(self, "name", f"ceil(x/{self.m})")

    def __call__(self, x: float) -> float:
        return float(math.ceil((x + 1) / self.m))

    def evaluate(self, xs):
        import numpy as np

        return np.ceil((np.asarray(xs, dtype=np.float64) + 1) / self.m)


class MeshMachine:
    """One node of ``M_1(n, p, m)``: an HMM of ``c * m`` words.

    ``c = n / p`` is the number of guest contexts the node holds.  The
    class only does cost accounting (the E14 workload is data-oblivious,
    so there is no state to move): :meth:`scan_context`,
    :meth:`cycle_context` and :meth:`neighbour_message` charge the model
    costs of the block schedule's primitive actions.
    """

    def __init__(self, m: int, contexts: int):
        self.m = int(m)
        self.contexts = int(contexts)
        self.f = MeshAccess(m)
        self.size = self.m * self.contexts
        self.table = CostTable(self.f, max(self.size, 1))
        self.time = 0.0

    def scan_context(self, index: int) -> None:
        """Touch every word of guest context ``index`` at its resting depth."""
        lo = index * self.m
        self.time += self.table.range_cost(lo, lo + self.m)

    def cycle_context(self, index: int) -> None:
        """Bring context ``index`` to the top, scan it there, return it.

        Two relocations (read at depth + write at top, and back) plus the
        near-top scan; cheaper than :meth:`scan_context` only by constant
        factors — the haul past the sibling contexts is unavoidable.
        """
        lo = index * self.m
        haul = self.table.range_cost(lo, lo + self.m) + self.table.range_cost(
            0, self.m
        )
        self.time += 2.0 * haul + self.table.range_cost(0, self.m)

    def neighbour_message(self) -> None:
        """One constant-size message to a line neighbour: f(size - 1)."""
        self.time += self.f(self.size - 1)


def mesh_native_time(n: int, m: int, steps: int) -> float:
    """The workload on ``M_1(n, n, m)``: parallel time.

    Every node scans its own memory (``m`` accesses at cost 1 each) and
    sends/receives two neighbour words (cost ``f(m - 1) = 1`` each).
    """
    node = MeshMachine(m, contexts=1)
    for _ in range(steps):
        node.scan_context(0)
        node.neighbour_message()
        node.neighbour_message()
    return node.time


def mesh_simulation_time(
    n: int, p: int, m: int, steps: int, schedule: str = "cycle"
) -> float:
    """The workload simulated on ``M_1(n, p, m)``: parallel host time.

    Per step, the busiest host node processes its ``n/p`` guest contexts
    (``schedule`` picks in-place scanning or cycling through the top) and
    exchanges the two boundary words with its neighbours.
    """
    if n % p:
        raise ValueError(f"p = {p} must divide n = {n}")
    c = n // p
    node = MeshMachine(m, contexts=c)
    for _ in range(steps):
        for j in range(c):
            if schedule == "cycle":
                node.cycle_context(j)
            elif schedule == "in-place":
                node.scan_context(j)
            else:
                raise ValueError(f"unknown schedule {schedule!r}")
        # messages between guests inside the node were handled during the
        # scans; only the two boundary words leave the node
        node.neighbour_message()
        node.neighbour_message()
    return node.time
