"""Unified engine API: one protocol, one result type, one registry.

The package has four execution engines — direct D-BSP, the D-BSP->HMM
simulation (Thm 5), the D-BSP->BT simulation (Thm 12) and the Brent-style
self-simulation (Thm 10).  Each keeps its native, fully-detailed result
object, but they all speak one public surface here:

* :class:`Engine` — the protocol: ``engine.run(program, f, trace=...)``;
* :class:`EngineResult` — the shared result: ``time``, ``slowdown``,
  ``counters``, ``breakdown``, ``trace`` (recorded spans), plus ``meta``
  and the ``native`` engine-specific result for power users;
* :data:`ENGINES` — the registry keyed by engine name;
* :func:`run` — convenience front end: build a bundled program by name,
  resolve the access function from a spec string, run the engine, and
  (for simulations) attach the measured slowdown against the direct run.

The CLI (``python -m repro run|profile``), the benchmarks and the tests
all consume engines through this module, so adding an engine means
writing one adapter and registering it — no per-engine special-casing
anywhere downstream.

>>> sorted(ENGINES)
['brent', 'bt', 'direct', 'hmm', 'vec']
>>> ENGINES["hmm"].description
'D-BSP -> HMM simulation, Fig. 1 scheduler (Thm 5)'
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Protocol, runtime_checkable

from repro.algorithms.convolution import convolution_program
from repro.algorithms.fft import fft_dag_program, fft_recursive_program
from repro.algorithms.listranking import list_ranking_program
from repro.algorithms.matmul import matmul_program
from repro.algorithms.primitives import (
    broadcast_program,
    prefix_sums_program,
    reduce_program,
)
from repro.algorithms.sorting import bitonic_sort_program
from repro.dbsp.machine import DBSPMachine, DBSPRunResult
from repro.dbsp.program import Program
from repro.functions import (
    AccessFunction,
    ConstantAccess,
    LinearAccess,
    LogarithmicAccess,
    PolynomialAccess,
    StaircaseAccess,
)
from repro.obs.trace import OTHER, SpanRecord
from repro.sim.brent import BrentSimulator
from repro.sim.bt_sim import BTSimulator
from repro.sim.hmm_sim import HMMSimulator
from repro.testing import random_program

__all__ = [
    "Engine",
    "EngineResult",
    "ENGINES",
    "PROGRAMS",
    "FUNCTION_HELP",
    "run",
    "build_program",
    "resolve_access_function",
]

#: bundled D-BSP programs: name -> (builder(v, mu=...), description)
PROGRAMS: dict[str, tuple[Callable[..., Program], str]] = {
    "sort": (bitonic_sort_program, "bitonic n-sorting (Prop. 9)"),
    "fft-dag": (fft_dag_program, "n-DFT, straight DAG schedule (Prop. 8)"),
    "fft-rec": (fft_recursive_program, "n-DFT, recursive schedule (Prop. 8)"),
    "matmul": (matmul_program, "n-MM, recursive quadrants (Prop. 7, Fig. 3)"),
    "broadcast": (broadcast_program, "tree broadcast from P0"),
    "reduce": (reduce_program, "tree reduction to P0"),
    "prefix": (prefix_sums_program, "Hillis-Steele prefix sums (locality-free)"),
    "listrank": (list_ranking_program, "pointer-jumping list ranking"),
    "conv": (convolution_program, "polynomial multiplication via FFT"),
    "random": (random_program, "pseudo-random mixing program"),
}

FUNCTION_HELP = (
    "x^A (0<A<1, e.g. x^0.5) | log | const | linear | staircase"
)


def resolve_access_function(spec: str) -> AccessFunction:
    """Resolve an access-function spec like ``x^0.5`` or ``log``.

    Raises :class:`ValueError` with an actionable message on bad specs —
    including the degenerate exponents ``x^0`` (that is the flat RAM:
    spell it ``const``) and ``x^1`` (the linear hierarchy: ``linear``).

    >>> resolve_access_function("x^0.5")
    PolynomialAccess('x^0.5')
    >>> resolve_access_function("log").name
    'log x'
    >>> resolve_access_function("x^0")
    Traceback (most recent call last):
        ...
    ValueError: 'x^0': the exponent must satisfy 0 < A < 1; x^0 is the \
flat RAM — spell it 'const'
    """
    spec = spec.strip().lower()
    if spec in ("log", "log x", "logx"):
        return LogarithmicAccess()
    if spec in ("const", "constant", "1", "ram"):
        return ConstantAccess()
    if spec in ("linear", "x"):
        return LinearAccess()
    if spec == "staircase":
        return StaircaseAccess()
    if spec.startswith("x^"):
        try:
            alpha = float(spec[2:])
        except ValueError:
            raise ValueError(
                f"bad polynomial exponent in {spec!r}: expected x^A with "
                f"a numeric A, e.g. x^0.5"
            ) from None
        if alpha <= 0.0:
            raise ValueError(
                f"{spec!r}: the exponent must satisfy 0 < A < 1; "
                f"x^0 is the flat RAM — spell it 'const'"
            )
        if alpha >= 1.0:
            raise ValueError(
                f"{spec!r}: the exponent must satisfy 0 < A < 1 (the paper "
                f"assumes sublinear access cost); for a linear hierarchy "
                f"spell it 'linear'"
            )
        return PolynomialAccess(alpha)
    raise ValueError(
        f"unknown access function {spec!r}; expected {FUNCTION_HELP}"
    )


def build_program(name: str, v: int, mu: int = 8) -> Program:
    """Build the bundled program ``name`` for a ``(v, mu)`` machine.

    >>> build_program("sort", v=8).v
    8
    """
    if name not in PROGRAMS:
        raise ValueError(
            f"unknown program {name!r}; try: {', '.join(sorted(PROGRAMS))}"
        )
    builder, _ = PROGRAMS[name]
    return builder(v, mu=mu)


@dataclass
class EngineResult:
    """Unified outcome of running a D-BSP program on any engine.

    The fields every engine fills identically:

    * ``time`` — total charged model time on the engine's host machine;
    * ``slowdown`` — ``time / baseline_time`` against the direct D-BSP
      run (``1.0`` for the direct engine; ``None`` when no baseline was
      computed or the baseline time is zero);
    * ``counters`` — event counters (ops, words touched/moved, block
      transfers, messages, context swaps, rounds, ...);
    * ``breakdown`` — charged time per phase of the engine's scheme, a
      view over the span trace (its values sum to ``time``);
    * ``trace`` — recorded :class:`~repro.obs.trace.SpanRecord` list
      (``trace="full"`` runs only; empty otherwise).

    ``meta`` carries engine/program identification for reports, and
    ``native`` the engine's own result object (e.g.
    :class:`~repro.sim.bt_sim.BTSimResult`) for anything
    engine-specific.

    >>> from repro import run
    >>> res = run("broadcast", v=8)
    >>> res.engine, res.slowdown
    ('direct', 1.0)
    >>> res.time == res.baseline_time > 0
    True
    >>> sorted(res.to_json())
    ['baseline_time', 'breakdown', 'counters', 'engine', 'meta', \
'slowdown', 'time', 'trace']
    """

    engine: str
    time: float
    contexts: list[dict]
    breakdown: dict[str, float] = field(default_factory=dict)
    counters: dict[str, int | float] = field(default_factory=dict)
    trace: list[SpanRecord] = field(default_factory=list)
    slowdown: float | None = None
    baseline_time: float | None = None
    meta: dict[str, Any] = field(default_factory=dict)
    native: Any = None

    # The pre-unification aliases (``total_time``, ``block_transfers``,
    # ``rounds``) were deprecated through the v0 line and are gone as of
    # the /v1 API redesign: use ``time`` and ``counters[...]``.

    def to_json(self, include_trace: bool = True) -> dict[str, Any]:
        """JSON-serializable document (contexts and ``native`` omitted)."""
        doc: dict[str, Any] = {
            "engine": self.engine,
            "time": self.time,
            "slowdown": self.slowdown,
            "baseline_time": self.baseline_time,
            "breakdown": self.breakdown,
            "counters": self.counters,
            "meta": self.meta,
        }
        if include_trace:
            doc["trace"] = [span.to_json() for span in self.trace]
        return doc

    @classmethod
    def from_json(cls, doc: dict[str, Any]) -> "EngineResult":
        """Rebuild a result from its :meth:`to_json` document.

        The inverse used by every replay path (the service result
        cache, ledger-backed restarts, trace files): all charged fields
        — ``time``, ``slowdown``, ``baseline_time``, ``breakdown``,
        ``counters``, recorded ``trace`` spans — round-trip exactly
        (JSON encodes floats shortest-repr and decodes them exactly),
        so ``EngineResult.from_json(res.to_json()).to_json() ==
        res.to_json()``.  ``contexts`` and ``native`` are not part of
        the document and come back empty.

        >>> from repro import run
        >>> res = run("broadcast", v=8)
        >>> EngineResult.from_json(res.to_json()).to_json() == res.to_json()
        True
        """
        return cls(
            engine=doc["engine"],
            time=doc["time"],
            contexts=[],
            breakdown=dict(doc.get("breakdown") or {}),
            counters=dict(doc.get("counters") or {}),
            trace=[
                SpanRecord.from_json(span) for span in doc.get("trace", [])
            ],
            slowdown=doc.get("slowdown"),
            baseline_time=doc.get("baseline_time"),
            meta=dict(doc.get("meta") or {}),
        )


@runtime_checkable
class Engine(Protocol):
    """What the registry holds: a named adapter running programs."""

    name: str
    description: str

    def run(
        self,
        program: Program,
        f: AccessFunction,
        trace: str = "phases",
        **opts: Any,
    ) -> EngineResult:
        """Run ``program`` on this engine under access function ``f``."""
        ...  # pragma: no cover - protocol


def _direct_spans(records) -> list[SpanRecord]:
    """Synthesize a span trace from direct-run superstep records.

    ``DBSPRunResult.records`` already *is* a per-superstep trace; this
    renders it in span form (one root span per superstep, compute /
    communication children) so the profile and export tooling treat the
    direct engine like any other.
    """
    spans: list[SpanRecord] = []
    clock = 0.0
    for rec in records:
        comm = rec.cost - rec.tau
        parent = len(spans)
        spans.append(SpanRecord(
            index=parent, parent=-1, depth=0,
            name=rec.name or f"superstep[{rec.label}]",
            category=OTHER,
            start=clock, end=clock + rec.cost, cost=rec.cost, self_cost=0.0,
            attrs={"superstep": rec.index, "label": rec.label, "h": rec.h},
        ))
        spans.append(SpanRecord(
            index=parent + 1, parent=parent, depth=1,
            name="compute", category="compute",
            start=clock, end=clock + rec.tau, cost=rec.tau, self_cost=rec.tau,
        ))
        spans.append(SpanRecord(
            index=parent + 2, parent=parent, depth=1,
            name="communication", category="communication",
            start=clock + rec.tau, end=clock + rec.cost,
            cost=comm, self_cost=comm,
        ))
        clock += rec.cost
    return spans


class DirectEngine:
    """Adapter for the guest-side ground truth executor."""

    name = "direct"
    description = "direct fully-parallel D-BSP execution (ground truth)"

    def run(
        self,
        program: Program,
        f: AccessFunction,
        trace: str = "phases",
        **opts: Any,
    ) -> EngineResult:
        opts = dict(opts)
        # the direct executor has no host side to parallelize; accept and
        # ignore the knob so callers can pass it engine-agnostically
        opts.pop("parallel", None)
        res: DBSPRunResult = DBSPMachine(f, **opts).run(
            program.with_global_sync()
        )
        return EngineResult(
            engine=self.name,
            time=res.total_time,
            contexts=res.contexts,
            breakdown=dict(res.breakdown) if trace != "off" else {},
            counters=dict(res.counters) if trace != "off" else {},
            trace=_direct_spans(res.records) if trace == "full" else [],
            slowdown=1.0,
            baseline_time=res.total_time,
            meta={"program": program.name, "f": f.name,
                  "v": program.v, "mu": program.mu},
            native=res,
        )


class HMMEngine:
    """Adapter for the Section 3 D-BSP -> HMM simulation (Theorem 5)."""

    name = "hmm"
    description = "D-BSP -> HMM simulation, Fig. 1 scheduler (Thm 5)"

    def run(
        self,
        program: Program,
        f: AccessFunction,
        trace: str = "phases",
        **opts: Any,
    ) -> EngineResult:
        sim = HMMSimulator(f, trace=trace, **opts)
        res = sim.simulate(program)
        return EngineResult(
            engine=self.name,
            time=res.time,
            contexts=res.contexts,
            breakdown=res.breakdown,
            counters=res.counters,
            trace=res.spans,
            meta={"program": program.name, "f": f.name,
                  "v": program.v, "mu": program.mu,
                  "rounds": res.rounds,
                  "kernel": sim.kernel,
                  "label_set": list(res.smoothed.label_set)},
            native=res,
        )


class VecEngine(HMMEngine):
    """The HMM simulation on the array-native superstep kernel.

    Charged-model semantics are identical to ``hmm`` (same Fig. 1
    schedule, bit-identical clocks, counters and spans — enforced by the
    equivalence suites); only the wall-clock execution strategy differs:
    the schedule is compiled once into a charge plan and bodies, message
    delivery and charging run as whole-machine array operations
    (:mod:`repro.sim.hmm_vec`).
    """

    name = "vec"
    description = "D-BSP -> HMM simulation, vectorized kernel (Thm 5)"

    def run(
        self,
        program: Program,
        f: AccessFunction,
        trace: str = "phases",
        **opts: Any,
    ) -> EngineResult:
        opts.setdefault("kernel", "vec")
        return super().run(program, f, trace=trace, **opts)


class BTEngine:
    """Adapter for the Section 5 D-BSP -> BT simulation (Theorem 12)."""

    name = "bt"
    description = "D-BSP -> BT simulation, Figs. 4-7 (Thm 12)"

    def run(
        self,
        program: Program,
        f: AccessFunction,
        trace: str = "phases",
        **opts: Any,
    ) -> EngineResult:
        opts = dict(opts)
        # the BT scheduler is a single recursive descent with no
        # independent sub-simulations; accept and ignore the knob
        opts.pop("parallel", None)
        res = BTSimulator(f, trace=trace, **opts).simulate(program)
        return EngineResult(
            engine=self.name,
            time=res.time,
            contexts=res.contexts,
            breakdown=res.breakdown,
            counters=res.counters,
            trace=res.spans,
            meta={"program": program.name, "f": f.name,
                  "v": program.v, "mu": program.mu,
                  "rounds": res.rounds,
                  "sort": opts.get("sort", "ams"),
                  "label_set": list(res.smoothed.label_set)},
            native=res,
        )


class BrentEngine:
    """Adapter for the Section 4 self-simulation (Theorem 10)."""

    name = "brent"
    description = "D-BSP(v) -> D-BSP(v') Brent-style self-simulation (Thm 10)"

    def run(
        self,
        program: Program,
        f: AccessFunction,
        trace: str = "phases",
        **opts: Any,
    ) -> EngineResult:
        opts = dict(opts)
        v_host = opts.pop("v_host", None) or max(1, program.v // 4)
        res = BrentSimulator(f, v_host=v_host, trace=trace, **opts).simulate(
            program
        )
        return EngineResult(
            engine=self.name,
            time=res.time,
            contexts=res.contexts,
            breakdown=res.breakdown,
            counters=res.counters,
            trace=res.spans,
            meta={"program": program.name, "f": f.name,
                  "v": program.v, "mu": program.mu,
                  "v_host": v_host},
            native=res,
        )


#: the engine registry: every engine the package can run programs on
ENGINES: dict[str, Engine] = {
    engine.name: engine
    for engine in (
        DirectEngine(), HMMEngine(), VecEngine(), BTEngine(), BrentEngine()
    )
}


def run(
    program: str | Program,
    engine: str = "direct",
    f: str | AccessFunction = "x^0.5",
    *,
    v: int = 64,
    mu: int = 8,
    trace: str = "phases",
    baseline: bool = True,
    **opts: Any,
) -> EngineResult:
    """Run a D-BSP program on one engine; the one-call front end.

    Parameters
    ----------
    program:
        A :class:`~repro.dbsp.program.Program`, or the name of a bundled
        one (see :data:`PROGRAMS`) built for ``(v, mu)``.
    engine:
        Registry key: ``direct`` | ``hmm`` | ``vec`` | ``bt`` |
        ``brent`` (``vec`` is the ``hmm`` simulation on the vectorized
        kernel — same charged results, much faster wall clock).
    f:
        Access/bandwidth function, as an object or a spec string
        (``x^0.5``, ``log``, ``const``, ``linear``, ``staircase``).
    trace:
        Observability level: ``off`` | ``counters`` | ``phases``
        (default) | ``full``.
    baseline:
        For simulation engines, also run the direct D-BSP execution and
        attach ``baseline_time`` and the measured ``slowdown``.
    opts:
        Passed through to the engine (e.g. ``sort="mergesort"`` for
        ``bt``, ``v_host=16`` for ``brent``, ``parallel=4`` for worker
        processes on ``hmm``/``brent`` — ignored by engines with no
        host side to parallelize).

    >>> from repro import run
    >>> result = run("sort", engine="bt", f="x^0.5", v=16)
    >>> result.slowdown is not None and result.breakdown["delivery"] > 0
    True
    """
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; try: {', '.join(sorted(ENGINES))}"
        )
    if isinstance(f, str):
        f = resolve_access_function(f)
    if isinstance(program, str):
        program = build_program(program, v, mu)
    result = ENGINES[engine].run(program, f, trace=trace, **opts)
    if baseline and engine != "direct":
        guest = DBSPMachine(f).run(program.with_global_sync())
        result.baseline_time = guest.total_time
        result.slowdown = (
            result.time / guest.total_time if guest.total_time > 0 else None
        )
    return result
