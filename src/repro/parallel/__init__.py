"""Host-parallel execution: worker pool, round scheduling, sweep runner.

This package reclaims *host* parallelism — multiple worker processes on
the machine running the simulators — without ever changing *model*
results: charged costs, counters and phase breakdowns are bit-identical
to the serial path for any job count (see ``DESIGN.md: Host parallelism
vs. model parallelism``, and ``tests/test_parallel.py`` which pins the
claim).

Entry points:

* simulators accept ``parallel=`` (a :class:`ParallelConfig`, a job
  count, or ``None`` to read ``REPRO_JOBS``);
* ``python -m repro bench --jobs N`` / ``run --jobs N`` on the CLI;
* :mod:`repro.parallel.sweep` for distributing independent cells.
"""

from repro.parallel.config import (
    SERIAL,
    ParallelConfig,
    ParallelFallbackWarning,
    reset_fallback_warnings,
    resolve_parallel,
    warn_fallback_once,
)
from repro.parallel.pool import (
    PoolUnavailable,
    WorkerPool,
    dumps_payload,
    shared_pool,
)
from repro.parallel.sweep import parallel_map, run_cells, touch_sweep

__all__ = [
    "ParallelConfig",
    "ParallelFallbackWarning",
    "SERIAL",
    "resolve_parallel",
    "warn_fallback_once",
    "reset_fallback_warnings",
    "PoolUnavailable",
    "WorkerPool",
    "dumps_payload",
    "shared_pool",
    "parallel_map",
    "touch_sweep",
    "run_cells",
]
