"""Parallel sweep runner: fan independent cells across the worker pool.

Three consumers, all built on :func:`parallel_map`:

* :func:`touch_sweep` — the Fact 1 / Fact 2 validation sweep (charged
  touching costs vs. their closed-form bounds over a size ladder).
  Charged costs are deterministic and cells are independent, so this
  parallelizes freely; per-cell event counters are merged back
  **in cell order** (integer counters make the merge exact).
* :func:`run_matrix_distributed` — the bench matrix with one worker task
  per workload.  Wall clock is measured *inside* each worker, serially
  per cell, so distribution shortens the overall run without distorting
  any cell's own numbers.  (For engine-internal parallelism — the thing
  that can raise a single cell's throughput — use
  ``repro.bench.run_bench(jobs=...)`` instead.)
* :func:`run_cells` — ad-hoc (engine, program, f, v) cells, with
  recorded spans tagged per task and merged into one forest
  (:func:`repro.obs.trace.tag_spans` / ``merge_span_lists``).

Degradation policy: when the pool cannot run (no workers, unpicklable
payloads, a worker lost mid-flight) the whole map reruns serially — every
task body is also callable in-process, and all tasks are deterministic,
so the fallback returns identical results with one
:class:`~repro.parallel.config.ParallelFallbackWarning`.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.parallel.config import (
    ParallelConfig,
    resolve_parallel,
    warn_fallback_once,
)
from repro.parallel.pool import PoolUnavailable, shared_pool

__all__ = [
    "parallel_map",
    "touch_sweep",
    "run_matrix_distributed",
    "run_cells",
]


def parallel_map(
    kind: str,
    args_list: Sequence[Any],
    parallel: "ParallelConfig | int | None" = None,
) -> list[Any]:
    """Run one registered task per element, results in element order.

    The serial path calls the identical task body in-process, so results
    never depend on whether the pool was used.
    """
    cfg = resolve_parallel(parallel)
    if cfg.enabled and args_list:
        pool = shared_pool(cfg.jobs)
        try:
            return list(
                pool.run_ordered(kind, list(args_list), policy=cfg.retry)
            )
        except PoolUnavailable as exc:
            if not cfg.fallback:
                raise
            warn_fallback_once(
                f"worker pool unavailable for {kind!r} sweep ({exc}); "
                f"running serially"
            )
    from repro.parallel import workers

    task = workers.TASKS[kind]
    return [task(args) for args in args_list]


def touch_sweep(
    sizes: Sequence[int],
    f: str = "x^0.5",
    parallel: "ParallelConfig | int | None" = None,
    ledger=None,
) -> dict[str, Any]:
    """Fact 1 / Fact 2 charged-cost sweep over ``sizes``.

    Returns ``{"f", "cells", "counters"}`` where ``cells`` is one
    document per size (HMM/BT touching costs and their bounds) and
    ``counters`` is the deterministic in-order merge of every cell's
    event counters.

    With a :class:`~repro.resilience.ledger.SweepLedger`, each cell is
    checkpointed as it completes and cells already in the ledger are
    replayed instead of recomputed — the returned document is identical
    either way (charged costs are deterministic, and JSON round-trips
    them exactly).
    """
    from repro.obs.counters import Counters

    args_list = [(n, f) for n in sizes]
    if ledger is not None:
        from repro.resilience.checkpoint import resume_map

        cells = resume_map("touch-cost", args_list, ledger, parallel)
    else:
        cells = parallel_map("touch-cost", args_list, parallel)
    merged = Counters()
    for cell in cells:
        merged.merge(cell["counters"])
    return {"f": f, "cells": cells, "counters": merged.snapshot()}


def run_matrix_distributed(
    workloads=None,
    budget_s: float | None = None,
    smoke: bool = False,
    parallel: "ParallelConfig | int | None" = None,
    echo=None,
    ledger=None,
) -> dict[str, Any]:
    """Run the bench matrix with one worker task per workload.

    The document is assembled in matrix order regardless of completion
    order; the header marks the run as distributed so wall-clock totals
    are not misread as a serial trajectory.

    With a :class:`~repro.resilience.ledger.SweepLedger`, every workload
    cell is checkpointed as it completes; a run restarted with the same
    ledger replays completed cells verbatim (recorded wall numbers and
    all), so the re-folded document's per-cell charged costs are
    byte-identical to an uninterrupted run's.  The document then carries
    a ``resilience`` section with the ledger path and resume counts.
    """
    import dataclasses

    from repro.bench import (
        BENCH_SCHEMA,
        DEFAULT_BUDGET_S,
        WORKLOADS,
        bench_header,
    )

    if workloads is None:
        workloads = WORKLOADS
    if budget_s is None:
        budget_s = DEFAULT_BUDGET_S
    cfg = resolve_parallel(parallel)
    doc = bench_header(budget_s, smoke, cfg.jobs)
    doc["produced_by"] += " --distribute"
    doc["distributed"] = True
    args_list = [
        (dataclasses.asdict(w), budget_s, smoke) for w in workloads
    ]
    if ledger is not None:
        from repro.resilience.checkpoint import resume_map

        # Wall clock is measured serially inside each worker, so a
        # distributed cell is interchangeable with a serial one: the
        # context pins schema and a nominal jobs=1, letting serial and
        # distributed runs share a ledger.
        results = resume_map(
            "bench-workload",
            args_list,
            ledger,
            cfg,
            context={"schema": BENCH_SCHEMA, "jobs": 1},
        )
    else:
        results = parallel_map("bench-workload", args_list, cfg)
    for name, wl_doc in results:
        doc["workloads"][name] = wl_doc
        if echo:
            peak = wl_doc.get("peak")
            best = wl_doc.get("best_charged_words_per_s")
            echo(
                f"  {name:14s} peak {peak if peak is not None else '-':>8}  "
                f"best {best:,.0f} charged-words/s"
                if best
                else f"  {name:14s} peak {peak if peak is not None else '-':>8}"
            )
    if ledger is not None:
        doc["resilience"] = ledger.summary()
    return doc


def run_cells(
    cells: Sequence[tuple],
    trace: str = "counters",
    parallel: "ParallelConfig | int | None" = None,
    ledger=None,
    context: dict[str, Any] | None = None,
) -> tuple[list[dict[str, Any]], list]:
    """Run ad-hoc ``(engine, program, v, mu, f)`` cells across the pool.

    Cells may also be full 6-tuples ``(engine, program, v, mu, f,
    trace)`` — the exact ``run-cell`` worker payload — in which case the
    per-cell trace level wins over the ``trace`` argument (the jobs API
    submits heterogeneous cell lists this way).

    Returns ``(docs, spans)``: one result document per cell (order
    preserved) and, when ``trace="full"``, the merged span forest with
    every span tagged by its task index.

    With a :class:`~repro.resilience.ledger.SweepLedger` (and the
    ``context`` that qualifies the cell keys), cells are checkpointed
    and replayed through :func:`~repro.resilience.checkpoint.resume_map`
    exactly like the bench and touch sweeps; replayed documents are
    JSON round-trips of the computed ones, so the fold is identical
    either way.
    """
    from repro.obs.trace import merge_span_lists, tag_spans

    args_list = [
        tuple(cell) if len(cell) == 6 else (*cell, trace) for cell in cells
    ]
    if ledger is not None:
        from repro.resilience.checkpoint import resume_map

        docs = resume_map("run-cell", args_list, ledger, parallel,
                          context=context)
    else:
        docs = parallel_map("run-cell", args_list, parallel)
    span_lists = []
    for i, doc in enumerate(docs):
        span_lists.append(tag_spans(doc.pop("spans", []), worker=i))
    return docs, merge_span_lists(span_lists)
