"""Parallelism configuration and graceful-degradation policy.

A :class:`ParallelConfig` says *how much* host parallelism a simulator or
sweep runner may use; it never changes *what* is computed — charged model
costs are bit-identical with any ``jobs`` value (see
``DESIGN.md: Host parallelism vs. model parallelism``).

``jobs <= 1`` disables fan-out entirely.  ``min_work_per_task`` is the
work-estimate floor (roughly "processor-supersteps" of guest work) below
which a candidate task stays inline: dispatching a tiny cluster to a
worker process costs more in pickling than the simulation itself.

Degradation is always graceful: when the pool cannot be used (process
start failure, unpicklable program bodies, a worker lost mid-flight) the
caller falls back to the serial path — same results, one
:class:`ParallelFallbackWarning` per process per reason.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.resilience.retry import RetryPolicy

__all__ = [
    "ParallelConfig",
    "ParallelFallbackWarning",
    "SERIAL",
    "resolve_parallel",
    "warn_fallback_once",
    "reset_fallback_warnings",
]

#: default work floor: a fanned-out task should simulate at least this
#: many (processor, superstep) body executions to amortize dispatch
DEFAULT_MIN_WORK_PER_TASK = 4096


class ParallelFallbackWarning(RuntimeWarning):
    """A parallel path silently degraded to the serial one (results are
    unaffected — only wall-clock speedup is lost)."""


@dataclass(frozen=True)
class ParallelConfig:
    """How much host parallelism to use, and when to fall back.

    Parameters
    ----------
    jobs:
        Worker-process count; ``<= 1`` means serial (no pool is touched).
    min_work_per_task:
        Work-estimate floor below which candidate tasks stay inline.
    fallback:
        When ``True`` (default), pool or pickling failures degrade to the
        serial path with a one-shot :class:`ParallelFallbackWarning`;
        when ``False`` they raise — for tests and debugging.
    retry:
        :class:`~repro.resilience.retry.RetryPolicy` for infrastructure
        failures (worker death, per-task deadline overrun).  ``None``
        (default) uses the package default — two retries with
        exponential backoff and no deadline; pass
        :data:`~repro.resilience.retry.NO_RETRY` to make the first
        failure terminal.  Retries never change charged costs: pool
        tasks are pure functions of their payloads.

    >>> cfg = ParallelConfig(jobs=4)
    >>> cfg.enabled
    True
    >>> SERIAL.enabled
    False
    >>> resolve_parallel(2)
    ParallelConfig(jobs=2, min_work_per_task=4096, fallback=True, retry=None)
    >>> resolve_parallel(1) is SERIAL
    True
    """

    jobs: int = 1
    min_work_per_task: int = DEFAULT_MIN_WORK_PER_TASK
    fallback: bool = True
    retry: "RetryPolicy | None" = None

    @property
    def enabled(self) -> bool:
        return self.jobs > 1

    @classmethod
    def from_env(cls) -> "ParallelConfig":
        """Read ``REPRO_JOBS``.

        Both serial outcomes return the :data:`SERIAL` singleton itself,
        not a fresh instance: an unset/empty/invalid ``REPRO_JOBS`` and
        a parsed ``jobs <= 1`` alike yield ``from_env() is SERIAL``
        (``tests/test_parallel.py`` asserts the identity), so consumers
        may use ``is SERIAL`` as the "no parallelism requested" check.
        """
        raw = os.environ.get("REPRO_JOBS", "").strip()
        if not raw:
            return SERIAL
        try:
            jobs = int(raw)
        except ValueError:
            warn_fallback_once(f"ignoring non-integer REPRO_JOBS={raw!r}")
            return SERIAL
        return cls(jobs=jobs) if jobs > 1 else SERIAL


#: the do-nothing config: every consumer treats it as "stay serial"
SERIAL = ParallelConfig(jobs=1)


def resolve_parallel(
    parallel: "ParallelConfig | int | None",
) -> ParallelConfig:
    """Normalize a user-facing ``parallel`` argument.

    ``None`` defers to the environment (``REPRO_JOBS``), an ``int`` is a
    job count, and a :class:`ParallelConfig` passes through.
    """
    if parallel is None:
        return ParallelConfig.from_env()
    if isinstance(parallel, ParallelConfig):
        return parallel
    if isinstance(parallel, int):
        return ParallelConfig(jobs=parallel) if parallel > 1 else SERIAL
    raise TypeError(
        f"parallel must be ParallelConfig | int | None, got {parallel!r}"
    )


_warned_reasons: set[str] = set()


def warn_fallback_once(reason: str) -> None:
    """Emit one :class:`ParallelFallbackWarning` per process per reason."""
    if reason in _warned_reasons:
        return
    _warned_reasons.add(reason)
    warnings.warn(reason, ParallelFallbackWarning, stacklevel=3)


def reset_fallback_warnings() -> None:
    """Forget emitted one-shot warnings (tests only)."""
    _warned_reasons.clear()
