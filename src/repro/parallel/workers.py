"""Worker-side task bodies for the process pool.

Every task is a pure function of its (pickled) arguments: workers never
see parent state, so a task's charged costs depend only on the payload —
this is what makes the fan-out deterministic.  The parent folds worker
results back **in task order**; see ``DESIGN.md: Host parallelism vs.
model parallelism`` for why that reproduces the serial charge sequence
bit-for-bit.

Task registry
-------------
``hmm-segment``
    Simulate one l1-cluster's whole segment of supersteps (all labels >=
    l1) on a sub-machine, returning final contexts/pending, the *charge
    tape* (every elementary charge in execution order), the round count
    and the event counters.  The parent replays the tape onto its own
    clock — float addition is not associative, so shipping a per-cluster
    *total* would not be bit-identical; shipping the elementary charges
    and re-folding them in cluster order is.
``brent-hosts``
    Simulate one host processor's fine run (the embedded Section 3 HMM
    simulation) — each host's charged clock starts at zero in the serial
    path already, so no tape is needed; the parent takes
    ``max(host_times)`` and merges counters in host order.
``bench-workload``
    One full bench-matrix workload sweep, wall-clock measured inside the
    worker (serially), for the distributed bench runner.
``touch-cost``
    One Fact 1 / Fact 2 charged-cost cell (no wall measurement — charged
    costs are deterministic, so these cells parallelize freely).
``run-cell``
    One (engine, program, f, v) run returning the result document, with
    recorded spans when ``trace="full"`` (the parent tags them per
    worker via :func:`repro.obs.trace.tag_spans`).
``run-dag``
    One DAG request: re-parse the canonical spec, schedule it with the
    requested heuristic, compile to a superstep program and run it on
    the requested engine — same result-document shape as ``run-cell``.
"""

from __future__ import annotations

import pickle
from typing import Any, Callable

from repro.dbsp.program import Message, Program, Superstep

__all__ = ["TASKS", "_OffsetBody", "_OffsetArrayBody"]


class _OffsetArrayBody:
    """Array-body counterpart of :class:`_OffsetBody`.

    Wraps a superstep's ``array_body`` in the pid-translating
    :class:`~repro.sim.kernel.GlobalizedArrayView`, so the vectorized
    kernel inside a worker presents global pids to bodies while running
    on the cluster-local sub-machine.
    """

    __slots__ = ("body", "offset", "v_global", "label_shift")

    def __init__(self, body, offset: int, v_global: int, label_shift: int = 0):
        self.body = body
        self.offset = offset
        self.v_global = v_global
        self.label_shift = label_shift

    def __call__(self, view) -> None:
        from repro.sim.kernel import GlobalizedArrayView

        self.body(
            GlobalizedArrayView(
                view, self.offset, self.v_global, self.label_shift
            )
        )


class _OffsetBody:
    """Present a cluster-local view to a body that speaks global pids.

    The worker simulates processors ``offset .. offset + v_sub`` of a
    ``v_global``-processor guest as local pids ``0 .. v_sub``; program
    bodies, however, index processors globally.  Wraps each view in the
    same :class:`~repro.sim.brent._GlobalizedView` adapter the Brent
    engine uses serially.  ``label_shift`` restores the global superstep
    label on the presented view (the HMM segment scheme shifts labels
    down by l1; the Brent fine-run scheme presents local labels, exactly
    like its serial ``_shift_body``).
    """

    __slots__ = ("body", "offset", "v_global", "label_shift")

    def __init__(self, body, offset: int, v_global: int, label_shift: int = 0):
        self.body = body
        self.offset = offset
        self.v_global = v_global
        self.label_shift = label_shift

    def __call__(self, view) -> None:
        from repro.sim.brent import _GlobalizedView

        gview = _GlobalizedView(view, self.offset, self.v_global)
        if self.label_shift:
            gview.label = view.label + self.label_shift
        self.body(gview)


def _localize_pending(
    pending: list[list[Message]], offset: int
) -> list[list[Message]]:
    if not offset:
        return pending
    return [
        [Message(m.src - offset, m.payload) for m in box] for box in pending
    ]


def _wrap_steps(
    steps: list[Superstep], offset: int, v_global: int, label_shift: int
) -> list[Superstep]:
    return [
        Superstep(
            s.label,
            None
            if s.body is None
            else _OffsetBody(s.body, offset, v_global, label_shift),
            name=s.name,
            array_body=None
            if s.array_body is None
            else _OffsetArrayBody(s.array_body, offset, v_global, label_shift),
        )
        for s in steps
    ]


# ------------------------------------------------------------ hmm-segment
def _hmm_segment(args: tuple) -> tuple:
    """Simulate one l1-cluster's segment; return state + charge tape."""
    from repro.sim.hmm_sim import FlatTape, SpanTape, _HMMSimRun, HMMSimulator
    from repro.sim.smoothing import smooth_program

    common, offset, contexts, pending, want_spans = args
    (f, c2, check, v_sub, mu, label_shift, steps, label_set, counters_on,
     v_global, array_schema, kernel) = pickle.loads(common)
    program = Program(
        v_sub,
        mu,
        _wrap_steps(steps, offset, v_global, label_shift),
        name="hmm-segment",
        array_schema=array_schema,
    )
    # parallel=1: never nest pools inside a worker (REPRO_JOBS would
    # otherwise re-resolve here)
    sim = HMMSimulator(
        f,
        c2=c2,
        check_invariants=check,
        trace="counters" if counters_on else "off",
        parallel=1,
        kernel=kernel,
    )
    # the shifted segment is already L-smooth for the shifted label set,
    # so smoothing is an identity transform here (no dummies, no label
    # upgrades) — asserted by construction in the parent
    smoothed = smooth_program(program, label_set)
    run = _HMMSimRun(
        sim,
        smoothed,
        initial_contexts=contexts,
        initial_pending=_localize_pending(pending, offset),
    )
    tape = SpanTape() if want_spans else FlatTape()
    run.tape_rec = tape
    run.execute()
    counters = run.counters.snapshot() if counters_on else {}
    return (run.contexts, run.pending, tape.data(), run.round_index, counters)


# ------------------------------------------------------------ brent-hosts
def _brent_host(args: tuple) -> tuple:
    """Simulate one Brent host processor's fine run."""
    from repro.sim.hmm_sim import HMMSimulator

    common, offset, contexts, pending = args
    (g, c2, v_sub, mu, steps, v_global, trace_off, kernel) = pickle.loads(common)
    program = Program(
        v_sub,
        mu,
        _wrap_steps(steps, offset, v_global, label_shift=0),
        name="brent-fine",
    )
    sim = HMMSimulator(
        g,
        c2=c2,
        check_invariants="off",
        trace="off" if trace_off else "counters",
        parallel=1,
        kernel=kernel,
    )
    res = sim.simulate(
        program,
        initial_contexts=contexts,
        initial_pending=_localize_pending(pending, offset),
    )
    return (res.contexts, res.pending, res.time, res.counters)


# ---------------------------------------------------------- sweep workers
def _bench_workload(args: tuple) -> tuple:
    """One full bench workload sweep, wall-clocked inside this worker."""
    from repro.bench import Workload, sweep_workload

    fields, budget_s, smoke = args
    w = Workload(**fields)
    return (w.name, sweep_workload(w, budget_s, smoke))


def _touch_cost(args: tuple) -> dict[str, Any]:
    """One Fact 1 / Fact 2 charged-cost cell (deterministic, no wall)."""
    from repro.bt.machine import BTMachine
    from repro.bt.touching import bt_touch_all, bt_touching_bound
    from repro.engines import resolve_access_function
    from repro.hmm.algorithms import hmm_touching_bound
    from repro.hmm.machine import HMMMachine
    from repro.hmm.touching import hmm_touch_all
    from repro.obs.counters import Counters

    n, f_spec = args
    f = resolve_access_function(f_spec)
    hmm_counters = Counters()
    hmm = HMMMachine(f, n, counters=hmm_counters)
    hmm.mem[:n] = [1] * n
    hmm_cost = hmm_touch_all(hmm, n)
    bt_counters = Counters()
    bt = BTMachine(f, 2 * n, counters=bt_counters)
    bt.mem[n : 2 * n] = [1] * n
    bt_cost = bt_touch_all(bt, n)
    counters = hmm_counters.snapshot()
    for name, amount in bt_counters.snapshot().items():
        counters[name] = counters.get(name, 0) + amount
    return {
        "n": n,
        "f": f_spec,
        "hmm_cost": hmm_cost,
        "fact1_bound": hmm_touching_bound(f, n),
        "bt_cost": bt_cost,
        "fact2_bound": bt_touching_bound(f, n),
        "bt_advantage": hmm_cost / bt_cost if bt_cost else None,
        "counters": counters,
    }


def _run_cell(args: tuple) -> dict[str, Any]:
    """One (engine, program, f, v) run; spans included under trace=full."""
    from repro.engines import ENGINES, build_program, resolve_access_function

    engine, program_name, v, mu, f_spec, trace = args
    program = build_program(program_name, v, mu)
    f = resolve_access_function(f_spec)
    # parallel=1: the cell is already a worker task; never nest pools
    res = ENGINES[engine].run(program, f, trace=trace, parallel=1)
    doc = res.to_json(include_trace=False)
    doc["spans"] = res.trace
    return doc


def _run_dag(args: tuple) -> dict[str, Any]:
    """One DAG request: schedule, compile, run — a pure function of the
    canonical spec string, so the served document is identical wherever
    it computes (inline, pool worker, any shard)."""
    import json

    from repro.dag.compile import dag_program
    from repro.dag.spec import DagSpec
    from repro.engines import ENGINES, resolve_access_function

    engine, heuristic, spec_json, v, mu, f_spec, trace = args
    spec = DagSpec.from_json(json.loads(spec_json))
    program = dag_program(spec, v=v, mu=mu, heuristic=heuristic)
    f = resolve_access_function(f_spec)
    # parallel=1: the cell is already a worker task; never nest pools
    res = ENGINES[engine].run(program, f, trace=trace, parallel=1)
    doc = res.to_json(include_trace=False)
    doc["spans"] = res.trace
    return doc


TASKS: dict[str, Callable[[tuple], Any]] = {
    "hmm-segment": _hmm_segment,
    "brent-hosts": _brent_host,
    "bench-workload": _bench_workload,
    "touch-cost": _touch_cost,
    "run-cell": _run_cell,
    "run-dag": _run_dag,
}
