"""A persistent process pool with ordered dispatch and honest failure.

:class:`WorkerPool` wraps :class:`concurrent.futures.ProcessPoolExecutor`
lazily: no process is started until the first dispatch, and the pool then
persists for the life of the interpreter (one warm-up per process, not
per simulation).  Pools are shared per job count through
:func:`shared_pool` so every consumer (round schedulers, sweep runner)
reuses the same workers.

Failure taxonomy — the part that matters for bit-identical fallback:

* **Infrastructure failures** (executor cannot start, a worker process
  died, a task result could not be pickled) raise
  :class:`PoolUnavailable`.  Callers treat it as "parallelism is not
  available here" and rerun the work serially — results are unaffected.
* **Task failures** (the simulated program itself raised) propagate the
  original exception unchanged, exactly as the serial path would — a
  genuine ``ValueError`` from an engine must never be eaten by the
  parallel machinery.
"""

from __future__ import annotations

import pickle
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Iterator

__all__ = [
    "PoolUnavailable",
    "WorkerPool",
    "shared_pool",
    "dumps_payload",
]


class PoolUnavailable(RuntimeError):
    """The worker pool cannot run tasks; callers fall back to serial."""


class _ResultUnpicklable(Exception):
    """Raised *inside a worker* when a task's result cannot be pickled.

    Carries only a ``repr`` string so it always crosses the process
    boundary; the parent converts it to :class:`PoolUnavailable`.
    """


def dumps_payload(obj: Any) -> bytes:
    """Pickle a task payload, raising :class:`PoolUnavailable` on failure.

    Pre-pickling in the parent keeps the failure mode clean: an
    unpicklable program body surfaces here, before any process is
    touched, and the caller degrades to serial — instead of surfacing as
    an opaque executor error after dispatch.
    """
    try:
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise PoolUnavailable(f"payload does not pickle: {exc!r}") from exc


def _run_payload(blob: bytes) -> bytes:
    """Worker-side trampoline: decode, dispatch, encode.

    Task exceptions propagate natively (the executor ships them back and
    ``Future.result`` re-raises); only *result pickling* failures are
    wrapped, so the parent can tell "your result cannot cross the
    boundary" (infrastructure) from "your program crashed" (genuine).
    """
    from repro.parallel import workers

    kind, args = pickle.loads(blob)
    result = workers.TASKS[kind](args)
    try:
        return pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise _ResultUnpicklable(f"{kind} result does not pickle: {exc!r}")


class WorkerPool:
    """A lazily-started, persistent pool of ``jobs`` worker processes."""

    def __init__(self, jobs: int):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self._executor: ProcessPoolExecutor | None = None
        #: tasks handed to the executor over the pool's lifetime (the
        #: min_work_per_task gate tests assert this stays put)
        self.tasks_submitted = 0

    # ----------------------------------------------------------- lifecycle
    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            try:
                self._executor = ProcessPoolExecutor(max_workers=self.jobs)
            except Exception as exc:
                raise PoolUnavailable(
                    f"cannot start worker pool: {exc!r}"
                ) from exc
        return self._executor

    def shutdown(self) -> None:
        """Stop the workers (tests; normal exit is handled by atexit)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def _discard_broken(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    # ------------------------------------------------------------ dispatch
    def submit_many(self, kind: str, payloads: list[bytes]) -> list[Future]:
        """Submit pre-pickled payloads; ``PoolUnavailable`` on failure."""
        executor = self._ensure_executor()
        futures: list[Future] = []
        try:
            for blob in payloads:
                futures.append(executor.submit(_run_payload, blob))
        except Exception as exc:
            for fut in futures:
                fut.cancel()
            if isinstance(exc, BrokenProcessPool):
                self._discard_broken()
            raise PoolUnavailable(f"cannot submit to pool: {exc!r}") from exc
        self.tasks_submitted += len(futures)
        return futures

    def gather_ordered(self, futures: list[Future]) -> Iterator[Any]:
        """Yield task results in submission order.

        Infrastructure failures become :class:`PoolUnavailable` (and the
        broken executor is discarded so a later run can rebuild it); task
        exceptions re-raise unchanged.  Remaining futures are cancelled
        when the consumer stops early.
        """
        try:
            for fut in futures:
                try:
                    blob = fut.result()
                except BrokenProcessPool as exc:
                    self._discard_broken()
                    raise PoolUnavailable(
                        f"worker pool broke mid-run: {exc!r}"
                    ) from exc
                except _ResultUnpicklable as exc:
                    raise PoolUnavailable(str(exc)) from exc
                yield pickle.loads(blob)
        finally:
            for fut in futures:
                fut.cancel()

    def run_ordered(self, kind: str, args_list: list[Any]) -> Iterator[Any]:
        """Pickle, submit and gather in one call (payloads built eagerly,
        so pickling failures raise before any dispatch)."""
        payloads = [dumps_payload((kind, args)) for args in args_list]
        return self.gather_ordered(self.submit_many(kind, payloads))


_shared: dict[int, WorkerPool] = {}


def shared_pool(jobs: int) -> WorkerPool:
    """The process-wide pool for ``jobs`` workers (created on first use)."""
    pool = _shared.get(jobs)
    if pool is None:
        pool = _shared[jobs] = WorkerPool(jobs)
    return pool
