"""A persistent process pool with ordered dispatch and honest failure.

:class:`WorkerPool` wraps :class:`concurrent.futures.ProcessPoolExecutor`
lazily: no process is started until the first dispatch, and the pool then
persists for the life of the interpreter (one warm-up per process, not
per simulation).  Pools are shared per job count through
:func:`shared_pool` so every consumer (round schedulers, sweep runner)
reuses the same workers.

Failure taxonomy — the part that matters for bit-identical fallback:

* **Infrastructure failures** (executor cannot start, a worker process
  died, a task result could not be pickled) raise
  :class:`PoolUnavailable`.  Callers treat it as "parallelism is not
  available here" and rerun the work serially — results are unaffected.
* **Task failures** (the simulated program itself raised) propagate the
  original exception unchanged, exactly as the serial path would — a
  genuine ``ValueError`` from an engine must never be eaten by the
  parallel machinery.
"""

from __future__ import annotations

import pickle
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.resilience.retry import RetryPolicy

__all__ = [
    "PoolUnavailable",
    "WorkerPool",
    "shared_pool",
    "dumps_payload",
]


class PoolUnavailable(RuntimeError):
    """The worker pool cannot run tasks; callers fall back to serial."""


class _ResultUnpicklable(Exception):
    """Raised *inside a worker* when a task's result cannot be pickled.

    Carries only a ``repr`` string so it always crosses the process
    boundary; the parent converts it to :class:`PoolUnavailable`.
    """


def dumps_payload(obj: Any) -> bytes:
    """Pickle a task payload, raising :class:`PoolUnavailable` on failure.

    Pre-pickling in the parent keeps the failure mode clean: an
    unpicklable program body surfaces here, before any process is
    touched, and the caller degrades to serial — instead of surfacing as
    an opaque executor error after dispatch.
    """
    try:
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise PoolUnavailable(f"payload does not pickle: {exc!r}") from exc


def _run_payload(blob: bytes) -> bytes:
    """Worker-side trampoline: decode, dispatch, encode.

    Task exceptions propagate natively (the executor ships them back and
    ``Future.result`` re-raises); only *result pickling* failures are
    wrapped, so the parent can tell "your result cannot cross the
    boundary" (infrastructure) from "your program crashed" (genuine).
    """
    from repro.parallel import workers
    from repro.resilience import faults

    faults.maybe_inject_task_fault(blob)
    kind, args = pickle.loads(blob)
    result = workers.TASKS[kind](args)
    try:
        return pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise _ResultUnpicklable(f"{kind} result does not pickle: {exc!r}")


class WorkerPool:
    """A lazily-started, persistent pool of ``jobs`` worker processes."""

    def __init__(self, jobs: int):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self._executor: ProcessPoolExecutor | None = None
        #: tasks handed to the executor over the pool's lifetime (the
        #: min_work_per_task gate tests assert this stays put)
        self.tasks_submitted = 0

    # ----------------------------------------------------------- lifecycle
    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            try:
                self._executor = ProcessPoolExecutor(max_workers=self.jobs)
            except Exception as exc:
                raise PoolUnavailable(
                    f"cannot start worker pool: {exc!r}"
                ) from exc
        return self._executor

    def shutdown(self) -> None:
        """Stop the workers (tests; normal exit is handled by atexit)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def _discard_broken(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    # ------------------------------------------------------------ dispatch
    def submit_many(self, kind: str, payloads: list[bytes]) -> list[Future]:
        """Submit pre-pickled payloads; ``PoolUnavailable`` on failure.

        An executor found broken at submit time (a worker died *after*
        the previous gather finished) is rebuilt once — the break
        belongs to the previous batch, so this one deserves a fresh
        pool before any failure is reported.
        """
        for rebuild in (False, True):
            executor = self._ensure_executor()
            futures: list[Future] = []
            try:
                for blob in payloads:
                    futures.append(executor.submit(_run_payload, blob))
            except Exception as exc:
                for fut in futures:
                    fut.cancel()
                if isinstance(exc, BrokenProcessPool):
                    self._discard_broken()
                    if not rebuild:
                        continue
                raise PoolUnavailable(
                    f"cannot submit to pool: {exc!r}"
                ) from exc
            self.tasks_submitted += len(futures)
            return futures
        raise AssertionError("unreachable")  # pragma: no cover

    def _resubmit_one(self, blob: bytes) -> Future:
        """Submit one payload to a (possibly freshly rebuilt) executor."""
        executor = self._ensure_executor()
        try:
            fut = executor.submit(_run_payload, blob)
        except Exception as exc:
            if isinstance(exc, BrokenProcessPool):
                self._discard_broken()
            raise PoolUnavailable(f"cannot resubmit to pool: {exc!r}") from exc
        self.tasks_submitted += 1
        return fut

    @staticmethod
    def _needs_resubmit(fut: Future) -> bool:
        """Did this future lose its attempt to the pool breaking?"""
        if fut.cancelled() or not fut.done():
            return True
        exc = fut.exception()
        return exc is not None and isinstance(exc, BrokenProcessPool)

    def gather_ordered(
        self,
        futures: list[Future],
        kind: str | None = None,
        payloads: list[bytes] | None = None,
        policy: "RetryPolicy | None" = None,
    ) -> Iterator[Any]:
        """Yield task results in submission order.

        Infrastructure failures become :class:`PoolUnavailable` (and the
        broken executor is discarded so a later run can rebuild it); task
        exceptions re-raise unchanged on first occurrence.  Remaining
        futures are cancelled when the consumer stops early.

        When ``payloads`` is supplied, infrastructure failures are
        retried per :class:`~repro.resilience.retry.RetryPolicy`
        (``policy``; the package default when omitted): a worker death
        rebuilds the executor and resubmits every attempt it took down,
        and a task that exceeds ``policy.timeout_s`` is resubmitted with
        exponential backoff.  Tasks are pure functions of their
        payloads, so a retried attempt yields the identical result; only
        after a task exhausts ``policy.max_retries`` does the failure
        surface as :class:`PoolUnavailable`.  Retry activity is recorded
        on the :mod:`repro.resilience.recovery` side channel, never on
        any charged clock.
        """
        from repro.resilience import recovery
        from repro.resilience.retry import DEFAULT_RETRY

        can_retry = payloads is not None and len(payloads) == len(futures)
        if policy is None:
            policy = DEFAULT_RETRY
        attempts = [0] * len(futures)
        futures = list(futures)
        try:
            index = 0
            while index < len(futures):
                fut = futures[index]
                try:
                    blob = fut.result(
                        timeout=policy.timeout_s if can_retry else None
                    )
                except (FuturesTimeout, TimeoutError) as exc:
                    if fut.done():
                        raise  # the task itself raised TimeoutError
                    attempts[index] += 1
                    recovery.record(
                        "pool_timeouts",
                        kind=kind,
                        index=index,
                        attempt=attempts[index],
                    )
                    if attempts[index] > policy.max_retries:
                        raise PoolUnavailable(
                            f"task {index} exceeded its {policy.timeout_s}s "
                            f"deadline {attempts[index]} time(s)"
                        ) from exc
                    fut.cancel()
                    recovery.record(
                        "pool_retries", kind=kind, index=index, cause="timeout"
                    )
                    policy.sleep(attempts[index])
                    futures[index] = self._resubmit_one(payloads[index])
                    continue
                except BrokenProcessPool as exc:
                    self._discard_broken()
                    if not can_retry:
                        raise PoolUnavailable(
                            f"worker pool broke mid-run: {exc!r}"
                        ) from exc
                    attempts[index] += 1
                    recovery.record(
                        "worker_deaths",
                        kind=kind,
                        index=index,
                        attempt=attempts[index],
                    )
                    if attempts[index] > policy.max_retries:
                        raise PoolUnavailable(
                            f"worker pool broke {attempts[index]} time(s) "
                            f"on task {index}: {exc!r}"
                        ) from exc
                    recovery.record(
                        "pool_retries", kind=kind, index=index, cause="death"
                    )
                    policy.sleep(attempts[index])
                    # The break takes down every in-flight and queued
                    # attempt, not just the one being waited on —
                    # resubmit all of them to the rebuilt executor.
                    for j in range(index, len(futures)):
                        if self._needs_resubmit(futures[j]):
                            futures[j] = self._resubmit_one(payloads[j])
                    continue
                except _ResultUnpicklable as exc:
                    raise PoolUnavailable(str(exc)) from exc
                yield pickle.loads(blob)
                index += 1
        finally:
            for fut in futures:
                fut.cancel()

    def run_ordered(
        self,
        kind: str,
        args_list: list[Any],
        policy: "RetryPolicy | None" = None,
    ) -> Iterator[Any]:
        """Pickle, submit and gather in one call (payloads built eagerly,
        so pickling failures raise before any dispatch)."""
        payloads = [dumps_payload((kind, args)) for args in args_list]
        return self.gather_ordered(
            self.submit_many(kind, payloads),
            kind=kind,
            payloads=payloads,
            policy=policy,
        )


_shared: dict[int, WorkerPool] = {}


def shared_pool(jobs: int) -> WorkerPool:
    """The process-wide pool for ``jobs`` workers (created on first use)."""
    pool = _shared.get(jobs)
    if pool is None:
        pool = _shared[jobs] = WorkerPool(jobs)
    return pool
