"""The touching problem on the BT machine (Fact 2).

Touching ``n`` cells on ``f(x)``-BT costs ``Theta(n f*(n))`` where
``f*(x) = min{k >= 1 : f^(k)(x) <= 1}`` — e.g. ``Theta(n log* n)`` for
``f(x) = log x`` and ``Theta(n log log n)`` for ``f(x) = x^alpha``.  This is
exponentially better than the HMM's ``Theta(n f(n))`` and is the paper's
yardstick for the power of block transfer.

The algorithm is the classic recursive chunking scheme of [2]: to touch a
range living at depth ``~D``, carve it into chunks of size ``c ~ f(D)``;
each chunk is brought near the top with **one** block transfer (cost
``f(D) + c = O(c)``) and then touched recursively there, where the access
function has already shrunk from ``f`` to ``f o f``.  Unfolding the
recursion gives ``f*`` levels of O(1) amortized per-cell work.
"""

from __future__ import annotations

from repro.bt.machine import BTMachine
from repro.functions import AccessFunction

__all__ = ["bt_touch_all", "bt_touching_bound"]

#: chunk sizes at or below this are touched by direct reads (the access
#: function evaluated this close to the top of memory is O(1))
_BASE_CHUNK = 16


def bt_touching_bound(f: AccessFunction, n: int) -> float:
    """Fact 2 target shape: ``n * f*(n)``."""
    return float(n) * f.star(n)


def bt_touch_all(machine: BTMachine, n: int, data_start: int | None = None) -> float:
    """Touch ``n`` cells and return the charged cost.

    The data is assumed to occupy ``[data_start, data_start + n)`` with
    ``[0, data_start)`` free as staging space; by default ``data_start = n``
    (so the machine must have at least ``2n`` cells).  Cell 0 receives a
    digest of all touched values, making the touch observable.
    """
    if data_start is None:
        data_start = n
    if data_start + n > machine.size:
        raise ValueError(
            f"touching {n} cells at {data_start} needs {data_start + n} cells, "
            f"machine has {machine.size}"
        )
    start_time = machine.time
    fold = _Fold()
    _touch_region(machine, data_start, n, fold)
    machine.write(0, fold.digest)
    return machine.time - start_time


class _Fold:
    """Order-insensitive digest accumulator for touched values."""

    __slots__ = ("digest",)

    def __init__(self) -> None:
        self.digest = 0

    def add_all(self, values: list) -> None:
        total = 0
        for value in values:
            total += value if isinstance(value, (int, float)) else 1
        self.digest = (self.digest + int(total)) % (1 << 61)


def _touch_region(machine: BTMachine, lo: int, n: int, fold: _Fold) -> None:
    """Touch cells ``[lo, lo + n)`` using staging space ``[0, lo)``."""
    if n == 0:
        return
    # Chunk size: the access latency of the farthest cell involved.  One
    # block transfer of c cells costs f(lo+n) + c = O(c) when c >= f(lo+n).
    c = int(machine.f(lo + n - 1)) + 1
    if lo == 0 or c >= n or 2 * c > lo or n <= _BASE_CHUNK:
        # Base case: the region is already near the top (or too small to be
        # worth staging) — touch it with direct reads.
        fold.add_all(machine.read_range(lo, lo + n))
        return
    # Stage each chunk at [c, 2c) — leaving [0, c) free for the recursion —
    # and touch it there, where addresses (hence access costs) are ~f(f(...)).
    pos = lo
    while pos < lo + n:
        length = min(c, lo + n - pos)
        machine.block_move(pos, c, length)
        _touch_region(machine, c, length, fold)
        pos += length
