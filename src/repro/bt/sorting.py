"""Sorting on the BT machine.

The paper's BT simulation (Section 5.2.1) delivers messages by sorting
``Theta(mu * |C|)`` constant-size elements with the **Approx-Median-Sort**
algorithm of Aggarwal, Chandra and Snir [2], which runs in ``O(m log m)``
time on ``f(x)``-BT for any ``f(x) = O(x^alpha)``, ``alpha < 1``, using
``Theta(m log log m)`` space.  The paper imports that algorithm as a black
box; we do the same for the *bound* (:func:`bt_sorting_bound`) and
additionally provide a fully operational BT sort,
:func:`bt_merge_sort` — a chunked binary merge sort in which

* every bulk move is a genuine charged block transfer,
* runs are merged through a two-level staging area near the top of memory
  (outer chunks of size ``~f(M)``, refilled into inner chunks of size
  ``~f(f(M))``), so comparisons are charged at near-top addresses.

Binary merging is intrinsically ``Theta(m f*(m))`` per pass (it must touch
every element, cf. Fact 2), so the operational sort costs
``Theta(m log m * f*(m))`` — a ``log log m`` factor above Approx-Median-Sort
for ``f = x^alpha``.  The ablation benchmark
``benchmarks/test_ablation_bt_compute.py`` quantifies this gap; the BT
simulation engine accepts either the charged bound (default, mirroring the
paper) or this operational sort.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from repro.bt.machine import BTMachine
from repro.functions import AccessFunction

__all__ = ["bt_merge_sort", "bt_sorting_bound"]


def bt_sorting_bound(f: AccessFunction, m: int) -> float:
    """Approx-Median-Sort time bound from [2]: ``Theta(m log m)``.

    Valid for ``f(x) = O(x^alpha)`` with constant ``alpha < 1`` (which
    covers both of the paper's case-study access functions).
    """
    return float(m) * math.log2(max(m, 2))


def bt_merge_sort(
    machine: BTMachine,
    base: int,
    m: int,
    key: Callable[[Any], Any] | None = None,
) -> float:
    """Sort ``m`` records at ``[base, base + m)`` in place; return charged cost.

    Requires ``m`` additional scratch cells at ``[base + m, base + 2m)`` and
    a small staging area near the top of memory, which must be below
    ``base`` (i.e. ``base`` must leave room for ``~6 f(base + 2m)`` staging
    cells; callers in this repo always sort data parked with the top of
    memory free).  Stable.
    """
    if m <= 0:
        return 0.0
    if base + 2 * m > machine.size:
        raise ValueError(
            f"sorting {m} records at {base} needs scratch up to "
            f"{base + 2 * m}, machine has {machine.size}"
        )
    keyf = key if key is not None else lambda r: r
    start_time = machine.time
    staging = _Staging(machine, base, m)

    width = 1
    src, dst = base, base + m
    while width < m:
        pos = 0
        while pos < m:
            a_lo = pos
            a_hi = min(pos + width, m)
            b_hi = min(pos + 2 * width, m)
            _merge_runs(machine, staging, keyf, src + a_lo, src + a_hi,
                        src + a_hi, src + b_hi, dst + a_lo)
            pos += 2 * width
        width *= 2
        src, dst = dst, src
    if src != base:
        # the sorted sequence ended in the scratch half: one block move back
        machine.block_move(src, base, m)
    return machine.time - start_time


class _Staging:
    """Two-level staging buffers near the top of memory.

    Layout (word addresses):
    ``[0, 3w)``           — three inner buffers (A-in, B-in, out) of width
                            ``w ~ f(3c)``;
    ``[3w, 3w + 3c)``     — three outer buffers of width ``c ~ f(M)``.

    Elements stream: run (depth ``<= M``) → outer buffer (one block
    transfer per ``c`` elements) → inner buffer (one block transfer per
    ``w`` elements) → compared/emitted at addresses ``< 3w``.
    """

    def __init__(self, machine: BTMachine, base: int, m: int):
        depth = base + 2 * m
        c = max(4, int(machine.f(depth - 1)) + 1)
        c = min(c, max(4, base // 8))
        w = max(4, int(machine.f(6 * c)) + 1)
        w = min(w, c)
        if 3 * w + 3 * c > base:
            # Tiny instances: collapse to single-level direct staging.
            c = max(1, base // 6)
            w = c
        self.machine = machine
        self.c = c
        self.w = w
        self.inner_a = 0
        self.inner_b = w
        self.inner_out = 2 * w
        self.outer_a = 3 * w
        self.outer_b = 3 * w + c
        self.outer_out = 3 * w + 2 * c


class _StreamReader:
    """Sequential charged reader over ``[lo, hi)`` through the staging area."""

    def __init__(self, staging: _Staging, lo: int, hi: int,
                 outer: int, inner: int):
        self.m = staging.machine
        self.staging = staging
        self.pos = lo
        self.hi = hi
        self.outer = outer
        self.inner = inner
        self.outer_buf: list[Any] = []
        self.inner_buf: list[Any] = []
        self.inner_idx = 0

    def __bool__(self) -> bool:
        return bool(self.inner_idx < len(self.inner_buf)
                    or self.outer_buf or self.pos < self.hi)

    def peek(self) -> Any:
        if self.inner_idx >= len(self.inner_buf):
            self._refill_inner()
        # charged by next(); peeking inspects the word already near the top
        return self.inner_buf[self.inner_idx]

    def next(self) -> Any:
        value = self.peek()
        self.inner_idx += 1
        # one unit op at the inner buffer (addresses < 3w): compare/emit
        self.m.charge_op((self.inner + self.inner_idx - 1,))
        return value

    def _refill_inner(self) -> None:
        if not self.outer_buf:
            self._refill_outer()
        take = min(self.staging.w, len(self.outer_buf))
        if take == 0:
            raise IndexError("reading past end of stream")
        # charged block transfer outer -> inner
        self.m.time += self.m.block_copy_cost(self.outer, self.inner, take)
        self.m.block_transfers += 1
        self.inner_buf = self.outer_buf[:take]
        self.outer_buf = self.outer_buf[take:]
        self.inner_idx = 0

    def _refill_outer(self) -> None:
        take = min(self.staging.c, self.hi - self.pos)
        if take == 0:
            raise IndexError("reading past end of stream")
        self.m.time += self.m.block_copy_cost(self.pos, self.outer, take)
        self.m.block_transfers += 1
        self.outer_buf = self.m.mem[self.pos : self.pos + take]
        self.pos += take


class _StreamWriter:
    """Sequential charged writer to ``[dst, ...)`` through the staging area."""

    def __init__(self, staging: _Staging, dst: int, outer: int, inner: int):
        self.m = staging.machine
        self.staging = staging
        self.dst = dst
        self.outer = outer
        self.inner = inner
        self.inner_buf: list[Any] = []
        self.outer_buf: list[Any] = []

    def write(self, value: Any) -> None:
        self.inner_buf.append(value)
        self.m.charge_op((self.inner + len(self.inner_buf) - 1,))
        if len(self.inner_buf) >= self.staging.w:
            self._flush_inner()

    def _flush_inner(self) -> None:
        if not self.inner_buf:
            return
        take = len(self.inner_buf)
        self.m.time += self.m.block_copy_cost(self.inner, self.outer, take)
        self.m.block_transfers += 1
        self.outer_buf.extend(self.inner_buf)
        self.inner_buf = []
        if len(self.outer_buf) >= self.staging.c:
            self._flush_outer()

    def _flush_outer(self) -> None:
        if not self.outer_buf:
            return
        take = len(self.outer_buf)
        self.m.time += self.m.block_copy_cost(self.outer, self.dst, take)
        self.m.block_transfers += 1
        self.m.mem[self.dst : self.dst + take] = self.outer_buf
        self.dst += take
        self.outer_buf = []

    def close(self) -> None:
        self._flush_inner()
        self._flush_outer()


def _merge_runs(
    machine: BTMachine,
    staging: _Staging,
    keyf: Callable[[Any], Any],
    a_lo: int,
    a_hi: int,
    b_lo: int,
    b_hi: int,
    dst: int,
) -> None:
    """Stable two-way merge of runs A/B into ``[dst, ...)`` via staging."""
    reader_a = _StreamReader(staging, a_lo, a_hi, staging.outer_a, staging.inner_a)
    reader_b = _StreamReader(staging, b_lo, b_hi, staging.outer_b, staging.inner_b)
    writer = _StreamWriter(staging, dst, staging.outer_out, staging.inner_out)
    while reader_a and reader_b:
        if keyf(reader_a.peek()) <= keyf(reader_b.peek()):
            writer.write(reader_a.next())
        else:
            writer.write(reader_b.next())
    while reader_a:
        writer.write(reader_a.next())
    while reader_b:
        writer.write(reader_b.next())
    writer.close()
