"""Operational ``f(x)``-BT machine.

Extends :class:`~repro.hmm.machine.HMMMachine` with the charged, pipelined
block-copy primitive of [2]: copying ``b`` cells ``[x-b+1, x]`` onto a
disjoint block ``[y-b+1, y]`` costs ``max(f(x), f(y)) + b``.  Word-level
accesses keep their HMM cost ``f(x)``.

The convenience methods (:meth:`BTMachine.block_move`,
:meth:`BTMachine.block_swap`) express the same primitive with
``(start, length)`` ranges, which is how every caller in
:mod:`repro.sim.bt_sim` thinks about memory.
"""

from __future__ import annotations

from repro.functions import AccessFunction
from repro.hmm.machine import HMMMachine
from repro.obs.counters import NULL_COUNTERS, Counters, NullCounters

__all__ = ["BTMachine"]


class BTMachine(HMMMachine):
    """An ``f(x)``-HMM augmented with charged block transfer."""

    def __init__(
        self,
        f: AccessFunction,
        size: int,
        op_cost: float = 1.0,
        counters: Counters | NullCounters = NULL_COUNTERS,
    ):
        super().__init__(f, size, op_cost, counters)
        #: number of block transfers issued (for instrumentation/ablations)
        self.block_transfers: int = 0

    def block_copy_cost(self, src: int, dst: int, length: int) -> float:
        """Model cost of one block transfer: ``max(f(x), f(y)) + b``.

        ``x`` / ``y`` are the *last* (deepest) addresses of the source and
        destination ranges, per the model definition.
        """
        if length <= 0:
            raise ValueError(f"block length must be positive, got {length}")
        x = src + length - 1
        y = dst + length - 1
        return max(self.table.access(x), self.table.access(y)) + float(length)

    def block_move(self, src: int, dst: int, length: int) -> None:
        """Copy ``[src, src+length)`` onto disjoint ``[dst, dst+length)``.

        One charged block transfer.  The source range is left intact, as in
        the model (callers overwrite it when move semantics are needed).
        """
        self._check_disjoint(src, dst, length)
        self.time += self.block_copy_cost(src, dst, length)
        self.block_transfers += 1
        self.counters.add("block_transfers")
        self.counters.add("words_moved", length)
        self.mem[dst : dst + length] = self.mem[src : src + length]

    def block_swap(self, a: int, b: int, length: int, scratch: int) -> None:
        """Exchange disjoint ranges ``a``/``b`` via a disjoint ``scratch`` range.

        Exactly the three block transfers the paper charges for a
        buffer-assisted cluster swap (Section 5.2.2): ``a -> scratch``,
        ``b -> a``, ``scratch -> b``.
        """
        self._check_disjoint(a, scratch, length)
        self._check_disjoint(b, scratch, length)
        self.block_move(a, scratch, length)
        self.block_move(b, a, length)
        self.block_move(scratch, b, length)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BTMachine(f={self.f.name}, size={self.size}, "
            f"time={self.time:.1f}, transfers={self.block_transfers})"
        )
