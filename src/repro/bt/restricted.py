"""The restricted BT machine of Section 2's feasibility remark.

The paper argues the BT model's pipelined arbitrary-length transfers are
realistic by noting that ``f(x)``-BT "can be simulated with constant
slowdown by a restricted version of the model which in time f(x) allows
only to transfer f(x) consecutive cells between non-overlapping regions
of maximum address x" — i.e. a machine whose transfer length is capped by
the access latency itself, which matches the outstanding-request budgets
of real memory systems.

:class:`RestrictedBTMachine` implements that machine: a block transfer of
``b <= f(max(x, y))`` cells costs ``f(max(x, y))`` (one latency, the
pipeline hides the words); longer requests are rejected.
:meth:`RestrictedBTMachine.long_move` emulates an arbitrary-length
transfer by splitting it into maximal legal pieces — the constant-
slowdown simulation the remark asserts, verified by
``tests/test_restricted_bt.py``: the emulation's cost stays within a
constant factor of the unrestricted machine's ``max(f(x), f(y)) + b``.
"""

from __future__ import annotations

from repro.bt.machine import BTMachine

__all__ = ["RestrictedBTMachine"]


class RestrictedBTMachine(BTMachine):
    """BT machine whose transfer length is capped by the access latency."""

    def max_transfer(self, src: int, dst: int) -> int:
        """A safe transfer length starting at ``src``/``dst``.

        ``f`` is nondecreasing, so ``c = f(max(src, dst))`` cells always
        satisfy the cap at their own far end (``f(far) >= f(start) >= c``).
        """
        return max(1, int(self.f(max(src, dst))))

    def block_copy_cost(self, src: int, dst: int, length: int) -> float:
        """One restricted transfer: ``f(far)`` for ``b <= f(far)`` cells."""
        if length <= 0:
            raise ValueError(f"block length must be positive, got {length}")
        far = max(src + length - 1, dst + length - 1)
        cap = max(1, int(self.f(far)))
        if length > cap:
            raise ValueError(
                f"restricted BT transfer of {length} cells exceeds the "
                f"f-cap {cap} at address {far}"
            )
        return float(self.f(far))

    def long_move(self, src: int, dst: int, length: int) -> float:
        """Emulate an arbitrary-length transfer with capped pieces.

        Splits ``[src, src+length)`` into maximal legal chunks, issuing
        one restricted transfer per chunk; returns the charged cost.  The
        paper's remark: this is a constant-slowdown emulation of the
        unrestricted ``max(f(x), f(y)) + b`` transfer.
        """
        self._check_disjoint(src, dst, length)
        start = self.time
        pos = 0
        while pos < length:
            chunk = min(self.max_transfer(src + pos, dst + pos),
                        length - pos)
            self.block_move(src + pos, dst + pos, chunk)
            pos += chunk
        return self.time - start
