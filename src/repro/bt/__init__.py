"""The Hierarchical Memory Model with Block Transfer (BT) of Aggarwal et al. [2].

An ``f(x)``-BT behaves like the ``f(x)``-HMM, but can additionally copy a
block of ``b`` cells ``[x-b+1, x]`` onto a disjoint block ``[y-b+1, y]`` in
time ``max(f(x), f(y)) + b`` — a pipelined move whose per-word cost is
constant once the access latency of the *farthest* endpoint is paid.  The
model therefore rewards *spatial* locality on top of temporal locality.
"""

from repro.bt.machine import BTMachine
from repro.bt.restricted import RestrictedBTMachine
from repro.bt.touching import bt_touch_all, bt_touching_bound
from repro.bt.sorting import bt_merge_sort, bt_sorting_bound
from repro.bt.permutation import bt_transpose_permute

__all__ = [
    "BTMachine",
    "RestrictedBTMachine",
    "bt_touch_all",
    "bt_touching_bound",
    "bt_merge_sort",
    "bt_sorting_bound",
    "bt_transpose_permute",
]
