"""Rational (bit-defined) permutations on the BT machine.

Section 6 of the paper observes that the generic D-BSP-to-BT simulation can
be improved when supersteps route *known, regular* permutations: routing
the transpose permutations of the recursive n-DFT algorithm with the
rational-permutation algorithm of [2] — instead of general sorting — drops
the simulated DFT cost to the optimal ``O(n log n)`` on ``f(x)``-BT.

The primitive required is a matrix transpose at the touching-optimal cost
``Theta(s f*(s))`` for ``s`` elements.  We implement the classic *blocked*
scheme:

* tile the ``R x C`` matrix into ``q x q`` tiles with ``q ~ f(depth)``;
* move each tile to the top of memory with ``q`` block transfers of ``q``
  contiguous words (one per tile row) — cost ``q (f + q) = O(q^2)``, i.e.
  O(1) per element, since ``q >= f``;
* transpose the tile near the top, where the *effective* access function
  has shrunk from ``f`` to ``~f(2 f^2)`` — recurse;
* write the transposed tile out with ``q`` block transfers (tile rows are
  contiguous in the output as well).

Unfolding gives ``f*``-style geometric descent, hence ``Theta(s f*(s))``
overall — provided ``2 f(x)^2 = o(x)``, i.e. ``f(x) = O(x^alpha)`` with
``alpha < 1/2``, or ``f(x) = log x``.  For ``1/2 <= alpha < 1`` the descent
stalls (the natural tile is as large as the matrix); the full algorithm of
[2] factors the permutation into sub-field transposes to cover that range.
We document this limit and expose :func:`bt_rational_permutation_bound` —
the [2] bound — which the experiment harness uses for the stalled range.
"""

from __future__ import annotations

from typing import Any

from repro.bt.machine import BTMachine
from repro.functions import AccessFunction

__all__ = [
    "bt_transpose_permute",
    "bt_rational_permutation_bound",
    "blocked_transpose_supported",
]

#: tiles at or below this side length are transposed by direct charged ops
_BASE_TILE = 4


def bt_rational_permutation_bound(f: AccessFunction, s: int) -> float:
    """[2]'s bound for rational permutations of ``s`` cells: ``Theta(s f*(s))``."""
    return float(s) * f.star(s)


def blocked_transpose_supported(f: AccessFunction, s: int) -> bool:
    """Whether the blocked scheme's descent works: ``2 f(s)^2 <= s / 2``."""
    return 2.0 * f(s) ** 2 <= s / 2.0


def bt_transpose_permute(
    machine: BTMachine, base: int, rows: int, cols: int, scratch: int
) -> float:
    """Transpose the row-major ``rows x cols`` matrix at ``[base, base+s)``.

    ``scratch`` is the start of a disjoint ``s``-cell scratch region.  The
    transposed (``cols x rows`` row-major) matrix replaces the input at
    ``base``.  Addresses ``[0, ~4 f(depth)^2)`` must be free staging space
    below ``base``.  Returns the charged cost.
    """
    s = rows * cols
    if s == 0:
        return 0.0
    depth = max(base + s, scratch + s)
    if depth > machine.size:
        raise ValueError(f"transpose needs {depth} cells, machine has {machine.size}")
    start_time = machine.time
    _blocked_transpose(machine, base, scratch, rows, cols, depth)
    machine.block_move(scratch, base, s)
    return machine.time - start_time


def _tile_side(machine: BTMachine, depth: int, rows: int, cols: int) -> int:
    """Largest useful tile side: ``~f(depth)``, clamped to the matrix."""
    q = int(machine.f(depth - 1)) + 1
    return max(1, min(q, rows, cols))


def _blocked_transpose(
    machine: BTMachine, src: int, dst: int, rows: int, cols: int, depth: int
) -> None:
    """Out-of-place transpose ``src`` (rows x cols) -> ``dst`` (cols x rows)."""
    q = _tile_side(machine, depth, rows, cols)
    # the 2 q^2 staging cells must fit strictly below the data
    staging_limit = min(src, dst)
    while q > 1 and 2 * q * q > staging_limit:
        q //= 2
    if rows * cols <= _BASE_TILE * _BASE_TILE or q >= max(rows, cols) or q <= 1:
        _direct_transpose(machine, src, dst, rows, cols)
        return
    # staging: tile input at [0, q*q), transposed tile at [q*q, 2*q*q)
    tile_in = 0
    tile_out = q * q
    for r0 in range(0, rows, q):
        rq = min(q, rows - r0)
        for c0 in range(0, cols, q):
            cq = min(q, cols - c0)
            # gather tile: rq block transfers of cq contiguous words
            for r in range(rq):
                machine.block_move(src + (r0 + r) * cols + c0, tile_in + r * cq, cq)
            _transpose_at_top(machine, tile_in, tile_out, rq, cq)
            # scatter transposed tile: cq block transfers of rq words, each
            # landing contiguously in an output row
            for c in range(cq):
                machine.block_move(tile_out + c * rq, dst + (c0 + c) * rows + r0, rq)


def _transpose_at_top(
    machine: BTMachine, src: int, dst: int, rows: int, cols: int
) -> None:
    """Transpose a tile already resident near the top of memory.

    The tile occupies ``[src, src + rows*cols)`` with ``src < dst`` both
    near address 0; the effective hierarchy depth is the tile footprint, so
    the same blocked scheme recurses with ``f`` evaluated at ``O(q^2)``.
    """
    s = rows * cols
    q = _tile_side(machine, dst + s, rows, cols)
    if s <= _BASE_TILE * _BASE_TILE or q >= max(rows, cols) or 2 * q * q >= s:
        _direct_transpose(machine, src, dst, rows, cols)
        return
    # Recurse: sub-tiles are gathered from [src, ...) into the very top of
    # the region [0, 2 q^2) — physically we model this by charging block
    # transfers within the resident footprint and recursing on cost.
    for r0 in range(0, rows, q):
        rq = min(q, rows - r0)
        for c0 in range(0, cols, q):
            cq = min(q, cols - c0)
            for r in range(rq):
                machine.time += machine.block_copy_cost(
                    src + (r0 + r) * cols + c0, 0, cq
                )
                machine.block_transfers += 1
            _charge_tile_transpose(machine, rq, cq)
            for c in range(cq):
                machine.time += machine.block_copy_cost(
                    q * q, dst + (c0 + c) * rows + r0, rq
                )
                machine.block_transfers += 1
    _apply_transpose(machine, src, dst, rows, cols)


def _charge_tile_transpose(machine: BTMachine, rows: int, cols: int) -> None:
    """Charge the cost of transposing a rows x cols tile at the very top."""
    s = rows * cols
    q = _tile_side(machine, 2 * s, rows, cols)
    if s <= _BASE_TILE * _BASE_TILE or q >= max(rows, cols) or 2 * q * q >= s:
        # direct: one read + one write per element at addresses < 2s
        machine.time += 2.0 * machine.table.range_cost(0, min(2 * s, machine.size))
        return
    for r0 in range(0, rows, q):
        rq = min(q, rows - r0)
        for c0 in range(0, cols, q):
            cq = min(q, cols - c0)
            for r in range(rq):
                machine.time += machine.block_copy_cost(s, 0, cq)
                machine.block_transfers += 1
            _charge_tile_transpose(machine, rq, cq)
            for c in range(cq):
                machine.time += machine.block_copy_cost(0, s, rq)
                machine.block_transfers += 1


def _direct_transpose(
    machine: BTMachine, src: int, dst: int, rows: int, cols: int
) -> None:
    """Element-wise transpose, charging one read + one write per element."""
    machine.touch_range(src, src + rows * cols)
    machine.touch_range(dst, dst + rows * cols)
    _apply_transpose(machine, src, dst, rows, cols)


def _apply_transpose(
    machine: BTMachine, src: int, dst: int, rows: int, cols: int
) -> None:
    block: list[Any] = machine.mem[src : src + rows * cols]
    out: list[Any] = [None] * (rows * cols)
    for r in range(rows):
        row = block[r * cols : (r + 1) * cols]
        out[r : rows * cols : rows] = row
    machine.mem[dst : dst + rows * cols] = out
