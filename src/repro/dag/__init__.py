"""Task-DAG front end: spec -> schedule -> superstep Program.

The subsystem turns a validated task DAG (:mod:`repro.dag.spec`) into an
ordinary :class:`~repro.dbsp.program.Program` in three stages:

1. :func:`repro.dag.scheduler.schedule` maps every task to a
   ``(processor, step)`` slot under the BSP cost model, using one of the
   registered heuristics (greedy ETF list scheduling, or the
   locality-aware clustering pass that places communicating task groups
   in the same D-BSP submachine subtree);
2. :func:`repro.dag.compile.compile_schedule` lowers the scheduled DAG
   into labeled supersteps — compute steps at the finest label,
   communication rounds grouped per cluster level and chunked to the
   ``mu`` message budget;
3. the result runs unmodified on every engine in
   :data:`repro.engines.ENGINES`, with the usual equivalence contract
   (identical final contexts everywhere; ``vec`` == ``hmm`` charged
   results bit for bit).
"""

from repro.dag.compile import compile_schedule, dag_program
from repro.dag.scheduler import HEURISTICS, Schedule, schedule
from repro.dag.spec import DAG_SCHEMA, DagSpec, EdgeSpec, TaskSpec

__all__ = [
    "DAG_SCHEMA",
    "DagSpec",
    "EdgeSpec",
    "TaskSpec",
    "HEURISTICS",
    "Schedule",
    "schedule",
    "compile_schedule",
    "dag_program",
]
