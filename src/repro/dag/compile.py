"""Lower a scheduled DAG into an ordinary labeled superstep Program.

The compiled program is a plain :class:`~repro.dbsp.program.Program`, so
it runs unmodified on every engine in :data:`repro.engines.ENGINES` and
inherits the full equivalence contract: final contexts are ``==``-
identical across engines, and ``vec`` matches ``hmm`` charged result for
charged result.

Per schedule step the compiler emits:

1. one *compute* superstep at the finest label (no communication): each
   processor runs its assigned tasks in the deterministic topological
   order, charges each task's work, and materializes the task value —
   ``payload + sum(predecessor values)``, all integer arithmetic;
2. a sequence of *communication* supersteps for the cross-processor
   edges leaving the step, grouped by the finest D-BSP label that
   contains both endpoints (finest groups first) and chunked into
   rounds so no processor sends or receives more than ``mu`` messages
   per superstep.  An edge of volume ``c`` sends ``c`` messages — the
   first carries the value, the rest are padding words — so the charged
   h-relation reflects the spec's communication volumes.

This is where submachine locality turns into charged cost: the
``locality`` heuristic lands communicating tasks on nearby processors,
their messages group at high labels, and every engine prices those
supersteps by the small cluster size (``g(mu * v / 2^label)``), while a
scattered placement pays coarse-cluster prices for the same volumes.

Every superstep body begins by folding its inbox into the accumulator,
so values sent in any communication round are absorbed before the
consuming task runs.  Final contexts hold ``ctx["values"]``: the value
of every task computed on that processor.
"""

from __future__ import annotations

from repro.dbsp.cluster import log2_exact
from repro.dbsp.program import ProcView, Program, Superstep
from repro.dag.scheduler import Schedule, schedule as _schedule
from repro.dag.spec import DagSpec

__all__ = ["compile_schedule", "dag_program", "reference_values"]


def reference_values(spec: DagSpec) -> dict[str, int]:
    """Engine-independent ground truth: every task's final value.

    >>> from repro.dag.spec import DagSpec
    >>> spec = DagSpec.from_json({
    ...     "schema": 1, "name": "pair",
    ...     "tasks": [{"id": "a", "payload": 3}, {"id": "b", "payload": 4}],
    ...     "edges": [{"src": "a", "dst": "b"}],
    ... })
    >>> reference_values(spec)
    {'a': 3, 'b': 7}
    """
    preds = spec.predecessors()
    tasks = spec.task_map()
    values: dict[str, int] = {}
    for tid in spec.topological_order():
        values[tid] = tasks[tid].payload + sum(
            values[e.src] for e in preds[tid]
        )
    return {tid: values[tid] for tid in sorted(values)}


def _comm_rounds(messages: list[tuple], mu: int) -> list[list[tuple]]:
    """Pack ``(src_proc, dst_proc, ...)`` messages into mu-bounded rounds.

    Greedy first-fit in deterministic message order: a message lands in
    the earliest round where its sender has sent fewer than ``mu`` words
    and its receiver has received fewer than ``mu`` (both bounds are
    enforced by the engines — buffers are part of the context).
    """
    rounds: list[list[tuple[int, int, int, int]]] = []
    sent: list[dict[int, int]] = []
    recv: list[dict[int, int]] = []
    for msg in messages:
        src, dst = msg[0], msg[1]
        for r in range(len(rounds) + 1):
            if r == len(rounds):
                rounds.append([])
                sent.append({})
                recv.append({})
            if sent[r].get(src, 0) < mu and recv[r].get(dst, 0) < mu:
                rounds[r].append(msg)
                sent[r][src] = sent[r].get(src, 0) + 1
                recv[r][dst] = recv[r].get(dst, 0) + 1
                break
    return rounds


def compile_schedule(
    spec: DagSpec, sched: Schedule, mu: int = 8
) -> Program:
    """Lower ``spec`` under ``sched`` into a labeled superstep Program."""
    v = sched.v
    log_v = log2_exact(v)
    tasks = spec.task_map()
    preds = spec.predecessors()
    proc = sched.proc_of()
    step_of = sched.step_of()
    n_steps = sched.n_steps

    # task ids are wired into message payloads as dense integer indexes
    index = {tid: i for i, tid in enumerate(sorted(tasks))}
    names = sorted(tasks)

    # per (proc, step): tasks in deterministic topological order
    slots: dict[tuple[int, int], list[str]] = {}
    for tid in spec.topological_order():
        slots.setdefault((proc[tid], step_of[tid]), []).append(tid)

    def absorb(view: ProcView) -> None:
        acc = view.ctx["acc"]
        for task_idx, word in view.received():
            tid = names[task_idx]
            acc[tid] = acc.get(tid, 0) + word

    def compute_body(s: int):
        def body(view: ProcView) -> None:
            absorb(view)
            values = view.ctx["values"]
            acc = view.ctx["acc"]
            for tid in slots.get((view.pid, s), ()):
                task = tasks[tid]
                total = task.payload + acc.pop(tid, 0)
                for edge in preds[tid]:
                    if proc[edge.src] == view.pid:
                        total += values[edge.src]
                values[tid] = total
                view.charge(task.work)

        return body

    def send_body(per_proc: dict[int, list[tuple[int, int, str | None]]]):
        def body(view: ProcView) -> None:
            absorb(view)
            values = view.ctx["values"]
            for dst, task_idx, src_tid in per_proc.get(view.pid, ()):
                word = values[src_tid] if src_tid is not None else 0
                view.send(dst, (task_idx, word))
            view.charge(1)

        return body

    supersteps: list[Superstep] = []
    for s in range(n_steps):
        supersteps.append(
            Superstep(log_v, compute_body(s), name=f"dag-compute[{s}]")
        )
        # cross-processor edges leaving step s, grouped by finest label
        by_label: dict[int, list[tuple]] = {}
        for edge in sorted(spec.edges, key=lambda e: (e.src, e.dst)):
            if step_of[edge.src] != s:
                continue
            sp, dp = proc[edge.src], proc[edge.dst]
            if sp == dp:
                continue
            label = log_v - (sp ^ dp).bit_length()
            group = by_label.setdefault(label, [])
            for copy in range(edge.volume):
                # the first word of an edge carries the src value at
                # send time; padding words are zero in the accumulator
                group.append(
                    (sp, dp, index[edge.dst], index[edge.src], copy == 0)
                )
        for label in sorted(by_label, reverse=True):
            messages = sorted(by_label[label])
            for r, round_msgs in enumerate(_comm_rounds(messages, mu)):
                per_proc: dict[int, list[tuple[int, int, str | None]]] = {}
                for sp, dp, dst_idx, src_idx, carries in round_msgs:
                    per_proc.setdefault(sp, []).append(
                        (dp, dst_idx, names[src_idx] if carries else None)
                    )
                supersteps.append(
                    Superstep(
                        label,
                        send_body(per_proc),
                        name=f"dag-comm[{s}]l{label}r{r}",
                    )
                )

    def make_context(pid: int) -> dict:
        return {"values": {}, "acc": {}}

    program = Program(
        v,
        mu,
        supersteps,
        make_context=make_context,
        name=f"dag:{spec.name}/{sched.heuristic}",
    )
    return program


def dag_program(
    spec: DagSpec, v: int, mu: int = 8, heuristic: str = "locality"
) -> Program:
    """Schedule and compile in one call (the CLI/service entry point)."""
    return compile_schedule(spec, _schedule(spec, v, heuristic), mu=mu)
