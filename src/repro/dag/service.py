"""DAG requests on the ``/v1`` service surface.

A ``POST /v1/run`` body with ``"kind": "dag"`` is parsed into a
:class:`DagRunRequest` instead of a
:class:`~repro.service.scheduler.SimRequest`.  The two request types are
duck-compatible everywhere downstream — same ``key()`` content-hash
discipline (so caching, single-flight coalescing, shard routing and
ledger persistence work unchanged), same ``args`` worker-task payload
convention (the ``run-dag`` task in :mod:`repro.parallel.workers`), same
validation-then-400 error mapping.

The spec travels as its canonical JSON string: two requests naming the
same workload — or inlining specs that differ only in task/edge order —
hash to the same key and share one cached result.  Bodies may inline a
full spec document (``"spec": {...}``) or name a generator
(``"workload": "stream-scan", "params": {...}``); both normalize to the
canonical form before hashing.

For planner-enabled tiers the request exposes :meth:`structural_bound`,
the hook :meth:`~repro.service.planner.Planner.plan` uses to produce an
honest *untrusted* prediction (wide error bars) for program families the
calibration profile has never seen.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.dag.scheduler import HEURISTICS
from repro.dag.spec import DagSpec
from repro.dbsp.cluster import log2_exact
from repro.engines import ENGINES, resolve_access_function
from repro.resilience.ledger import cell_key
from repro.service.scheduler import SERVICE_SCHEMA, TRACE_LEVELS

__all__ = ["DAG_TASK_KIND", "DagRunRequest"]

#: worker-task kind DAG computations run as (and their ledger kind)
DAG_TASK_KIND = "run-dag"

_FIELDS = (
    "kind", "engine", "heuristic", "spec", "workload", "params",
    "v", "mu", "f", "trace",
)

_PARAM_FIELDS = ("epochs", "partitions", "chunk")


@dataclass(frozen=True)
class DagRunRequest:
    """One validated DAG request (``{"kind": "dag", ...}``).

    ``spec_json`` is the spec's canonical JSON string — hashable,
    picklable, and the content identity of the workload.
    """

    spec_json: str
    spec_name: str
    heuristic: str = "locality"
    engine: str = "vec"
    v: int = 8
    mu: int = 8
    f: str = "x^0.5"
    trace: str = "counters"

    #: worker-task kind the scheduler dispatches (duck-typed against
    #: ``SimRequest.task_kind``)
    task_kind = DAG_TASK_KIND

    @property
    def program(self) -> str:
        """The planner/report-facing program name of this request."""
        return f"dag:{self.spec_name}/{self.heuristic}"

    @classmethod
    def from_json(cls, doc: Any) -> "DagRunRequest":
        """Build and validate a request from a decoded JSON body."""
        if not isinstance(doc, dict):
            raise ValueError(
                f"request body must be a JSON object, got {type(doc).__name__}"
            )
        if doc.get("kind") != "dag":
            raise ValueError(
                f'a DAG request needs "kind": "dag", got {doc.get("kind")!r}'
            )
        unknown = sorted(set(doc) - set(_FIELDS))
        if unknown:
            raise ValueError(
                f"unknown request field(s) {', '.join(unknown)}; "
                f"expected a subset of: {', '.join(_FIELDS)}"
            )
        has_spec = "spec" in doc
        has_workload = "workload" in doc
        if has_spec == has_workload:
            raise ValueError(
                'a DAG request needs exactly one of "spec" (an inline DAG '
                'document) or "workload" (a named streaming generator)'
            )
        if has_spec:
            if "params" in doc:
                raise ValueError(
                    '"params" only applies to named workloads; inline the '
                    "sizes in the spec itself"
                )
            spec = DagSpec.from_json(doc["spec"])
        else:
            spec = _expand_workload(doc["workload"], doc.get("params", {}))
        request = cls(
            spec_json=spec.canonical_json(),
            spec_name=spec.name,
            heuristic=doc.get("heuristic", "locality"),
            engine=doc.get("engine", "vec"),
            v=doc.get("v", 8),
            mu=doc.get("mu", 8),
            f=doc.get("f", "x^0.5"),
            trace=doc.get("trace", "counters"),
        )
        request.validate()
        return request

    def validate(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; "
                f"try: {', '.join(sorted(ENGINES))}"
            )
        if self.heuristic not in HEURISTICS:
            raise ValueError(
                f"unknown heuristic {self.heuristic!r}; "
                f"try: {', '.join(sorted(HEURISTICS))}"
            )
        if (
            not isinstance(self.v, int)
            or isinstance(self.v, bool)
            or self.v < 1
        ):
            raise ValueError(f"v must be a positive integer, got {self.v!r}")
        try:
            log2_exact(self.v)
        except ValueError:
            raise ValueError(
                f"v must be a power of two (the D-BSP machine width), "
                f"got {self.v}"
            ) from None
        if (
            not isinstance(self.mu, int)
            or isinstance(self.mu, bool)
            or self.mu < 1
        ):
            raise ValueError(f"mu must be a positive integer, got {self.mu!r}")
        if self.trace not in TRACE_LEVELS:
            raise ValueError(
                f"unknown trace level {self.trace!r}; "
                f"expected one of: {', '.join(TRACE_LEVELS)}"
            )
        resolve_access_function(self.f)  # raises on a bad spec

    def spec(self) -> DagSpec:
        return DagSpec.from_json(json.loads(self.spec_json))

    @property
    def args(self) -> tuple:
        """The ``run-dag`` worker-task argument tuple."""
        return (
            self.engine, self.heuristic, self.spec_json,
            self.v, self.mu, self.f, self.trace,
        )

    def key(self) -> str:
        """Content-addressed identity of this request's result."""
        return cell_key(
            DAG_TASK_KIND, list(self.args), {"schema": SERVICE_SCHEMA}
        )

    def to_json(self) -> dict[str, Any]:
        return {
            "kind": "dag",
            "engine": self.engine,
            "heuristic": self.heuristic,
            "spec": json.loads(self.spec_json),
            "v": self.v,
            "mu": self.mu,
            "f": self.f,
            "trace": self.trace,
        }

    def structural_bound(self, engine: str) -> float:
        """A closed-form model-time bound for the planner's honest
        untrusted prediction: total task work plus every communicated
        word priced at the whole machine's access cost (the coarsest —
        most pessimistic — cluster level)."""
        spec = self.spec()
        g = resolve_access_function(self.f)
        return float(
            spec.total_work() + spec.total_volume() * g(self.mu * self.v)
        )


def _expand_workload(name: Any, params: Any) -> DagSpec:
    from repro.algorithms.streaming import streaming_spec

    if not isinstance(name, str):
        raise ValueError(
            f'"workload" must be a string, got {type(name).__name__}'
        )
    if not isinstance(params, dict):
        raise ValueError(
            f'"params" must be a JSON object, got {type(params).__name__}'
        )
    unknown = sorted(set(params) - set(_PARAM_FIELDS))
    if unknown:
        raise ValueError(
            f"unknown workload param(s) {', '.join(unknown)}; "
            f"expected a subset of: {', '.join(_PARAM_FIELDS)}"
        )
    for field, value in params.items():
        if not isinstance(value, int) or isinstance(value, bool):
            raise ValueError(
                f"workload param {field!r} must be an integer, got {value!r}"
            )
    return streaming_spec(name, **params)
