"""The DAG scheduling bench: locality-aware vs. greedy, in charged words.

Unlike the wall-clock matrix in :mod:`repro.bench`, every number this
bench records is a *charged* model cost — deterministic, machine
independent, byte-identical on every host.  That changes what the
checked-in baseline (``BENCH_sim_dag.json``) means: ``check_dag_against``
compares shared cells **exactly** (any drift is a charged-determinism
regression, not noise), and additionally enforces the headline claim of
the scheduler — that the locality-aware heuristic strictly beats greedy
ETF on cross-processor traffic for the pseudo-streaming workloads.

The matrix runs each streaming workload (sized so partitions outnumber
processors — the regime where placement matters; at ``partitions <= v``
the heuristics can tie) through both heuristics, records the schedule
shape (steps, cross-cluster volume), the direct engine's message count
and communication charge (the "charged words moved" of the schedule),
and the charged completion time on every engine in the matrix.  The
smoke matrix keeps all workloads and heuristics but trims the engine
list — a strict subset, so ``bench --dag --smoke --check`` compares
against the full checked-in baseline.
"""

from __future__ import annotations

import json
import time
from typing import Any

from repro.algorithms.streaming import streaming_spec
from repro.dag.compile import dag_program
from repro.dag.scheduler import HEURISTICS, schedule
from repro.engines import ENGINES, resolve_access_function

__all__ = [
    "DAG_BENCH_SCHEMA",
    "DAG_WORKLOADS",
    "DAG_ENGINES",
    "DAG_SMOKE_ENGINES",
    "run_dag_bench",
    "check_dag_against",
    "write_dag_bench",
]

#: dag-bench document schema; bumped whenever recorded fields change
#: meaning (cross-schema comparisons are refused, like the other
#: checked-in benches)
DAG_BENCH_SCHEMA = 1

#: the fixed workload matrix: every streaming shape, sized with
#: ``partitions > v`` so the two heuristics separate strictly
DAG_WORKLOADS: tuple[tuple[str, dict[str, int]], ...] = (
    ("stream-scan", {"epochs": 4, "partitions": 16, "chunk": 8}),
    ("stream-stencil", {"epochs": 4, "partitions": 16, "chunk": 8}),
    ("stream-reduce", {"epochs": 4, "partitions": 16, "chunk": 8}),
)

#: engines in the full matrix (charged time recorded per engine)
DAG_ENGINES: tuple[str, ...] = ("direct", "vec", "hmm", "bt", "brent")

#: the smoke matrix trims engines, never workloads or heuristics — a
#: strict subset, so smoke runs check cleanly against a full baseline
DAG_SMOKE_ENGINES: tuple[str, ...] = ("direct", "vec")


def _bench_cell(
    spec, heuristic: str, v: int, mu: int, f_spec: str,
    engines: tuple[str, ...],
) -> dict[str, Any]:
    """One (workload, heuristic) cell: schedule shape + charged costs."""
    sched = schedule(spec, v, heuristic=heuristic)
    program = dag_program(spec, v=v, mu=mu, heuristic=heuristic)
    f = resolve_access_function(f_spec)
    times: dict[str, float] = {}
    direct = None
    wall = 0.0
    for engine in engines:
        t0 = time.perf_counter()
        res = ENGINES[engine].run(program, f, trace="counters")
        wall += time.perf_counter() - t0
        times[engine] = res.time
        if engine == "direct":
            direct = res
    cell: dict[str, Any] = {
        "n_steps": sched.n_steps,
        "cross_volume": sched.cross_volume(spec),
        "supersteps": len(program),
        "time": times,
        # host-side only, never compared (everything else is charged)
        "wall_s": round(wall, 6),
    }
    if direct is not None:
        cell["messages"] = direct.counters.get("messages", 0)
        cell["communication"] = direct.breakdown.get("communication", 0.0)
    return cell


def run_dag_bench(
    v: int = 8,
    mu: int = 8,
    f: str = "x^0.5",
    smoke: bool = False,
    echo=None,
) -> dict[str, Any]:
    """Run the DAG matrix; return the JSON-serializable result document.

    Every recorded field except ``wall_s`` is a charged model cost —
    the document is byte-identical across hosts, which is what lets
    ``check_dag_against`` compare exactly instead of within a tolerance.
    """
    engines = DAG_SMOKE_ENGINES if smoke else DAG_ENGINES
    produced_by = "python -m repro bench --dag"
    if smoke:
        produced_by += " --smoke"
    doc: dict[str, Any] = {
        "schema": DAG_BENCH_SCHEMA,
        "produced_by": produced_by,
        "v": v,
        "mu": mu,
        "f": f,
        "engines": list(engines),
        "workloads": {},
    }
    for workload, params in DAG_WORKLOADS:
        spec = streaming_spec(workload, **params)
        entry: dict[str, Any] = {
            "workload": workload,
            "params": dict(params),
            "tasks": len(spec.tasks),
            "edges": len(spec.edges),
            "total_work": spec.total_work(),
            "total_volume": spec.total_volume(),
            "heuristics": {},
        }
        for heuristic in sorted(HEURISTICS):
            cell = _bench_cell(spec, heuristic, v, mu, f, engines)
            entry["heuristics"][heuristic] = cell
            if echo:
                echo(f"  {spec.name:28s} {heuristic:9s} "
                     f"messages {cell.get('messages', 0):>6d}  "
                     f"steps {cell['n_steps']:>3d}")
        greedy = entry["heuristics"].get("greedy", {})
        local = entry["heuristics"].get("locality", {})
        entry["locality_wins"] = bool(
            local.get("messages", 0) < greedy.get("messages", 0)
        )
        doc["workloads"][spec.name] = entry
    return doc


def check_dag_against(
    fresh: dict[str, Any], baseline: dict[str, Any]
) -> list[str]:
    """Compare a fresh DAG bench against a recorded baseline.

    Refuses (raises :class:`ValueError`) on a schema mismatch.  Shared
    cells are compared **exactly** — charged costs are deterministic, so
    any difference means the scheduler, compiler or charging machinery
    changed behaviour and the baseline must be regenerated deliberately.
    Independently of the baseline, the fresh document must show the
    locality heuristic strictly beating greedy on direct-engine messages
    for at least two workloads — the claim the checked-in bench exists
    to keep true.

    Returns a list of human-readable problem messages (empty = pass).
    """
    fresh_schema = fresh.get("schema")
    base_schema = baseline.get("schema")
    if fresh_schema != base_schema:
        raise ValueError(
            f"cannot compare DAG bench documents across schemas: fresh "
            f"run is schema {fresh_schema!r}, baseline is schema "
            f"{base_schema!r}. Regenerate the baseline with the current "
            f"code (python -m repro bench --dag --output "
            f"BENCH_sim_dag.json) and re-check."
        )
    problems: list[str] = []
    exact_fields = (
        "n_steps", "cross_volume", "supersteps", "messages",
        "communication",
    )
    for name, base_wl in baseline.get("workloads", {}).items():
        fresh_wl = fresh.get("workloads", {}).get(name)
        if fresh_wl is None:
            problems.append(f"{name}: missing from the fresh run")
            continue
        for heuristic, base_cell in base_wl.get("heuristics", {}).items():
            fresh_cell = fresh_wl.get("heuristics", {}).get(heuristic)
            if fresh_cell is None:
                problems.append(f"{name}/{heuristic}: missing cell")
                continue
            for field in exact_fields:
                if field not in base_cell or field not in fresh_cell:
                    continue
                if fresh_cell[field] != base_cell[field]:
                    problems.append(
                        f"{name}/{heuristic}: charged {field} drifted "
                        f"({fresh_cell[field]!r} != baseline "
                        f"{base_cell[field]!r})"
                    )
            base_times = base_cell.get("time", {})
            fresh_times = fresh_cell.get("time", {})
            for engine in sorted(set(base_times) & set(fresh_times)):
                if fresh_times[engine] != base_times[engine]:
                    problems.append(
                        f"{name}/{heuristic}: charged {engine} time "
                        f"drifted ({fresh_times[engine]!r} != baseline "
                        f"{base_times[engine]!r})"
                    )
    wins = sum(
        1 for wl in fresh.get("workloads", {}).values()
        if wl.get("locality_wins")
    )
    if wins < 2:
        problems.append(
            f"locality-aware scheduling beats greedy on only {wins} "
            f"workload(s); the bench requires at least 2 — the "
            f"scheduler's headline claim no longer holds"
        )
    return problems


def write_dag_bench(path: str, doc: dict[str, Any]) -> None:
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")
