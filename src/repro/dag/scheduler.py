"""DAG scheduling onto a D-BSP machine under the BSP cost model.

Two heuristics in the style of Papp, Anegg and Papp, "DAG Scheduling in
the BSP Model" (PAPERS.md):

* ``greedy`` — ETF-style list scheduling: tasks are released in
  bottom-level priority order and each is placed on the processor with
  the earliest estimated finish time, where a cross-processor dependency
  pays its edge volume as communication latency and every superstep
  boundary pays a synchronization charge.  This is the classical
  baseline: it balances load well but scatters communicating tasks.
* ``locality`` — a clustering pass: tasks are first contracted along
  their heaviest edges into at most ``v`` clusters (bounded by a
  work-capacity target so no processor is overloaded), then the cluster
  graph is mapped onto the D-BSP cluster tree by recursive bisection —
  at every level the halves are chosen to minimize the volume crossing
  the cut, so heavily communicating clusters end up in the same
  submachine subtree and their messages travel at fine (cheap) labels.

Both heuristics are fully deterministic: every choice breaks ties by
task id, cluster representative, or processor index, so identical specs
produce byte-identical schedules (the property tests enforce this).

The machine-facing output is a :class:`Schedule`: a ``(processor,
step)`` slot per task, with the step indices compacted and every data
dependency satisfied — same-processor edges may share a step, cross-
processor edges must cross a step boundary (the message is delivered at
the next superstep).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.dbsp.cluster import log2_exact
from repro.dag.spec import DagSpec

__all__ = ["Schedule", "schedule", "HEURISTICS", "SYNC_CHARGE"]

#: estimated cost of one superstep boundary in the list scheduler's
#: finish-time estimates (the BSP latency term L, in work units)
SYNC_CHARGE = 4


@dataclass(frozen=True)
class Schedule:
    """A scheduled DAG: every task pinned to a ``(processor, step)`` slot.

    ``assignment`` is sorted by task id; ``to_json`` of two equal
    schedules is byte-identical, which is the reproducibility contract.
    """

    spec_name: str
    heuristic: str
    v: int
    assignment: tuple[tuple[str, int, int], ...]  # (task, proc, step)

    @property
    def n_steps(self) -> int:
        return 1 + max(step for _, _, step in self.assignment)

    def proc_of(self) -> dict[str, int]:
        return {task: proc for task, proc, _ in self.assignment}

    def step_of(self) -> dict[str, int]:
        return {task: step for task, _, step in self.assignment}

    def to_json(self) -> dict[str, Any]:
        return {
            "spec": self.spec_name,
            "heuristic": self.heuristic,
            "v": self.v,
            "steps": self.n_steps,
            "assignment": [
                {"task": t, "proc": p, "step": s}
                for t, p, s in self.assignment
            ],
        }

    def canonical_json(self) -> str:
        return json.dumps(
            self.to_json(), sort_keys=True, separators=(",", ":")
        )

    def cross_volume(self, spec: DagSpec) -> int:
        """Words that must cross processors under this placement."""
        proc = self.proc_of()
        return sum(
            e.volume for e in spec.edges if proc[e.src] != proc[e.dst]
        )


def _finalize(
    spec: DagSpec, heuristic: str, v: int, proc: Mapping[str, int]
) -> Schedule:
    """Derive dependency-correct, compacted step indices for a placement.

    Tasks are walked in the spec's deterministic topological order; a
    task lands at the earliest step consistent with its predecessors
    (same processor: same step or later; cross-processor: strictly
    later, since the message rides a superstep boundary).
    """
    preds = spec.predecessors()
    step: dict[str, int] = {}
    for tid in spec.topological_order():
        earliest = 0
        for edge in preds[tid]:
            if proc[edge.src] == proc[tid]:
                earliest = max(earliest, step[edge.src])
            else:
                earliest = max(earliest, step[edge.src] + 1)
        step[tid] = earliest
    # compact step indices (placements can leave gaps)
    used = sorted(set(step.values()))
    remap = {s: i for i, s in enumerate(used)}
    assignment = tuple(
        (tid, proc[tid], remap[step[tid]])
        for tid in sorted(t.id for t in spec.tasks)
    )
    return Schedule(
        spec_name=spec.name,
        heuristic=heuristic,
        v=v,
        assignment=assignment,
    )


# ------------------------------------------------------------------ greedy
def _bottom_levels(spec: DagSpec) -> dict[str, int]:
    """Critical-path-to-exit weights: work plus heaviest downstream path."""
    succs = spec.successors()
    tasks = spec.task_map()
    levels: dict[str, int] = {}
    for tid in reversed(spec.topological_order()):
        below = max(
            (e.volume + levels[e.dst] for e in succs[tid]), default=0
        )
        levels[tid] = tasks[tid].work + below
    return levels


def greedy_schedule(spec: DagSpec, v: int) -> Schedule:
    """ETF-style list scheduling with deterministic tie-breaks."""
    tasks = spec.task_map()
    preds = spec.predecessors()
    succs = spec.successors()
    levels = _bottom_levels(spec)
    indeg = {t.id: len(preds[t.id]) for t in spec.tasks}

    ready = sorted(
        (tid for tid, d in indeg.items() if d == 0),
        key=lambda tid: (-levels[tid], tid),
    )
    avail = [0] * v  # estimated time each processor frees up
    finish: dict[str, int] = {}
    proc: dict[str, int] = {}
    while ready:
        tid = ready.pop(0)
        best_p, best_eft = 0, None
        for p in range(v):
            start = avail[p]
            for edge in preds[tid]:
                arrive = finish[edge.src]
                if proc[edge.src] != p:
                    arrive += edge.volume + SYNC_CHARGE
                start = max(start, arrive)
            eft = start + tasks[tid].work
            if best_eft is None or eft < best_eft:
                best_p, best_eft = p, eft
        proc[tid] = best_p
        finish[tid] = best_eft
        avail[best_p] = best_eft
        opened = []
        for edge in succs[tid]:
            indeg[edge.dst] -= 1
            if indeg[edge.dst] == 0:
                opened.append(edge.dst)
        if opened:
            ready = sorted(
                ready + opened, key=lambda t: (-levels[t], t)
            )
    return _finalize(spec, "greedy", v, proc)


# ---------------------------------------------------------------- locality
def _contract_clusters(spec: DagSpec, v: int) -> list[list[str]]:
    """Merge tasks along their heaviest edges into at most ``v`` clusters.

    Union-find with a work-capacity bound (total work / v, rounded up)
    during the volume-ordered sweep, then unconditional merges of the
    most-communicating cluster pairs until the count fits the machine.
    Every ordering decision ties off by task/representative id.
    """
    tasks = spec.task_map()
    parent = {t.id: t.id for t in spec.tasks}

    def find(x: str) -> str:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    work = {t.id: t.work for t in spec.tasks}
    capacity = max(
        (spec.total_work() + v - 1) // v, max(t.work for t in spec.tasks)
    )

    def union(a: str, b: str) -> None:
        # representative = lexicographically smaller root, for determinism
        ra, rb = sorted((find(a), find(b)))
        parent[rb] = ra
        work[ra] += work[rb]

    for edge in sorted(
        spec.edges, key=lambda e: (-e.volume, e.src, e.dst)
    ):
        ra, rb = find(edge.src), find(edge.dst)
        if ra != rb and work[ra] + work[rb] <= capacity:
            union(edge.src, edge.dst)

    def cluster_count() -> int:
        return len({find(t.id) for t in spec.tasks})

    while cluster_count() > v:
        # heaviest-connected cluster pair; ties by representative ids
        volume: dict[tuple[str, str], int] = {}
        for edge in spec.edges:
            ra, rb = find(edge.src), find(edge.dst)
            if ra != rb:
                key = (min(ra, rb), max(ra, rb))
                volume[key] = volume.get(key, 0) + edge.volume
        if volume:
            (ra, rb), _ = max(
                volume.items(), key=lambda kv: (kv[1], kv[0])
            )
        else:
            # disconnected clusters: fold the two smallest together
            roots = sorted(
                {find(t.id) for t in spec.tasks},
                key=lambda r: (work[r], r),
            )
            ra, rb = roots[0], roots[1]
        union(ra, rb)

    groups: dict[str, list[str]] = {}
    for tid in sorted(tasks):
        groups.setdefault(find(tid), []).append(tid)
    return [groups[root] for root in sorted(groups)]


def _bisect_map(
    clusters: list[list[str]],
    affinity: Callable[[str, str], int],
    lo: int,
    size: int,
    out: dict[str, int],
) -> None:
    """Recursively place clusters into the pid range ``[lo, lo+size)``.

    At each level the clusters are split into two halves so that volume
    crossing the cut is minimized greedily: clusters are considered in
    decreasing total-affinity order and each goes to the half it talks
    to most, subject to each half's capacity.  Heavily communicating
    clusters therefore share ever-finer submachine subtrees.
    """
    if size == 1 or len(clusters) <= 1:
        for group in clusters:
            for tid in group:
                out[tid] = lo
        return
    half = size // 2
    cap = [
        (len(clusters) + 1) // 2,
        len(clusters) - (len(clusters) + 1) // 2,
    ]
    # total external affinity per cluster, heaviest placed first
    total = {
        i: sum(
            affinity(a, b)
            for j, other in enumerate(clusters)
            if j != i
            for a in group
            for b in other
        )
        for i, group in enumerate(clusters)
    }
    order = sorted(
        range(len(clusters)), key=lambda i: (-total[i], clusters[i][0])
    )
    side: dict[int, int] = {}
    counts = [0, 0]
    for i in order:
        pull = [0, 0]
        for j, s in side.items():
            pull[s] += sum(
                affinity(a, b) for a in clusters[i] for b in clusters[j]
            )
        if counts[0] >= cap[0]:
            choice = 1
        elif counts[1] >= cap[1]:
            choice = 0
        elif pull[0] != pull[1]:
            choice = 0 if pull[0] > pull[1] else 1
        else:
            choice = 0 if counts[0] <= counts[1] else 1
        side[i] = choice
        counts[choice] += 1
    left = [clusters[i] for i in sorted(side) if side[i] == 0]
    right = [clusters[i] for i in sorted(side) if side[i] == 1]
    _bisect_map(left, affinity, lo, half, out)
    _bisect_map(right, affinity, lo + half, size - half, out)


def locality_schedule(spec: DagSpec, v: int) -> Schedule:
    """Cluster along heavy edges, then bisect onto the D-BSP subtree."""
    log2_exact(v)  # validate the machine width early
    clusters = _contract_clusters(spec, v)
    pair_volume: dict[tuple[str, str], int] = {}
    for e in spec.edges:
        key = (min(e.src, e.dst), max(e.src, e.dst))
        pair_volume[key] = pair_volume.get(key, 0) + e.volume

    def affinity(a: str, b: str) -> int:
        return pair_volume.get((min(a, b), max(a, b)), 0)

    proc: dict[str, int] = {}
    _bisect_map(clusters, affinity, 0, v, proc)
    return _finalize(spec, "locality", v, proc)


#: heuristic registry: name -> schedule(spec, v)
HEURISTICS: dict[str, Callable[[DagSpec, int], Schedule]] = {
    "greedy": greedy_schedule,
    "locality": locality_schedule,
}


def schedule(spec: DagSpec, v: int, heuristic: str = "locality") -> Schedule:
    """Schedule ``spec`` onto ``v`` processors with the named heuristic.

    >>> from repro.dag.spec import DagSpec
    >>> spec = DagSpec.from_json({
    ...     "schema": 1, "name": "chain",
    ...     "tasks": [{"id": "a"}, {"id": "b"}],
    ...     "edges": [{"src": "a", "dst": "b", "volume": 4}],
    ... })
    >>> schedule(spec, v=4).to_json()["heuristic"]
    'locality'
    """
    if heuristic not in HEURISTICS:
        raise ValueError(
            f"unknown heuristic {heuristic!r}; "
            f"try: {', '.join(sorted(HEURISTICS))}"
        )
    log2_exact(v)  # v must be a power of two
    return HEURISTICS[heuristic](spec, v)
