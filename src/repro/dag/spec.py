"""Validated, frozen task-DAG specifications.

A :class:`DagSpec` is the user-facing program model of the DAG front
end: nodes are compute tasks carrying a local-work estimate and a
working-set size in words, edges are data dependencies carrying a
communication volume in words.  Specs are immutable, fully validated at
construction (unique ids, no dangling endpoints, no cycles — with
actionable error messages naming the offending task or cycle), and
round-trip through a versioned JSON document (:data:`DAG_SCHEMA`) with
the same malformed-doc refusal discipline as ``CALIBRATION.json``.

The canonical JSON form (tasks sorted by id, edges sorted by endpoint,
compact separators) is the content-hash identity used by the service
cache: two specs with the same canonical form are the same workload.

>>> spec = DagSpec.from_json({
...     "schema": 1, "name": "pair",
...     "tasks": [{"id": "a", "work": 2}, {"id": "b"}],
...     "edges": [{"src": "a", "dst": "b", "volume": 3}],
... })
>>> spec.topological_order()
('a', 'b')
>>> DagSpec.from_json(spec.to_json()) == spec
True
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping

__all__ = ["DAG_SCHEMA", "TaskSpec", "EdgeSpec", "DagSpec"]

#: DAG-spec document schema; bumping it invalidates stored documents and
#: every service cache key derived from them
DAG_SCHEMA = 1


@dataclass(frozen=True, slots=True)
class TaskSpec:
    """One compute task: local work, working-set estimate, seed value.

    ``work`` is charged as local computation time when the task runs;
    ``memory`` is the task's working set in words (used by the
    scheduler's capacity heuristics, not charged directly); ``payload``
    seeds the task's integer value, to which the values of its
    predecessors are added — the deterministic arithmetic every engine
    must reproduce word for word.
    """

    id: str
    work: int = 1
    memory: int = 1
    payload: int = 0

    def __post_init__(self) -> None:
        if not self.id or not isinstance(self.id, str):
            raise ValueError(
                f"task id must be a non-empty string, got {self.id!r}"
            )
        if not isinstance(self.work, int) or self.work < 1:
            raise ValueError(
                f"task {self.id!r}: work must be an integer >= 1, "
                f"got {self.work!r}"
            )
        if not isinstance(self.memory, int) or self.memory < 0:
            raise ValueError(
                f"task {self.id!r}: memory must be an integer >= 0, "
                f"got {self.memory!r}"
            )
        if not isinstance(self.payload, int) or isinstance(self.payload, bool):
            raise ValueError(
                f"task {self.id!r}: payload must be an integer, "
                f"got {self.payload!r}"
            )


@dataclass(frozen=True, slots=True)
class EdgeSpec:
    """One data dependency: ``volume`` words flow from ``src`` to ``dst``."""

    src: str
    dst: str
    volume: int = 1

    def __post_init__(self) -> None:
        if not isinstance(self.volume, int) or self.volume < 1:
            raise ValueError(
                f"edge {self.src!r} -> {self.dst!r}: volume must be an "
                f"integer >= 1, got {self.volume!r}"
            )


_TASK_FIELDS = {"id", "work", "memory", "payload"}
_EDGE_FIELDS = {"src", "dst", "volume"}
_DOC_FIELDS = {"schema", "name", "tasks", "edges"}


@dataclass(frozen=True)
class DagSpec:
    """A validated task DAG: named, frozen, canonically serializable."""

    name: str
    tasks: tuple[TaskSpec, ...]
    edges: tuple[EdgeSpec, ...]

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(
                f"DAG name must be a non-empty string, got {self.name!r}"
            )
        if not self.tasks:
            raise ValueError(f"DAG {self.name!r} has no tasks")
        seen: set[str] = set()
        for task in self.tasks:
            if task.id in seen:
                raise ValueError(
                    f"DAG {self.name!r}: duplicate task id {task.id!r} — "
                    f"task ids must be unique"
                )
            seen.add(task.id)
        pairs: set[tuple[str, str]] = set()
        for edge in self.edges:
            for endpoint, role in ((edge.src, "src"), (edge.dst, "dst")):
                if endpoint not in seen:
                    raise ValueError(
                        f"DAG {self.name!r}: edge "
                        f"{edge.src!r} -> {edge.dst!r} has dangling {role} "
                        f"{endpoint!r} — no task with that id exists"
                    )
            if edge.src == edge.dst:
                raise ValueError(
                    f"DAG {self.name!r}: self-edge on task {edge.src!r} — "
                    f"a task cannot depend on itself"
                )
            if (edge.src, edge.dst) in pairs:
                raise ValueError(
                    f"DAG {self.name!r}: duplicate edge "
                    f"{edge.src!r} -> {edge.dst!r} — merge the volumes "
                    f"into one edge"
                )
            pairs.add((edge.src, edge.dst))
        # Kahn's algorithm with a sorted frontier: validates acyclicity
        # and fixes the deterministic topological order in one pass.
        order = self._kahn_order()
        object.__setattr__(self, "_topo", order)

    # ------------------------------------------------------------ queries
    def _kahn_order(self) -> tuple[str, ...]:
        indeg = {task.id: 0 for task in self.tasks}
        succs: dict[str, list[str]] = {task.id: [] for task in self.tasks}
        for edge in self.edges:
            indeg[edge.dst] += 1
            succs[edge.src].append(edge.dst)
        frontier = sorted(tid for tid, d in indeg.items() if d == 0)
        order: list[str] = []
        while frontier:
            tid = frontier.pop(0)
            order.append(tid)
            opened = []
            for succ in succs[tid]:
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    opened.append(succ)
            if opened:
                frontier = sorted(frontier + opened)
        if len(order) < len(self.tasks):
            stuck = sorted(tid for tid, d in indeg.items() if d > 0)
            raise ValueError(
                f"DAG {self.name!r} has a cycle through "
                f"{', '.join(repr(t) for t in stuck[:6])}"
                f"{' ...' if len(stuck) > 6 else ''} — "
                f"task dependencies must be acyclic"
            )
        return tuple(order)

    def topological_order(self) -> tuple[str, ...]:
        """Deterministic topological order (Kahn, sorted tie-break)."""
        return self._topo  # type: ignore[attr-defined]

    def task_map(self) -> dict[str, TaskSpec]:
        return {task.id: task for task in self.tasks}

    def predecessors(self) -> dict[str, tuple[EdgeSpec, ...]]:
        """In-edges per task id (spec order preserved)."""
        preds: dict[str, list[EdgeSpec]] = {t.id: [] for t in self.tasks}
        for edge in self.edges:
            preds[edge.dst].append(edge)
        return {tid: tuple(es) for tid, es in preds.items()}

    def successors(self) -> dict[str, tuple[EdgeSpec, ...]]:
        """Out-edges per task id (spec order preserved)."""
        succs: dict[str, list[EdgeSpec]] = {t.id: [] for t in self.tasks}
        for edge in self.edges:
            succs[edge.src].append(edge)
        return {tid: tuple(es) for tid, es in succs.items()}

    def total_work(self) -> int:
        return sum(task.work for task in self.tasks)

    def total_volume(self) -> int:
        return sum(edge.volume for edge in self.edges)

    # --------------------------------------------------------------- JSON
    def to_json(self) -> dict[str, Any]:
        """Versioned document; tasks/edges in canonical sorted order."""
        return {
            "schema": DAG_SCHEMA,
            "name": self.name,
            "tasks": [
                {
                    "id": t.id,
                    "work": t.work,
                    "memory": t.memory,
                    "payload": t.payload,
                }
                for t in sorted(self.tasks, key=lambda t: t.id)
            ],
            "edges": [
                {"src": e.src, "dst": e.dst, "volume": e.volume}
                for e in sorted(self.edges, key=lambda e: (e.src, e.dst))
            ],
        }

    def canonical_json(self) -> str:
        """Content-hash identity: compact, sorted, schema-stamped."""
        return json.dumps(
            self.to_json(), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def from_json(cls, doc: Any) -> "DagSpec":
        """Rebuild a spec from its document; refuse anything malformed."""
        if not isinstance(doc, Mapping):
            raise ValueError(
                f"DAG spec must be a JSON object, got {type(doc).__name__}"
            )
        schema = doc.get("schema")
        if schema != DAG_SCHEMA:
            raise ValueError(
                f"DAG spec is schema {schema!r}, this build reads schema "
                f"{DAG_SCHEMA}.  Re-emit the spec with a current build."
            )
        unknown = set(doc) - _DOC_FIELDS
        if unknown:
            raise ValueError(
                f"DAG spec has unknown fields "
                f"{', '.join(sorted(repr(f) for f in unknown))}; "
                f"expected {', '.join(sorted(_DOC_FIELDS))}"
            )
        tasks_doc = doc.get("tasks")
        edges_doc = doc.get("edges", [])
        if not isinstance(tasks_doc, list) or not isinstance(edges_doc, list):
            raise ValueError(
                "DAG spec 'tasks' and 'edges' must be JSON arrays"
            )
        tasks = tuple(cls._task_from(item) for item in tasks_doc)
        edges = tuple(cls._edge_from(item) for item in edges_doc)
        return cls(name=doc.get("name", ""), tasks=tasks, edges=edges)

    @staticmethod
    def _task_from(item: Any) -> TaskSpec:
        if not isinstance(item, Mapping):
            raise ValueError(
                f"each task must be a JSON object, got {type(item).__name__}"
            )
        unknown = set(item) - _TASK_FIELDS
        if unknown:
            raise ValueError(
                f"task {item.get('id')!r} has unknown fields "
                f"{', '.join(sorted(repr(f) for f in unknown))}; "
                f"expected {', '.join(sorted(_TASK_FIELDS))}"
            )
        if "id" not in item:
            raise ValueError(f"task {dict(item)!r} is missing its 'id'")
        return TaskSpec(
            id=item["id"],
            work=item.get("work", 1),
            memory=item.get("memory", 1),
            payload=item.get("payload", 0),
        )

    @staticmethod
    def _edge_from(item: Any) -> EdgeSpec:
        if not isinstance(item, Mapping):
            raise ValueError(
                f"each edge must be a JSON object, got {type(item).__name__}"
            )
        unknown = set(item) - _EDGE_FIELDS
        if unknown:
            raise ValueError(
                f"edge {item.get('src')!r} -> {item.get('dst')!r} has "
                f"unknown fields "
                f"{', '.join(sorted(repr(f) for f in unknown))}; "
                f"expected {', '.join(sorted(_EDGE_FIELDS))}"
            )
        missing = {"src", "dst"} - set(item)
        if missing:
            raise ValueError(
                f"edge {dict(item)!r} is missing "
                f"{', '.join(sorted(repr(f) for f in missing))}"
            )
        return EdgeSpec(
            src=item["src"], dst=item["dst"], volume=item.get("volume", 1)
        )
