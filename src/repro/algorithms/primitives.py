"""Building-block D-BSP programs: broadcast, reduce, prefix sums, permutation.

Each builder returns a :class:`~repro.dbsp.program.Program` whose
supersteps follow the natural binary-tree schedules over the cluster
hierarchy; they double as workloads for the simulation benchmarks because
their label profiles exercise ascents and descents through the
decomposition tree.

Conventions: values live under ``ctx["x"]``; results appear in
``ctx["x"]`` (permutation), ``ctx["bcast"]`` (broadcast),
``ctx["sum"]`` (reduce, at each cluster's first processor) or
``ctx["prefix"]`` (prefix sums, everywhere).
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.dbsp.cluster import log2_exact
from repro.dbsp.program import ProcView, Program, Superstep

__all__ = [
    "broadcast_program",
    "reduce_program",
    "prefix_sums_program",
    "permutation_program",
]


def _distance_label(log_v: int, t: int) -> int:
    """Label of a superstep pairing ``p`` with ``p ^ 2^t``.

    Partners differ in bit ``t``, hence share a cluster of ``2^{t+1}``
    processors: label ``log v - t - 1``.
    """
    return log_v - t - 1


def broadcast_program(
    v: int, mu: int = 8, make_value: Callable[[int], object] | None = None
) -> Program:
    """Processor 0 broadcasts ``ctx["x"]`` to everyone (tree doubling).

    The value crosses the machine midpoint first, then ever-smaller
    cluster boundaries: labels ascend ``0, 1, ..., log v - 1`` — a pure
    refinement workload.
    """
    log_v = log2_exact(v)
    make_value = make_value or (lambda pid: pid)

    def step_body(t: int) -> Callable[[ProcView], None]:
        def body(view: ProcView) -> None:
            for payload in view.received():
                view.ctx["bcast"] = payload
            if view.pid % (1 << (t + 1)) == 0 and "bcast" in view.ctx:
                view.send(view.pid + (1 << t), view.ctx["bcast"])
            view.charge(1)

        return body

    steps = [
        Superstep(_distance_label(log_v, t), step_body(t), name=f"bcast-d{1 << t}")
        for t in range(log_v - 1, -1, -1)
    ]
    steps.append(Superstep(0, _collect_bcast, name="bcast-final"))

    def make_context(pid: int) -> dict:
        ctx = {"x": make_value(pid)}
        if pid == 0:
            ctx["bcast"] = ctx["x"]
        return ctx

    return Program(v, mu, steps, make_context=make_context, name=f"broadcast(v={v})")


def _collect_bcast(view: ProcView) -> None:
    for payload in view.received():
        view.ctx["bcast"] = payload
    view.charge(1)


def reduce_program(
    v: int,
    mu: int = 8,
    op: Callable[[object, object], object] = lambda a, b: a + b,
    make_value: Callable[[int], object] | None = None,
) -> Program:
    """Fold ``ctx["x"]`` over all processors into ``ctx["sum"]`` at P0.

    The tree fold pairs nearest neighbours first and coarsens from there:
    labels descend ``log v - 1, log v - 2, ..., 0`` — a pure coarsening
    workload (the mirror image of :func:`broadcast_program`).
    """
    log_v = log2_exact(v)
    make_value = make_value or (lambda pid: pid + 1)

    def step_body(t: int) -> Callable[[ProcView], None]:
        def body(view: ProcView) -> None:
            for payload in view.received():
                view.ctx["sum"] = op(view.ctx["sum"], payload)
            stride = 1 << t
            if view.pid % (2 * stride) == stride:
                view.send(view.pid - stride, view.ctx["sum"])
            view.charge(1)

        return body

    def final_body(view: ProcView) -> None:
        for payload in view.received():
            view.ctx["sum"] = op(view.ctx["sum"], payload)
        view.charge(1)

    steps = [
        Superstep(_distance_label(log_v, t), step_body(t), name=f"reduce-d{1 << t}")
        for t in range(log_v)
    ]
    steps.append(Superstep(0, final_body, name="reduce-final"))

    def make_context(pid: int) -> dict:
        value = make_value(pid)
        return {"x": value, "sum": value}

    return Program(v, mu, steps, make_context=make_context, name=f"reduce(v={v})")


def prefix_sums_program(
    v: int, mu: int = 8, make_value: Callable[[int], object] | None = None
) -> Program:
    """Inclusive prefix sums of ``ctx["x"]`` into ``ctx["prefix"]``.

    Hillis-Steele doubling: ``log v`` supersteps with labels
    ``log v - 1 .. 0`` (distance doubling each step).
    """
    log_v = log2_exact(v)
    make_value = make_value or (lambda pid: pid + 1)

    def step_body(t: int) -> Callable[[ProcView], None]:
        def body(view: ProcView) -> None:
            for payload in view.received():
                # the payload is the prefix of an earlier processor: it
                # combines on the LEFT (works for non-commutative +)
                view.ctx["prefix"] = payload + view.ctx["prefix"]
            stride = 1 << t
            if view.pid + stride < view.v:
                view.send(view.pid + stride, view.ctx["prefix"])
            view.charge(1)

        return body

    # Hillis-Steele sends at distance 2^t from *every* processor, so a
    # message can cross any cluster boundary (e.g. the machine midpoint):
    # every superstep is a 0-superstep.  This makes prefix a deliberately
    # locality-free workload, a useful contrast in the benchmarks.
    steps = [
        Superstep(0, step_body(t), name=f"prefix-d{1 << t}")
        for t in range(log_v)
    ]
    steps.append(Superstep(0, _absorb_prefix, name="prefix-final"))

    def make_context(pid: int) -> dict:
        value = make_value(pid)
        return {"x": value, "prefix": value}

    return Program(v, mu, steps, make_context=make_context, name=f"prefix(v={v})")


def _absorb_prefix(view: ProcView) -> None:
    for payload in view.received():
        view.ctx["prefix"] = payload + view.ctx["prefix"]
    view.charge(1)


def permutation_program(
    v: int,
    perm: Sequence[int],
    mu: int = 8,
    make_value: Callable[[int], object] | None = None,
) -> Program:
    """Route ``ctx["x"]`` of ``p`` to ``perm[p]`` in one superstep.

    The superstep label is the finest level whose clusters contain every
    ``(p, perm[p])`` pair — a fixed permutation known in advance, as in
    the Section 6 discussion of regular communication patterns.
    """
    log_v = log2_exact(v)
    if sorted(perm) != list(range(v)):
        raise ValueError("perm must be a permutation of range(v)")
    label = log_v
    for p, q in enumerate(perm):
        while label > 0 and (p >> (log_v - label)) != (q >> (log_v - label)):
            label -= 1
    make_value = make_value or (lambda pid: pid)
    targets = list(perm)

    def body(view: ProcView) -> None:
        view.send(targets[view.pid], view.ctx["x"])
        view.charge(1)

    def finish(view: ProcView) -> None:
        for payload in view.received():
            view.ctx["x"] = payload
        view.charge(1)

    steps = [
        Superstep(label, body, name="permute-send"),
        Superstep(0, finish, name="permute-recv"),
    ]

    def make_context(pid: int) -> dict:
        return {"x": make_value(pid)}

    return Program(v, mu, steps, make_context=make_context, name=f"permute(v={v})")
