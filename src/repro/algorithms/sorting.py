"""The n-sorting algorithm of Proposition 9.

One key per processor; after the run, processor ``P_k`` holds the k-th
smallest key in ``ctx["key"]``.

The schedule is the bitonic sorting network mapped onto the cluster
hierarchy: the compare-exchange between ``p`` and ``p ^ 2^j`` is a
superstep of label ``log n - j - 1`` (the partners share a cluster of
``2^{j+1}`` processors).  The label profile is
``lambda_{log n - j - 1} = log n - j``, so on ``D-BSP(n, O(1), x^alpha)``
the time is

    ``sum_j (log n - j) (mu 2^{j+1})^alpha = O(n^alpha)``

— the Proposition 9 bound (the paper's reference algorithm [24] has the
same cost shape).  On ``g = log x`` the same schedule costs
``Theta(log^3 n)``, consistent with the paper's remark that all known
BSP-style sorting algorithms are a polylog factor off the
``Omega(log n log log n)`` bound implied by the simulation.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.dbsp.cluster import log2_exact
from repro.dbsp.program import ProcView, Program, Superstep
from repro.functions import AccessFunction, LogarithmicAccess, PolynomialAccess

__all__ = ["bitonic_sort_program", "dbsp_sort_time_bound"]


def bitonic_sort_program(
    v: int, mu: int = 8, make_key: Callable[[int], object] | None = None
) -> Program:
    """Build the bitonic n-sorting program for ``v = n`` processors."""
    log_v = log2_exact(v)
    # custom keys may be arbitrary comparable objects; only the default
    # integer keys are guaranteed to round-trip through an i8 column
    vectorizable = make_key is None
    make_key = make_key or _hash_key()

    steps: list[Superstep] = []
    # (k, j) enumerates the network: merge stages k, distances 2^j inside
    pairs = [(k, j) for k in range(1, log_v + 1) for j in range(k - 1, -1, -1)]
    for idx, (k, j) in enumerate(pairs):
        prev = pairs[idx - 1] if idx > 0 else None
        steps.append(
            Superstep(
                log_v - j - 1,
                _exchange_body(prev, k, j),
                name=f"bitonic-k{k}-j{j}",
                array_body=_array_exchange_body(prev, k, j),
            )
        )
    last = pairs[-1] if pairs else None
    steps.append(Superstep(0, _final_body(last), name="bitonic-final",
                           array_body=_array_final_body(last)))

    return Program(
        v,
        mu,
        steps,
        make_context=_sort_context(make_key),
        name=f"bitonic(n={v})",
        array_schema={"key": "i8"} if vectorizable else None,
    )


def _keep_smaller(pid: int, k: int, j: int) -> bool:
    """Whether ``pid`` keeps the smaller key in compare-exchange (k, j).

    Ascending blocks are those whose bit ``k`` is 0 (standard bitonic
    indexing); within a block the lower partner keeps the minimum iff the
    block is ascending.
    """
    ascending = (pid >> k) & 1 == 0
    lower = (pid >> j) & 1 == 0
    return ascending == lower


def _apply_exchange(view: ProcView, k: int, j: int) -> None:
    (msg,) = view.inbox
    other = msg.payload
    ctx = view.ctx
    mine = ctx["key"]
    # _keep_smaller(pid, k, j) == (bit k of pid == bit j of pid); keep the
    # min in that case, the max otherwise (ties resolve to equal keys)
    if ((view.pid >> k) ^ (view.pid >> j)) & 1 == 0:
        ctx["key"] = other if other < mine else mine
    else:
        ctx["key"] = mine if mine > other else other


class _exchange_body:
    """Compare-exchange step body.

    A module-level class (not a closure) so built programs can cross
    process boundaries — the parallel round scheduler pickles superstep
    bodies into worker processes.
    """

    __slots__ = ("prev", "bit")

    def __init__(self, prev: tuple[int, int] | None, k: int, j: int):
        self.prev = prev
        self.bit = 1 << j

    def __call__(self, view: ProcView) -> None:
        prev = self.prev
        if prev is not None:
            _apply_exchange(view, prev[0], prev[1])
        view.send(view.pid ^ self.bit, view.ctx["key"])
        view.charge(1)

    def __getstate__(self):
        return (self.prev, self.bit)

    def __setstate__(self, state):
        self.prev, self.bit = state


class _final_body:
    """Closing step body: apply the last pending exchange (picklable)."""

    __slots__ = ("last",)

    def __init__(self, last: tuple[int, int] | None):
        self.last = last

    def __call__(self, view: ProcView) -> None:
        last = self.last
        if last is not None:
            _apply_exchange(view, last[0], last[1])
        view.charge(1)

    def __getstate__(self):
        return self.last

    def __setstate__(self, state):
        self.last = state


def _apply_exchange_array(view, k: int, j: int) -> None:
    """Whole-machine version of :func:`_apply_exchange`.

    Integer keys make the scalar tie-breaking branches (`other < mine`,
    `mine > other`) coincide with ``np.minimum`` / ``np.maximum``.
    """
    other = view.inbox_payload
    mine = view.ctx["key"]
    keep_min = ((view.pids >> k) ^ (view.pids >> j)) & 1 == 0
    view.ctx["key"] = np.where(
        keep_min, np.minimum(mine, other), np.maximum(mine, other)
    )


class _array_exchange_body:
    """Array counterpart of :class:`_exchange_body` (picklable)."""

    __slots__ = ("prev", "bit")

    def __init__(self, prev: tuple[int, int] | None, k: int, j: int):
        self.prev = prev
        self.bit = 1 << j

    def __call__(self, view) -> None:
        prev = self.prev
        if prev is not None:
            _apply_exchange_array(view, prev[0], prev[1])
        view.send(view.pids ^ self.bit, view.ctx["key"])
        view.charge(1)

    def __getstate__(self):
        return (self.prev, self.bit)

    def __setstate__(self, state):
        self.prev, self.bit = state


class _array_final_body:
    """Array counterpart of :class:`_final_body` (picklable)."""

    __slots__ = ("last",)

    def __init__(self, last: tuple[int, int] | None):
        self.last = last

    def __call__(self, view) -> None:
        last = self.last
        if last is not None:
            _apply_exchange_array(view, last[0], last[1])
        view.charge(1)

    def __getstate__(self):
        return self.last

    def __setstate__(self, state):
        self.last = state


class _hash_key:
    """Default key generator (picklable, unlike a lambda)."""

    __slots__ = ()

    def __call__(self, pid: int) -> int:
        return (pid * 2654435761) % (1 << 20)

    def __reduce__(self):
        return (_hash_key, ())


class _sort_context:
    """``make_context`` for the sort program (picklable)."""

    __slots__ = ("make_key",)

    def __init__(self, make_key):
        self.make_key = make_key

    def __call__(self, pid: int) -> dict:
        return {"key": self.make_key(pid)}


def dbsp_sort_time_bound(g: AccessFunction, n: int, mu: int = 8) -> float:
    """Proposition 9's D-BSP time shape for n-sorting."""
    if isinstance(g, PolynomialAccess):
        return float(n) ** g.alpha
    if isinstance(g, LogarithmicAccess):
        return math.log2(max(n, 2)) ** 3
    raise ValueError(f"no stated bound for {g!r}")
