"""The two n-DFT algorithms of Proposition 8.

Both compute the discrete Fourier transform of an ``n``-vector distributed
one element per processor (``ctx["x"]``, complex).

* :func:`fft_dag_program` — the straightforward schedule of the n-input
  FFT dag: ``log n`` supersteps, one of each label ``0 .. log n - 1``
  (radix-2 DIF; output lands in bit-reversed order).  Running time
  ``O(n^alpha)`` on ``g = x^alpha`` and ``O(log^2 n)`` on ``g = log x``.
* :func:`fft_recursive_program` — the recursive decomposition into two
  layers of independent sub-FFTs (the four-step factorization
  ``m = R * C``): three transpose supersteps per recursion level, each a
  1-relation within the current cluster; output in natural order.
  Running time ``O(n^alpha)`` on ``g = x^alpha`` (same as the DAG
  schedule) but ``O(log n log log n)`` on ``g = log x`` — the pair is the
  paper's §5.3 example that ``g = log x`` ranks algorithms the way the BT
  host does, while ``g = x^alpha`` cannot tell them apart.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.dbsp.cluster import log2_exact
from repro.dbsp.program import ProcView, Program, Superstep
from repro.functions import AccessFunction, LogarithmicAccess, PolynomialAccess

__all__ = [
    "fft_dag_program",
    "fft_recursive_program",
    "bit_reverse",
    "dbsp_fft_dag_time_bound",
    "dbsp_fft_recursive_time_bound",
]


def bit_reverse(value: int, bits: int) -> int:
    """Reverse the low ``bits`` bits of ``value``."""
    out = 0
    for _ in range(bits):
        out = (out << 1) | (value & 1)
        value >>= 1
    return out


def _default_input(pid: int) -> complex:
    return complex((pid % 7) - 3, ((3 * pid) % 5) - 2)


# --------------------------------------------------------------------- DAG
def fft_dag_program(
    v: int, mu: int = 8, make_value: Callable[[int], complex] | None = None
) -> Program:
    """Straight DAG schedule (radix-2 DIF); output bit-reversed.

    Superstep ``t`` (label ``t``) exchanges stage-``t`` operands; the
    butterfly for stage ``t`` is applied at the start of superstep
    ``t + 1`` (messages become visible at the next superstep), with a
    final local superstep applying the last stage.
    """
    log_v = log2_exact(v)
    vectorizable = make_value is None
    make_value = make_value or _default_input

    steps = [
        Superstep(t, _dag_stage_body(t, v), name=f"fft-stage{t}",
                  array_body=_array_dag_stage_body(t, v))
        for t in range(log_v)
    ]
    steps.append(Superstep(log_v, _dag_finish_body(), name="fft-finish",
                           array_body=_array_dag_finish_body()))

    return Program(
        v,
        mu,
        steps,
        make_context=_fft_context(make_value),
        name=f"fft-dag(n={v})",
        array_schema={"x": "c16"} if vectorizable else None,
    )


class _dag_stage_body:
    """Stage-``t`` body of the DAG schedule.

    A module-level class (not a closure) so built programs can cross
    process boundaries — the parallel round scheduler pickles superstep
    bodies into worker processes.
    """

    __slots__ = ("prev_m", "half")

    def __init__(self, t: int, v: int):
        self.prev_m = v >> (t - 1) if t > 0 else 0
        self.half = v >> (t + 1)

    def __call__(self, view: ProcView) -> None:
        if self.prev_m:
            _apply_butterfly(view, self.prev_m)
        view.send(view.pid ^ self.half, view.ctx["x"])
        view.charge(1)


class _dag_finish_body:
    __slots__ = ()

    def __call__(self, view: ProcView) -> None:
        _apply_butterfly(view, 2)
        view.charge(1)


class _fft_context:
    """``make_context`` for the FFT programs (picklable)."""

    __slots__ = ("make_value",)

    def __init__(self, make_value):
        self.make_value = make_value

    def __call__(self, pid: int) -> dict:
        return {"x": self.make_value(pid)}


def _apply_butterfly(view: ProcView, m: int) -> None:
    """Apply the DIF butterfly of block size ``m`` using the inbox value."""
    (msg,) = view.inbox
    partner_value = msg.payload
    half = m >> 1
    j = view.pid % m
    if j < half:
        view.ctx["x"] = view.ctx["x"] + partner_value
    else:
        w = cmath.exp(-2j * cmath.pi * (j - half) / m)
        view.ctx["x"] = (partner_value - view.ctx["x"]) * w


def _butterfly_twiddles(m: int) -> np.ndarray:
    """Per-``j`` DIF twiddles for block size ``m``, tabulated with the
    scalar body's exact ``cmath.exp`` values (``np.exp`` may differ by an
    ulp, which would break the ``==`` engine-equivalence contract); the
    unused ``j < m/2`` slots are zero."""
    half = m >> 1
    return np.array(
        [
            cmath.exp(-2j * cmath.pi * (j - half) / m) if j >= half else 0.0
            for j in range(m)
        ],
        dtype=np.complex128,
    )


def _cmul(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Elementwise complex product by the naive real/imag formula.

    CPython's ``complex * complex`` is ``(ac - bd, ad + bc)`` with each
    float64 operation rounded individually; numpy's complex ufunc loop
    may contract to FMA (observed: ~45% of products differ by one ulp),
    so the kernel-path multiply is spelled out in real arithmetic to keep
    the ``==`` engine-equivalence contract.
    """
    out = np.empty(x.shape, dtype=np.complex128)
    out.real = x.real * w.real - x.imag * w.imag
    out.imag = x.real * w.imag + x.imag * w.real
    return out


def _apply_butterfly_array(view, m: int, tw: np.ndarray) -> None:
    """Whole-machine :func:`_apply_butterfly` — complex add/subtract are
    componentwise (bit-identical to Python); the twiddle product goes
    through :func:`_cmul`."""
    partner = view.inbox_payload
    half = m >> 1
    j = view.pids & (m - 1)
    x = view.ctx["x"]
    view.ctx["x"] = np.where(j < half, x + partner, _cmul(partner - x, tw[j]))


class _array_dag_stage_body:
    """Array counterpart of :class:`_dag_stage_body` (picklable)."""

    __slots__ = ("prev_m", "half", "tw")

    def __init__(self, t: int, v: int):
        self.prev_m = v >> (t - 1) if t > 0 else 0
        self.half = v >> (t + 1)
        self.tw = _butterfly_twiddles(self.prev_m) if self.prev_m else None

    def __call__(self, view) -> None:
        if self.prev_m:
            _apply_butterfly_array(view, self.prev_m, self.tw)
        view.send(view.pids ^ self.half, view.ctx["x"])
        view.charge(1)


class _array_dag_finish_body:
    __slots__ = ("tw",)

    def __init__(self):
        self.tw = _butterfly_twiddles(2)

    def __call__(self, view) -> None:
        _apply_butterfly_array(view, 2, self.tw)
        view.charge(1)


# --------------------------------------------------------------- recursive
@dataclass(frozen=True)
class _Event:
    """One communication phase: a label, a send body and the matching
    apply body executed at the start of the next superstep (plus their
    array-kernel counterparts)."""

    label: int
    name: str
    send: Callable[[ProcView], None]
    apply: Callable[[ProcView], None]
    array_send: Callable = None
    array_apply: Callable = None


def fft_recursive_program(
    v: int, mu: int = 8, make_value: Callable[[int], complex] | None = None
) -> Program:
    """Recursive sqrt-decomposition (four-step) schedule; output in order."""
    log_v = log2_exact(v)
    vectorizable = make_value is None
    make_value = make_value or _default_input
    events = _events_for(v, log_v)

    steps: list[Superstep] = []
    for k, event in enumerate(events):
        prev = events[k - 1] if k > 0 else None
        steps.append(
            Superstep(
                event.label,
                _chain(prev.apply if prev else None, event.send),
                name=event.name,
                array_body=_chain(
                    prev.array_apply if prev else None, event.array_send
                ),
            )
        )
    if events:
        steps.append(
            Superstep(0, _chain(events[-1].apply, None), name="fft-flush",
                      array_body=_chain(events[-1].array_apply, None))
        )

    return Program(
        v,
        mu,
        steps,
        make_context=_fft_context(make_value),
        name=f"fft-rec(n={v})",
        array_schema={"x": "c16"} if vectorizable else None,
    )


class _chain:
    """Compose an apply body and a send body into one superstep body.

    Module-level and attribute-based (rather than a specialized closure)
    so the composed bodies pickle into parallel workers.
    """

    __slots__ = ("apply_fn", "send_fn")

    def __init__(self, apply_fn, send_fn):
        self.apply_fn = apply_fn
        self.send_fn = send_fn

    def __call__(self, view: ProcView) -> None:
        apply_fn = self.apply_fn
        if apply_fn is not None:
            apply_fn(view)
        send_fn = self.send_fn
        if send_fn is not None:
            send_fn(view)
        view.charge(1)


def _store(view: ProcView) -> None:
    """Apply body of a transpose: adopt the (single) routed value."""
    (msg,) = view.inbox
    view.ctx["x"] = msg.payload


def _array_store(view) -> None:
    """Array counterpart of :func:`_store` (every processor received)."""
    view.ctx["x"] = view.inbox_payload


def _events_for(m: int, log_v: int) -> list[_Event]:
    """Communication events of the recursive FFT on ``m``-clusters (SPMD)."""
    if m <= 1:
        return []
    label = log_v - log2_exact(m)
    if m == 2:
        return [
            _Event(label, f"fft2@{label}", _fft2_send(), _fft2_apply(),
                   _array_fft2_send(), _array_fft2_apply())
        ]

    log_m = log2_exact(m)
    r = 1 << ((log_m + 1) // 2)  # R: size of the first (column-DFT) layer
    c = m // r

    # destination offsets and twiddles depend only on j = pid % m:
    # tabulate once per event instead of divmod/cmath.exp per execution
    # (total table size over the recursion is O(m))
    t1_dest = [(j % c) * r + j // c for j in range(m)]
    t2_dest = [(j % r) * c + j // r for j in range(m)]
    t2_tw = [cmath.exp(-2j * cmath.pi * (j // r) * (j % r) / m) for j in range(m)]
    t3_dest = [(j % c) * r + j // c for j in range(m)]

    events = [
        _Event(label, f"fft-T1@{label}", _transpose(m, t1_dest), _store,
               _array_transpose(m, t1_dest), _array_store)
    ]
    events += _events_for(r, log_v)
    events.append(
        _Event(label, f"fft-T2@{label}", _transpose(m, t2_dest, t2_tw), _store,
               _array_transpose(m, t2_dest, t2_tw), _array_store)
    )
    events += _events_for(c, log_v)
    events.append(
        _Event(label, f"fft-T3@{label}", _transpose(m, t3_dest), _store,
               _array_transpose(m, t3_dest), _array_store)
    )
    return events


class _fft2_send:
    __slots__ = ()

    def __call__(self, view: ProcView) -> None:
        view.send(view.pid ^ 1, view.ctx["x"])


class _fft2_apply:
    __slots__ = ()

    def __call__(self, view: ProcView) -> None:
        (msg,) = view.inbox
        if view.pid & 1:
            view.ctx["x"] = msg.payload - view.ctx["x"]
        else:
            view.ctx["x"] = view.ctx["x"] + msg.payload


class _transpose:
    """Send body of a transpose event: route ``j = pid % m`` to ``dest[j]``,
    multiplying in the twiddle ``tw[j]`` when given (picklable)."""

    __slots__ = ("m", "dest", "tw")

    def __init__(self, m: int, dest: list[int], tw: list[complex] | None = None):
        self.m = m
        self.dest = dest
        self.tw = tw

    def __call__(self, view: ProcView) -> None:
        j = view.pid % self.m
        tw = self.tw
        if tw is None:
            view.send(view.pid - j + self.dest[j], view.ctx["x"])
        else:
            view.send(view.pid - j + self.dest[j], view.ctx["x"] * tw[j])


class _array_fft2_send:
    __slots__ = ()

    def __call__(self, view) -> None:
        view.send(view.pids ^ 1, view.ctx["x"])


class _array_fft2_apply:
    __slots__ = ()

    def __call__(self, view) -> None:
        p = view.inbox_payload
        x = view.ctx["x"]
        view.ctx["x"] = np.where((view.pids & 1) == 0, x + p, p - x)


class _array_transpose:
    """Array counterpart of :class:`_transpose` — the per-``j`` tables
    become gather arrays (picklable)."""

    __slots__ = ("m", "dest", "tw")

    def __init__(self, m: int, dest: list[int], tw: list[complex] | None = None):
        self.m = m
        self.dest = np.array(dest, dtype=np.int64)
        self.tw = None if tw is None else np.array(tw, dtype=np.complex128)

    def __call__(self, view) -> None:
        j = view.pids & (self.m - 1)
        base = view.pids - j
        tw = self.tw
        if tw is None:
            view.send(base + self.dest[j], view.ctx["x"])
        else:
            view.send(base + self.dest[j], _cmul(view.ctx["x"], tw[j]))


# ------------------------------------------------------------------ bounds
def dbsp_fft_dag_time_bound(g: AccessFunction, n: int, mu: int = 8) -> float:
    """Proposition 8 / §5.3: DAG-schedule D-BSP time shape."""
    if isinstance(g, PolynomialAccess):
        return float(n) ** g.alpha
    if isinstance(g, LogarithmicAccess):
        return math.log2(max(n, 2)) ** 2
    raise ValueError(f"no stated bound for {g!r}")


def dbsp_fft_recursive_time_bound(g: AccessFunction, n: int, mu: int = 8) -> float:
    """Proposition 8: recursive-schedule D-BSP time shape."""
    if isinstance(g, PolynomialAccess):
        return float(n) ** g.alpha
    if isinstance(g, LogarithmicAccess):
        lg = math.log2(max(n, 2))
        return lg * math.log2(max(lg, 2))
    raise ValueError(f"no stated bound for {g!r}")
