"""Fine-grained D-BSP algorithms for the paper's case-study problems.

* :mod:`repro.algorithms.primitives` — broadcast / reduce / prefix /
  permutation building blocks used by tests and benchmarks;
* :mod:`repro.algorithms.matmul` — the recursive n-MM algorithm of
  Proposition 7 (Figure 3 schedule);
* :mod:`repro.algorithms.fft` — the two n-DFT algorithms of Proposition 8
  (straight DAG schedule and recursive sqrt-decomposition);
* :mod:`repro.algorithms.sorting` — the n-sorting algorithm of
  Proposition 9 (bitonic schedule over the cluster hierarchy).
"""

from repro.algorithms.primitives import (
    broadcast_program,
    permutation_program,
    prefix_sums_program,
    reduce_program,
)
from repro.algorithms.matmul import (
    matmul_program,
    mm_assignment_rounds,
    dbsp_mm_time_bound,
)
from repro.algorithms.fft import (
    fft_dag_program,
    fft_recursive_program,
    dbsp_fft_dag_time_bound,
    dbsp_fft_recursive_time_bound,
)
from repro.algorithms.sorting import bitonic_sort_program, dbsp_sort_time_bound
from repro.algorithms.listranking import (
    list_ranking_program,
    random_list_successors,
)
from repro.algorithms.convolution import convolution_program

__all__ = [
    "broadcast_program",
    "reduce_program",
    "prefix_sums_program",
    "permutation_program",
    "matmul_program",
    "mm_assignment_rounds",
    "dbsp_mm_time_bound",
    "fft_dag_program",
    "fft_recursive_program",
    "dbsp_fft_dag_time_bound",
    "dbsp_fft_recursive_time_bound",
    "bitonic_sort_program",
    "dbsp_sort_time_bound",
    "list_ranking_program",
    "random_list_successors",
    "convolution_program",
]
