"""Polynomial multiplication (convolution) on D-BSP, composed from the FFT.

Multiplies two real polynomials of degree < v/2, one coefficient pair per
processor, using the classic packed-FFT technique:

1. pack the two real inputs into one complex vector ``a + i b``;
2. run the recursive FFT (natural-order output);
3. unpack the two spectra with one mirror permutation
   (``A_k = (C_k + conj(C_{n-k}))/2``, ``B_k = (C_k - conj(C_{n-k}))/2i``)
   and take the pointwise product;
4. run the *inverse* FFT as conj -> FFT -> conj/n (two extra local steps
   around a second forward-FFT schedule).

The result — the coefficients of ``a(x) * b(x)`` — lands in
``ctx["coeff"]``.  This is the repository's demonstration that the
algorithm library composes: a new D-BSP program built out of the Prop. 8
schedule plus a Section-6-style regular permutation, runnable on every
engine unchanged.
"""

from __future__ import annotations

from typing import Sequence

from repro.algorithms.fft import _chain, _events_for
from repro.dbsp.cluster import log2_exact
from repro.dbsp.program import ProcView, Program, Superstep

__all__ = ["convolution_program"]


def convolution_program(
    v: int,
    coeffs_a: Sequence[float] | None = None,
    coeffs_b: Sequence[float] | None = None,
    mu: int = 8,
) -> Program:
    """Build the convolution program on ``v`` processors.

    ``coeffs_a`` / ``coeffs_b`` hold at most ``v/2`` real coefficients
    each (zero-padded), so the circular convolution of the packed length-v
    vectors equals the linear convolution.  Defaults exercise a small
    deterministic instance.
    """
    log_v = log2_exact(v)
    if v < 4:
        raise ValueError("convolution needs v >= 4 (two polynomial halves)")
    half = v // 2
    coeffs_a = list(coeffs_a) if coeffs_a is not None else [
        float((p % 5) - 2) for p in range(half)
    ]
    coeffs_b = list(coeffs_b) if coeffs_b is not None else [
        float((3 * p) % 7 - 3) for p in range(half)
    ]
    if len(coeffs_a) > half or len(coeffs_b) > half:
        raise ValueError(f"at most {half} coefficients per polynomial")
    coeffs_a += [0.0] * (half - len(coeffs_a))
    coeffs_b += [0.0] * (half - len(coeffs_b))

    fft_events = _events_for(v, log_v)

    steps: list[Superstep] = []

    def emit_fft(prologue) -> None:
        """Append a forward-FFT schedule whose first superstep also runs
        ``prologue`` (the apply-step of whatever preceded it)."""
        for k, event in enumerate(fft_events):
            before = prologue if k == 0 else fft_events[k - 1].apply
            steps.append(
                Superstep(event.label, _chain(before, event.send),
                          name=event.name)
            )

    # ---- forward FFT of the packed vector ------------------------------
    emit_fft(None)

    # ---- mirror exchange + pointwise product ---------------------------
    def mirror_send(view: ProcView) -> None:
        dest = (v - view.pid) % v
        view.send(dest, view.ctx["x"])
        view.charge(1)

    def product(view: ProcView) -> None:
        (msg,) = view.inbox
        c_mirror = msg.payload
        c_here = view.ctx["x"]
        a_k = (c_here + c_mirror.conjugate()) / 2.0
        b_k = (c_here - c_mirror.conjugate()) / 2.0j
        # pointwise spectrum product, conjugated to set up the inverse FFT
        view.ctx["x"] = (a_k * b_k).conjugate()
        view.charge(3)

    steps.append(
        Superstep(0, _chain(fft_events[-1].apply, mirror_send), name="conv-mirror")
    )

    # ---- inverse FFT: conj was taken above; forward FFT; conj/n below --
    emit_fft(product)

    def finish(view: ProcView) -> None:
        value = view.ctx["x"].conjugate() / v
        view.ctx["coeff"] = value.real
        view.charge(2)

    steps.append(Superstep(0, _chain(fft_events[-1].apply, finish),
                           name="conv-finish"))

    a, b = coeffs_a, coeffs_b

    def make_context(pid: int) -> dict:
        re = a[pid] if pid < half else 0.0
        im = b[pid] if pid < half else 0.0
        return {"x": complex(re, im)}

    return Program(v, mu, steps, make_context=make_context,
                   name=f"convolution(v={v})")
