"""List ranking by pointer jumping — a deliberately locality-free workload.

Each processor holds one node of a linked list (``ctx["succ"]`` is the
processor id of the successor, or ``None`` at the tail) and computes its
*rank*, the number of links to the tail, into ``ctx["rank"]``.

Pointer jumping doubles the pointer horizon each round:
``rank[p] += rank[succ[p]]; succ[p] = succ[succ[p]]``.  Since successors
are arbitrary processor ids, every superstep is a 0-superstep — the
classic fine-grained PRAM-style computation with *no* submachine locality
to exploit.  It serves as the benchmark contrast to the structured
case-study algorithms: Theorem 5 prices each of its ``Theta(log v)``
rounds at the full ``mu v f(mu v)``.

Protocol per round (two supersteps, each an h-relation with h <= 2):

1. every non-tail node asks its current successor for that node's
   ``(rank, succ)`` pair;
2. the successor answers; the asker folds the answer in and jumps.
"""

from __future__ import annotations

from typing import Sequence

from repro.dbsp.cluster import log2_exact
from repro.dbsp.program import ProcView, Program, Superstep

__all__ = ["list_ranking_program", "random_list_successors"]


def random_list_successors(v: int, seed: int = 0) -> list[int | None]:
    """Successor pointers of a random list over all ``v`` processors."""
    import random

    rng = random.Random(seed)
    order = list(range(v))
    rng.shuffle(order)
    succ: list[int | None] = [None] * v
    for a, b in zip(order, order[1:]):
        succ[a] = b
    return succ


def list_ranking_program(
    v: int,
    successors: Sequence[int | None] | None = None,
    mu: int = 8,
) -> Program:
    """Build the pointer-jumping list-ranking program.

    ``successors[p]`` is processor ``p``'s successor (``None`` for the
    tail).  Defaults to a random list over all processors.  After the
    run, ``ctx["rank"]`` holds each node's distance to the tail.
    """
    log_v = log2_exact(v)
    if successors is None:
        successors = random_list_successors(v, seed=0)
    if len(successors) != v:
        raise ValueError(f"need {v} successor entries, got {len(successors)}")

    def ask(view: ProcView) -> None:
        if view.ctx["succ"] is not None:
            view.send(view.ctx["succ"], ("ask", view.pid))
        view.charge(1)

    def answer_and_jump(view: ProcView) -> None:
        for msg in view.inbox:
            kind, payload = msg.payload
            if kind == "ask":
                view.send(payload, ("info", (view.ctx["rank"], view.ctx["succ"])))
        view.charge(1)

    def absorb(view: ProcView) -> None:
        for msg in view.inbox:
            kind, payload = msg.payload
            if kind == "info":
                succ_rank, succ_succ = payload
                view.ctx["rank"] += succ_rank
                view.ctx["succ"] = succ_succ
        view.charge(1)

    steps: list[Superstep] = []
    rounds = max(log_v, 1)
    for r in range(rounds):
        steps.append(Superstep(0, ask, name=f"rank-ask-{r}"))
        steps.append(Superstep(0, answer_and_jump, name=f"rank-answer-{r}"))
        steps.append(Superstep(0, absorb, name=f"rank-absorb-{r}"))

    succ_list = list(successors)

    def make_context(pid: int) -> dict:
        s = succ_list[pid]
        return {"succ": s, "rank": 0 if s is None else 1}

    return Program(v, mu, steps, make_context=make_context,
                   name=f"list-ranking(v={v})")
