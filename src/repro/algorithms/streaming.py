"""Pseudo-streaming workloads emitted as task DAGs.

Bulk-synchronous pseudo-streaming in the sense of Buurlage et al.
(PAPERS.md): the data set is larger than the machine's aggregate fast
memory (``n = epochs * partitions * chunk`` words, with ``chunk`` sized
to fill one ``mu``-word processor context), so it is streamed through in
*epochs* — each epoch touches every partition once, and a partition's
working set flows from one epoch to the next.  That per-partition flow
is exactly the submachine locality the paper's translation exploits: a
scheduler that keeps a partition's epoch chain on one processor (and
neighboring partitions on nearby processors) turns the stream into
fine-label, cheap communication; a scheduler that scatters it pays
coarse-label prices for the same volumes.

Three generators, each returning a validated
:class:`~repro.dag.spec.DagSpec`:

* :func:`stream_scan` — per-partition running scan with a light carry
  chain between neighboring partitions inside each epoch;
* :func:`stream_stencil` — 1-d stencil: each epoch reads the partition
  itself (heavy) plus one-word halos from both neighbors (light);
* :func:`stream_reduce` — per-partition streams folded by a binary
  combining tree after the last epoch.

Task ids are zero-padded so lexicographic order equals grid order and
every downstream tie-break is stable.

>>> spec = stream_scan(epochs=2, partitions=2, chunk=4)
>>> [t.id for t in spec.tasks][:2]
['e00p000', 'e00p001']
>>> spec.total_volume() >= 8
True
"""

from __future__ import annotations

from typing import Any, Callable

from repro.dag.spec import DagSpec, EdgeSpec, TaskSpec

__all__ = [
    "stream_scan",
    "stream_stencil",
    "stream_reduce",
    "STREAMING_WORKLOADS",
    "streaming_spec",
]


def _tid(e: int, p: int) -> str:
    return f"e{e:02d}p{p:03d}"


def _check(epochs: int, partitions: int, chunk: int) -> None:
    if epochs < 1 or partitions < 1 or chunk < 1:
        raise ValueError(
            f"epochs, partitions and chunk must all be >= 1, got "
            f"epochs={epochs}, partitions={partitions}, chunk={chunk}"
        )
    if epochs > 99 or partitions > 999:
        raise ValueError(
            f"streaming grids are capped at 99 epochs x 999 partitions, "
            f"got epochs={epochs}, partitions={partitions}"
        )


def _grid_tasks(epochs: int, partitions: int, chunk: int) -> list[TaskSpec]:
    return [
        TaskSpec(
            id=_tid(e, p),
            work=chunk,
            memory=chunk,
            payload=e * partitions + p + 1,
        )
        for e in range(epochs)
        for p in range(partitions)
    ]


def stream_scan(
    epochs: int = 4, partitions: int = 8, chunk: int = 8
) -> DagSpec:
    """Epoch-partitioned running scan.

    Heavy residency edges carry each partition's ``chunk``-word state to
    the next epoch; a light two-word carry links neighboring partitions
    inside an epoch (the scan's running total crossing the boundary).
    """
    _check(epochs, partitions, chunk)
    edges: list[EdgeSpec] = []
    for e in range(epochs):
        for p in range(partitions):
            if p + 1 < partitions:
                edges.append(
                    EdgeSpec(src=_tid(e, p), dst=_tid(e, p + 1), volume=2)
                )
            if e + 1 < epochs:
                edges.append(
                    EdgeSpec(src=_tid(e, p), dst=_tid(e + 1, p), volume=chunk)
                )
    return DagSpec(
        name=f"stream-scan[e{epochs},p{partitions},c{chunk}]",
        tasks=tuple(_grid_tasks(epochs, partitions, chunk)),
        edges=tuple(edges),
    )


def stream_stencil(
    epochs: int = 4, partitions: int = 8, chunk: int = 8
) -> DagSpec:
    """Epoch-partitioned 1-d stencil with one-word halo exchanges."""
    _check(epochs, partitions, chunk)
    edges: list[EdgeSpec] = []
    for e in range(epochs - 1):
        for p in range(partitions):
            edges.append(
                EdgeSpec(src=_tid(e, p), dst=_tid(e + 1, p), volume=chunk)
            )
            if p > 0:
                edges.append(
                    EdgeSpec(src=_tid(e, p), dst=_tid(e + 1, p - 1), volume=1)
                )
            if p + 1 < partitions:
                edges.append(
                    EdgeSpec(src=_tid(e, p), dst=_tid(e + 1, p + 1), volume=1)
                )
    return DagSpec(
        name=f"stream-stencil[e{epochs},p{partitions},c{chunk}]",
        tasks=tuple(_grid_tasks(epochs, partitions, chunk)),
        edges=tuple(edges),
    )


def stream_reduce(
    epochs: int = 4, partitions: int = 8, chunk: int = 8
) -> DagSpec:
    """Per-partition streams folded by a combining tree at the end."""
    _check(epochs, partitions, chunk)
    tasks = _grid_tasks(epochs, partitions, chunk)
    edges: list[EdgeSpec] = []
    for e in range(epochs - 1):
        for p in range(partitions):
            edges.append(
                EdgeSpec(src=_tid(e, p), dst=_tid(e + 1, p), volume=chunk)
            )
    # binary combining tree over the last epoch's partials
    frontier = [_tid(epochs - 1, p) for p in range(partitions)]
    level = 0
    while len(frontier) > 1:
        merged: list[str] = []
        for i in range(0, len(frontier) - 1, 2):
            rid = f"r{level:02d}n{i // 2:03d}"
            tasks.append(TaskSpec(id=rid, work=2, memory=2, payload=0))
            edges.append(EdgeSpec(src=frontier[i], dst=rid, volume=1))
            edges.append(EdgeSpec(src=frontier[i + 1], dst=rid, volume=1))
            merged.append(rid)
        if len(frontier) % 2:
            merged.append(frontier[-1])
        frontier = merged
        level += 1
    return DagSpec(
        name=f"stream-reduce[e{epochs},p{partitions},c{chunk}]",
        tasks=tuple(tasks),
        edges=tuple(edges),
    )


#: streaming workload registry: name -> (builder, description)
STREAMING_WORKLOADS: dict[str, tuple[Callable[..., DagSpec], str]] = {
    "stream-scan": (stream_scan, "epoch-partitioned running scan"),
    "stream-stencil": (stream_stencil, "epoch-partitioned 1-d stencil"),
    "stream-reduce": (stream_reduce, "epoch streams + combining tree"),
}


def streaming_spec(name: str, **params: Any) -> DagSpec:
    """Build a named streaming workload (``ValueError`` on unknown names).

    >>> streaming_spec("stream-scan", epochs=2, partitions=2).name
    'stream-scan[e2,p2,c8]'
    """
    if name not in STREAMING_WORKLOADS:
        raise ValueError(
            f"unknown streaming workload {name!r}; "
            f"try: {', '.join(sorted(STREAMING_WORKLOADS))}"
        )
    builder, _ = STREAMING_WORKLOADS[name]
    return builder(**params)
