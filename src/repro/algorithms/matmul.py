"""The n-MM algorithm of Proposition 7 (Figure 3 schedule).

Two ``sqrt(n) x sqrt(n)`` matrices are multiplied (semiring operations
only) on an ``n``-processor D-BSP.  Elements are distributed in Morton
(bit-interleaved) order, so the four quadrants of ``A``/``B``/``C`` map
exactly onto the four 2-clusters: the standard decomposition into eight
``(n/4)``-MM subproblems runs in two *rounds* of four subproblems, each
preceded by one superstep in which every processor exchanges O(1) data
(Figure 3's submatrix shuffle), and recurses independently inside the
2-clusters.

Superstep profile: ``Theta(2^d)`` supersteps of label ``2d`` for
``0 <= d < log(n)/2`` plus ``Theta(sqrt n)`` purely local (label
``log n``) supersteps — giving running time

* ``O(n^alpha)`` on ``g = x^alpha`` with ``1/2 < alpha < 1``,
* ``O(sqrt(n) log n)`` at ``alpha = 1/2``,
* ``O(sqrt n)`` for ``alpha < 1/2`` and for ``g = log x``
  (Proposition 7), whose HMM simulation matches the bounds of [1].
"""

from __future__ import annotations

import math
from typing import Callable

from repro.dbsp.cluster import log2_exact
from repro.dbsp.program import ProcView, Program, Superstep
from repro.functions import AccessFunction, LogarithmicAccess, PolynomialAccess

__all__ = [
    "matmul_program",
    "morton_decode",
    "morton_encode",
    "mm_assignment_rounds",
    "dbsp_mm_time_bound",
]


def morton_decode(pid: int, half_bits: int) -> tuple[int, int]:
    """Morton (bit-interleaved) pid -> (row, col); MSB pair first."""
    row = col = 0
    for b in range(half_bits):
        shift = 2 * (half_bits - 1 - b)
        row = (row << 1) | ((pid >> (shift + 1)) & 1)
        col = (col << 1) | ((pid >> shift) & 1)
    return row, col


def morton_encode(row: int, col: int, half_bits: int) -> int:
    """(row, col) -> Morton pid; inverse of :func:`morton_decode`."""
    pid = 0
    for b in range(half_bits - 1, -1, -1):
        pid = (pid << 2) | (((row >> b) & 1) << 1) | ((col >> b) & 1)
    return pid


def matmul_program(
    v: int,
    mu: int = 8,
    value_a: Callable[[int, int], object] | None = None,
    value_b: Callable[[int, int], object] | None = None,
) -> Program:
    """Build the recursive n-MM program for ``v = n`` processors.

    ``v`` must be a power of 4.  Processor ``morton_encode(r, c)`` holds
    ``A[r][c]`` in ``ctx["a"]``, ``B[r][c]`` in ``ctx["b"]`` and
    accumulates ``C[r][c]`` in ``ctx["c"]``.  Every recursion level closes
    with a third shuffle restoring its cluster's operand layout, so each
    subproblem starts from (and the whole program ends in) clean Morton
    order — the restore costs the same O(1)-relation as the two working
    shuffles and keeps the superstep profile at ``Theta(2^d)`` label-2d
    supersteps.
    """
    log_v = log2_exact(v)
    if log_v % 2 != 0:
        raise ValueError(f"n-MM needs n a power of 4, got {v}")
    half_bits = log_v // 2
    value_a = value_a or (lambda r, c: r + 2 * c + 1)
    value_b = value_b or (lambda r, c: r * c + r + 1)

    steps: list[Superstep] = []
    _emit_steps(steps, depth=0, max_depth=half_bits, log_v=log_v)
    steps.append(Superstep(0, _final_sync, name="mm-final-sync"))

    def make_context(pid: int) -> dict:
        r, c = morton_decode(pid, half_bits)
        return {"a": value_a(r, c), "b": value_b(r, c), "c": 0}

    return Program(v, mu, steps, make_context=make_context, name=f"matmul(n={v})")


def _final_sync(view: ProcView) -> None:
    _absorb(view)
    view.charge(1)


def _emit_steps(
    steps: list[Superstep], depth: int, max_depth: int, log_v: int
) -> None:
    """Recursive schedule: shuffle round-1 operands, recurse, shuffle
    round-2 operands, recurse, restore the cluster's operand layout."""
    if depth == max_depth:
        steps.append(Superstep(log_v, _leaf_multiply, name="mm-multiply"))
        return
    for phase, name in ((1, "move1"), (None, None), (2, "move2"),
                        (None, None), (3, "restore")):
        if phase is None:
            _emit_steps(steps, depth + 1, max_depth, log_v)
        else:
            steps.append(
                Superstep(2 * depth, _move_body(depth, log_v, phase),
                          name=f"mm-{name}-d{depth}")
            )


def _leaf_multiply(view: ProcView) -> None:
    _absorb(view)
    view.ctx["c"] = view.ctx["c"] + view.ctx["a"] * view.ctx["b"]
    view.charge(1)


def _absorb(view: ProcView) -> None:
    """File incoming operand updates (tagged 'a'/'b') into the context."""
    for msg in view.inbox:
        tag, value = msg.payload
        view.ctx[tag] = value


def _move_body(depth: int, log_v: int, phase: int):
    """The Figure 3 operand shuffles at recursion ``depth``.

    At depth ``d`` the active cluster level is ``2d``; the two bits
    selecting the subcluster (matrix quadrant) are the pid bits at
    positions ``log v - 2d - 1`` (row bit) and ``log v - 2d - 2`` (col
    bit).  Writing quadrants as ``q = (r, c)``:

    * phase 1 installs round 1's ``(A11,B11 | A12,B22 | A22,B21 |
      A21,B12)``: swap A between quadrants (1,0)-(1,1) (processors with
      ``r = 1``) and B between (0,1)-(1,1) (processors with ``c = 1``);
    * phase 2 installs round 2's ``(A12,B21 | A11,B12 | A21,B11 |
      A22,B22)``: swap A across the col bit and B across the row bit for
      *all* processors;
    * phase 3 restores the initial ``(A_q, B_q)`` layout: swap A across
      the col bit where ``r = 0`` and B across the row bit where ``c = 0``.
    """
    r_bit = 1 << (log_v - 2 * depth - 1)
    c_bit = 1 << (log_v - 2 * depth - 2)

    def body(view: ProcView) -> None:
        _absorb(view)
        pid = view.pid
        if phase == 1:
            if pid & r_bit:
                view.send(pid ^ c_bit, ("a", view.ctx["a"]))
            if pid & c_bit:
                view.send(pid ^ r_bit, ("b", view.ctx["b"]))
        elif phase == 2:
            view.send(pid ^ c_bit, ("a", view.ctx["a"]))
            view.send(pid ^ r_bit, ("b", view.ctx["b"]))
        else:
            if not pid & r_bit:
                view.send(pid ^ c_bit, ("a", view.ctx["a"]))
            if not pid & c_bit:
                view.send(pid ^ r_bit, ("b", view.ctx["b"]))
        view.charge(1)

    return body


def mm_assignment_rounds(v: int = 16) -> list[dict[int, tuple[str, str]]]:
    """Figure 3 data: the (A, B) submatrices held by each 2-cluster.

    Runs the first recursion level symbolically and reports, for each of
    the four 2-clusters, the operand quadrants it works on in rounds 1 and
    2 (e.g. ``("A11", "B12")``), exactly as in the paper's figure.
    """

    def name(prefix: str, q: tuple[int, int]) -> str:
        return f"{prefix}{q[0] + 1}{q[1] + 1}"

    initial = {2 * r + c: ((r, c), (r, c)) for r in range(2) for c in range(2)}
    round1 = {}
    round2 = {}
    for cluster, (qa, qb) in initial.items():
        r, c = qa
        # round 1: A swaps across the col bit when r = 1; B swaps across
        # the row bit when c = 1 (matches _move_body with round_one=True)
        qa1 = (r, 1 - c) if r == 1 else (r, c)
        qb1 = (1 - r, c) if c == 1 else (r, c)
        round1[cluster] = (name("A", qa1), name("B", qb1))
        # round 2: both operands swap unconditionally
        qa2 = (qa1[0], 1 - qa1[1])
        qb2 = (1 - qb1[0], qb1[1])
        round2[cluster] = (name("A", qa2), name("B", qb2))
    return [round1, round2]


def dbsp_mm_time_bound(g: AccessFunction, n: int, mu: int = 8) -> float:
    """Proposition 7's claimed D-BSP running-time shape for n-MM."""
    if isinstance(g, PolynomialAccess):
        a = g.alpha
        if a > 0.5:
            return float(n) ** a
        if a == 0.5:
            return math.sqrt(n) * math.log2(max(n, 2))
        return math.sqrt(n)
    if isinstance(g, LogarithmicAccess):
        return math.sqrt(n)
    raise ValueError(f"Proposition 7 states no bound for {g!r}")
