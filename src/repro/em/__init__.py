"""The External Memory (EM) model of Aggarwal and Vitter [4].

A two-level hierarchy: a fast memory of ``M`` words and a disk accessed
in blocks of ``B`` words; the cost measure is the number of block I/Os.
The paper's introduction positions its result against the earlier line of
work [8-10] that simulates *coarse-grained, flat* parallel models (BSP,
BSP*, CGM) on the EM model: that mapping exploits the two-level structure
but — having no submachine hierarchy to mine — cannot translate locality
into anything finer.  :mod:`repro.em.simulation` implements that flat
baseline so the contrast is measurable (benchmark E13).
"""

from repro.em.machine import EMMachine
from repro.em.simulation import EMSimResult, FlatBSPOnEMSimulator

__all__ = ["EMMachine", "FlatBSPOnEMSimulator", "EMSimResult"]
