"""Flat (coarse-grained) BSP simulation on the EM model — the [8-10] baseline.

The scheme follows Dehne et al. [8,9]: one superstep at a time,

1. **compute pass** — stream every processor context through fast memory
   (``Theta(mu v / B)`` I/Os), run the bodies, append outgoing messages
   to a disk-resident message stream;
2. **routing pass** — deliver the message stream to per-processor inboxes
   with multi-pass distribution (fan-out ``Theta(M/B)`` per pass, i.e.
   ``ceil(log_{M/B} (v B' / B))`` passes), the external-memory analogue
   of sorting by destination;
3. **delivery pass** — merge the routed messages into the contexts.

Crucially the simulation is *label-oblivious*: a D-BSP program's
supersteps are treated as flat BSP supersteps, exactly as the
coarse-grained frameworks would.  Its I/O cost therefore cannot depend on
the guest's submachine locality — the limitation the paper's Section 1
calls out and that benchmark E13 measures against the D-BSP -> HMM
scheme.
"""

from __future__ import annotations

import math
from bisect import insort
from dataclasses import dataclass, field

from repro.dbsp.program import Message, ProcView, Program
from repro.em.machine import EMMachine

__all__ = ["FlatBSPOnEMSimulator", "EMSimResult"]


@dataclass
class EMSimResult:
    """Outcome of a flat BSP-on-EM simulation."""

    contexts: list[dict]
    io_count: int
    superstep_ios: list[int] = field(default_factory=list)


class FlatBSPOnEMSimulator:
    """Simulate a (D-)BSP program on EM(M, B), counting block I/Os."""

    def __init__(self, M: int = 256, B: int = 16):
        self.M = M
        self.B = B

    def simulate(self, program: Program) -> EMSimResult:
        program = program.with_global_sync()
        v, mu = program.v, program.mu
        B = self.B
        contexts_per_block = max(1, B // mu)
        context_blocks = -(-v // contexts_per_block)
        machine = EMMachine(self.M, B, disk_blocks=max(context_blocks, 1))

        contexts = program.initial_contexts()
        pending: list[list[Message]] = [[] for _ in range(v)]
        superstep_ios: list[int] = []

        for step in program.supersteps:
            before = machine.io_count
            if not step.is_dummy:
                outgoing: list[tuple[int, Message]] = []
                # 1. compute pass: stream context blocks through memory
                for blk in range(context_blocks):
                    machine.load(blk)
                    lo = blk * contexts_per_block
                    hi = min(lo + contexts_per_block, v)
                    for pid in range(lo, hi):
                        inbox = pending[pid]  # kept ordered at delivery
                        pending[pid] = []
                        view = ProcView(pid, v, mu, step.label,
                                        contexts[pid], inbox)
                        step.body(view)
                        outgoing.extend(view.outbox)
                    machine.store(blk, [None] * B)
                    machine.evict(blk)
                # 2. routing pass(es): multi-way distribution by destination
                machine.io_count += self._routing_ios(len(outgoing),
                                                      context_blocks)
                for dest, msg in outgoing:
                    insort(pending[dest], msg)
                # 3. delivery pass: merge messages into context blocks
                if outgoing:
                    machine.io_count += 2 * context_blocks
            machine.evict_all()
            superstep_ios.append(machine.io_count - before)

        return EMSimResult(contexts=contexts, io_count=machine.io_count,
                           superstep_ios=superstep_ios)

    def _routing_ios(self, n_messages: int, dest_blocks: int) -> int:
        """I/Os of distributing ``n_messages`` into ``dest_blocks`` buckets.

        Fan-out per pass is the number of block buffers that fit in fast
        memory; each pass reads and writes the whole message stream.
        """
        if n_messages == 0:
            return 0
        fanout = max(2, self.M // self.B - 1)
        passes = max(1, math.ceil(math.log(max(dest_blocks, 2), fanout)))
        stream_blocks = -(-n_messages // self.B)
        return 2 * stream_blocks * passes
