"""Operational External Memory machine (I/O-counting two-level hierarchy)."""

from __future__ import annotations

from typing import Any

__all__ = ["EMMachine"]


class EMMachine:
    """An EM machine with fast memory ``M`` and block size ``B`` (in words).

    The disk is word-addressed storage accessed in aligned blocks; the
    machine counts block reads and writes (``io_count``) and tracks the
    *resident set* — the blocks currently in fast memory — enforcing the
    capacity ``M``: loading beyond capacity evicts (silently, clean
    eviction; dirty blocks must be stored explicitly, as EM algorithms
    do).  CPU work is free, per the model.
    """

    def __init__(self, M: int, B: int, disk_blocks: int):
        if B <= 0 or M < B:
            raise ValueError(f"need B >= 1 and M >= B, got M={M}, B={B}")
        self.M = int(M)
        self.B = int(B)
        self.capacity_blocks = self.M // self.B
        self.disk_blocks = int(disk_blocks)
        self.disk: list[list[Any] | None] = [None] * self.disk_blocks
        self.resident: dict[int, list[Any]] = {}
        self._lru: list[int] = []
        self.io_count: int = 0

    # ------------------------------------------------------------- blocks
    def load(self, block: int) -> list[Any]:
        """Bring disk ``block`` into fast memory (1 I/O unless resident)."""
        self._check(block)
        if block in self.resident:
            self._touch(block)
            return self.resident[block]
        self.io_count += 1
        data = self.disk[block]
        if data is None:
            data = [None] * self.B
        frame = list(data)
        self._evict_if_full()
        self.resident[block] = frame
        self._lru.append(block)
        return frame

    def store(self, block: int, data: list[Any] | None = None) -> None:
        """Write ``block`` back to disk (1 I/O).

        ``data`` defaults to the resident frame (which must then exist).
        """
        self._check(block)
        if data is None:
            if block not in self.resident:
                raise KeyError(f"block {block} is not resident")
            data = self.resident[block]
        if len(data) != self.B:
            raise ValueError(f"block data must have {self.B} words")
        self.io_count += 1
        self.disk[block] = list(data)

    def evict(self, block: int) -> None:
        """Drop a resident block without writing it (clean discard)."""
        self.resident.pop(block, None)
        if block in self._lru:
            self._lru.remove(block)

    def evict_all(self) -> None:
        self.resident.clear()
        self._lru.clear()

    # ------------------------------------------------------------ helpers
    def _check(self, block: int) -> None:
        if not 0 <= block < self.disk_blocks:
            raise IndexError(f"block {block} outside [0, {self.disk_blocks})")

    def _touch(self, block: int) -> None:
        self._lru.remove(block)
        self._lru.append(block)

    def _evict_if_full(self) -> None:
        while len(self.resident) >= self.capacity_blocks:
            victim = self._lru.pop(0)
            del self.resident[victim]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"EMMachine(M={self.M}, B={self.B}, "
                f"blocks={self.disk_blocks}, io={self.io_count})")
