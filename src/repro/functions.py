"""Memory access functions and charged-cost tables.

The HMM and BT models of the paper are parameterized by a nondecreasing
*access function* ``f(x)``: reading or writing memory location ``x`` costs
``f(x)`` time units.  The paper restricts attention to *(2, c)-uniform*
functions, i.e. functions for which there is a constant ``c >= 1`` with
``f(2x) <= c * f(x)`` for all ``x`` (called "well behaved" in [3] and
"polynomially bounded" in [1]).

This module provides:

* the access functions used throughout the paper as case studies —
  :class:`PolynomialAccess` (``f(x) = x**alpha``) and
  :class:`LogarithmicAccess` (``f(x) = log x``) — plus
  :class:`ConstantAccess` (flat RAM) and :class:`LinearAccess` (useful in
  tests as an extreme hierarchy);
* an empirical (2, c)-uniformity estimator (:func:`two_c_uniformity`);
* the iterated-function machinery ``f*`` used by Fact 2
  (:func:`iterated_star`);
* :class:`CostTable`, a prefix-sum table giving O(1) charged cost for any
  contiguous range of addresses (the workhorse that keeps the operational
  simulators fast, per the HPC guides' "no per-element Python loops" rule).

Conventions
-----------
Addresses are 0-based.  To keep every access cost strictly positive and the
logarithmic function (2, c)-uniform down to address 0, the concrete
functions shift their argument: ``PolynomialAccess(alpha)(x) = (x+1)**alpha``
and ``LogarithmicAccess()(x) = log2(x+2)``.  Both are nondecreasing and
(2, c)-uniform (with ``c = 2**alpha`` and ``c = 2`` respectively), and both
have the asymptotic growth the paper assumes, so all Theta-bounds carry
over verbatim.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

__all__ = [
    "AccessFunction",
    "PolynomialAccess",
    "LogarithmicAccess",
    "ConstantAccess",
    "LinearAccess",
    "StaircaseAccess",
    "VectorizationWarning",
    "two_c_uniformity",
    "iterated_star",
    "log_star",
    "CostTable",
]


class VectorizationWarning(RuntimeWarning):
    """An access function fell back to per-element scalar evaluation.

    Raised-as-warning by :meth:`AccessFunction.evaluate`'s default
    implementation: building a :class:`CostTable` through it is ~100x
    slower than through a real numpy expression, which silently dominates
    machine construction for large memories.  Override ``evaluate`` in
    the subclass to get rid of it.
    """


class AccessFunction:
    """Base class for nondecreasing access functions ``f(x)``.

    Subclasses implement :meth:`__call__` on scalars and
    :meth:`evaluate` on numpy arrays (vectorized).  ``name`` is used in
    reports and benchmark tables.
    """

    #: Human-readable name, e.g. ``"x^0.5"``.
    name: str = "f"

    def __call__(self, x: float) -> float:
        raise NotImplementedError

    def evaluate(self, xs: np.ndarray) -> np.ndarray:
        """Vectorized evaluation over an address array.

        Subclasses should override this with a real numpy expression.
        The default applies the scalar :meth:`__call__` per element
        (``np.frompyfunc`` plus a float64 cast — the fastest generic
        fallback, but still a Python-level loop, roughly two orders of
        magnitude slower than a vectorized override) and warns once per
        instance, so a new access function cannot quietly de-vectorize
        :class:`CostTable` construction.  The ufunc is built on the
        first call and cached on the instance — rebuilding it (and
        re-warning) on every call made repeated table construction
        measurably slower and drowned the warning in duplicates.
        """
        ufunc = getattr(self, "_evaluate_ufunc", None)
        if ufunc is None:
            warnings.warn(
                f"{type(self).__name__} does not override evaluate(); "
                f"falling back to per-element scalar evaluation, which makes "
                f"CostTable construction ~100x slower — add a vectorized "
                f"evaluate() override",
                VectorizationWarning,
                stacklevel=2,
            )
            ufunc = np.frompyfunc(self.__call__, 1, 1)
            try:
                # most access functions are frozen dataclasses: go around
                # the immutability for this private cache slot
                object.__setattr__(self, "_evaluate_ufunc", ufunc)
            except (AttributeError, TypeError):
                pass  # __slots__ without the field: stay uncached
        return ufunc(np.asarray(xs, dtype=np.float64)).astype(np.float64)

    def star(self, n: float) -> int:
        """``f*(n)``, the iterated-application count of Fact 2."""
        return iterated_star(self, n)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


@dataclass(frozen=True, repr=False)
class PolynomialAccess(AccessFunction):
    """``f(x) = (x + 1)**alpha`` for ``0 < alpha < 1``.

    (2, c)-uniform with ``c = 2**alpha``.
    """

    alpha: float = 0.5

    def __post_init__(self) -> None:
        if not (0.0 < self.alpha < 1.0):
            raise ValueError(f"alpha must lie in (0, 1), got {self.alpha}")
        object.__setattr__(self, "name", f"x^{self.alpha:g}")

    name: str = field(init=False, default="x^a")

    def __call__(self, x: float) -> float:
        return (x + 1.0) ** self.alpha

    def evaluate(self, xs: np.ndarray) -> np.ndarray:
        return np.power(np.asarray(xs, dtype=np.float64) + 1.0, self.alpha)


@dataclass(frozen=True, repr=False)
class LogarithmicAccess(AccessFunction):
    """``f(x) = log2(x + 2)``.

    (2, 2)-uniform: ``log2(2x+2) <= log2(x+2) + 1 <= 2 log2(x+2)`` since
    ``log2(x+2) >= 1`` for all ``x >= 0``.
    """

    name: str = field(init=False, default="log x")

    def __call__(self, x: float) -> float:
        return math.log2(x + 2.0)

    def evaluate(self, xs: np.ndarray) -> np.ndarray:
        return np.log2(np.asarray(xs, dtype=np.float64) + 2.0)


@dataclass(frozen=True, repr=False)
class ConstantAccess(AccessFunction):
    """``f(x) = 1``: the flat RAM, useful as a degenerate baseline."""

    name: str = field(init=False, default="1")

    def __call__(self, x: float) -> float:
        return 1.0

    def evaluate(self, xs: np.ndarray) -> np.ndarray:
        return np.ones_like(np.asarray(xs, dtype=np.float64))


@dataclass(frozen=True, repr=False)
class LinearAccess(AccessFunction):
    """``f(x) = x + 1``: the steepest (2, 2)-uniform hierarchy.

    Not one of the paper's case studies (``alpha < 1`` is assumed in the BT
    sections), but valid for the HMM results and a useful stress test.
    """

    name: str = field(init=False, default="x")

    def __call__(self, x: float) -> float:
        return x + 1.0

    def evaluate(self, xs: np.ndarray) -> np.ndarray:
        return np.asarray(xs, dtype=np.float64) + 1.0


class StaircaseAccess(AccessFunction):
    """A staircase access function modeling a concrete cache hierarchy.

    ``levels`` is a sequence of ``(capacity_words, latency)`` pairs with
    strictly increasing capacities and nondecreasing latencies; an access
    to address ``x`` costs the latency of the innermost level whose
    capacity exceeds ``x`` (addresses beyond the last level pay
    ``beyond``, default the last latency).  The default models a
    contemporary four-level hierarchy (L1/L2/L3/DRAM, in words and
    cycles).

    Staircases are how real machines look; the paper's theorems apply to
    them as long as the staircase is (2, c)-uniform, which holds whenever
    each level is at most ``c`` times slower than the previous one *and*
    at least twice as large (then f(2x)/f(x) <= c: doubling an address
    climbs at most one level).  The default satisfies this with c = 8.
    """

    DEFAULT_LEVELS = (
        (1 << 12, 1.0),     # 32 KiB L1, ~1 cycle-unit
        (1 << 16, 4.0),     # 512 KiB L2
        (1 << 21, 16.0),    # 16 MiB L3
        (1 << 28, 128.0),   # DRAM
    )

    def __init__(
        self,
        levels: tuple[tuple[int, float], ...] = DEFAULT_LEVELS,
        beyond: float | None = None,
    ):
        if not levels:
            raise ValueError("need at least one level")
        caps = [cap for cap, _ in levels]
        lats = [lat for _, lat in levels]
        if caps != sorted(set(caps)):
            raise ValueError(f"capacities must strictly increase: {caps}")
        if lats != sorted(lats) or lats[0] <= 0:
            raise ValueError(f"latencies must be positive, nondecreasing: {lats}")
        self.levels = tuple((int(cap), float(lat)) for cap, lat in levels)
        self.beyond = float(beyond if beyond is not None else lats[-1])
        if self.beyond < lats[-1]:
            raise ValueError("beyond-capacity latency cannot shrink")
        self.name = f"staircase[{len(self.levels)}]"
        self._caps = np.asarray(caps, dtype=np.float64)
        self._lats = np.asarray(lats + [self.beyond], dtype=np.float64)

    def __call__(self, x: float) -> float:
        idx = int(np.searchsorted(self._caps, x, side="right"))
        return float(self._lats[idx])

    def evaluate(self, xs: np.ndarray) -> np.ndarray:
        idx = np.searchsorted(self._caps, np.asarray(xs, dtype=np.float64),
                              side="right")
        return self._lats[idx]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StaircaseAccess({self.levels!r})"


def two_c_uniformity(f: AccessFunction, max_x: int = 1 << 20) -> float:
    """Empirically estimate the smallest ``c`` with ``f(2x) <= c f(x)``.

    Samples x geometrically (every power of two and three interior points
    per octave) up to ``max_x``.  Returns the supremum of the observed
    ratios; a function is considered (2, c)-uniform when this is bounded by
    a small constant as ``max_x`` grows.
    """
    xs: list[int] = []
    x = 1
    while x <= max_x:
        xs.extend((x, x + x // 4, x + x // 2, x + 3 * (x // 4)))
        x *= 2
    arr = np.unique(np.asarray([x for x in xs if x <= max_x], dtype=np.int64))
    num = f.evaluate(2 * arr)
    den = f.evaluate(arr)
    return float(np.max(num / den))


def iterated_star(f: AccessFunction, n: float, _cap: int = 512) -> int:
    """``f*(n) = min{k >= 1 : f^(k)(n) <= 4}``.

    Fact 2 states that touching ``n`` cells on ``f(x)``-BT costs
    ``Theta(n f*(n))``.  The iteration threshold is a constant (4) chosen
    strictly above the fixed points of the shifted case-study functions
    (``(x+1)^0.5`` has fixed point ~1.62, ``log2(x+2)`` exactly 2); any
    constant threshold above the fixed point yields the same Theta class —
    ``Theta(log log n)`` for ``x^alpha`` and ``Theta(log* n)`` for
    ``log x``.  The cap turns a hypothetical non-convergent access
    function into a loud error instead of a hang.
    """
    k = 0
    value = float(n)
    while value > 4.0:
        value = f(value)
        k += 1
        if k > _cap:
            raise RuntimeError(
                f"f*({n}) did not converge within {_cap} iterations for {f!r}"
            )
    return max(k, 1)


def log_star(n: float) -> int:
    """Classic ``log* n`` (iterated log2 to <= 4), matching :func:`iterated_star`."""
    k = 0
    value = float(n)
    while value > 4.0:
        value = math.log2(value)
        k += 1
    return max(k, 1)


#: below this size a table also keeps plain-Python mirrors of the prefix
#: array: scalar ``access``/``range_cost`` then run on list indexing,
#: several times faster than numpy scalar indexing plus ``float()``.
#: Simulation machines are far below this; only the very large touching
#: sweeps (n up to 2^22) take the numpy-only branch.
_SCALAR_LIST_MAX = 1 << 18


class CostTable:
    """Prefix-sum table of an access function over ``[0, size)``.

    ``range_cost(lo, hi)`` returns ``sum_{x in [lo, hi)} f(x)`` in O(1),
    which is the charged cost of touching a contiguous address range once.
    All operational machines use this to charge bulk context moves without
    per-word Python loops.  :meth:`access_many` /:meth:`fold_access` are
    the gather-style batched face of the same table: one numpy (or tight
    list-indexing) pass charging an arbitrary *set* of addresses, used by
    the machines' bulk primitives.

    A table is immutable after construction; prefer :meth:`shared` to the
    constructor so machines built repeatedly over the same ``(f, size)``
    (geometric benchmark sweeps, chained Brent runs) reuse one instance
    instead of paying the O(size) evaluate + cumsum each time.
    """

    def __init__(self, f: AccessFunction, size: int):
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        self.f = f
        self.size = int(size)
        values = f.evaluate(np.arange(self.size, dtype=np.float64))
        if np.any(values < 0):
            raise ValueError("access function must be nonnegative")
        if np.any(np.diff(values) < -1e-12):
            raise ValueError("access function must be nondecreasing")
        self._prefix = np.zeros(self.size + 1, dtype=np.float64)
        np.cumsum(values, out=self._prefix[1:])
        if self.size <= _SCALAR_LIST_MAX:
            # Python mirrors for the scalar hot paths.  The per-address
            # costs are the *prefix differences* (not `values`): scalar
            # and batched charging must produce bit-identical sums.
            self._prefix_list: list[float] | None = self._prefix.tolist()
            self._cost_list: list[float] | None = np.subtract(
                self._prefix[1:], self._prefix[:-1]
            ).tolist()
        else:
            self._prefix_list = None
            self._cost_list = None

    @classmethod
    def shared(cls, f: AccessFunction, size: int) -> "CostTable":
        """A process-wide cached table for ``(f, size)``.

        Tables are read-only, so sharing is safe; the cache is keyed by
        the access function's own equality (value equality for the frozen
        dataclass functions, identity otherwise).  Unhashable functions
        fall back to a fresh table.
        """
        try:
            return _shared_cost_table(f, int(size))
        except TypeError:  # unhashable custom function
            return cls(f, size)

    def access(self, x: int) -> float:
        """Charged cost of a single access to address ``x``."""
        if not 0 <= x < self.size:
            raise IndexError(f"address {x} outside [0, {self.size})")
        costs = self._cost_list
        if costs is not None:
            return costs[x]
        return float(self._prefix[x + 1] - self._prefix[x])

    def range_cost(self, lo: int, hi: int) -> float:
        """Charged cost of touching every address in ``[lo, hi)`` once."""
        if not 0 <= lo <= hi <= self.size:
            raise IndexError(f"range [{lo}, {hi}) outside [0, {self.size})")
        prefix = self._prefix_list
        if prefix is not None:
            return prefix[hi] - prefix[lo]
        return float(self._prefix[hi] - self._prefix[lo])

    def prefix_cost(self, n: int) -> float:
        """Cost of touching the first ``n`` cells: Fact 1 says Theta(n f(n))."""
        return self.range_cost(0, n)

    # ------------------------------------------------------ batched access
    def access_many(self, xs) -> np.ndarray:
        """Per-address charged costs for an address array (one gather).

        Each element equals ``access(x)`` bit-for-bit.  Accepts any
        sequence; validates the whole batch at once.
        """
        xi = np.asarray(xs, dtype=np.intp)
        if xi.size and (int(xi.min()) < 0 or int(xi.max()) >= self.size):
            raise IndexError(
                f"batched addresses outside [0, {self.size}): "
                f"range [{int(xi.min())}, {int(xi.max())}]"
            )
        return self._prefix[xi + 1] - self._prefix[xi]

    def fold_access(self, t0: float, xs) -> float:
        """``t0 + f(x_1) + f(x_2) + ...`` folded strictly left-to-right.

        Bit-identical to the scalar loop ``for x in xs: t0 += access(x)``
        — this is what lets the machines batch their charging without
        perturbing any charged total by even one ulp.  Lists take a tight
        list-indexing loop; arrays (or tables too large for the Python
        mirror) take a numpy gather followed by a sequential ``cumsum``
        (which accumulates left-to-right, unlike pairwise ``np.sum``).
        """
        costs = self._cost_list
        if costs is not None and not isinstance(xs, np.ndarray):
            if xs:
                if min(xs) < 0 or max(xs) >= self.size:
                    raise IndexError(
                        f"batched addresses outside [0, {self.size})"
                    )
                for x in xs:
                    t0 += costs[x]
            return t0
        gathered = self.access_many(xs)
        if not gathered.size:
            return t0
        buf = np.empty(gathered.size + 1, dtype=np.float64)
        buf[0] = t0
        buf[1:] = gathered
        np.cumsum(buf, out=buf)
        return float(buf[-1])


@lru_cache(maxsize=32)
def _shared_cost_table(f: AccessFunction, size: int) -> CostTable:
    return CostTable(f, size)
