"""Wall-clock benchmark harness: the repo's perf trajectory recorder.

Everything else in ``benchmarks/`` measures *charged model cost* — exact,
deterministic, machine-independent.  This module measures the other axis:
how fast the simulators themselves run on the host, in wall-clock terms.
It executes a fixed engine/workload matrix (the message-delivery-heavy
sorting and FFT sweeps on all three simulation engines, plus the Fact 1/2
touching kernels), growing each sweep geometrically until a per-workload
time budget is spent, and records

* ``wall_s`` — wall-clock seconds per run,
* ``rounds_per_s`` — scheduler rounds retired per second,
* ``charged_words_per_s`` — model words charged (touched + moved) per
  wall-clock second, the throughput of the charging machinery itself,
* ``peak`` — the largest sweep size completed within the budget.

``python -m repro bench`` writes the result matrix to
``BENCH_sim_throughput.json`` at the invocation directory (the repo root
in CI); successive PRs diff against the checked-in file, so the repo
carries its own perf trajectory.  ``--check BASELINE`` compares a fresh
run against a recorded one and fails on throughput regressions beyond a
(generous, machine-to-machine) tolerance — the ``bench-smoke`` CI job.

Wall-clock numbers are machine-dependent by nature; the charged model
costs of every run in the matrix are deterministic and asserted elsewhere
(``tests/test_batched_charging.py``, ``tests/test_equivalence.py``).
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Any

from repro.engines import ENGINES, build_program, resolve_access_function
from repro.parallel.config import SERIAL, ParallelConfig, resolve_parallel

__all__ = [
    "Workload",
    "WORKLOADS",
    "SMOKE_CAPS",
    "BENCH_SCHEMA",
    "bench_header",
    "sweep_workload",
    "workload_cell_key",
    "run_bench",
    "check_against",
]

#: default per-workload wall-clock budget (seconds) for the full matrix
DEFAULT_BUDGET_S = 8.0

#: bench document schema.  2 added ``cpu_count``, ``jobs`` and
#: ``revision`` to the header — the context needed to interpret parallel
#: results (a ``--jobs 4`` run on a 1-core host measures overhead, not
#: speedup).  3 added the ``vec`` rows to the matrix and stamps every
#: engine cell with the ``engine`` and ``kernel`` that produced it (the
#: same workload can now run on two kernels, so a cell must say which
#: one it measured).  Documents with different schemas are not
#: comparable.
BENCH_SCHEMA = 3


@dataclass(frozen=True)
class Workload:
    """One row of the benchmark matrix: an engine driving one program."""

    name: str
    engine: str
    program: str
    f: str = "x^0.5"
    mu: int = 8
    start: int = 16
    cap: int = 2048
    opts: dict = field(default_factory=dict)
    #: message-delivery-heavy rows are the headline speedup targets
    delivery_heavy: bool = False


#: the fixed matrix: sorting/FFT sweeps across the three simulation
#: engines (delivery-heavy — the tentpole targets), the direct executor
#: as the guest-side reference, and the two touching kernels
WORKLOADS: tuple[Workload, ...] = (
    Workload("sort/hmm", "hmm", "sort", delivery_heavy=True),
    Workload("sort/vec", "vec", "sort", delivery_heavy=True),
    Workload("sort/bt", "bt", "sort", delivery_heavy=True),
    Workload("sort/brent", "brent", "sort", delivery_heavy=True),
    Workload("fft-rec/hmm", "hmm", "fft-rec", delivery_heavy=True),
    Workload("fft-rec/vec", "vec", "fft-rec", delivery_heavy=True),
    Workload("fft-rec/bt", "bt", "fft-rec", delivery_heavy=True),
    Workload("sort/direct", "direct", "sort"),
    Workload("touch/hmm", "touch-hmm", "-", start=1 << 14, cap=1 << 22),
    Workload("touch/bt", "touch-bt", "-", start=1 << 14, cap=1 << 22),
)

#: reduced sweep caps for the CI smoke job (same matrix, smaller peaks)
SMOKE_CAPS = {"default": 128, "touch": 1 << 16}


def _run_engine_workload(
    w: Workload, v: int, repeats: int = 3, parallel: ParallelConfig = SERIAL
) -> dict[str, Any] | None:
    """One (engine, program, v) cell; None when the program can't build.

    The charged work is deterministic, so the cell runs ``repeats`` times
    and keeps the best wall clock (standard wall-benchmark practice; the
    total spent wall is reported separately for the sweep budget).
    """
    f = resolve_access_function(w.f)
    try:
        program = build_program(w.program, v, w.mu)
    except ValueError:
        return None  # e.g. matmul needs a power of 4
    opts = dict(w.opts)
    if parallel.enabled and w.engine in ("hmm", "vec", "brent"):
        opts["parallel"] = parallel
    # raw engine throughput: span layer off, event counters on (the
    # throughput metric is charged words per second).  Older engine
    # revisions only know off/phases/full: probe the level on the first
    # run only, and only swallow the "unknown trace level" rejection —
    # a genuine engine or program ValueError must propagate.
    trace_level = "counters"
    wall = None
    total = 0.0
    res = None
    for attempt in range(max(1, repeats)):
        t0 = time.perf_counter()
        if attempt == 0:
            try:
                res = ENGINES[w.engine].run(
                    program, f, trace=trace_level, **opts
                )
            except ValueError as exc:
                if "trace level" not in str(exc):
                    raise
                trace_level = "phases"
                t0 = time.perf_counter()
                res = ENGINES[w.engine].run(
                    program, f, trace=trace_level, **opts
                )
        else:
            res = ENGINES[w.engine].run(program, f, trace=trace_level, **opts)
        elapsed = time.perf_counter() - t0
        total += elapsed
        if wall is None or elapsed < wall:
            wall = elapsed
    words = res.counters.get("words_touched", 0) + res.counters.get(
        "words_moved", 0
    )
    rounds = res.counters.get("rounds", 0)
    return {
        "v": v,
        "engine": w.engine,
        # which execution kernel actually ran (hmm-family engines report
        # it in meta; REPRO_ENGINE=vec flips it even for the hmm row)
        "kernel": res.meta.get("kernel"),
        "wall_s": wall,
        "wall_s_total": total,
        "model_time": res.time,
        "rounds": rounds,
        "rounds_per_s": rounds / wall if wall > 0 else None,
        "charged_words": words,
        "charged_words_per_s": words / wall if wall > 0 else None,
    }


def _run_touch_workload(kind: str, n: int) -> dict[str, Any]:
    """One Fact 1 / Fact 2 touching cell at size ``n``."""
    from repro.bt.machine import BTMachine
    from repro.bt.touching import bt_touch_all
    from repro.hmm.machine import HMMMachine
    from repro.hmm.touching import hmm_touch_all

    f = resolve_access_function("x^0.5")
    t0 = time.perf_counter()
    if kind == "touch-hmm":
        machine = HMMMachine(f, n)
        machine.mem[:n] = [1] * n
        cost = hmm_touch_all(machine, n)
        words = machine.counters.get("words_touched", n)
    else:
        machine = BTMachine(f, 2 * n)
        machine.mem[n : 2 * n] = [1] * n
        cost = bt_touch_all(machine, n)
        words = n
    wall = time.perf_counter() - t0
    return {
        "v": n,
        "engine": kind,
        "kernel": None,
        "wall_s": wall,
        "model_time": cost,
        "rounds": 0,
        "rounds_per_s": None,
        "charged_words": words,
        "charged_words_per_s": words / wall if wall > 0 else None,
    }


def _git_revision() -> str:
    """Short git revision of the working tree, or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except OSError:
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def bench_header(
    budget_s: float, smoke: bool, jobs: int = 1
) -> dict[str, Any]:
    """The schema-2 document header: provenance + host context.

    ``cpu_count`` and ``jobs`` together say whether a parallel run could
    have sped anything up; ``revision`` ties the numbers to the code that
    produced them.
    """
    produced_by = "python -m repro bench"
    if smoke:
        produced_by += " --smoke"
    if jobs > 1:
        produced_by += f" --jobs {jobs}"
    return {
        "schema": BENCH_SCHEMA,
        "produced_by": produced_by,
        "budget_s": budget_s,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "jobs": jobs,
        "revision": _git_revision(),
        "workloads": {},
    }


def sweep_workload(
    w: Workload,
    budget_s: float = DEFAULT_BUDGET_S,
    smoke: bool = False,
    parallel: ParallelConfig = SERIAL,
    echo=None,
) -> dict[str, Any]:
    """Sweep one workload's sizes; return its document entry.

    Sizes grow geometrically from ``start`` until the cumulative wall
    clock exceeds ``budget_s`` or the cap is reached; ``peak`` is the
    largest size completed.  ``smoke`` shrinks the caps (CI-friendly)
    without changing the matrix.  This is also the unit of work the
    distributed bench runner ships to worker processes — wall clock is
    measured inside, serially per cell, so distribution never distorts a
    cell's own numbers.
    """
    touch = w.engine.startswith("touch-")
    cap = w.cap
    if smoke:
        cap = min(cap, SMOKE_CAPS["touch" if touch else "default"])
    sweep: list[dict[str, Any]] = []
    spent = 0.0
    v = w.start if not (smoke and not touch) else min(w.start, cap)
    while v <= cap:
        cell = (
            _run_touch_workload(w.engine, v)
            if touch
            else _run_engine_workload(w, v, parallel=parallel)
        )
        if cell is not None:
            sweep.append(cell)
            spent += cell.get("wall_s_total", cell["wall_s"])
        if echo:
            echo(
                f"  {w.name:14s} size {v:>8d}  "
                f"wall {cell['wall_s']:.3f}s" if cell else
                f"  {w.name:14s} size {v:>8d}  skipped"
            )
        if spent > budget_s:
            break
        v *= 2
    best_words = max(
        (c["charged_words_per_s"] for c in sweep
         if c["charged_words_per_s"]),
        default=None,
    )
    best_rounds = max(
        (c["rounds_per_s"] for c in sweep if c["rounds_per_s"]),
        default=None,
    )
    return {
        "engine": w.engine,
        "program": w.program,
        "f": w.f,
        "mu": w.mu,
        "delivery_heavy": w.delivery_heavy,
        "peak": sweep[-1]["v"] if sweep else None,
        "best_charged_words_per_s": best_words,
        "best_rounds_per_s": best_rounds,
        "sweep": sweep,
    }


def workload_cell_key(
    w: Workload, budget_s: float, smoke: bool, jobs: int = 1
) -> str:
    """The ledger key identifying one workload's full sweep.

    Shared between the serial bench and the distributed runner: the
    args mirror the ``bench-workload`` worker task's, and the context
    pins the bench schema plus the engine-internal job count (the
    distributed runner measures each cell serially in its worker, so it
    records under ``jobs=1`` — interchangeable with a serial run).
    """
    import dataclasses

    from repro.resilience.ledger import cell_key

    return cell_key(
        "bench-workload",
        (dataclasses.asdict(w), budget_s, smoke),
        {"schema": BENCH_SCHEMA, "jobs": jobs},
    )


def run_bench(
    budget_s: float = DEFAULT_BUDGET_S,
    smoke: bool = False,
    workloads: tuple[Workload, ...] = WORKLOADS,
    echo=None,
    jobs: int = 1,
    ledger=None,
) -> dict[str, Any]:
    """Run the matrix; return the JSON-serializable result document.

    ``jobs > 1`` turns on *engine-internal* parallelism for the hmm and
    brent rows (the charged results are bit-identical either way); each
    cell's wall clock then includes all dispatch overhead, so the
    recorded throughput stays honest.  To distribute whole workloads
    across the pool instead, see
    :func:`repro.parallel.sweep.run_matrix_distributed`.

    With a :class:`~repro.resilience.ledger.SweepLedger`, each
    workload's completed sweep is checkpointed as one ledger cell; a
    rerun against the same ledger replays completed workloads verbatim
    and only computes the missing ones.  Ledger entries are shared with
    ``bench --distribute`` (same keys, same shape) when ``jobs == 1``.
    """
    parallel = resolve_parallel(jobs) if jobs > 1 else SERIAL
    doc = bench_header(budget_s, smoke, jobs)
    if ledger is None:
        for w in workloads:
            doc["workloads"][w.name] = sweep_workload(
                w, budget_s, smoke, parallel=parallel, echo=echo
            )
        return doc

    from repro.resilience import faults, recovery
    from repro.resilience.ledger import MISSING

    for w in workloads:
        key = workload_cell_key(w, budget_s, smoke, jobs)
        recorded = ledger.get(key)
        if recorded is not MISSING:
            name, wl_doc = recorded
            recovery.record("cells_resumed", kind="bench-workload", name=name)
            doc["workloads"][name] = wl_doc
            continue
        wl_doc = sweep_workload(
            w, budget_s, smoke, parallel=parallel, echo=echo
        )
        wl_doc = json.loads(json.dumps(wl_doc))
        ledger.record(key, "bench-workload", [w.name, wl_doc])
        recovery.record("cells_recomputed", kind="bench-workload", name=w.name)
        doc["workloads"][w.name] = wl_doc
        faults.check_abort(ledger.cells_recorded)
    doc["resilience"] = ledger.summary()
    return doc


def check_against(
    fresh: dict[str, Any], baseline: dict[str, Any], tolerance: float = 3.0
) -> list[str]:
    """Compare a fresh run against a recorded baseline.

    Refuses (raises :class:`ValueError`) when the two documents carry
    different schema versions — the fields that qualify a schema-2
    result (``cpu_count``, ``jobs``) have no counterpart in a schema-1
    document, so a cross-schema comparison silently compares
    incomparable runs.

    Returns a list of human-readable regression messages (empty = pass).
    Only workloads and sweep sizes present in *both* documents are
    compared (the smoke matrix is a prefix of the full one), and only in
    the slow direction: a fresh throughput below ``baseline / tolerance``
    is a regression.  The tolerance is generous by design — wall-clock
    numbers cross machines.
    """
    fresh_schema = fresh.get("schema")
    base_schema = baseline.get("schema")
    if fresh_schema != base_schema:
        raise ValueError(
            f"cannot compare bench documents across schemas: fresh run is "
            f"schema {fresh_schema!r}, baseline is schema {base_schema!r}. "
            f"Regenerate the baseline with the current code "
            f"(python -m repro bench -o <baseline.json>) and re-check."
        )
    problems: list[str] = []
    for name, base_wl in baseline.get("workloads", {}).items():
        fresh_wl = fresh.get("workloads", {}).get(name)
        if fresh_wl is None:
            continue
        base_rows = {c["v"]: c for c in base_wl.get("sweep", [])}
        for cell in fresh_wl.get("sweep", []):
            base_cell = base_rows.get(cell["v"])
            if not base_cell:
                continue
            b = base_cell.get("charged_words_per_s")
            got = cell.get("charged_words_per_s")
            if b and got and got < b / tolerance:
                problems.append(
                    f"{name} @ size {cell['v']}: charged-words/s "
                    f"{got:,.0f} < baseline {b:,.0f} / {tolerance:g}"
                )
    return problems


def write_bench(path: str, doc: dict[str, Any]) -> None:
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")


def _main(argv: list[str] | None = None) -> int:  # pragma: no cover - thin
    from repro.cli import main

    return main(["bench"] + (argv if argv is not None else sys.argv[1:]))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(_main())
